//! Model-theory laboratory: the compactness-failure witness (Theorem 3.2), the
//! non-genericity of line separation (Example 4.5 / Fig. 1, experiment E1) and a small
//! Ehrenfeucht–Fraïssé game analysis (Section 5).
//!
//! Run with `cargo run --example model_theory_lab`.

use frdb::prelude::*;
use frdb_games::{comb_instance, duplicator_wins_value};
use frdb_modeltheory::compactness;
use frdb_queries::separation::{example_4_5_instance, line_separation};

fn main() {
    // --- Theorem 3.2: compactness fails ------------------------------------------
    println!("compactness failure (Theorem 3.2):");
    for k in 1..=4usize {
        let model = compactness::finite_model(k);
        println!(
            "  a model of {{τ_1 … τ_{k}}} needs ≥ {} isolated pieces",
            compactness::required_pieces(&model)
        );
    }
    println!("  → no single finitely representable model satisfies every τ_k.\n");

    // --- Example 4.5: line separation is not order-generic ------------------------
    let original = example_4_5_instance();
    let mu = Automorphism::example_4_5();
    let image = mu.apply_relation(&original);
    println!("line separation (Fig. 1):");
    println!("  separable(R)      = {:?}", line_separation(&original));
    println!("  separable(µ(R))   = {:?}", line_separation(&image));
    println!("  → the answers differ although µ is an automorphism of (Q, ≤),");
    println!("    so line separation is not an order-generic query.\n");

    // --- Ehrenfeucht–Fraïssé games on the comb instances (Fig. 7) -----------------
    println!("Ehrenfeucht–Fraïssé games on the comb instances (Fig. 7):");
    let a = comb_instance(3, true);
    let b = comb_instance(3, false);
    for rounds in 1..=2 {
        let report = duplicator_wins_value(&a, &b, rounds);
        println!(
            "  {rounds}-round value game: duplicator wins = {} ({} positions explored)",
            report.duplicator_wins, report.positions_explored
        );
    }
    println!("  (the connected comb A and disconnected comb B need high quantifier rank");
    println!("   to be separated — connectivity is not first-order, Lemma 5.5)");
}
