//! Regenerates the definability table of Fig. 8: for every query of the catalog,
//! its FO / DATALOG¬ status in the paper and the answer computed by this library's
//! implementation on a small representative instance.
//!
//! Run with `cargo run --example definability_table`.

use frdb::prelude::*;
use frdb_queries::connectivity::{has_exactly_one_hole, has_hole, is_connected};
use frdb_queries::convexity::{is_convex, is_convex_1d, k_convex_covering_1d};
use frdb_queries::euler::euler_traversal;
use frdb_queries::graph::{graph_connected, integer_set, parity, path_graph};
use frdb_queries::reductions::{boolean_vector, half_to_euler, majority_to_connectivity};
use frdb_queries::shape1d::{homeomorphic_1d, is_connected_1d};

fn row(query: &str, fo: &str, datalog: &str, sample: String) {
    println!("{query:<34}| {fo:^12} | {datalog:^12} | {sample}");
}

fn main() {
    let vars1 = vec![Var::new("x")];
    let seg = |lo: i64, hi: i64| {
        GenTuple::new(vec![
            DenseAtom::le(Term::cst(lo), Term::var("x")),
            DenseAtom::le(Term::var("x"), Term::cst(hi)),
        ])
    };
    let one_d: Relation<DenseOrder> = Relation::new(vars1.clone(), vec![seg(0, 2), seg(5, 8)]);
    let square = Relation::new(
        vec![Var::new("x"), Var::new("y")],
        vec![GenTuple::new(vec![
            DenseAtom::le(Term::cst(0), Term::var("x")),
            DenseAtom::le(Term::var("x"), Term::cst(3)),
            DenseAtom::le(Term::cst(0), Term::var("y")),
            DenseAtom::le(Term::var("y"), Term::cst(3)),
        ])],
    );
    let majority_bits = boolean_vector(6, 4);
    let half_bits = boolean_vector(6, 3);

    println!(
        "{:<34}| {:^12} | {:^12} | sample answer (this library)",
        "query (Fig. 8)", "FO", "DATALOG¬"
    );
    println!("{}", "-".repeat(100));
    row(
        "convexity",
        "yes",
        "yes",
        format!("square convex = {}", is_convex(&square).unwrap()),
    );
    row(
        "k-convex covering (1-D, k=2)",
        "yes",
        "yes",
        format!(
            "two intervals covered = {}",
            k_convex_covering_1d(&one_d, 2)
        ),
    );
    row(
        "1-D connectivity / convexity",
        "yes",
        "yes",
        format!("{} / {}", is_connected_1d(&one_d), is_convex_1d(&one_d)),
    );
    row(
        "2-D region connectivity",
        "no (L.5.5)",
        "yes (Ex.6.3)",
        format!(
            "majority reduction (Fig. 3) = {}",
            is_connected(&majority_to_connectivity(&majority_bits))
        ),
    );
    row(
        "at least / exactly one hole",
        "no",
        "yes",
        format!(
            "solid square = {} / {}",
            has_hole(&square),
            has_exactly_one_hole(&square)
        ),
    );
    row(
        "Eulerian traversal",
        "no (L.5.7)",
        "yes (Ex.6.4)",
        format!(
            "half reduction (Fig. 6) = {}",
            euler_traversal(&half_to_euler(&half_bits))
        ),
    );
    row(
        "parity",
        "no (L.5.6)",
        "yes",
        format!("|{{1..7}}| even = {}", parity(&integer_set(7)).unwrap()),
    );
    row(
        "transitive closure / graph conn.",
        "no (L.5.6)",
        "yes",
        format!(
            "path graph connected = {}",
            graph_connected(&path_graph(6)).unwrap()
        ),
    );
    row(
        "1-D homeomorphism",
        "no",
        "yes",
        format!("[0,2]∪[5,8] ≅ itself = {}", homeomorphic_1d(&one_d, &one_d)),
    );
    row(
        "k-D homeomorphism (k ≥ 2)",
        "no",
        "open",
        "not implemented (open in the paper)".to_string(),
    );
    println!("{}", "-".repeat(100));
    println!("The FO / DATALOG¬ columns restate Theorem 5.3 and Theorem 6.5 (Fig. 8).");
}
