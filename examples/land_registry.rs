//! A miniature land registry: the spatial workload the paper's introduction motivates
//! (maps, regions, adjacency), driven entirely through the constraint query languages.
//!
//! Run with `cargo run --example land_registry`.

use frdb::prelude::*;
use frdb_queries::connectivity::{component_count, has_hole, is_connected};
use frdb_queries::convexity::is_convex;

fn parcel(x0: i64, x1: i64, y0: i64, y1: i64) -> GenTuple<DenseAtom> {
    GenTuple::new(vec![
        DenseAtom::le(Term::cst(x0), Term::var("x")),
        DenseAtom::le(Term::var("x"), Term::cst(x1)),
        DenseAtom::le(Term::cst(y0), Term::var("y")),
        DenseAtom::le(Term::var("y"), Term::cst(y1)),
    ])
}

fn main() {
    // Two land owners; each owns a union of rectangular parcels.
    let vars = vec![Var::new("x"), Var::new("y")];
    let alice = Relation::new(vars.clone(), vec![parcel(0, 4, 0, 4), parcel(4, 8, 0, 2)]);
    let bob = Relation::new(
        vars.clone(),
        vec![parcel(6, 10, 1, 5), parcel(20, 24, 0, 4)],
    );

    let schema = Schema::from_pairs([("alice", 2), ("bob", 2)]);
    let mut db: Instance<DenseOrder> = Instance::new(schema);
    db.set("alice", alice.clone()).unwrap();
    db.set("bob", bob.clone()).unwrap();

    // Do the two estates overlap?  A Boolean FO query.
    let overlap: Formula<DenseAtom> = Formula::exists(
        ["x", "y"],
        Formula::rel("alice", [Term::var("x"), Term::var("y")])
            .and(Formula::rel("bob", [Term::var("x"), Term::var("y")])),
    );
    println!(
        "estates overlap?          {}",
        eval_sentence(&overlap, &db).unwrap()
    );

    // The disputed strip: the intersection, as a new constraint relation.
    let disputed = alice.intersect(&bob.rename(vars.clone()));
    println!("disputed area:            {disputed}");

    // Topological analysis with the Section 5/6 queries.
    println!("alice's estate connected? {}", is_connected(&alice));
    println!("bob's parcels components: {}", component_count(&bob));
    println!("alice's estate convex?    {}", is_convex(&alice).unwrap());
    let combined = alice.union(&bob.rename(vars.clone()));
    println!("combined estate has hole? {}", has_hole(&combined));

    // Order-genericity in action: stretching the map (an automorphism of (Q, ≤))
    // changes no topological answer.
    let mu = Automorphism::example_4_5();
    let stretched = mu.apply_relation(&combined);
    println!(
        "after stretching the map: connected={} components={}",
        is_connected(&stretched),
        component_count(&stretched)
    );

    // The registry is still a finitely representable database: report its size.
    println!(
        "registry size (encoding): {} symbols",
        database_size(&db).expect("well-formed instance")
    );
}
