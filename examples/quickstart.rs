//! Quickstart: define a constraint database, query it with the relational calculus,
//! and inspect its canonical form and encoding size.
//!
//! Every value built here through the Rust API has a **surface-language twin**:
//! the script `examples/scripts/quickstart.frdb` expresses the same database
//! and queries as text, runnable with
//! `cargo run -p frdb-cli -- examples/scripts/quickstart.frdb` — each step
//! below shows the text form next to the AST form.
//!
//! Run this file with `cargo run --example quickstart`.

use frdb::prelude::*;
use frdb_core::normal::{cover, decompose_1d};

fn main() {
    // A schema with a spatial relation (a region of the rational plane) and a
    // temporal relation (a set of time intervals).
    //
    // text form:   schema region/2, busy/1;
    let schema = Schema::from_pairs([("region", 2), ("busy", 1)]);
    let mut db: Instance<DenseOrder> = Instance::new(schema);

    // The region is the union of a filled rectangle and a triangle bounded by the
    // diagonal — the shapes of Example 2.5 / Fig. 2.
    //
    // text form:   region := {(x, y) | (0 <= x and x <= 4 and 0 <= y and y <= 2)
    //                                or (4 <= x and x <= y and y <= 6)};
    db.set(
        "region",
        Relation::new(
            vec![Var::new("x"), Var::new("y")],
            vec![
                GenTuple::new(vec![
                    DenseAtom::le(Term::cst(0), Term::var("x")),
                    DenseAtom::le(Term::var("x"), Term::cst(4)),
                    DenseAtom::le(Term::cst(0), Term::var("y")),
                    DenseAtom::le(Term::var("y"), Term::cst(2)),
                ]),
                GenTuple::new(vec![
                    DenseAtom::le(Term::cst(4), Term::var("x")),
                    DenseAtom::le(Term::var("x"), Term::var("y")),
                    DenseAtom::le(Term::var("y"), Term::cst(6)),
                ]),
            ],
        ),
    )
    .expect("region is declared");
    // Busy times: two closed intervals.
    //
    // text form:   busy := {(t) | (1 <= t and t <= 3) or (5 <= t and t <= 8)};
    db.set(
        "busy",
        Relation::new(
            vec![Var::new("t")],
            vec![
                GenTuple::new(vec![
                    DenseAtom::le(Term::cst(1), Term::var("t")),
                    DenseAtom::le(Term::var("t"), Term::cst(3)),
                ]),
                GenTuple::new(vec![
                    DenseAtom::le(Term::cst(5), Term::var("t")),
                    DenseAtom::le(Term::var("t"), Term::cst(8)),
                ]),
            ],
        ),
    )
    .expect("busy is declared");

    // The same instance could have been *parsed*: `db.to_string()` prints a
    // script fragment that the surface-language parser reads back.
    println!("the instance, as surface text:\n{db}");
    println!(
        "database size (standard encoding of §4.2): {} symbols",
        database_size(&db).expect("well-formed instance")
    );

    // Relational calculus: the projection of the region on the x axis.
    //
    // text form:   query shadow(x) := exists y. (region(x, y));
    //              run shadow;
    let shadow_query: Formula<DenseAtom> = Formula::exists(
        ["y"],
        Formula::rel("region", [Term::var("x"), Term::var("y")]),
    );
    let shadow = eval_query(&shadow_query, &[Var::new("x")], &db).unwrap();
    println!("\nprojection on x:  {shadow}");
    for piece in decompose_1d(&shadow) {
        println!("  piece: {piece:?}");
    }

    // A Boolean query: is the whole region contained in the half-plane x ≤ 6?
    //
    // text form:   check forall x, y. (region(x, y) -> x <= 6);
    let bounded: Formula<DenseAtom> = Formula::forall(
        ["x", "y"],
        Formula::rel("region", [Term::var("x"), Term::var("y")])
            .implies(Formula::Atom(DenseAtom::le(Term::var("x"), Term::cst(6)))),
    );
    println!(
        "\nregion ⊆ {{x ≤ 6}} ?  {}",
        eval_sentence(&bounded, &db).unwrap()
    );

    // Free time: the complement of busy within the working day [0, 10].
    //
    // text form:   query free_time(t) := not busy(t) and 0 <= t and t <= 10;
    //              run free_time;
    let free_query: Formula<DenseAtom> = Formula::rel("busy", [Term::var("t")])
        .not()
        .and(Formula::Atom(DenseAtom::le(Term::cst(0), Term::var("t"))))
        .and(Formula::Atom(DenseAtom::le(Term::var("t"), Term::cst(10))));
    let free = eval_query(&free_query, &[Var::new("t")], &db).unwrap();
    println!("\nfree time within [0,10]: {free}");

    // The canonical cover (prime tuples of §6) of the region.
    println!("\nprime-tuple cover of the region:");
    for cell in cover(&db.get(&RelName::new("region")).unwrap()) {
        println!("  {cell}");
    }

    // Round trip: the text form of the shadow query parses back to the very
    // same AST that was built by hand above.
    let reparsed: Formula<DenseAtom> =
        parse_formula::<DenseOrder>("exists y. (region(x, y))").unwrap();
    assert_eq!(reparsed, shadow_query);
    println!("\nparse(\"exists y. (region(x, y))\") == the hand-built AST ✓");
}
