//! Script execution: parsing and running `.frdb` statements against a
//! [`Database`], for theories with a concrete syntax ([`AtomSyntax`]).
//!
//! Each statement is its own commit (one per declaration inside a `schema`
//! statement), preserving the interpreter's historical semantics: effects of
//! statements before a failing one persist.  Read-only statements (`check`,
//! `assert`, `explain`, `print`) run against a snapshot and consume no
//! generation.
//!
//! Wall-clock timing lines are printed only when the database was built with
//! [`DbConfig::timings`](crate::DbConfig::timings), and go to **stderr** — the
//! `out` transcript is byte-deterministic (golden-testable) either way, and
//! stays pipeable with timings on.

use crate::{Database, DbError};
use frdb_lang::{parse_script, AtomSyntax, Span, Spanned, Stmt};
use std::fmt;
use std::io::Write;
use std::time::Duration;

/// Milliseconds with two decimals, for the timing lines.
fn ms(elapsed: Duration) -> String {
    format!("{:.2} ms", elapsed.as_secs_f64() * 1e3)
}

fn io_err(e: std::io::Error) -> DbError {
    DbError::new(format!("failed to write output: {e}"))
}

impl<T: AtomSyntax> Database<T>
where
    T::A: fmt::Display,
{
    /// Parses and executes a script against this database, writing statement
    /// output (answer relations, check results, and — when enabled — timings)
    /// to `out`.
    ///
    /// Statements commit one at a time, so concurrent snapshots observe the
    /// script's progress as a sequence of consistent states, and effects
    /// before a failing statement persist.
    ///
    /// # Errors
    /// Returns the first parse or execution error, with its span when known.
    pub fn execute_source(&self, src: &str, out: &mut dyn Write) -> Result<(), DbError> {
        let script = parse_script::<T>(src)?;
        for stmt in &script.stmts {
            self.exec_stmt(stmt, out)?;
        }
        Ok(())
    }

    fn exec_stmt(&self, stmt: &Spanned<Stmt<T>>, out: &mut dyn Write) -> Result<(), DbError> {
        let span = stmt.span;
        match &stmt.node {
            Stmt::Schema(decls) => {
                // One commit per declaration: a mid-list failure leaves the
                // earlier declarations applied, exactly as the in-place
                // interpreter behaved.
                for (name, arity) in decls {
                    self.declare(name.clone(), *arity)
                        .map_err(|e| e.with_span(span))?;
                }
            }
            Stmt::Assign { name, relation } => {
                self.set_relation(name.clone(), relation.clone())
                    .map_err(|e| e.with_span(span))?;
            }
            Stmt::Insert { name, relation } => {
                self.insert_relation(name.clone(), relation.clone())
                    .map_err(|e| e.with_span(span))?;
            }
            Stmt::Delete { name, relation } => {
                self.delete_relation(name.clone(), relation.clone())
                    .map_err(|e| e.with_span(span))?;
            }
            Stmt::Query {
                name,
                free,
                formula,
            } => {
                self.define_query(name, free.clone(), formula.clone())
                    .map_err(|e| e.with_span(span))?;
            }
            Stmt::Run { name } => {
                let (answer, elapsed) = self.run_query(name).map_err(|e| e.with_span(span))?;
                writeln!(out, "{name} = {answer}").map_err(io_err)?;
                writeln!(out, "-- {n} generalized tuple(s)", n = answer.num_tuples())
                    .map_err(io_err)?;
                if self.timings() {
                    eprintln!("-- run {name}: {}", ms(elapsed));
                }
            }
            Stmt::Explain { name } => {
                let (_, explain) = self
                    .snapshot()
                    .explain_query(name)
                    .map_err(|e| e.with_span(span))?;
                writeln!(out, "explain {name}").map_err(io_err)?;
                write!(out, "{explain}").map_err(io_err)?;
            }
            Stmt::Check { formula } => {
                let (holds, elapsed) = self.timed_check(formula, span)?;
                writeln!(out, "check {formula} = {holds}").map_err(io_err)?;
                if self.timings() {
                    eprintln!("-- check {formula}: {}", ms(elapsed));
                }
            }
            Stmt::Assert { formula } => {
                let (holds, _) = self.timed_check(formula, span)?;
                if !holds {
                    return Err(DbError::at(span, format!("assertion failed: {formula}")));
                }
                writeln!(out, "assert {formula} -- ok").map_err(io_err)?;
            }
            Stmt::DefProgram { name, program } => {
                self.define_program(name, program.clone())
                    .map_err(|e| e.with_span(span))?;
            }
            Stmt::Fixpoint { name } => {
                let run = self.run_fixpoint(name).map_err(|e| e.with_span(span))?;
                writeln!(
                    out,
                    "fixpoint {name}: {iters} iteration(s)",
                    iters = run.iterations
                )
                .map_err(io_err)?;
                if self.timings() {
                    eprintln!("-- fixpoint {name}: {}", ms(run.elapsed));
                }
                for (rel_name, rel) in &run.heads {
                    writeln!(out, "{rel_name} = {rel}").map_err(io_err)?;
                }
            }
            Stmt::Print { name } => {
                let rel = self
                    .snapshot()
                    .instance()
                    .get(name)
                    .ok_or_else(|| DbError::at(span, format!("unknown relation `{name}`")))?;
                writeln!(out, "{name} = {rel}").map_err(io_err)?;
            }
            Stmt::Trace { name } => {
                let snapshot = self.snapshot();
                if snapshot.query(name).is_some() {
                    let (answer, trace) =
                        snapshot.trace_query(name).map_err(|e| e.with_span(span))?;
                    writeln!(out, "trace {name}").map_err(io_err)?;
                    write!(out, "{trace}").map_err(io_err)?;
                    writeln!(out, "-- {n} generalized tuple(s)", n = answer.num_tuples())
                        .map_err(io_err)?;
                    if self.timings() {
                        eprint!("{}", trace.timed());
                    }
                } else if snapshot.program(name).is_some() {
                    let (iterations, trace) = snapshot
                        .trace_fixpoint(name)
                        .map_err(|e| e.with_span(span))?;
                    writeln!(out, "trace {name}").map_err(io_err)?;
                    writeln!(out, "fixpoint {name}: {iterations} iteration(s)").map_err(io_err)?;
                    write!(out, "{trace}").map_err(io_err)?;
                } else {
                    return Err(DbError::at(
                        span,
                        format!("unknown query or program `{name}`"),
                    ));
                }
            }
            Stmt::Stats => {
                write!(out, "{}", self.stats_report()).map_err(io_err)?;
            }
            Stmt::Metrics => {
                write!(out, "{}", self.metrics().render_counters()).map_err(io_err)?;
            }
        }
        Ok(())
    }

    /// Evaluates a sentence against a snapshot, timing it; non-sentences
    /// surface the evaluator's free-variable error with the statement's span.
    fn timed_check(
        &self,
        formula: &frdb_core::logic::Formula<T::A>,
        span: Span,
    ) -> Result<(bool, Duration), DbError> {
        let snapshot = self.snapshot();
        let start = std::time::Instant::now();
        let holds = snapshot.check(formula).map_err(|e| e.with_span(span))?;
        Ok((holds, start.elapsed()))
    }
}
