//! # frdb-db
//!
//! The embeddable **concurrent database engine** over finitely representable
//! instances: what used to be the CLI's single-threaded `Session`/`State`
//! interpreter, refactored into a [`Database`] handle that many threads can
//! use at once.
//!
//! ## Concurrency model
//!
//! All committed state — the [`Instance`], named queries, stored `DATALOG¬`
//! programs, and the `run`/`fixpoint` bookkeeping — lives in one immutable
//! [`Arc`]-shared value behind an `ArcSwap`-style cell (an `RwLock` held only
//! for the pointer swap, never across any computation):
//!
//! * **Readers** call [`Database::snapshot`], which clones the `Arc` under a
//!   momentary read lock and then works entirely lock-free on that frozen
//!   state.  A snapshot is a consistent point-in-time view; it never blocks
//!   behind a writer, and a writer never invalidates it.
//! * **Writers** serialize on a commit mutex, clone the current state, apply
//!   their mutation to the clone, and swap the new `Arc` in — copy-on-write at
//!   statement granularity.  The expensive work (query evaluation, fixpoints)
//!   happens outside the reader lock, so reads stay wait-free throughout.
//!
//! Every committed state is stamped with a **schema generation**: a globally
//! unique token from [`frdb_core::fo::next_generation`].  Generations key the
//! statistics-reoptimized entries of the process-wide [`PlanCache`], so a
//! commit automatically invalidates stale per-instance plans — the next query
//! against the new snapshot re-optimizes once and the cache is warm again.
//!
//! ## Plan sharing
//!
//! Query compilation goes through the shared [`PlanCache`] (by default the
//! process-global one, [`PlanCache::global`]): compiled plans are keyed by
//! `(formula, answer variables, theory, opt level, threads)` and re-optimized
//! plans additionally by the snapshot generation.  Two sessions — or two
//! hundred reader threads — asking the same question pay the PR 5
//! compile/optimize cost once, and repeated reads at one generation perform
//! **zero** optimizer invocations (observable via [`PlanCache::stats`]).
//!
//! ## Script execution
//!
//! For theories with a concrete syntax ([`frdb_lang::AtomSyntax`]),
//! [`Database::execute_source`] parses and executes `.frdb` scripts with the
//! exact statement semantics the CLI has always had — including partial-script
//! effects persisting past a failing statement, because each statement is its
//! own commit.  Timing output is opt-in ([`DbConfig::timings`]), so script
//! transcripts are byte-deterministic by default.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod error;
mod exec;

pub use error::DbError;

use frdb_core::fo::{
    next_generation, CompiledQuery, Explain, PlanCache, PlanConfig, QueryTrace, Statistics,
};
use frdb_core::logic::{Formula, Var};
use frdb_core::metrics::{JoinStrategyCounts, MetricsRegistry, MetricsSnapshot};
use frdb_core::relation::{column_index_counters, join_strategy_counters, Instance, Relation};
use frdb_core::schema::{RelName, Schema};
use frdb_core::theory::Theory;
use frdb_datalog::{FixpointTrace, Program};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Runs `f`, measuring its wall time and the column-index / join-strategy
/// work it performed **on the calling thread** (the engine's counters are
/// thread-local and the coordinating thread records all index and strategy
/// work, so the deltas are exact even for parallel joins — and concurrent
/// readers each attribute exactly their own work).
fn measured<R>(f: impl FnOnce() -> R) -> (R, Duration, (u64, u64), JoinStrategyCounts) {
    let (builds0, reuses0) = column_index_counters();
    let strategies0 = join_strategy_counters();
    let start = Instant::now();
    let result = f();
    let elapsed = start.elapsed();
    let (builds1, reuses1) = column_index_counters();
    let index_delta = (
        builds1.saturating_sub(builds0),
        reuses1.saturating_sub(reuses0),
    );
    (
        result,
        elapsed,
        index_delta,
        join_strategy_counters().since(&strategies0),
    )
}

/// A named query: its declared answer variables, the source formula (the
/// plan-cache key), and the plan compiled once at definition time.
pub struct QueryDef<T: Theory> {
    free: Vec<Var>,
    formula: Formula<T::A>,
    compiled: CompiledQuery<T>,
}

impl<T: Theory> QueryDef<T> {
    /// The declared answer variables.
    #[must_use]
    pub fn free(&self) -> &[Var] {
        &self.free
    }

    /// The source formula.
    #[must_use]
    pub fn formula(&self) -> &Formula<T::A> {
        &self.formula
    }

    /// The compiled relational-algebra plan.
    #[must_use]
    pub fn compiled(&self) -> &CompiledQuery<T> {
        &self.compiled
    }
}

impl<T: Theory> Clone for QueryDef<T> {
    fn clone(&self) -> Self {
        QueryDef {
            free: self.free.clone(),
            formula: self.formula.clone(),
            compiled: self.compiled.clone(),
        }
    }
}

/// One committed, immutable state of a database.  Shared by `Arc`: snapshots
/// hold it frozen while the handle swaps in successors.
struct EngineState<T: Theory> {
    /// The globally unique schema generation this state was committed at.
    generation: u64,
    /// The database instance.
    instance: Instance<T>,
    /// Named queries in definition order.
    queries: BTreeMap<String, QueryDef<T>>,
    /// Named `DATALOG¬` programs.
    programs: BTreeMap<String, Program<T::A>>,
    /// Relation names materialized by `fixpoint` merges.  A later `fixpoint`
    /// over a program whose heads are in this set strips them back out of the
    /// evaluation EDB first, so programs can be re-run; a head colliding with
    /// a *user* relation — including a derived name the user has since
    /// re-assigned, which drops it from this set — still errors.
    derived: BTreeSet<RelName>,
    /// Relation names materialized by `run`.  Re-running a query overwrites
    /// its own previous answer, but a query named like a *user* relation is
    /// refused rather than silently clobbering stored data.
    materialized: BTreeSet<RelName>,
}

impl<T: Theory> EngineState<T> {
    fn fresh() -> Self {
        EngineState {
            generation: next_generation(),
            instance: Instance::new(Schema::new()),
            queries: BTreeMap::new(),
            programs: BTreeMap::new(),
            derived: BTreeSet::new(),
            materialized: BTreeSet::new(),
        }
    }

    /// A mutable copy for a commit in progress (same generation until the
    /// commit stamps its own).  Cheap: relations and compiled plans are
    /// `Arc`-shared, so this clones maps of pointers, not data.
    fn working(&self) -> Self {
        EngineState {
            generation: self.generation,
            instance: self.instance.clone(),
            queries: self.queries.clone(),
            programs: self.programs.clone(),
            derived: self.derived.clone(),
            materialized: self.materialized.clone(),
        }
    }
}

/// A consistent, immutable point-in-time view of a [`Database`].
///
/// Snapshots are cheap to take (one `Arc` clone under a momentary read lock)
/// and entirely lock-free to use: every read method works on state frozen at
/// [`Snapshot::generation`], unaffected by concurrent commits.  Query
/// evaluation through a snapshot hits the shared plan cache keyed by this
/// generation, so repeated reads re-use the statistics-optimized plan without
/// ever re-running the optimizer.
pub struct Snapshot<T: Theory> {
    state: Arc<EngineState<T>>,
    cache: Arc<PlanCache>,
    config: PlanConfig,
    metrics: Arc<MetricsRegistry>,
}

impl<T: Theory> Clone for Snapshot<T> {
    fn clone(&self) -> Self {
        Snapshot {
            state: Arc::clone(&self.state),
            cache: Arc::clone(&self.cache),
            config: self.config,
            metrics: Arc::clone(&self.metrics),
        }
    }
}

impl<T: Theory> Snapshot<T> {
    /// The globally unique schema generation this snapshot was committed at.
    /// Strictly increasing across commits of one database, and never shared
    /// between two database handles in the same process.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.state.generation
    }

    /// The instance frozen in this snapshot.
    #[must_use]
    pub fn instance(&self) -> &Instance<T> {
        &self.state.instance
    }

    /// The current value of a stored relation.
    #[must_use]
    pub fn relation(&self, name: &str) -> Option<Relation<T>> {
        self.state.instance.get(&RelName::new(name))
    }

    /// A named query definition.
    #[must_use]
    pub fn query(&self, name: &str) -> Option<&QueryDef<T>> {
        self.state.queries.get(name)
    }

    /// A named `DATALOG¬` program.
    #[must_use]
    pub fn program(&self, name: &str) -> Option<&Program<T::A>> {
        self.state.programs.get(name)
    }

    /// Whether `name` was materialized by a `fixpoint` merge.
    #[must_use]
    pub fn is_derived(&self, name: &str) -> bool {
        self.state.derived.contains(&RelName::new(name))
    }

    /// Whether `name` was materialized by a `run`.
    #[must_use]
    pub fn is_materialized(&self, name: &str) -> bool {
        self.state.materialized.contains(&RelName::new(name))
    }

    /// The statistics-reoptimized plan for a named query at this snapshot's
    /// generation: served from the shared plan cache when warm (zero optimizer
    /// work), built and cached once when cold.
    fn optimized(&self, name: &str) -> Result<CompiledQuery<T>, DbError> {
        let query = self
            .query(name)
            .ok_or_else(|| DbError::new(format!("unknown query `{name}`")))?;
        Ok(self.cache.reoptimize::<T>(
            &query.formula,
            &query.free,
            &self.config,
            self.state.generation,
            || {
                Statistics::collect_only(
                    &self.state.instance,
                    query.compiled.relations().iter().map(|(name, _)| name),
                )
            },
        ))
    }

    /// Evaluates a named query against this snapshot, returning the answer
    /// relation.  Pure read: nothing is materialized and no generation is
    /// consumed, so N threads can evaluate concurrently, all sharing one
    /// statistics-optimized plan from the cache.
    ///
    /// # Errors
    /// Returns an error if the query is unknown or evaluation fails.
    pub fn eval_query(&self, name: &str) -> Result<Relation<T>, DbError> {
        let optimized = self.optimized(name)?;
        let (answer, elapsed, index_delta, strategies) =
            measured(|| optimized.eval(&self.state.instance));
        self.metrics
            .record_query(self.generation(), elapsed, index_delta, &strategies);
        answer.map_err(|e| DbError::new(e.to_string()))
    }

    /// Evaluates a named query and returns the answer together with the
    /// [`QueryTrace`] span tree of the statistics-optimized plan that ran:
    /// per node, the output cardinality and factorized part count, the join
    /// strategy with its pruning ratio, index builds/reuses, and wall time.
    /// The trace's default rendering is deterministic at any thread count
    /// (timings surface only through [`QueryTrace::timed`]).
    ///
    /// # Errors
    /// As for [`Snapshot::eval_query`].
    pub fn trace_query(&self, name: &str) -> Result<(Relation<T>, QueryTrace), DbError> {
        let optimized = self.optimized(name)?;
        let (traced, elapsed, index_delta, strategies) =
            measured(|| optimized.eval_traced(&self.state.instance));
        self.metrics
            .record_query(self.generation(), elapsed, index_delta, &strategies);
        traced.map_err(|e| DbError::new(e.to_string()))
    }

    /// Runs a stored program to its fixpoint against this snapshot **without
    /// committing anything**, returning the iteration count and the
    /// per-round [`FixpointTrace`].  Heads materialized by an earlier
    /// `fixpoint` are stripped from the evaluation EDB first, exactly like
    /// [`Database::run_fixpoint`] — the trace shows what a fixpoint statement
    /// would do from this snapshot.
    ///
    /// # Errors
    /// Returns an error if the program is unknown or fails to run.
    pub fn trace_fixpoint(&self, name: &str) -> Result<(usize, FixpointTrace), DbError> {
        let program = self
            .program(name)
            .ok_or_else(|| DbError::new(format!("unknown program `{name}`")))?;
        let idb = program
            .idb_schema()
            .map_err(|e| DbError::new(e.to_string()))?;
        let mut edb = self.state.instance.clone();
        for head in idb.keys() {
            if self.state.derived.contains(head) {
                edb.remove(head);
            }
        }
        let (result, elapsed, index_delta, strategies) = measured(|| program.run_traced(&edb));
        self.metrics
            .record_fixpoint(elapsed, index_delta, &strategies);
        let (result, trace) = result.map_err(|e| DbError::new(e.to_string()))?;
        Ok((result.iterations, trace))
    }

    /// Evaluates a named query and returns the answer together with the
    /// [`Explain`] tree of the statistics-optimized plan that ran — per node,
    /// the cost model's estimate and the actual materialized cardinality.
    ///
    /// # Errors
    /// As for [`Snapshot::eval_query`].
    pub fn explain_query(&self, name: &str) -> Result<(Relation<T>, Explain), DbError> {
        let optimized = self.optimized(name)?;
        let (result, elapsed, index_delta, strategies) =
            measured(|| optimized.eval_explained(&self.state.instance));
        self.metrics
            .record_query(self.generation(), elapsed, index_delta, &strategies);
        result.map_err(|e| DbError::new(e.to_string()))
    }

    /// Evaluates a sentence (Boolean query) against this snapshot.  The
    /// throwaway plan is cached too: repeated checks of one sentence compile
    /// once process-wide.
    ///
    /// # Errors
    /// Returns an error if evaluation fails (unknown relation, arity
    /// mismatch, or a non-sentence with free variables).
    pub fn check(&self, formula: &Formula<T::A>) -> Result<bool, DbError> {
        let compiled = self.cache.compile::<T>(formula, &[], &self.config);
        let (answer, elapsed, index_delta, strategies) =
            measured(|| compiled.eval(&self.state.instance));
        self.metrics
            .record_check(self.generation(), elapsed, index_delta, &strategies);
        let answer = answer.map_err(|e| DbError::new(e.to_string()))?;
        Ok(!answer.is_empty())
    }
}

/// Construction-time configuration of a [`Database`].
#[derive(Clone, Default)]
pub struct DbConfig {
    /// Whether script execution prints wall-clock timings after `run`,
    /// `check`, and `fixpoint` statements.  Off by default, so transcripts
    /// are byte-deterministic (golden-testable); the CLI's `--timings` flag
    /// turns it on.
    pub timings: bool,
    /// The optimization level and evaluator thread budget queries compile
    /// under.
    pub plan_config: PlanConfig,
    /// The plan cache to share.  `None` (the default) uses the process-global
    /// cache; tests that assert on counters can pass a private one.
    pub plan_cache: Option<Arc<PlanCache>>,
}

/// The result of running a stored program to its fixpoint: what a `fixpoint`
/// statement reports.
pub struct FixpointRun<T: Theory> {
    /// Number of iterations to reach the fixpoint.
    pub iterations: usize,
    /// The fixpoint value of every intensional predicate, in name order.
    pub heads: Vec<(RelName, Relation<T>)>,
    /// Wall-clock evaluation time.
    pub elapsed: Duration,
}

/// An embeddable, concurrently usable database over one theory.
///
/// The handle is `Send + Sync`: share it behind an `Arc` (or plain references
/// under `std::thread::scope`) and let every thread take [`Snapshot`]s for
/// reads and call the mutating methods for writes.  See the module docs for
/// the concurrency model.
pub struct Database<T: Theory> {
    /// The committed state; the lock guards only the `Arc` swap.
    state: RwLock<Arc<EngineState<T>>>,
    /// Serializes writers.  Held across clone-apply-swap, never needed by
    /// readers.
    commit: Mutex<()>,
    cache: Arc<PlanCache>,
    plan_config: PlanConfig,
    timings: bool,
    /// This database's metrics registry.  Every operation brackets its
    /// evaluation with the engine's thread-local counters and folds the
    /// deltas in here, so the registry accounts exactly this database's work
    /// — no construction-time counter baselines needed.
    metrics: Arc<MetricsRegistry>,
}

impl<T: Theory> Default for Database<T> {
    fn default() -> Self {
        Database::new()
    }
}

impl<T: Theory> Database<T> {
    /// An empty database with the default configuration (shared global plan
    /// cache, default plan config, timings off).
    #[must_use]
    pub fn new() -> Self {
        Database::with_config(DbConfig::default())
    }

    /// An empty database with an explicit configuration.
    #[must_use]
    pub fn with_config(config: DbConfig) -> Self {
        Database {
            state: RwLock::new(Arc::new(EngineState::fresh())),
            commit: Mutex::new(()),
            cache: config
                .plan_cache
                .unwrap_or_else(|| Arc::clone(PlanCache::global())),
            plan_config: config.plan_config,
            timings: config.timings,
            metrics: Arc::new(MetricsRegistry::default()),
        }
    }

    /// A deterministic, golden-testable account of the session's cache and
    /// evaluation work: the plan cache's hit/miss/eviction counters, the
    /// column-index build/reuse totals, and the per-strategy join breakdown —
    /// all sourced from this database's metrics registry.  Printed by the
    /// `stats;` script statement.
    #[must_use]
    pub fn stats_report(&self) -> String {
        let plan = self.cache.stats();
        let metrics = self.metrics.snapshot();
        let joins = &metrics.join_strategies;
        format!(
            "plan cache: compile {ch} hit(s) / {cm} miss(es); \
             reoptimize {rh} hit(s) / {rm} miss(es); \
             {oi} optimizer run(s); {ev} eviction(s)\n\
             column indexes: {b} built, {r} reused\n\
             join strategies: {ph} pin-hash, {iw} index-sweep, {bs} box-sweep, \
             {sc} scan, {mx} mixed\n",
            ch = plan.compile_hits,
            cm = plan.compile_misses,
            rh = plan.reoptimize_hits,
            rm = plan.reoptimize_misses,
            oi = plan.optimizer_invocations,
            ev = plan.evictions,
            b = metrics.index_builds,
            r = metrics.index_reuses,
            ph = joins.pin_hash,
            iw = joins.index_sweep,
            bs = joins.box_sweep,
            sc = joins.scan,
            mx = joins.mixed,
        )
    }

    /// A point-in-time snapshot of this database's metrics registry —
    /// operation counters, join-strategy and column-index tallies, and the
    /// query/commit/fixpoint latency histograms — with the plan cache's
    /// counters attached.  Exportable as JSON via
    /// [`MetricsSnapshot::to_json`] (the CLI's `--metrics-out` flag).
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snapshot = self.metrics.snapshot();
        let plan = self.cache.stats();
        snapshot.plan_cache = Some((
            plan.compile_hits,
            plan.compile_misses,
            plan.reoptimize_hits,
            plan.reoptimize_misses,
        ));
        snapshot
    }

    /// The plan cache this database compiles through.
    #[must_use]
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.cache
    }

    /// The plan configuration queries compile under.
    #[must_use]
    pub fn plan_config(&self) -> &PlanConfig {
        &self.plan_config
    }

    /// Whether script execution prints timings.
    #[must_use]
    pub fn timings(&self) -> bool {
        self.timings
    }

    /// The current schema generation (that of the latest commit).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.current().generation
    }

    fn current(&self) -> Arc<EngineState<T>> {
        Arc::clone(&self.state.read().expect("state lock poisoned"))
    }

    /// A consistent point-in-time view of the database.  O(1): one `Arc`
    /// clone under a momentary read lock.  The snapshot never blocks behind
    /// writers and stays valid (and unchanged) for as long as it is held.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot<T> {
        self.metrics.record_snapshot();
        Snapshot {
            state: self.current(),
            cache: Arc::clone(&self.cache),
            config: self.plan_config,
            metrics: Arc::clone(&self.metrics),
        }
    }

    /// The copy-on-write commit path: serialize on the commit mutex, clone
    /// the latest state, apply `mutate`, stamp a fresh generation, and swap
    /// the new state in.  On error nothing is published.  Readers are never
    /// blocked — the write lock is held only for the pointer swap.
    fn commit_with<R>(
        &self,
        mutate: impl FnOnce(&mut EngineState<T>) -> Result<R, DbError>,
    ) -> Result<R, DbError> {
        let _writer = self.commit.lock().expect("commit lock poisoned");
        let start = Instant::now();
        let mut work = self.current().working();
        let result = mutate(&mut work)?;
        work.generation = next_generation();
        *self.state.write().expect("state lock poisoned") = Arc::new(work);
        self.metrics.record_commit(start.elapsed());
        Ok(result)
    }

    /// Declares a relation in the schema.
    ///
    /// # Errors
    /// Returns an error if the name is already declared at a different arity.
    pub fn declare(&self, name: impl Into<RelName>, arity: usize) -> Result<(), DbError> {
        let name = name.into();
        self.commit_with(|work| {
            work.instance
                .declare(name.clone(), arity)
                .map(|_| ())
                .map_err(|e| DbError::new(e.to_string()))
        })
    }

    /// Sets a stored relation.  An explicit assignment makes the relation the
    /// user's again: a later `fixpoint` will not strip it, and a later `run`
    /// will refuse to clobber it.
    ///
    /// # Errors
    /// Returns an error if the relation is undeclared or the arity disagrees.
    pub fn set_relation(
        &self,
        name: impl Into<RelName>,
        relation: Relation<T>,
    ) -> Result<(), DbError> {
        let name = name.into();
        self.commit_with(|work| {
            work.instance
                .set(name.clone(), relation)
                .map_err(|e| DbError::new(e.to_string()))?;
            work.derived.remove(&name);
            work.materialized.remove(&name);
            Ok(())
        })
    }

    /// Defines (or redefines) a named query.  The plan compiles through the
    /// shared cache, so redefining the same text — here or in any other
    /// session — is free after the first time.
    ///
    /// # Errors
    /// Commit-path errors only; definition itself cannot fail (ill-formed
    /// queries surface typed errors at evaluation).
    pub fn define_query(
        &self,
        name: &str,
        free: Vec<Var>,
        formula: Formula<T::A>,
    ) -> Result<(), DbError> {
        let compiled = self.cache.compile::<T>(&formula, &free, &self.plan_config);
        self.commit_with(|work| {
            work.queries.insert(
                name.to_string(),
                QueryDef {
                    free,
                    formula,
                    compiled,
                },
            );
            Ok(())
        })
    }

    /// Defines (or redefines) a named `DATALOG¬` program.
    ///
    /// # Errors
    /// Commit-path errors only.
    pub fn define_program(&self, name: &str, program: Program<T::A>) -> Result<(), DbError> {
        self.commit_with(|work| {
            work.programs.insert(name.to_string(), program);
            Ok(())
        })
    }

    /// Runs a named query and **materializes** its answer under the query's
    /// name (the `run` statement): later queries and programs read it like
    /// any stored relation.  Re-running overwrites the previous answer; a
    /// *user* relation of the same name is never clobbered.
    ///
    /// # Errors
    /// Returns an error if the query is unknown, its name collides with a
    /// stored user relation, or evaluation fails.
    pub fn run_query(&self, name: &str) -> Result<(Relation<T>, Duration), DbError> {
        let cache = &self.cache;
        let config = self.plan_config;
        let metrics = &self.metrics;
        self.commit_with(|work| {
            let query = work
                .queries
                .get(name)
                .ok_or_else(|| DbError::new(format!("unknown query `{name}`")))?;
            let rel_name = RelName::new(name);
            if work.instance.schema().contains(&rel_name) && !work.materialized.contains(&rel_name)
            {
                return Err(DbError::new(format!(
                    "cannot materialize query `{name}`: a stored relation with that name \
                     already exists (rename the query)"
                )));
            }
            // The statistics-reoptimized plan for this generation, shared
            // through the cache (scoped statistics: only the relations this
            // query reads are scanned) — `explain` shows exactly this plan.
            let optimized = cache.reoptimize::<T>(
                &query.formula,
                &query.free,
                &config,
                work.generation,
                || {
                    Statistics::collect_only(
                        &work.instance,
                        query.compiled.relations().iter().map(|(name, _)| name),
                    )
                },
            );
            let (answer, elapsed, index_delta, strategies) =
                measured(|| optimized.eval(&work.instance));
            metrics.record_query(work.generation, elapsed, index_delta, &strategies);
            let answer = answer.map_err(|e| DbError::new(e.to_string()))?;
            // Only now that evaluation succeeded: a previous materialization
            // at a different arity (the query was redefined in between) is
            // stale; drop it so re-declaring below cannot fail.  A failed run
            // leaves the old answer untouched.
            if work.materialized.contains(&rel_name)
                && work.instance.schema().arity(&rel_name) != Some(answer.arity())
            {
                work.instance.remove(&rel_name);
            }
            work.instance
                .declare(rel_name.clone(), answer.arity())
                .map_err(|e| DbError::new(e.to_string()))?;
            work.instance
                .set(rel_name.clone(), answer.clone())
                .map_err(|e| DbError::new(e.to_string()))?;
            work.materialized.insert(rel_name);
            Ok((answer, elapsed))
        })
    }

    /// Runs a stored program to its inflationary fixpoint and merges the
    /// result into the database (the `fixpoint` statement): the fixpoint
    /// instance (EDB + IDB) becomes the current instance, so later queries
    /// read the derived predicates.  Heads materialized by an earlier
    /// `fixpoint` are stripped from the evaluation EDB first, so programs can
    /// be re-run; a head colliding with a *user* relation errors.
    ///
    /// # Errors
    /// Returns an error if the program is unknown or fails to run.
    pub fn run_fixpoint(&self, name: &str) -> Result<FixpointRun<T>, DbError> {
        let metrics = &self.metrics;
        self.commit_with(|work| {
            let program = work
                .programs
                .get(name)
                .ok_or_else(|| DbError::new(format!("unknown program `{name}`")))?;
            let idb = program
                .idb_schema()
                .map_err(|e| DbError::new(e.to_string()))?;
            let mut edb = work.instance.clone();
            for head in idb.keys() {
                if work.derived.contains(head) {
                    edb.remove(head);
                }
            }
            let (result, elapsed, index_delta, strategies) = measured(|| program.run(&edb));
            metrics.record_fixpoint(elapsed, index_delta, &strategies);
            let result = result.map_err(|e| DbError::new(e.to_string()))?;
            let heads: Vec<(RelName, Relation<T>)> = idb
                .keys()
                .filter_map(|head| result.instance.get(head).map(|rel| (head.clone(), rel)))
                .collect();
            work.instance = result.instance;
            work.derived.extend(idb.keys().cloned());
            Ok(FixpointRun {
                iterations: result.iterations,
                heads,
                elapsed,
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frdb_core::dense::{DenseAtom, DenseOrder};
    use frdb_core::logic::Term;
    use frdb_num::Rat;

    fn points(vals: &[i64]) -> Relation<DenseOrder> {
        Relation::from_points(
            vec![Var::new("x")],
            vals.iter().map(|&v| vec![Rat::from_i64(v)]),
        )
    }

    #[test]
    fn snapshots_are_frozen_while_commits_advance() {
        let db: Database<DenseOrder> = Database::new();
        db.declare("R", 1).unwrap();
        db.set_relation("R", points(&[1, 2])).unwrap();
        let before = db.snapshot();
        let g = before.generation();
        db.set_relation("R", points(&[1, 2, 3])).unwrap();
        let after = db.snapshot();
        assert!(after.generation() > g);
        // The old snapshot still sees the old value; the new one the new.
        assert!(!before.relation("R").unwrap().contains(&[Rat::from_i64(3)]));
        assert!(after.relation("R").unwrap().contains(&[Rat::from_i64(3)]));
    }

    #[test]
    fn failed_commits_publish_nothing() {
        let db: Database<DenseOrder> = Database::new();
        db.declare("R", 1).unwrap();
        let g = db.generation();
        // Arity mismatch: the commit fails, generation and state are unchanged.
        let err = db
            .set_relation(
                "R",
                Relation::from_points(
                    vec![Var::new("x"), Var::new("y")],
                    vec![vec![Rat::from_i64(1), Rat::from_i64(2)]],
                ),
            )
            .unwrap_err();
        assert!(err.message.contains("ar"), "unexpected error: {err}");
        assert_eq!(db.generation(), g);
        assert!(db.snapshot().relation("R").unwrap().is_empty());
    }

    #[test]
    fn run_query_materializes_and_snapshot_reads_are_pure() {
        let db: Database<DenseOrder> = Database::new();
        db.declare("R", 1).unwrap();
        db.set_relation("R", points(&[0, 3, 7])).unwrap();
        let f: Formula<DenseAtom> = Formula::rel("R", [Term::var("x")])
            .and(Formula::Atom(DenseAtom::le(Term::var("x"), Term::cst(3))));
        db.define_query("small", vec![Var::new("x")], f).unwrap();
        let snap = db.snapshot();
        let g = snap.generation();
        let pure = snap.eval_query("small").unwrap();
        assert!(pure.contains(&[Rat::from_i64(3)]));
        // A pure read consumed no generation and materialized nothing.
        assert_eq!(db.generation(), g);
        assert!(db.snapshot().relation("small").is_none());
        // `run_query` materializes (and commits).
        let (ran, _) = db.run_query("small").unwrap();
        assert!(ran.equivalent(&pure.rename(ran.vars().to_vec())));
        assert!(db.snapshot().relation("small").is_some());
        assert!(db.generation() > g);
    }

    #[test]
    fn private_plan_cache_counters_observe_sharing() {
        let cache = Arc::new(PlanCache::new());
        let db: Database<DenseOrder> = Database::with_config(DbConfig {
            plan_cache: Some(Arc::clone(&cache)),
            ..DbConfig::default()
        });
        db.declare("R", 1).unwrap();
        db.set_relation("R", points(&[1, 2, 3])).unwrap();
        let f: Formula<DenseAtom> = Formula::rel("R", [Term::var("x")]);
        db.define_query("q", vec![Var::new("x")], f).unwrap();
        let snap = db.snapshot();
        snap.eval_query("q").unwrap();
        let warm = cache.stats();
        // Re-reading the same snapshot (or a fresh snapshot at the same
        // generation) runs zero additional optimizer invocations.
        snap.eval_query("q").unwrap();
        db.snapshot().eval_query("q").unwrap();
        assert_eq!(
            cache.stats().optimizer_invocations,
            warm.optimizer_invocations
        );
        assert_eq!(cache.stats().reoptimize_hits, warm.reoptimize_hits + 2);
    }
}
