//! # frdb-db
//!
//! The embeddable **concurrent database engine** over finitely representable
//! instances: what used to be the CLI's single-threaded `Session`/`State`
//! interpreter, refactored into a [`Database`] handle that many threads can
//! use at once.
//!
//! ## Concurrency model
//!
//! All committed state — the [`Instance`], named queries, stored `DATALOG¬`
//! programs, and the `run`/`fixpoint` bookkeeping — lives in one immutable
//! [`Arc`]-shared value behind an `ArcSwap`-style cell (an `RwLock` held only
//! for the pointer swap, never across any computation):
//!
//! * **Readers** call [`Database::snapshot`], which clones the `Arc` under a
//!   momentary read lock and then works entirely lock-free on that frozen
//!   state.  A snapshot is a consistent point-in-time view; it never blocks
//!   behind a writer, and a writer never invalidates it.
//! * **Writers** serialize on a commit mutex, clone the current state, apply
//!   their mutation to the clone, and swap the new `Arc` in — copy-on-write at
//!   statement granularity.  The expensive work (query evaluation, fixpoints)
//!   happens outside the reader lock, so reads stay wait-free throughout.
//!
//! Every committed state is stamped with a **schema generation**: a globally
//! unique token from [`frdb_core::fo::next_generation`].  Generations key the
//! statistics-reoptimized entries of the process-wide [`PlanCache`], so a
//! commit automatically invalidates stale per-instance plans — the next query
//! against the new snapshot re-optimizes once and the cache is warm again.
//!
//! ## Plan sharing
//!
//! Query compilation goes through the shared [`PlanCache`] (by default the
//! process-global one, [`PlanCache::global`]): compiled plans are keyed by
//! `(formula, answer variables, theory, opt level, threads)` and re-optimized
//! plans additionally by the snapshot generation.  Two sessions — or two
//! hundred reader threads — asking the same question pay the PR 5
//! compile/optimize cost once, and repeated reads at one generation perform
//! **zero** optimizer invocations (observable via [`PlanCache::stats`]).
//!
//! ## Script execution
//!
//! For theories with a concrete syntax ([`frdb_lang::AtomSyntax`]),
//! [`Database::execute_source`] parses and executes `.frdb` scripts with the
//! exact statement semantics the CLI has always had — including partial-script
//! effects persisting past a failing statement, because each statement is its
//! own commit.  Timing output is opt-in ([`DbConfig::timings`]), so script
//! transcripts are byte-deterministic by default.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod error;
mod exec;

pub use error::{DbError, DbErrorKind};

use frdb_core::fo::{
    next_generation, CompiledQuery, Explain, PlanCache, PlanConfig, QueryTrace, Statistics,
};
use frdb_core::logic::{Formula, Var};
use frdb_core::metrics::{JoinStrategyCounts, MetricsRegistry, MetricsSnapshot};
use frdb_core::relation::{
    column_index_counters, join_strategy_counters, GenTuple, Instance, PartDelta, Relation,
};
use frdb_core::schema::{RelName, Schema};
use frdb_core::theory::Theory;
use frdb_datalog::{FixpointTrace, Program};
use std::collections::{BTreeMap, BTreeSet, HashSet};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

/// Runs `f`, measuring its wall time and the column-index / join-strategy
/// work it performed **on the calling thread** (the engine's counters are
/// thread-local and the coordinating thread records all index and strategy
/// work, so the deltas are exact even for parallel joins — and concurrent
/// readers each attribute exactly their own work).
fn measured<R>(f: impl FnOnce() -> R) -> (R, Duration, (u64, u64), JoinStrategyCounts) {
    let (builds0, reuses0) = column_index_counters();
    let strategies0 = join_strategy_counters();
    let start = Instant::now();
    let result = f();
    let elapsed = start.elapsed();
    let (builds1, reuses1) = column_index_counters();
    let index_delta = (
        builds1.saturating_sub(builds0),
        reuses1.saturating_sub(reuses0),
    );
    (
        result,
        elapsed,
        index_delta,
        join_strategy_counters().since(&strategies0),
    )
}

/// A named query: its declared answer variables, the source formula (the
/// plan-cache key), and the plan compiled once at definition time.
pub struct QueryDef<T: Theory> {
    free: Vec<Var>,
    formula: Formula<T::A>,
    compiled: CompiledQuery<T>,
}

impl<T: Theory> QueryDef<T> {
    /// The declared answer variables.
    #[must_use]
    pub fn free(&self) -> &[Var] {
        &self.free
    }

    /// The source formula.
    #[must_use]
    pub fn formula(&self) -> &Formula<T::A> {
        &self.formula
    }

    /// The compiled relational-algebra plan.
    #[must_use]
    pub fn compiled(&self) -> &CompiledQuery<T> {
        &self.compiled
    }
}

impl<T: Theory> Clone for QueryDef<T> {
    fn clone(&self) -> Self {
        QueryDef {
            free: self.free.clone(),
            formula: self.formula.clone(),
            compiled: self.compiled.clone(),
        }
    }
}

/// Maintenance provenance for one materialized view whose formula is
/// **linear** in a single stored relation `dep` (the relation occurs exactly
/// once, under no negation or universal quantifier).  For such a view the
/// compiled plan distributes over `dep`'s DNF parts: the answer is the
/// absorption-canonical union of `base` (what the plan derives with `dep`
/// empty — e.g. disjuncts that never mention it) and, per stored part of
/// `dep`, the parts the plan derives from that one part alone.  A refresh
/// after an update then re-evaluates only the parts of `dep` it has never
/// seen — insertions as new DNF parts joined through the existing plan,
/// deletions by their parts simply dropping out of the alignment — instead of
/// the whole instance.  When the refresh is driven by a first-class update,
/// its [`PartDelta`] report flows down the cascade and a pure insertion
/// skips the alignment entirely: prior groups carry over and only the added
/// parts evaluate, in time proportional to the update.  See "Incremental
/// maintenance" in docs/ARCHITECTURE.md.
struct ViewMaint<T: Theory> {
    /// The single relation the view's formula is linear in.
    dep: RelName,
    /// Answer parts derived with `dep` empty.
    base: Vec<GenTuple<T::A>>,
    /// Provenance groups, one per past refresh batch: disjoint sets of `dep`
    /// parts (matched by structural equality) coupled with the answer parts
    /// the plan derives from exactly those parts.  Batch granularity keeps
    /// the refresh at **one** plan evaluation however many parts an update
    /// adds, and each group is `Arc`-shared so unchanged groups carry over
    /// at reference-count cost.  A group that lost a part re-derives its
    /// survivors (bounded by the original batch size).
    groups: Vec<Arc<MaintGroup<T>>>,
}

/// One provenance group of a maintained view: `outs` is what the view's plan
/// derives when `dep` holds exactly `parts` — by linearity, the contributions
/// of these parts to the full answer.
struct MaintGroup<T: Theory> {
    parts: Vec<GenTuple<T::A>>,
    outs: Vec<GenTuple<T::A>>,
}

/// Counts how often `name` occurs in `f` as a relation atom, returning `None`
/// when `f` contains a construct (negation, universal quantification — and
/// thus the `implies`/`iff` sugar, which desugars to negation) under which
/// evaluation does not distribute over a relation's DNF parts.
fn linear_occurrences<A>(f: &Formula<A>, name: &RelName) -> Option<usize> {
    match f {
        Formula::True | Formula::False | Formula::Atom(_) => Some(0),
        Formula::Rel { name: n, .. } => Some(usize::from(n == name)),
        Formula::Not(_) | Formula::Forall(_, _) => None,
        Formula::And(fs) | Formula::Or(fs) => fs
            .iter()
            .try_fold(0, |acc, g| Some(acc + linear_occurrences(g, name)?)),
        Formula::Exists(_, g) => linear_occurrences(g, name),
    }
}

/// Exact (representation-level) equality of two stored relations: same
/// columns, same generalized tuples in the same order.  This is the change
/// detector the refresh cascade runs on — deliberately stricter than
/// [`Relation::equivalent`], because the differential harness pins *exact
/// DNF* equality between maintained and recomputed state.
fn same_value<T: Theory>(a: &Relation<T>, b: &Relation<T>) -> bool {
    a.vars() == b.vars() && a.tuples() == b.tuples()
}

/// One committed, immutable state of a database.  Shared by `Arc`: snapshots
/// hold it frozen while the handle swaps in successors.
struct EngineState<T: Theory> {
    /// The globally unique schema generation this state was committed at.
    generation: u64,
    /// The database instance.
    instance: Instance<T>,
    /// Named queries in definition order.
    queries: BTreeMap<String, QueryDef<T>>,
    /// Named `DATALOG¬` programs.
    programs: BTreeMap<String, Program<T::A>>,
    /// Relation names materialized by `fixpoint` merges.  A later `fixpoint`
    /// over a program whose heads are in this set strips them back out of the
    /// evaluation EDB first, so programs can be re-run; a head colliding with
    /// a *user* relation — including a derived name the user has since
    /// re-assigned, which drops it from this set — still errors.
    derived: BTreeSet<RelName>,
    /// Relation names materialized by `run`.  Re-running a query overwrites
    /// its own previous answer, but a query named like a *user* relation is
    /// refused rather than silently clobbering stored data.
    materialized: BTreeSet<RelName>,
    /// Per-view maintenance provenance, keyed by the materialized name.
    /// Built lazily by the first maintainable refresh, dropped whenever the
    /// view is recomputed, redefined, or reclaimed by the user.  `Arc`-shared
    /// so the copy-on-write commit path clones pointers, not part tables.
    maint: BTreeMap<String, Arc<ViewMaint<T>>>,
    /// Programs whose fixpoints are kept fresh: every program a `fixpoint`
    /// statement has run, until the user reclaims one of its heads with an
    /// explicit assignment or update (which deactivates the program).
    active_programs: BTreeSet<String>,
}

impl<T: Theory> EngineState<T> {
    fn fresh() -> Self {
        EngineState {
            generation: next_generation(),
            instance: Instance::new(Schema::new()),
            queries: BTreeMap::new(),
            programs: BTreeMap::new(),
            derived: BTreeSet::new(),
            materialized: BTreeSet::new(),
            maint: BTreeMap::new(),
            active_programs: BTreeSet::new(),
        }
    }

    /// A mutable copy for a commit in progress (same generation until the
    /// commit stamps its own).  Cheap: relations and compiled plans are
    /// `Arc`-shared, so this clones maps of pointers, not data.
    fn working(&self) -> Self {
        EngineState {
            generation: self.generation,
            instance: self.instance.clone(),
            queries: self.queries.clone(),
            programs: self.programs.clone(),
            derived: self.derived.clone(),
            materialized: self.materialized.clone(),
            maint: self.maint.clone(),
            active_programs: self.active_programs.clone(),
        }
    }
}

/// A consistent, immutable point-in-time view of a [`Database`].
///
/// Snapshots are cheap to take (one `Arc` clone under a momentary read lock)
/// and entirely lock-free to use: every read method works on state frozen at
/// [`Snapshot::generation`], unaffected by concurrent commits.  Query
/// evaluation through a snapshot hits the shared plan cache keyed by this
/// generation, so repeated reads re-use the statistics-optimized plan without
/// ever re-running the optimizer.
pub struct Snapshot<T: Theory> {
    state: Arc<EngineState<T>>,
    cache: Arc<PlanCache>,
    config: PlanConfig,
    metrics: Arc<MetricsRegistry>,
}

impl<T: Theory> Clone for Snapshot<T> {
    fn clone(&self) -> Self {
        Snapshot {
            state: Arc::clone(&self.state),
            cache: Arc::clone(&self.cache),
            config: self.config,
            metrics: Arc::clone(&self.metrics),
        }
    }
}

impl<T: Theory> Snapshot<T> {
    /// The globally unique schema generation this snapshot was committed at.
    /// Strictly increasing across commits of one database, and never shared
    /// between two database handles in the same process.
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.state.generation
    }

    /// The instance frozen in this snapshot.
    #[must_use]
    pub fn instance(&self) -> &Instance<T> {
        &self.state.instance
    }

    /// The current value of a stored relation.
    #[must_use]
    pub fn relation(&self, name: &str) -> Option<Relation<T>> {
        self.state.instance.get(&RelName::new(name))
    }

    /// A named query definition.
    #[must_use]
    pub fn query(&self, name: &str) -> Option<&QueryDef<T>> {
        self.state.queries.get(name)
    }

    /// A named `DATALOG¬` program.
    #[must_use]
    pub fn program(&self, name: &str) -> Option<&Program<T::A>> {
        self.state.programs.get(name)
    }

    /// Whether `name` was materialized by a `fixpoint` merge.
    #[must_use]
    pub fn is_derived(&self, name: &str) -> bool {
        self.state.derived.contains(&RelName::new(name))
    }

    /// Whether `name` was materialized by a `run`.
    #[must_use]
    pub fn is_materialized(&self, name: &str) -> bool {
        self.state.materialized.contains(&RelName::new(name))
    }

    /// The statistics-reoptimized plan for a named query at this snapshot's
    /// generation: served from the shared plan cache when warm (zero optimizer
    /// work), built and cached once when cold.
    fn optimized(&self, name: &str) -> Result<CompiledQuery<T>, DbError> {
        let query = self
            .query(name)
            .ok_or_else(|| DbError::new(format!("unknown query `{name}`")))?;
        Ok(self.cache.reoptimize::<T>(
            &query.formula,
            &query.free,
            &self.config,
            self.state.generation,
            || {
                Statistics::collect_only(
                    &self.state.instance,
                    query.compiled.relations().iter().map(|(name, _)| name),
                )
            },
        ))
    }

    /// Evaluates a named query against this snapshot, returning the answer
    /// relation.  Pure read: nothing is materialized and no generation is
    /// consumed, so N threads can evaluate concurrently, all sharing one
    /// statistics-optimized plan from the cache.
    ///
    /// # Errors
    /// Returns an error if the query is unknown or evaluation fails.
    pub fn eval_query(&self, name: &str) -> Result<Relation<T>, DbError> {
        let optimized = self.optimized(name)?;
        let (answer, elapsed, index_delta, strategies) =
            measured(|| optimized.eval(&self.state.instance));
        self.metrics
            .record_query(self.generation(), elapsed, index_delta, &strategies);
        answer.map_err(|e| DbError::new(e.to_string()))
    }

    /// Evaluates a named query and returns the answer together with the
    /// [`QueryTrace`] span tree of the statistics-optimized plan that ran:
    /// per node, the output cardinality and factorized part count, the join
    /// strategy with its pruning ratio, index builds/reuses, and wall time.
    /// The trace's default rendering is deterministic at any thread count
    /// (timings surface only through [`QueryTrace::timed`]).
    ///
    /// # Errors
    /// As for [`Snapshot::eval_query`].
    pub fn trace_query(&self, name: &str) -> Result<(Relation<T>, QueryTrace), DbError> {
        let optimized = self.optimized(name)?;
        let (traced, elapsed, index_delta, strategies) =
            measured(|| optimized.eval_traced(&self.state.instance));
        self.metrics
            .record_query(self.generation(), elapsed, index_delta, &strategies);
        traced.map_err(|e| DbError::new(e.to_string()))
    }

    /// Runs a stored program to its fixpoint against this snapshot **without
    /// committing anything**, returning the iteration count and the
    /// per-round [`FixpointTrace`].  Heads materialized by an earlier
    /// `fixpoint` are stripped from the evaluation EDB first, exactly like
    /// [`Database::run_fixpoint`] — the trace shows what a fixpoint statement
    /// would do from this snapshot.
    ///
    /// # Errors
    /// Returns an error if the program is unknown or fails to run.
    pub fn trace_fixpoint(&self, name: &str) -> Result<(usize, FixpointTrace), DbError> {
        let program = self
            .program(name)
            .ok_or_else(|| DbError::new(format!("unknown program `{name}`")))?;
        let idb = program
            .idb_schema()
            .map_err(|e| DbError::new(e.to_string()))?;
        let mut edb = self.state.instance.clone();
        for head in idb.keys() {
            if self.state.derived.contains(head) {
                edb.remove(head);
            }
        }
        let (result, elapsed, index_delta, strategies) = measured(|| program.run_traced(&edb));
        self.metrics
            .record_fixpoint(elapsed, index_delta, &strategies);
        let (result, trace) = result.map_err(|e| DbError::new(e.to_string()))?;
        Ok((result.iterations, trace))
    }

    /// Evaluates a named query and returns the answer together with the
    /// [`Explain`] tree of the statistics-optimized plan that ran — per node,
    /// the cost model's estimate and the actual materialized cardinality.
    ///
    /// # Errors
    /// As for [`Snapshot::eval_query`].
    pub fn explain_query(&self, name: &str) -> Result<(Relation<T>, Explain), DbError> {
        let optimized = self.optimized(name)?;
        let (result, elapsed, index_delta, strategies) =
            measured(|| optimized.eval_explained(&self.state.instance));
        self.metrics
            .record_query(self.generation(), elapsed, index_delta, &strategies);
        result.map_err(|e| DbError::new(e.to_string()))
    }

    /// Evaluates a sentence (Boolean query) against this snapshot.  The
    /// throwaway plan is cached too: repeated checks of one sentence compile
    /// once process-wide.
    ///
    /// # Errors
    /// Returns an error if evaluation fails (unknown relation, arity
    /// mismatch, or a non-sentence with free variables).
    pub fn check(&self, formula: &Formula<T::A>) -> Result<bool, DbError> {
        let compiled = self.cache.compile::<T>(formula, &[], &self.config);
        let (answer, elapsed, index_delta, strategies) =
            measured(|| compiled.eval(&self.state.instance));
        self.metrics
            .record_check(self.generation(), elapsed, index_delta, &strategies);
        let answer = answer.map_err(|e| DbError::new(e.to_string()))?;
        Ok(!answer.is_empty())
    }
}

/// How the engine refreshes materialized query answers and stored-program
/// fixpoints after a value-changing commit (`insert`, `delete`, assignment,
/// or a cascading refresh).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MaintenanceMode {
    /// Maintain incrementally where the view's shape allows it (formula
    /// linear in the one relation that changed), falling back to a full
    /// recompute otherwise.  The default.
    #[default]
    Incremental,
    /// Always recompute dependents from scratch.  Kept reachable as the
    /// differential-testing oracle, the same way [`PlanConfig::eager`] keeps
    /// the unfactorized evaluator reachable: both modes run the identical
    /// refresh cascade and must publish *exactly* the same DNF.
    Recompute,
}

/// Construction-time configuration of a [`Database`].
#[derive(Clone, Default)]
pub struct DbConfig {
    /// Whether script execution prints wall-clock timings after `run`,
    /// `check`, and `fixpoint` statements.  Off by default, so transcripts
    /// are byte-deterministic (golden-testable); the CLI's `--timings` flag
    /// turns it on.
    pub timings: bool,
    /// The optimization level and evaluator thread budget queries compile
    /// under.
    pub plan_config: PlanConfig,
    /// The plan cache to share.  `None` (the default) uses the process-global
    /// cache; tests that assert on counters can pass a private one.
    pub plan_cache: Option<Arc<PlanCache>>,
    /// How materialized views and fixpoints react to updates.
    pub maintenance: MaintenanceMode,
}

/// The result of running a stored program to its fixpoint: what a `fixpoint`
/// statement reports.
pub struct FixpointRun<T: Theory> {
    /// Number of iterations to reach the fixpoint.
    pub iterations: usize,
    /// The fixpoint value of every intensional predicate, in name order.
    pub heads: Vec<(RelName, Relation<T>)>,
    /// Wall-clock evaluation time.
    pub elapsed: Duration,
}

/// An embeddable, concurrently usable database over one theory.
///
/// The handle is `Send + Sync`: share it behind an `Arc` (or plain references
/// under `std::thread::scope`) and let every thread take [`Snapshot`]s for
/// reads and call the mutating methods for writes.  See the module docs for
/// the concurrency model.
pub struct Database<T: Theory> {
    /// The committed state; the lock guards only the `Arc` swap.
    state: RwLock<Arc<EngineState<T>>>,
    /// Serializes writers.  Held across clone-apply-swap, never needed by
    /// readers.
    commit: Mutex<()>,
    cache: Arc<PlanCache>,
    plan_config: PlanConfig,
    timings: bool,
    maintenance: MaintenanceMode,
    /// This database's metrics registry.  Every operation brackets its
    /// evaluation with the engine's thread-local counters and folds the
    /// deltas in here, so the registry accounts exactly this database's work
    /// — no construction-time counter baselines needed.
    metrics: Arc<MetricsRegistry>,
}

impl<T: Theory> Default for Database<T> {
    fn default() -> Self {
        Database::new()
    }
}

impl<T: Theory> Database<T> {
    /// An empty database with the default configuration (shared global plan
    /// cache, default plan config, timings off).
    #[must_use]
    pub fn new() -> Self {
        Database::with_config(DbConfig::default())
    }

    /// An empty database with an explicit configuration.
    #[must_use]
    pub fn with_config(config: DbConfig) -> Self {
        Database {
            state: RwLock::new(Arc::new(EngineState::fresh())),
            commit: Mutex::new(()),
            cache: config
                .plan_cache
                .unwrap_or_else(|| Arc::clone(PlanCache::global())),
            plan_config: config.plan_config,
            timings: config.timings,
            maintenance: config.maintenance,
            metrics: Arc::new(MetricsRegistry::default()),
        }
    }

    /// How this database refreshes materialized views and fixpoints after
    /// updates.
    #[must_use]
    pub fn maintenance(&self) -> MaintenanceMode {
        self.maintenance
    }

    /// A deterministic, golden-testable account of the session's cache and
    /// evaluation work: the plan cache's hit/miss/eviction counters, the
    /// column-index build/reuse totals, and the per-strategy join breakdown —
    /// all sourced from this database's metrics registry.  Printed by the
    /// `stats;` script statement.
    #[must_use]
    pub fn stats_report(&self) -> String {
        let plan = self.cache.stats();
        let metrics = self.metrics.snapshot();
        let joins = &metrics.join_strategies;
        format!(
            "plan cache: compile {ch} hit(s) / {cm} miss(es); \
             reoptimize {rh} hit(s) / {rm} miss(es); \
             {oi} optimizer run(s); {ev} eviction(s)\n\
             column indexes: {b} built, {r} reused\n\
             join strategies: {ph} pin-hash, {iw} index-sweep, {bs} box-sweep, \
             {sc} scan, {mx} mixed\n",
            ch = plan.compile_hits,
            cm = plan.compile_misses,
            rh = plan.reoptimize_hits,
            rm = plan.reoptimize_misses,
            oi = plan.optimizer_invocations,
            ev = plan.evictions,
            b = metrics.index_builds,
            r = metrics.index_reuses,
            ph = joins.pin_hash,
            iw = joins.index_sweep,
            bs = joins.box_sweep,
            sc = joins.scan,
            mx = joins.mixed,
        )
    }

    /// A point-in-time snapshot of this database's metrics registry —
    /// operation counters, join-strategy and column-index tallies, and the
    /// query/commit/fixpoint latency histograms — with the plan cache's
    /// counters attached.  Exportable as JSON via
    /// [`MetricsSnapshot::to_json`] (the CLI's `--metrics-out` flag).
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        let mut snapshot = self.metrics.snapshot();
        let plan = self.cache.stats();
        snapshot.plan_cache = Some((
            plan.compile_hits,
            plan.compile_misses,
            plan.reoptimize_hits,
            plan.reoptimize_misses,
        ));
        snapshot
    }

    /// The plan cache this database compiles through.
    #[must_use]
    pub fn plan_cache(&self) -> &Arc<PlanCache> {
        &self.cache
    }

    /// The plan configuration queries compile under.
    #[must_use]
    pub fn plan_config(&self) -> &PlanConfig {
        &self.plan_config
    }

    /// Whether script execution prints timings.
    #[must_use]
    pub fn timings(&self) -> bool {
        self.timings
    }

    /// The current schema generation (that of the latest commit).
    #[must_use]
    pub fn generation(&self) -> u64 {
        self.current().generation
    }

    fn current(&self) -> Arc<EngineState<T>> {
        Arc::clone(&self.state.read().expect("state lock poisoned"))
    }

    /// A consistent point-in-time view of the database.  O(1): one `Arc`
    /// clone under a momentary read lock.  The snapshot never blocks behind
    /// writers and stays valid (and unchanged) for as long as it is held.
    #[must_use]
    pub fn snapshot(&self) -> Snapshot<T> {
        self.metrics.record_snapshot();
        Snapshot {
            state: self.current(),
            cache: Arc::clone(&self.cache),
            config: self.plan_config,
            metrics: Arc::clone(&self.metrics),
        }
    }

    /// The copy-on-write commit path: serialize on the commit mutex, clone
    /// the latest state, apply `mutate`, stamp a fresh generation, and swap
    /// the new state in.  On error nothing is published.  Readers are never
    /// blocked — the write lock is held only for the pointer swap.
    fn commit_with<R>(
        &self,
        mutate: impl FnOnce(&mut EngineState<T>) -> Result<R, DbError>,
    ) -> Result<R, DbError> {
        let _writer = self.commit.lock().expect("commit lock poisoned");
        let start = Instant::now();
        let mut work = self.current().working();
        let result = mutate(&mut work)?;
        work.generation = next_generation();
        *self.state.write().expect("state lock poisoned") = Arc::new(work);
        self.metrics.record_commit(start.elapsed());
        Ok(result)
    }

    /// Declares a relation in the schema.
    ///
    /// # Errors
    /// Returns an error if the name is already declared at a different arity.
    pub fn declare(&self, name: impl Into<RelName>, arity: usize) -> Result<(), DbError> {
        let name = name.into();
        self.commit_with(|work| {
            work.instance
                .declare(name.clone(), arity)
                .map(|_| ())
                .map_err(|e| DbError::new(e.to_string()))
        })
    }

    /// Sets a stored relation.  An explicit assignment makes the relation the
    /// user's again: a later `fixpoint` will not strip it, and a later `run`
    /// will refuse to clobber it.  Dependent materialized views and active
    /// fixpoints refresh within the same commit.
    ///
    /// # Errors
    /// Returns an error if the relation is undeclared or the arity disagrees.
    pub fn set_relation(
        &self,
        name: impl Into<RelName>,
        relation: Relation<T>,
    ) -> Result<(), DbError> {
        let name = name.into();
        self.commit_with(|work| {
            let old = work.instance.get(&name);
            work.instance
                .set(name.clone(), relation.clone())
                .map_err(|e| DbError::new(e.to_string()))?;
            work.derived.remove(&name);
            work.materialized.remove(&name);
            work.maint.remove(name.as_str());
            if old.is_none_or(|old| !same_value(&old, &relation)) {
                self.refresh_dependents(work, BTreeSet::from([name]), BTreeMap::new())?;
            }
            Ok(())
        })
    }

    /// Inserts generalized tuples into a stored relation (the `insert`
    /// statement): the new value is the absorption-canonical union of the old
    /// value and `relation`, so unsatisfiable or already-covered tuples
    /// change nothing.  Like an assignment, an explicit update makes the
    /// relation the user's again.  Dependent materialized views and active
    /// fixpoints refresh within the same commit, incrementally when
    /// [`MaintenanceMode::Incremental`] and the view's shape allow.
    ///
    /// # Errors
    /// Returns a typed error ([`DbErrorKind::UndeclaredRelation`] /
    /// [`DbErrorKind::ArityMismatch`]) when the update names an undeclared
    /// relation or disagrees with the declared arity; nothing is committed.
    pub fn insert_relation(
        &self,
        name: impl Into<RelName>,
        relation: Relation<T>,
    ) -> Result<(), DbError> {
        self.update_relation(name.into(), relation, true)
    }

    /// Deletes a region from a stored relation (the `delete` statement): the
    /// new value is the DNF difference `old \ relation` under the theory's
    /// entailment, so deleting never-inserted tuples changes nothing.
    /// Ownership and refresh semantics are as for
    /// [`Database::insert_relation`].
    ///
    /// # Errors
    /// As for [`Database::insert_relation`].
    pub fn delete_relation(
        &self,
        name: impl Into<RelName>,
        relation: Relation<T>,
    ) -> Result<(), DbError> {
        self.update_relation(name.into(), relation, false)
    }

    fn update_relation(
        &self,
        name: RelName,
        relation: Relation<T>,
        insert: bool,
    ) -> Result<(), DbError> {
        self.commit_with(|work| {
            // Validate against the schema *before* mutating anything, with
            // typed errors: `Instance::set` would also catch both cases, but
            // only after the expensive union/difference below.
            let declared = work.instance.schema().arity(&name).ok_or_else(|| {
                DbError::typed(
                    DbErrorKind::UndeclaredRelation,
                    format!("unknown relation `{name}`: declare it before updating"),
                )
            })?;
            if relation.arity() != declared {
                return Err(DbError::typed(
                    DbErrorKind::ArityMismatch,
                    format!(
                        "arity mismatch updating `{name}`: declared {declared}, \
                         the update has arity {found}",
                        found = relation.arity()
                    ),
                ));
            }
            let old = work
                .instance
                .get_shared(&name)
                .expect("declared relations always resolve");
            let incoming = relation.rename(old.vars().to_vec());
            // The delta variants do work proportional to the *update*, not the
            // stored relation — untouched parts are carried over verbatim —
            // which is what makes a small-delta commit cheap even on large
            // instances.  Their simplified-input precondition holds because
            // every stored relation was built by core's simplifying
            // constructors.
            let (updated, report) = if insert {
                old.union_delta_report(&incoming)
            } else {
                old.difference_delta_report(&incoming)
            };
            // The report is the *effective* part-level delta: absorbed
            // inserts and misses on delete contribute nothing.  It drives
            // the metrics tap, the no-op short-circuit, and — flowing down
            // the refresh cascade — the maintenance fast path that skips
            // re-aligning untouched provenance.
            if insert {
                self.metrics.record_insert(report.added.len() as u64);
            } else {
                self.metrics.record_delete(report.removed.len() as u64);
            }
            let changed = !report.is_empty();
            work.instance
                .set(name.clone(), updated)
                .map_err(|e| DbError::new(e.to_string()))?;
            work.derived.remove(&name);
            work.materialized.remove(&name);
            work.maint.remove(name.as_str());
            if changed {
                let deltas = BTreeMap::from([(name.clone(), Arc::new(report))]);
                self.refresh_dependents(work, BTreeSet::from([name]), deltas)?;
            }
            Ok(())
        })
    }

    /// Defines (or redefines) a named query.  The plan compiles through the
    /// shared cache, so redefining the same text — here or in any other
    /// session — is free after the first time.
    ///
    /// # Errors
    /// Commit-path errors only; definition itself cannot fail (ill-formed
    /// queries surface typed errors at evaluation).
    pub fn define_query(
        &self,
        name: &str,
        free: Vec<Var>,
        formula: Formula<T::A>,
    ) -> Result<(), DbError> {
        let compiled = self.cache.compile::<T>(&formula, &free, &self.plan_config);
        self.commit_with(|work| {
            work.queries.insert(
                name.to_string(),
                QueryDef {
                    free,
                    formula,
                    compiled,
                },
            );
            // Any maintenance provenance describes the *old* definition.
            work.maint.remove(name);
            Ok(())
        })
    }

    /// Defines (or redefines) a named `DATALOG¬` program.
    ///
    /// # Errors
    /// Commit-path errors only.
    pub fn define_program(&self, name: &str, program: Program<T::A>) -> Result<(), DbError> {
        self.commit_with(|work| {
            work.programs.insert(name.to_string(), program);
            Ok(())
        })
    }

    /// Runs a named query and **materializes** its answer under the query's
    /// name (the `run` statement): later queries and programs read it like
    /// any stored relation.  Re-running overwrites the previous answer; a
    /// *user* relation of the same name is never clobbered.
    ///
    /// # Errors
    /// Returns an error if the query is unknown, its name collides with a
    /// stored user relation, or evaluation fails.
    pub fn run_query(&self, name: &str) -> Result<(Relation<T>, Duration), DbError> {
        let cache = &self.cache;
        let config = self.plan_config;
        let metrics = &self.metrics;
        self.commit_with(|work| {
            let query = work
                .queries
                .get(name)
                .ok_or_else(|| DbError::new(format!("unknown query `{name}`")))?;
            let rel_name = RelName::new(name);
            if work.instance.schema().contains(&rel_name) && !work.materialized.contains(&rel_name)
            {
                return Err(DbError::new(format!(
                    "cannot materialize query `{name}`: a stored relation with that name \
                     already exists (rename the query)"
                )));
            }
            // The statistics-reoptimized plan for this generation, shared
            // through the cache (scoped statistics: only the relations this
            // query reads are scanned) — `explain` shows exactly this plan.
            let optimized = cache.reoptimize::<T>(
                &query.formula,
                &query.free,
                &config,
                work.generation,
                || {
                    Statistics::collect_only(
                        &work.instance,
                        query.compiled.relations().iter().map(|(name, _)| name),
                    )
                },
            );
            let (answer, elapsed, index_delta, strategies) =
                measured(|| optimized.eval(&work.instance));
            metrics.record_query(work.generation, elapsed, index_delta, &strategies);
            let answer = answer.map_err(|e| DbError::new(e.to_string()))?;
            // Only now that evaluation succeeded: a previous materialization
            // at a different arity (the query was redefined in between) is
            // stale; drop it so re-declaring below cannot fail.  A failed run
            // leaves the old answer untouched.
            if work.materialized.contains(&rel_name)
                && work.instance.schema().arity(&rel_name) != Some(answer.arity())
            {
                work.instance.remove(&rel_name);
            }
            let previous = work.instance.get(&rel_name);
            work.instance
                .declare(rel_name.clone(), answer.arity())
                .map_err(|e| DbError::new(e.to_string()))?;
            work.instance
                .set(rel_name.clone(), answer.clone())
                .map_err(|e| DbError::new(e.to_string()))?;
            work.materialized.insert(rel_name.clone());
            // A fresh full evaluation supersedes any maintenance provenance;
            // it is rebuilt lazily by the next maintainable refresh.
            work.maint.remove(name);
            if previous.is_none_or(|prev| !same_value(&prev, &answer)) {
                self.refresh_dependents(work, BTreeSet::from([rel_name]), BTreeMap::new())?;
            }
            Ok((answer, elapsed))
        })
    }

    /// Runs a stored program to its inflationary fixpoint and merges the
    /// result into the database (the `fixpoint` statement): the fixpoint
    /// instance (EDB + IDB) becomes the current instance, so later queries
    /// read the derived predicates.  Heads materialized by an earlier
    /// `fixpoint` are stripped from the evaluation EDB first, so programs can
    /// be re-run; a head colliding with a *user* relation errors.
    ///
    /// # Errors
    /// Returns an error if the program is unknown or fails to run.
    pub fn run_fixpoint(&self, name: &str) -> Result<FixpointRun<T>, DbError> {
        let metrics = &self.metrics;
        self.commit_with(|work| {
            let program = work
                .programs
                .get(name)
                .ok_or_else(|| DbError::new(format!("unknown program `{name}`")))?;
            let idb = program
                .idb_schema()
                .map_err(|e| DbError::new(e.to_string()))?;
            let mut edb = work.instance.clone();
            for head in idb.keys() {
                if work.derived.contains(head) {
                    edb.remove(head);
                }
            }
            let (result, elapsed, index_delta, strategies) = measured(|| program.run(&edb));
            metrics.record_fixpoint(elapsed, index_delta, &strategies);
            let result = result.map_err(|e| DbError::new(e.to_string()))?;
            let heads: Vec<(RelName, Relation<T>)> = idb
                .keys()
                .filter_map(|head| result.instance.get(head).map(|rel| (head.clone(), rel)))
                .collect();
            let changed: BTreeSet<RelName> = heads
                .iter()
                .filter(|(head, new)| {
                    work.instance
                        .get(head)
                        .is_none_or(|old| !same_value(&old, new))
                })
                .map(|(head, _)| head.clone())
                .collect();
            work.instance = result.instance;
            work.derived.extend(idb.keys().cloned());
            // The program's heads are now maintained: later updates to its
            // EDB re-run it within the updating commit.
            work.active_programs.insert(name.to_string());
            if !changed.is_empty() {
                self.refresh_dependents(work, changed, BTreeMap::new())?;
            }
            Ok(FixpointRun {
                iterations: result.iterations,
                heads,
                elapsed,
            })
        })
    }

    /// Refreshes every materialized view and active fixpoint that (directly
    /// or transitively) reads a relation in `initial`, until the cascade
    /// quiesces.  **Both** [`MaintenanceMode`]s run exactly this driver —
    /// the mode only decides *how* a single view refresh is computed
    /// (part-aligned maintenance vs. full re-evaluation) — so the
    /// differential harness compares identical cascade semantics and the two
    /// modes must publish identical DNF, part for part.
    ///
    /// Waves: the relations changed so far seed a wave; every dependent is
    /// refreshed once per wave (views in name order, then programs in name
    /// order), and dependents whose value actually changed seed the next
    /// wave.  A view whose only dirty dependency is itself is left alone
    /// (self-referential views would otherwise never quiesce), and a cycle
    /// of views that keeps oscillating exhausts the wave budget and fails
    /// the commit — publishing nothing.
    fn refresh_dependents(
        &self,
        work: &mut EngineState<T>,
        initial: BTreeSet<RelName>,
        mut deltas: BTreeMap<RelName, Arc<PartDelta<T::A>>>,
    ) -> Result<(), DbError> {
        let mut pending = initial;
        let budget = 2 * (work.queries.len() + work.programs.len()) + 2;
        let mut waves = 0usize;
        while !pending.is_empty() {
            waves += 1;
            if waves > budget {
                return Err(DbError::new(
                    "update cascade failed to quiesce: materialized views form an \
                     unstable dependency cycle",
                ));
            }
            let wave = std::mem::take(&mut pending);
            let views: Vec<RelName> = work.materialized.iter().cloned().collect();
            for view in views {
                let Some(qdef) = work.queries.get(view.as_str()).cloned() else {
                    continue;
                };
                let dirty: Vec<RelName> = qdef
                    .compiled
                    .relations()
                    .iter()
                    .map(|(n, _)| n.clone())
                    .filter(|n| *n != view && wave.contains(n))
                    .collect();
                if dirty.is_empty() {
                    continue;
                }
                let old = work
                    .instance
                    .get_shared(&view)
                    .expect("materialized views are always stored");
                let answer = self.refresh_view(work, &view, &qdef, &dirty, &deltas)?;
                if !same_value(&old, &answer) {
                    work.instance
                        .set(view.clone(), answer)
                        .map_err(|e| DbError::new(e.to_string()))?;
                    // The view's value changed wholesale; any update delta
                    // recorded under its name no longer describes it.
                    deltas.remove(&view);
                    pending.insert(view);
                }
            }
            let programs: Vec<String> = work.active_programs.iter().cloned().collect();
            for prog in programs {
                for changed in self.refresh_program(work, &prog, &wave)? {
                    deltas.remove(&changed);
                    pending.insert(changed);
                }
            }
        }
        Ok(())
    }

    /// Recomputes one materialized view — incrementally via part-aligned
    /// maintenance when the mode and the view's shape allow (exactly one
    /// dirty dependency, formula linear in it), from scratch otherwise.
    fn refresh_view(
        &self,
        work: &mut EngineState<T>,
        view: &RelName,
        qdef: &QueryDef<T>,
        dirty: &[RelName],
        deltas: &BTreeMap<RelName, Arc<PartDelta<T::A>>>,
    ) -> Result<Relation<T>, DbError> {
        if self.maintenance == MaintenanceMode::Incremental {
            if let [dep] = dirty {
                if linear_occurrences(&qdef.formula, dep) == Some(1) {
                    let delta = deltas.get(dep).cloned();
                    return self.maintain_view(work, view, qdef, dep, delta.as_deref());
                }
            }
        }
        // Full recompute through the definition-time plan (answers are
        // bit-identical across plan shapes, so this matches what a fresh
        // `run` would publish); stale provenance is dropped.
        work.maint.remove(view.as_str());
        self.metrics.record_view_recomputed();
        qdef.compiled
            .eval(&work.instance)
            .map_err(|e| DbError::new(e.to_string()))
    }

    /// Part-aligned incremental refresh: re-evaluates the view only for
    /// stored parts of `dep` that the provenance has never seen, re-using
    /// cached per-part answers for the rest, and recomposes the answer as
    /// the absorption-canonical union of all per-part contributions.
    fn maintain_view(
        &self,
        work: &mut EngineState<T>,
        view: &RelName,
        qdef: &QueryDef<T>,
        dep: &RelName,
        delta: Option<&PartDelta<T::A>>,
    ) -> Result<Relation<T>, DbError> {
        let dep_rel = work.instance.get_shared(dep).ok_or_else(|| {
            DbError::new(format!("view `{view}` reads undeclared relation `{dep}`"))
        })?;
        let prior = work
            .maint
            .get(view.as_str())
            .filter(|m| &m.dep == dep)
            .cloned();
        // Relations are `Arc`-shared inside the instance, so this scratch
        // copy costs a pointer map however large the stored data.
        let mut scratch = work.instance.clone();
        let mut eval_with_dep = |only: Relation<T>| -> Result<Vec<GenTuple<T::A>>, DbError> {
            scratch
                .set(dep.clone(), only)
                .map_err(|e| DbError::new(e.to_string()))?;
            let out = qdef
                .compiled
                .eval(&scratch)
                .map_err(|e| DbError::new(e.to_string()))?;
            Ok(out.tuples().to_vec())
        };
        let base = match &prior {
            Some(m) => m.base.clone(),
            None => eval_with_dep(Relation::empty(dep_rel.vars().to_vec()))?,
        };
        // Decide what to re-derive.  When the refresh was caused by a
        // first-class update whose part-level report shows pure growth —
        // nothing removed, every prior part still standing — the stored
        // delta IS the work list: every prior group carries over by bumping
        // its reference count, in time proportional to the *update*.  The
        // count cross-check guards against a provenance that has drifted
        // from the stored value (then the report does not describe it).
        let mut groups: Vec<Arc<MaintGroup<T>>> = Vec::new();
        let mut reeval: Vec<GenTuple<T::A>> = Vec::new();
        let insert_fast_path = match (&prior, delta) {
            (Some(m), Some(d)) if d.removed.is_empty() => {
                let covered: usize = m.groups.iter().map(|g| g.parts.len()).sum();
                covered + d.added.len() == dep_rel.tuples().len()
            }
            _ => false,
        };
        if insert_fast_path {
            let m = prior.as_ref().expect("fast path requires provenance");
            let d = delta.expect("fast path requires a delta");
            groups.extend(m.groups.iter().map(Arc::clone));
            reeval.extend(d.added.iter().cloned());
        } else {
            // Value alignment: two hash sets built once per refresh — a
            // linear scan here would make the refresh quadratic in the
            // stored relation even when nothing changed.  Intact groups
            // carry over by bumping their reference count; parts the
            // provenance has never seen, plus the survivors of any group
            // that lost a part, re-derive together in ONE plan evaluation.
            // (`GenTuple`'s interior mutability is its lazy closure caches;
            // `Eq`/`Hash` read only the atom list, so the keys are stable.)
            #[allow(clippy::mutable_key_type)]
            let dep_parts: HashSet<&GenTuple<T::A>> = dep_rel.tuples().iter().collect();
            #[allow(clippy::mutable_key_type)]
            let prior_parts: HashSet<&GenTuple<T::A>> = prior
                .as_ref()
                .map(|m| m.groups.iter().flat_map(|g| g.parts.iter()).collect())
                .unwrap_or_default();
            reeval.extend(
                dep_rel
                    .tuples()
                    .iter()
                    .filter(|part| !prior_parts.contains(part))
                    .cloned(),
            );
            for group in prior.as_ref().map(|m| m.groups.as_slice()).unwrap_or(&[]) {
                let survivors: Vec<GenTuple<T::A>> = group
                    .parts
                    .iter()
                    .filter(|part| dep_parts.contains(part))
                    .cloned()
                    .collect();
                if survivors.len() == group.parts.len() {
                    groups.push(Arc::clone(group));
                } else {
                    reeval.extend(survivors);
                }
            }
        }
        if !reeval.is_empty() {
            let outs = eval_with_dep(Relation::new(dep_rel.vars().to_vec(), reeval.clone()))?;
            groups.push(Arc::new(MaintGroup {
                parts: reeval,
                outs,
            }));
        }
        let mut parts = base.clone();
        parts.extend(groups.iter().flat_map(|g| g.outs.iter().cloned()));
        let answer = Relation::try_new(qdef.free.clone(), parts)
            .map_err(|e| DbError::new(e.to_string()))?
            .canonically_sorted();
        work.maint.insert(
            view.as_str().to_string(),
            Arc::new(ViewMaint {
                dep: dep.clone(),
                base,
                groups,
            }),
        );
        self.metrics.record_view_maintained();
        Ok(answer)
    }

    /// Re-runs one active program when this wave touched a relation its rule
    /// bodies read, merging the fixpoint back in; returns the heads whose
    /// value changed.  A program one of whose heads the user has reclaimed
    /// (by assignment or update) is deactivated instead.
    fn refresh_program(
        &self,
        work: &mut EngineState<T>,
        name: &str,
        wave: &BTreeSet<RelName>,
    ) -> Result<Vec<RelName>, DbError> {
        let Some(program) = work.programs.get(name).cloned() else {
            work.active_programs.remove(name);
            return Ok(Vec::new());
        };
        let idb = program
            .idb_schema()
            .map_err(|e| DbError::new(e.to_string()))?;
        if idb.keys().any(|head| !work.derived.contains(head)) {
            work.active_programs.remove(name);
            return Ok(Vec::new());
        }
        let reads: BTreeSet<RelName> = program
            .rules()
            .iter()
            .flat_map(|rule| rule.body_formula().relation_names())
            .filter(|n| !idb.contains_key(n))
            .collect();
        if reads.is_disjoint(wave) {
            return Ok(Vec::new());
        }
        let mut edb = work.instance.clone();
        for head in idb.keys() {
            edb.remove(head);
        }
        let result = program.run(&edb).map_err(|e| DbError::new(e.to_string()))?;
        let mut changed = Vec::new();
        for head in idb.keys() {
            let new = result.instance.get(head);
            let old = work.instance.get(head);
            match (old, new) {
                (Some(old), Some(new)) if same_value(&old, &new) => {}
                _ => changed.push(head.clone()),
            }
        }
        work.instance = result.instance;
        self.metrics.record_view_recomputed();
        Ok(changed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frdb_core::dense::{DenseAtom, DenseOrder};
    use frdb_core::logic::Term;
    use frdb_num::Rat;

    fn points(vals: &[i64]) -> Relation<DenseOrder> {
        Relation::from_points(
            vec![Var::new("x")],
            vals.iter().map(|&v| vec![Rat::from_i64(v)]),
        )
    }

    #[test]
    fn snapshots_are_frozen_while_commits_advance() {
        let db: Database<DenseOrder> = Database::new();
        db.declare("R", 1).unwrap();
        db.set_relation("R", points(&[1, 2])).unwrap();
        let before = db.snapshot();
        let g = before.generation();
        db.set_relation("R", points(&[1, 2, 3])).unwrap();
        let after = db.snapshot();
        assert!(after.generation() > g);
        // The old snapshot still sees the old value; the new one the new.
        assert!(!before.relation("R").unwrap().contains(&[Rat::from_i64(3)]));
        assert!(after.relation("R").unwrap().contains(&[Rat::from_i64(3)]));
    }

    #[test]
    fn failed_commits_publish_nothing() {
        let db: Database<DenseOrder> = Database::new();
        db.declare("R", 1).unwrap();
        let g = db.generation();
        // Arity mismatch: the commit fails, generation and state are unchanged.
        let err = db
            .set_relation(
                "R",
                Relation::from_points(
                    vec![Var::new("x"), Var::new("y")],
                    vec![vec![Rat::from_i64(1), Rat::from_i64(2)]],
                ),
            )
            .unwrap_err();
        assert!(err.message.contains("ar"), "unexpected error: {err}");
        assert_eq!(db.generation(), g);
        assert!(db.snapshot().relation("R").unwrap().is_empty());
    }

    #[test]
    fn run_query_materializes_and_snapshot_reads_are_pure() {
        let db: Database<DenseOrder> = Database::new();
        db.declare("R", 1).unwrap();
        db.set_relation("R", points(&[0, 3, 7])).unwrap();
        let f: Formula<DenseAtom> = Formula::rel("R", [Term::var("x")])
            .and(Formula::Atom(DenseAtom::le(Term::var("x"), Term::cst(3))));
        db.define_query("small", vec![Var::new("x")], f).unwrap();
        let snap = db.snapshot();
        let g = snap.generation();
        let pure = snap.eval_query("small").unwrap();
        assert!(pure.contains(&[Rat::from_i64(3)]));
        // A pure read consumed no generation and materialized nothing.
        assert_eq!(db.generation(), g);
        assert!(db.snapshot().relation("small").is_none());
        // `run_query` materializes (and commits).
        let (ran, _) = db.run_query("small").unwrap();
        assert!(ran.equivalent(&pure.rename(ran.vars().to_vec())));
        assert!(db.snapshot().relation("small").is_some());
        assert!(db.generation() > g);
    }

    #[test]
    fn private_plan_cache_counters_observe_sharing() {
        let cache = Arc::new(PlanCache::new());
        let db: Database<DenseOrder> = Database::with_config(DbConfig {
            plan_cache: Some(Arc::clone(&cache)),
            ..DbConfig::default()
        });
        db.declare("R", 1).unwrap();
        db.set_relation("R", points(&[1, 2, 3])).unwrap();
        let f: Formula<DenseAtom> = Formula::rel("R", [Term::var("x")]);
        db.define_query("q", vec![Var::new("x")], f).unwrap();
        let snap = db.snapshot();
        snap.eval_query("q").unwrap();
        let warm = cache.stats();
        // Re-reading the same snapshot (or a fresh snapshot at the same
        // generation) runs zero additional optimizer invocations.
        snap.eval_query("q").unwrap();
        db.snapshot().eval_query("q").unwrap();
        assert_eq!(
            cache.stats().optimizer_invocations,
            warm.optimizer_invocations
        );
        assert_eq!(cache.stats().reoptimize_hits, warm.reoptimize_hits + 2);
    }
}
