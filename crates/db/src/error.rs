//! The engine's error type: a message with an optional byte span into the
//! source text that caused it (spans exist only for errors raised while
//! executing scripts; programmatic API calls report span-less errors).

use frdb_lang::{ParseError, Span};
use std::fmt;

/// A machine-readable classification of a [`DbError`].
///
/// Most errors are [`DbErrorKind::Other`]; the update commit path raises
/// typed kinds so callers (and tests) can distinguish "you never declared
/// that relation" from "the tuple has the wrong width" without string
/// matching.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum DbErrorKind {
    /// An update named a relation that was never declared.
    UndeclaredRelation,
    /// An update's tuple width disagrees with the declared arity.
    ArityMismatch,
    /// Any other failure (parse errors, evaluation errors, ...).
    Other,
}

/// An error raised while parsing a script, executing a statement, or calling
/// the programmatic API, with an optional byte span into the source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DbError {
    /// What went wrong.
    pub message: String,
    /// Byte span of the offending statement or token, when known.
    pub span: Option<Span>,
    /// Machine-readable classification of the failure.
    pub kind: DbErrorKind,
}

impl DbError {
    /// An error with no source location (programmatic API calls).
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        DbError {
            message: message.into(),
            span: None,
            kind: DbErrorKind::Other,
        }
    }

    /// An error anchored at a byte span of the source text.
    #[must_use]
    pub fn at(span: Span, message: impl Into<String>) -> Self {
        DbError {
            message: message.into(),
            span: Some(span),
            kind: DbErrorKind::Other,
        }
    }

    /// A span-less error carrying a typed [`DbErrorKind`].
    #[must_use]
    pub fn typed(kind: DbErrorKind, message: impl Into<String>) -> Self {
        DbError {
            message: message.into(),
            span: None,
            kind,
        }
    }

    /// The same error anchored at `span` unless it already carries one.
    #[must_use]
    pub fn with_span(mut self, span: Span) -> Self {
        self.span.get_or_insert(span);
        self
    }

    /// Renders the error as a caret diagnostic against the source text.
    #[must_use]
    pub fn render(&self, origin: &str, src: &str) -> String {
        match self.span {
            Some(span) => ParseError::new(self.message.clone(), span).render(origin, src),
            None => format!("error: {message}\n  --> {origin}", message = self.message),
        }
    }
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.span {
            Some(span) => write!(f, "error at bytes {span}: {}", self.message),
            None => write!(f, "error: {}", self.message),
        }
    }
}

impl std::error::Error for DbError {}

impl From<ParseError> for DbError {
    fn from(e: ParseError) -> Self {
        DbError {
            message: e.message.clone(),
            span: Some(e.span),
            kind: DbErrorKind::Other,
        }
    }
}
