//! The engine's error type: a message with an optional byte span into the
//! source text that caused it (spans exist only for errors raised while
//! executing scripts; programmatic API calls report span-less errors).

use frdb_lang::{ParseError, Span};
use std::fmt;

/// An error raised while parsing a script, executing a statement, or calling
/// the programmatic API, with an optional byte span into the source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DbError {
    /// What went wrong.
    pub message: String,
    /// Byte span of the offending statement or token, when known.
    pub span: Option<Span>,
}

impl DbError {
    /// An error with no source location (programmatic API calls).
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        DbError {
            message: message.into(),
            span: None,
        }
    }

    /// An error anchored at a byte span of the source text.
    #[must_use]
    pub fn at(span: Span, message: impl Into<String>) -> Self {
        DbError {
            message: message.into(),
            span: Some(span),
        }
    }

    /// The same error anchored at `span` unless it already carries one.
    #[must_use]
    pub fn with_span(mut self, span: Span) -> Self {
        self.span.get_or_insert(span);
        self
    }

    /// Renders the error as a caret diagnostic against the source text.
    #[must_use]
    pub fn render(&self, origin: &str, src: &str) -> String {
        match self.span {
            Some(span) => ParseError::new(self.message.clone(), span).render(origin, src),
            None => format!("error: {message}\n  --> {origin}", message = self.message),
        }
    }
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.span {
            Some(span) => write!(f, "error at bytes {span}: {}", self.message),
            None => write!(f, "error: {}", self.message),
        }
    }
}

impl std::error::Error for DbError {}

impl From<ParseError> for DbError {
    fn from(e: ParseError) -> Self {
        DbError {
            message: e.message.clone(),
            span: Some(e.span),
        }
    }
}
