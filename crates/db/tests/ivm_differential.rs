//! The differential update-sequence harness: the correctness spine of
//! incremental view maintenance.
//!
//! Two databases execute identical randomized statement sequences —
//! interleaved `insert`/`delete` updates (including unsatisfiable tuples,
//! already-absorbed tuples, and deletes of never-inserted regions), plain
//! assignments, `run`s, and `fixpoint`s — one under
//! [`MaintenanceMode::Incremental`], one under the full-recompute oracle
//! [`MaintenanceMode::Recompute`].  After **every** statement the two
//! databases must hold *exactly* the same state: the same stored relations,
//! rendered part-for-part (exact DNF equality, not mere semantic
//! equivalence), and every materialized view must also match a fresh
//! from-scratch evaluation of its defining query.  Both bundled theories are
//! exercised, at every evaluator thread count in `FRDB_TEST_THREADS`
//! (default `1,2,4`); `FRDB_IVM_CASES` scales the number of randomized
//! sequences per configuration for seeded long runs.

use frdb_core::dense::DenseOrder;
use frdb_core::fo::{PlanCache, PlanConfig};
use frdb_db::{Database, DbConfig, DbErrorKind, MaintenanceMode};
use frdb_lang::AtomSyntax;
use frdb_linear::LinearOrder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::sync::Arc;

/// Evaluator thread counts to run every sequence at: `FRDB_TEST_THREADS`
/// (comma-separated) when set — the CI matrix pins one count per leg — or
/// `1,2,4` by default.
fn thread_counts() -> Vec<usize> {
    match std::env::var("FRDB_TEST_THREADS") {
        Ok(v) => v
            .split(',')
            .map(|s| {
                s.trim()
                    .parse()
                    .expect("FRDB_TEST_THREADS must be comma-separated thread counts")
            })
            .collect(),
        Err(_) => vec![1, 2, 4],
    }
}

/// Randomized sequences per (theory, thread count): `FRDB_IVM_CASES` when
/// set (nightly long runs), a quick default otherwise.
fn case_count() -> u64 {
    std::env::var("FRDB_IVM_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6)
}

fn db<T: AtomSyntax>(mode: MaintenanceMode, threads: usize) -> Database<T>
where
    T::A: fmt::Display,
{
    Database::with_config(DbConfig {
        plan_config: PlanConfig {
            threads,
            ..PlanConfig::default()
        },
        plan_cache: Some(Arc::new(PlanCache::new())),
        maintenance: mode,
        ..DbConfig::default()
    })
}

/// Renders every stored relation of the database, name by name — the exact
/// representation (column list and generalized-tuple list in stored order),
/// not a normalized view of it.  Two databases agreeing on this string agree
/// on the exact DNF of their entire state.
fn dump<T: AtomSyntax>(db: &Database<T>) -> String
where
    T::A: fmt::Display,
{
    let snapshot = db.snapshot();
    let mut out = String::new();
    for (name, rel) in snapshot.instance().iter() {
        out.push_str(&format!("{name} = {rel}\n"));
    }
    out
}

/// Every view currently materialized from a named query, with its stored
/// value re-checked against a fresh from-scratch evaluation of the query.
fn check_views_fresh<T: AtomSyntax>(db: &Database<T>, context: &str)
where
    T::A: fmt::Display,
{
    let snapshot = db.snapshot();
    for name in ["lin", "joint", "wide"] {
        if !snapshot.is_materialized(name) {
            continue;
        }
        let stored = snapshot
            .relation(name)
            .expect("materialized views are stored");
        let fresh = snapshot
            .eval_query(name)
            .expect("materialized query re-evaluates");
        assert_eq!(
            format!("{stored}"),
            format!("{fresh}"),
            "{context}: maintained view `{name}` drifted from a from-scratch evaluation"
        );
    }
}

/// One differential step: run the same statement on both databases; they
/// must agree on success/failure (same message) and end in exactly the same
/// state.
fn step<T: AtomSyntax>(ivm: &Database<T>, oracle: &Database<T>, stmt: &str, context: &str)
where
    T::A: fmt::Display,
{
    let mut sink = Vec::new();
    let a = ivm.execute_source(stmt, &mut sink);
    let b = oracle.execute_source(stmt, &mut sink);
    match (&a, &b) {
        (Ok(()), Ok(())) | (Err(_), Err(_)) => {}
        _ => panic!("{context}: modes disagree on `{stmt}`: incremental {a:?}, oracle {b:?}"),
    }
    if let (Err(ea), Err(eb)) = (&a, &b) {
        assert_eq!(
            ea.message, eb.message,
            "{context}: divergent errors for `{stmt}`"
        );
    }
    assert_eq!(
        dump(ivm),
        dump(oracle),
        "{context}: state diverged after `{stmt}`"
    );
    check_views_fresh(ivm, context);
}

/// A random axis-aligned box literal over `(x, y)` — sometimes degenerate
/// (a point), sometimes unsatisfiable (empty interval).
fn dense_literal(rng: &mut StdRng) -> String {
    if rng.gen_bool(0.1) {
        // Unsatisfiable on purpose: must be a no-op on both sides.
        return "{(x, y) | x < 0 and 1 < x}".to_string();
    }
    let x0 = rng.gen_range(-6i64..6);
    let x1 = x0 + rng.gen_range(0i64..5);
    let y0 = rng.gen_range(-6i64..6);
    let y1 = y0 + rng.gen_range(0i64..5);
    format!("{{(x, y) | {x0} <= x and x <= {x1} and {y0} <= y and y <= {y1}}}")
}

/// A random half-plane-bounded region literal for the linear theory.
fn linear_literal(rng: &mut StdRng) -> String {
    if rng.gen_bool(0.1) {
        return "{(x, y) | x + y < 0 and 1 < x + y}".to_string();
    }
    let lo = rng.gen_range(-6i64..4);
    let hi = lo + rng.gen_range(1i64..6);
    let cap = rng.gen_range(-4i64..10);
    format!("{{(x, y) | {lo} <= x and x <= {hi} and {lo} <= y and y <= {hi} and x + y <= {cap}}}")
}

/// A random single-edge literal for the closure program's input.
fn edge_literal(rng: &mut StdRng) -> String {
    let a = rng.gen_range(0i64..5);
    let b = rng.gen_range(0i64..5);
    format!("{{(x, y) | x = {a} and y = {b}}}")
}

/// The shared schema, query, and program prologue of every sequence.
///
/// `lin` is linear in `base` (maintainable), `joint` is linear in each of
/// `base` and `aux` (maintainable when one changes, recomputed when both
/// do), and `wide` disjoins a `base` branch with an `aux` branch — the case
/// where a maintained view must keep contributions the changed relation
/// never produced.  `closure` keeps a transitive closure fresh under `edge`
/// updates.
fn prologue() -> &'static str {
    "schema base/2, aux/2, edge/2;\n\
     query lin(x, y) := base(x, y) and x <= 4;\n\
     query joint(x, y) := base(x, y) and aux(x, y);\n\
     query wide(x, y) := base(x, y) or (aux(x, y) and y <= 2);\n\
     program closure {\n\
       tc(x, y) :- edge(x, y).\n\
       tc(x, y) :- tc(x, z), edge(z, y).\n\
     }\n"
}

/// One random statement of an update sequence.
fn random_stmt(rng: &mut StdRng, region: &dyn Fn(&mut StdRng) -> String) -> String {
    match rng.gen_range(0u32..20) {
        0..=5 => {
            let rel = ["base", "aux"][rng.gen_range(0usize..2)];
            format!("insert {rel} {};", region(rng))
        }
        6..=9 => {
            let rel = ["base", "aux"][rng.gen_range(0usize..2)];
            format!("delete {rel} {};", region(rng))
        }
        10 => format!("insert edge {};", edge_literal(rng)),
        11 => format!("delete edge {};", edge_literal(rng)),
        12 => format!("base := {};", region(rng)),
        13..=15 => {
            let q = ["lin", "joint", "wide"][rng.gen_range(0usize..3)];
            format!("run {q};")
        }
        16 => "fixpoint closure;".to_string(),
        17 => "insert ghost {(x) | x = 0};".to_string(),
        18 => "delete base {(x) | x = 0};".to_string(),
        _ => "run lin;".to_string(),
    }
}

fn run_sequences<T: AtomSyntax>(theory: &str, region: &dyn Fn(&mut StdRng) -> String)
where
    T::A: fmt::Display,
{
    for threads in thread_counts() {
        for case in 0..case_count() {
            let seed = 0xF2DB * (case + 1) + threads as u64;
            let mut rng = StdRng::seed_from_u64(seed);
            let context = format!("{theory}, {threads} thread(s), case {case} (seed {seed})");
            let ivm: Database<T> = db(MaintenanceMode::Incremental, threads);
            let oracle: Database<T> = db(MaintenanceMode::Recompute, threads);
            step(&ivm, &oracle, prologue(), &context);
            // Materialize the views up front so the update stream exercises
            // refreshes from the first insert onward.
            step(&ivm, &oracle, "run lin;\nrun joint;\nrun wide;", &context);
            for _ in 0..24 {
                let stmt = random_stmt(&mut rng, region);
                step(&ivm, &oracle, &stmt, &format!("{context}, `{stmt}`"));
            }
        }
    }
}

#[test]
fn maintained_equals_recomputed_dense() {
    run_sequences::<DenseOrder>("dense", &dense_literal);
}

#[test]
fn maintained_equals_recomputed_linear() {
    run_sequences::<LinearOrder>("linear", &linear_literal);
}

/// A deterministic sequence pinning that incremental maintenance actually
/// happens (the point of the machinery) and stays exact: the maintained
/// counter rises on the incremental side, stays zero on the oracle, and the
/// states agree part-for-part throughout.
#[test]
fn incremental_mode_actually_maintains() {
    let ivm: Database<DenseOrder> = db(MaintenanceMode::Incremental, 2);
    let oracle: Database<DenseOrder> = db(MaintenanceMode::Recompute, 2);
    let context = "deterministic maintenance sequence";
    step(&ivm, &oracle, prologue(), context);
    step(
        &ivm,
        &oracle,
        "insert base {(x, y) | 0 <= x and x <= 3 and 0 <= y and y <= 3};",
        context,
    );
    step(&ivm, &oracle, "run lin;\nrun wide;", context);
    // Single-relation updates against views linear in `base`: maintainable.
    step(
        &ivm,
        &oracle,
        "insert base {(x, y) | 5 <= x and x <= 7 and 1 <= y and y <= 2};",
        context,
    );
    step(
        &ivm,
        &oracle,
        "delete base {(x, y) | 1 <= x and x <= 2 and 1 <= y and y <= 2};",
        context,
    );
    // Absorbed insert and never-inserted delete: deltas are empty, nothing
    // needs re-evaluating, state still exact.
    step(
        &ivm,
        &oracle,
        "insert base {(x, y) | x = 1 and y = 0};",
        context,
    );
    step(
        &ivm,
        &oracle,
        "delete base {(x, y) | 40 <= x and x <= 41 and y = 0};",
        context,
    );
    let m = ivm.metrics();
    assert!(
        m.views_maintained >= 2,
        "expected maintained refreshes, got {}",
        m.views_maintained
    );
    assert_eq!(
        oracle.metrics().views_maintained,
        0,
        "the recompute oracle must never take the maintained path"
    );
    assert!(oracle.metrics().views_recomputed >= 2);
    assert_eq!(m.inserts, 3);
    assert_eq!(m.deletes, 2);
}

/// Satellite: the commit path rejects updates against undeclared relations
/// and wrong arities with *typed* errors, before anything is mutated.
#[test]
fn updates_against_bad_schema_are_typed_errors() {
    let db: Database<DenseOrder> = db(MaintenanceMode::Incremental, 1);
    let mut out = Vec::new();
    db.execute_source("schema r/2;", &mut out).unwrap();
    let g = db.generation();

    let err = db
        .execute_source("insert ghost {(x) | x = 0};", &mut out)
        .unwrap_err();
    assert_eq!(err.kind, DbErrorKind::UndeclaredRelation);
    assert!(err.message.contains("ghost"), "message: {}", err.message);

    let err = db
        .execute_source("delete r {(x) | x = 0};", &mut out)
        .unwrap_err();
    assert_eq!(err.kind, DbErrorKind::ArityMismatch);
    assert!(err.message.contains("r"), "message: {}", err.message);

    // Rejected updates publish nothing: no generation was consumed and the
    // update-counter metrics saw no effective delta.
    assert_eq!(db.generation(), g);
    assert_eq!(db.metrics().inserts, 0);
    assert_eq!(db.metrics().deletes, 0);
}
