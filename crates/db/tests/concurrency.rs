//! Concurrency guarantees of the [`Database`] handle: snapshot isolation
//! under a committing writer (no torn reads — every read equals some
//! committed state) and shared-plan-cache behavior across generations
//! (a commit invalidates statistics-reoptimized plans; a re-query
//! repopulates them once; warm reads run zero optimizer work).

use frdb_core::dense::{DenseAtom, DenseOrder};
use frdb_core::fo::PlanCache;
use frdb_core::logic::{Formula, Term, Var};
use frdb_core::relation::Relation;
use frdb_db::{Database, DbConfig};
use frdb_num::Rat;
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// The unary relation `{0, 1, …, k}` — the writer's k-th committed state.
fn prefix(k: i64) -> Relation<DenseOrder> {
    Relation::from_points(vec![Var::new("x")], (0..=k).map(|v| vec![Rat::from_i64(v)]))
}

/// Decodes a committed state back out of an answer relation: the largest `k`
/// such that the relation is exactly `{0, …, k}` (`-1` for empty).  Panics on
/// any gap — a gap means the read was torn across two commits.
fn decode_prefix(rel: &Relation<DenseOrder>, max: i64) -> i64 {
    let mut k = -1i64;
    for j in 0..=max {
        if rel.contains(&[Rat::from_i64(j)]) {
            assert_eq!(j, k + 1, "torn read: {{0..{k}}} observed together with {j}");
            k = j;
        }
    }
    k
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// N reader threads each take snapshots while one writer commits the
    /// states `R = {0..0}, {0..1}, …` in order.  Every read must decode to a
    /// complete prefix (no torn reads), per-reader generations must be
    /// monotone, and — checked against the writer's own log — every observed
    /// `(generation, state)` pair must be a state the writer actually
    /// committed (or the initial empty state).
    #[test]
    fn snapshot_reads_always_see_a_committed_state(
        readers in 1usize..5,
        writes in 1usize..12,
    ) {
        let db: Database<DenseOrder> = Database::new();
        db.declare("R", 1).unwrap();
        db.define_query(
            "all",
            vec![Var::new("x")],
            Formula::<DenseAtom>::rel("R", [Term::var("x")]),
        )
        .unwrap();
        let initial_gen = db.generation();
        let max = writes as i64;
        let done = AtomicBool::new(false);

        let (writer_log, reader_logs) = std::thread::scope(|scope| {
            let writer = scope.spawn(|| {
                let mut log: Vec<(u64, i64)> = vec![(db.generation(), -1)];
                for k in 0..writes as i64 {
                    db.set_relation("R", prefix(k)).unwrap();
                    // Sole writer: the latest generation is this commit's.
                    log.push((db.generation(), k));
                }
                done.store(true, Ordering::Release);
                log
            });
            let handles: Vec<_> = (0..readers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut log: Vec<(u64, i64)> = Vec::new();
                        let mut last_gen = 0u64;
                        let mut spins = 0u32;
                        // Keep reading until the writer finishes, then take
                        // one final snapshot so the last state is observed.
                        loop {
                            let finished = done.load(Ordering::Acquire);
                            let snap = db.snapshot();
                            let gen = snap.generation();
                            assert!(gen >= last_gen, "generations went backwards");
                            last_gen = gen;
                            let answer = snap.eval_query("all").unwrap();
                            let k = decode_prefix(&answer, max);
                            // The same snapshot re-read: identical, whatever
                            // the writer has committed meanwhile.
                            let again = snap.eval_query("all").unwrap();
                            assert_eq!(decode_prefix(&again, max), k, "snapshot mutated");
                            assert_eq!(snap.generation(), gen, "snapshot generation drifted");
                            let stored = snap.relation("R").expect("R is declared");
                            assert_eq!(decode_prefix(&stored, max), k, "query answer and stored relation disagree in one snapshot");
                            log.push((gen, k));
                            spins += 1;
                            if finished || spins > 10_000 {
                                break;
                            }
                        }
                        log
                    })
                })
                .collect();
            (
                writer.join().expect("writer panicked"),
                handles
                    .into_iter()
                    .map(|h| h.join().expect("reader panicked"))
                    .collect::<Vec<_>>(),
            )
        });

        // The writer's log is the ground truth: generation -> committed state.
        let committed: BTreeMap<u64, i64> = writer_log.into_iter().collect();
        assert_eq!(committed.len(), writes + 1, "every commit got a fresh generation");
        for log in &reader_logs {
            for &(gen, k) in log {
                if gen == initial_gen {
                    assert_eq!(k, -1, "the initial state is empty");
                    continue;
                }
                let state = committed
                    .get(&gen)
                    .unwrap_or_else(|| panic!("reader observed uncommitted generation {gen}"));
                assert_eq!(
                    *state, k,
                    "generation {gen} observed with state {{0..{k}}} but the writer committed {{0..{state}}}"
                );
            }
        }
    }
}

/// The singleton unary relation `{k}` — one update-statement payload.
fn point(k: i64) -> Relation<DenseOrder> {
    Relation::from_points(vec![Var::new("x")], [vec![Rat::from_i64(k)]])
}

/// Readers snapshotting across a concurrent *update* stream: the writer grows
/// `R` one `insert` at a time up to `{0..max}` and then shrinks it back down
/// one `delete` at a time, so every committed state is a complete prefix.
/// Every reader observation must decode to a prefix (no torn reads), match
/// the writer's own log at that generation, and per-reader generations must
/// be monotone — exactly the guarantees `set_relation` commits give, now for
/// the first-class update path.
#[test]
fn snapshot_reads_are_consistent_under_a_concurrent_update_stream() {
    const STEPS: i64 = 10;
    let db: Database<DenseOrder> = Database::new();
    db.declare("R", 1).unwrap();
    db.define_query(
        "all",
        vec![Var::new("x")],
        Formula::<DenseAtom>::rel("R", [Term::var("x")]),
    )
    .unwrap();
    let initial_gen = db.generation();
    let done = AtomicBool::new(false);

    let (writer_log, reader_logs) = std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            let mut log: Vec<(u64, i64)> = vec![(db.generation(), -1)];
            for k in 0..=STEPS {
                db.insert_relation("R", point(k)).unwrap();
                log.push((db.generation(), k));
            }
            for k in (0..=STEPS).rev() {
                db.delete_relation("R", point(k)).unwrap();
                log.push((db.generation(), k - 1));
            }
            done.store(true, Ordering::Release);
            log
        });
        let handles: Vec<_> = (0..3)
            .map(|_| {
                scope.spawn(|| {
                    let mut log: Vec<(u64, i64)> = Vec::new();
                    let mut last_gen = 0u64;
                    let mut spins = 0u32;
                    loop {
                        let finished = done.load(Ordering::Acquire);
                        let snap = db.snapshot();
                        let gen = snap.generation();
                        assert!(gen >= last_gen, "generations went backwards");
                        last_gen = gen;
                        let answer = snap.eval_query("all").unwrap();
                        let k = decode_prefix(&answer, STEPS);
                        let stored = snap.relation("R").expect("R is declared");
                        assert_eq!(
                            decode_prefix(&stored, STEPS),
                            k,
                            "query answer and stored relation disagree in one snapshot"
                        );
                        log.push((gen, k));
                        spins += 1;
                        if finished || spins > 10_000 {
                            break;
                        }
                    }
                    log
                })
            })
            .collect();
        (
            writer.join().expect("writer panicked"),
            handles
                .into_iter()
                .map(|h| h.join().expect("reader panicked"))
                .collect::<Vec<_>>(),
        )
    });

    let committed: BTreeMap<u64, i64> = writer_log.into_iter().collect();
    assert_eq!(
        committed.len() as i64,
        2 * (STEPS + 1) + 1,
        "every update committed a fresh generation"
    );
    for log in &reader_logs {
        for &(gen, k) in log {
            if gen == initial_gen {
                assert_eq!(k, -1, "the initial state is empty");
                continue;
            }
            let state = committed
                .get(&gen)
                .unwrap_or_else(|| panic!("reader observed uncommitted generation {gen}"));
            assert_eq!(
                *state, k,
                "generation {gen} observed with state {{0..{k}}} but the update stream committed {{0..{state}}}"
            );
        }
    }

    // The stream is fully absorbed: the final state is empty again, and the
    // metrics account for every update statement.
    let settled = db.metrics();
    assert_eq!(settled.inserts, (STEPS + 1) as u64);
    assert_eq!(settled.deletes, (STEPS + 1) as u64);
    assert_eq!(
        decode_prefix(&db.snapshot().relation("R").unwrap(), STEPS),
        -1,
        "deleting every inserted point restores the empty relation"
    );
}

/// A schema-generation bump invalidates the statistics-reoptimized plan; the
/// next query against the new snapshot re-optimizes exactly once and the
/// cache is warm again — while an old snapshot stays warm at its own
/// generation.
#[test]
fn generation_bump_invalidates_and_requery_repopulates() {
    let cache = Arc::new(PlanCache::new());
    let db: Database<DenseOrder> = Database::with_config(DbConfig {
        plan_cache: Some(Arc::clone(&cache)),
        ..DbConfig::default()
    });
    db.declare("R", 1).unwrap();
    db.set_relation("R", prefix(3)).unwrap();
    db.define_query(
        "all",
        vec![Var::new("x")],
        Formula::<DenseAtom>::rel("R", [Term::var("x")]),
    )
    .unwrap();

    let old = db.snapshot();
    old.eval_query("all").unwrap();
    let warm = cache.stats();
    old.eval_query("all").unwrap();
    let after_warm_read = cache.stats();
    assert_eq!(
        after_warm_read.optimizer_invocations, warm.optimizer_invocations,
        "a warm read must run zero optimizer work"
    );
    assert_eq!(after_warm_read.reoptimize_hits, warm.reoptimize_hits + 1);

    // A commit bumps the generation: the reoptimized plan is stale for new
    // snapshots.
    db.set_relation("R", prefix(7)).unwrap();
    let new = db.snapshot();
    assert!(new.generation() > old.generation());
    new.eval_query("all").unwrap();
    let after_bump = cache.stats();
    assert_eq!(
        after_bump.reoptimize_misses,
        after_warm_read.reoptimize_misses + 1,
        "the first read after a commit re-optimizes"
    );
    assert_eq!(
        after_bump.optimizer_invocations,
        after_warm_read.optimizer_invocations + 1
    );

    // Repopulated: the second read at the new generation is warm again, and
    // the *old* snapshot is still warm at its own generation.
    new.eval_query("all").unwrap();
    old.eval_query("all").unwrap();
    let settled = cache.stats();
    assert_eq!(
        settled.optimizer_invocations,
        after_bump.optimizer_invocations
    );
    assert_eq!(settled.reoptimize_hits, after_bump.reoptimize_hits + 2);
}

/// Once one reader has warmed the cache at a generation, any number of
/// concurrent readers share the plan: zero additional optimizer invocations.
#[test]
fn concurrent_warm_readers_share_one_plan() {
    let cache = Arc::new(PlanCache::new());
    let db: Database<DenseOrder> = Database::with_config(DbConfig {
        plan_cache: Some(Arc::clone(&cache)),
        ..DbConfig::default()
    });
    db.declare("R", 1).unwrap();
    db.set_relation("R", prefix(5)).unwrap();
    db.define_query(
        "all",
        vec![Var::new("x")],
        Formula::<DenseAtom>::rel("R", [Term::var("x")]),
    )
    .unwrap();
    let expected = db.snapshot().eval_query("all").unwrap();
    let warm = cache.stats();

    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(|| {
                for _ in 0..8 {
                    let answer = db.snapshot().eval_query("all").unwrap();
                    assert!(answer.equivalent(&expected));
                }
            });
        }
    });

    let after = cache.stats();
    assert_eq!(
        after.optimizer_invocations, warm.optimizer_invocations,
        "warm concurrent readers must not re-run the optimizer"
    );
    assert_eq!(after.reoptimize_hits, warm.reoptimize_hits + 32);
}

/// Fields of a [`frdb_core::metrics::MetricsSnapshot`] that must never
/// decrease between two observations of one database.
fn monotone_fields(snap: &frdb_core::metrics::MetricsSnapshot) -> [u64; 17] {
    [
        snap.queries,
        snap.checks,
        snap.commits,
        snap.snapshots,
        snap.fixpoints,
        snap.inserts,
        snap.deletes,
        snap.views_maintained,
        snap.views_recomputed,
        snap.index_builds,
        snap.index_reuses,
        snap.join_strategies.total(),
        snap.query_latency.count,
        snap.commit_latency.count,
        snap.fixpoint_latency.count,
        snap.update_delta_parts.count,
        snap.reads_by_generation.iter().map(|&(_, n)| n).sum(),
    ]
}

/// Metrics snapshots taken while readers evaluate and a writer commits are
/// monotone: every counter and histogram sample count only grows, and the
/// final snapshot accounts for all of the work the threads performed.
#[test]
fn metrics_snapshots_are_monotone_under_concurrent_readers_and_writer() {
    const WRITES: usize = 20;
    const READERS: usize = 3;
    let db: Database<DenseOrder> = Database::with_config(DbConfig {
        plan_cache: Some(Arc::new(PlanCache::new())),
        ..DbConfig::default()
    });
    db.declare("R", 1).unwrap();
    db.define_query(
        "all",
        vec![Var::new("x")],
        Formula::<DenseAtom>::rel("R", [Term::var("x")]),
    )
    .unwrap();
    let commits_before = db.metrics().commits;
    let done = AtomicBool::new(false);

    let reads = std::thread::scope(|scope| {
        scope.spawn(|| {
            for k in 0..WRITES as i64 {
                db.set_relation("R", prefix(k)).unwrap();
            }
            done.store(true, Ordering::Release);
        });
        let readers: Vec<_> = (0..READERS)
            .map(|_| {
                scope.spawn(|| {
                    let mut reads = 0u64;
                    loop {
                        let finished = done.load(Ordering::Acquire);
                        db.snapshot().eval_query("all").unwrap();
                        reads += 1;
                        if finished || reads > 5_000 {
                            return reads;
                        }
                    }
                })
            })
            .collect();
        // The observer: every successive snapshot dominates the previous.
        let mut last = monotone_fields(&db.metrics());
        while !done.load(Ordering::Acquire) {
            let next = monotone_fields(&db.metrics());
            for (field, (now, before)) in next.iter().zip(&last).enumerate() {
                assert!(
                    now >= before,
                    "metrics field #{field} went backwards: {before} -> {now}"
                );
            }
            last = next;
        }
        readers
            .into_iter()
            .map(|h| h.join().expect("reader panicked"))
            .sum::<u64>()
    });

    let settled = db.metrics();
    assert_eq!(
        settled.commits,
        commits_before + WRITES as u64,
        "every write recorded a commit"
    );
    assert_eq!(settled.commit_latency.count, settled.commits);
    assert!(
        settled.queries >= reads,
        "every reader evaluation was recorded"
    );
    assert_eq!(
        settled.query_latency.count,
        settled.queries + settled.checks
    );
    assert!(
        settled.snapshots >= reads,
        "every snapshot acquisition was recorded"
    );
    let tallied: u64 = settled.reads_by_generation.iter().map(|&(_, n)| n).sum();
    assert!(
        tallied <= settled.queries + settled.checks,
        "generation tallies never exceed recorded reads"
    );
}
