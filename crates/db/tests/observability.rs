//! Observability guarantees: `trace` span trees render byte-identically at
//! any evaluator thread count (strategy decisions and index work happen on
//! the coordinating thread, so only wall-clock timings — which the default
//! render omits — vary), and the metrics JSON export round-trips through a
//! serde-free hand-rolled deserializer.

use frdb_core::dense::DenseOrder;
use frdb_core::fo::{PlanCache, PlanConfig};
use frdb_db::{Database, DbConfig};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

/// Runs a script on a fresh database (private plan cache, `threads` workers)
/// and returns the transcript.
fn transcript(src: &str, threads: usize) -> String {
    let db: Database<DenseOrder> = Database::with_config(DbConfig {
        plan_config: PlanConfig {
            threads,
            ..PlanConfig::default()
        },
        plan_cache: Some(Arc::new(PlanCache::new())),
        ..DbConfig::default()
    });
    let mut out = Vec::new();
    db.execute_source(src, &mut out)
        .unwrap_or_else(|e| panic!("script failed at {threads} thread(s): {e}"));
    String::from_utf8(out).expect("utf-8 transcript")
}

/// A relation literal of axis-aligned boxes, one disjunct per box.
fn boxes_literal(boxes: &[(i64, i64, i64, i64)]) -> String {
    let disjuncts: Vec<String> = boxes
        .iter()
        .map(|(x0, x1, y0, y1)| format!("{x0} <= x and x <= {x1} and {y0} <= y and y <= {y1}"))
        .collect();
    format!("{{(x, y) | {}}}", disjuncts.join(" or "))
}

/// One box: `x` in `[a, a+w]`, `y` in `[b, b+h]`.
fn gen_box() -> impl Strategy<Value = (i64, i64, i64, i64)> {
    (-8i64..8, 0i64..6, -8i64..8, 0i64..6).prop_map(|(a, w, b, h)| (a, a + w, b, b + h))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The full transcript of a script exercising `trace` (query and
    /// program), `stats;`, and `metrics;` is byte-identical at 1, 2, and 4
    /// evaluator threads.
    #[test]
    fn trace_render_is_thread_count_invariant(
        r in proptest::collection::vec(gen_box(), 1..5),
        s in proptest::collection::vec(gen_box(), 1..5),
    ) {
        let src = format!(
            "schema r/2, s/2;\n\
             r := {r};\n\
             s := {s};\n\
             query j(x, y) := r(x, y) and s(x, y);\n\
             trace j;\n\
             query hop(x, y) := exists z. (r(x, z) and s(z, y));\n\
             trace hop;\n\
             trace hop;\n\
             program p {{\n\
               t(x, y) :- r(x, y).\n\
               t(x, y) :- t(x, z), s(z, y).\n\
             }}\n\
             trace p;\n\
             stats;\n\
             metrics;\n",
            r = boxes_literal(&r),
            s = boxes_literal(&s),
        );
        let serial = transcript(&src, 1);
        for threads in [2usize, 4] {
            let parallel = transcript(&src, threads);
            prop_assert_eq!(
                &serial,
                &parallel,
                "transcript drifted between 1 and {} threads",
                threads
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Hand-rolled JSON deserialization (the workspace carries no serde): just
// enough of the grammar for the metrics export — objects, arrays, and
// unsigned integers.
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Num(u64),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> &Json {
        match self {
            Json::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or_else(|| panic!("missing key {key:?}")),
            other => panic!("expected object for key {key:?}, got {other:?}"),
        }
    }

    fn num(&self) -> u64 {
        match self {
            Json::Num(n) => *n,
            other => panic!("expected number, got {other:?}"),
        }
    }

    fn arr(&self) -> &[Json] {
        match self {
            Json::Arr(items) => items,
            other => panic!("expected array, got {other:?}"),
        }
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn parse(src: &'a str) -> Json {
        let mut p = JsonParser {
            bytes: src.as_bytes(),
            pos: 0,
        };
        let value = p.value();
        p.skip_ws();
        assert_eq!(p.pos, p.bytes.len(), "trailing garbage after JSON value");
        value
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) {
        self.skip_ws();
        assert_eq!(
            self.bytes.get(self.pos),
            Some(&b),
            "expected {:?} at byte {}",
            b as char,
            self.pos
        );
        self.pos += 1;
    }

    fn peek(&mut self) -> u8 {
        self.skip_ws();
        self.bytes[self.pos]
    }

    fn value(&mut self) -> Json {
        match self.peek() {
            b'{' => self.object(),
            b'[' => self.array(),
            b'0'..=b'9' => self.number(),
            other => panic!("unexpected byte {:?} at {}", other as char, self.pos),
        }
    }

    fn object(&mut self) -> Json {
        self.eat(b'{');
        let mut fields = Vec::new();
        if self.peek() != b'}' {
            loop {
                let key = self.string();
                self.eat(b':');
                fields.push((key, self.value()));
                if self.peek() == b',' {
                    self.eat(b',');
                } else {
                    break;
                }
            }
        }
        self.eat(b'}');
        Json::Obj(fields)
    }

    fn array(&mut self) -> Json {
        self.eat(b'[');
        let mut items = Vec::new();
        if self.peek() != b']' {
            loop {
                items.push(self.value());
                if self.peek() == b',' {
                    self.eat(b',');
                } else {
                    break;
                }
            }
        }
        self.eat(b']');
        Json::Arr(items)
    }

    fn string(&mut self) -> String {
        self.eat(b'"');
        let start = self.pos;
        while self.bytes[self.pos] != b'"' {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("utf-8 string")
            .to_string();
        self.pos += 1;
        s
    }

    fn number(&mut self) -> Json {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(u8::is_ascii_digit) {
            self.pos += 1;
        }
        Json::Num(
            std::str::from_utf8(&self.bytes[start..self.pos])
                .expect("utf-8 number")
                .parse()
                .expect("u64 literal"),
        )
    }
}

/// Asserts a parsed histogram object agrees with the original snapshot:
/// count, sum, every resolved quantile, and the exact non-empty buckets.
fn assert_histogram_round_trips(
    parsed: &Json,
    original: &frdb_core::metrics::HistogramSnapshot,
    what: &str,
) {
    assert_eq!(parsed.get("count").num(), original.count, "{what}: count");
    assert_eq!(parsed.get("sum_ns").num(), original.sum_ns, "{what}: sum");
    for (key, q) in [
        ("p50_ns", 0.50),
        ("p90_ns", 0.90),
        ("p99_ns", 0.99),
        ("p999_ns", 0.999),
    ] {
        assert_eq!(parsed.get(key).num(), original.quantile(q), "{what}: {key}");
    }
    let buckets: Vec<(u64, u64, u64)> = parsed
        .get("buckets")
        .arr()
        .iter()
        .map(|triple| {
            let t = triple.arr();
            (t[0].num(), t[1].num(), t[2].num())
        })
        .collect();
    assert_eq!(buckets, original.nonzero_buckets(), "{what}: buckets");
}

/// The `--metrics-out` JSON document round-trips through the hand-rolled
/// deserializer: every counter and both the commit-latency and query-latency
/// histograms (with at least one sample each) survive intact.
#[test]
fn metrics_json_round_trips_without_serde() {
    let db: Database<DenseOrder> = Database::with_config(DbConfig {
        plan_cache: Some(Arc::new(PlanCache::new())),
        ..DbConfig::default()
    });
    db.execute_source(
        "schema r/2;\n\
         r := {(x, y) | 0 <= x and x <= 4 and x <= y and y <= 6};\n\
         query q(x) := exists y. (r(x, y));\n\
         run q;\n\
         trace q;\n\
         check exists x. exists y. (r(x, y));\n\
         program p { t(x, y) :- r(x, y). }\n\
         fixpoint p;\n\
         insert r {(x, y) | 8 <= x and x <= 9 and y = 0};\n\
         insert r {(x, y) | x = 0 and y = 1};\n\
         delete r {(x, y) | x = 9};\n",
        &mut Vec::new(),
    )
    .expect("script runs");

    let snapshot = db.metrics();
    let parsed = JsonParser::parse(&snapshot.to_json());

    let counters = parsed.get("counters");
    assert_eq!(counters.get("queries").num(), snapshot.queries);
    assert_eq!(counters.get("checks").num(), snapshot.checks);
    assert_eq!(counters.get("commits").num(), snapshot.commits);
    assert_eq!(counters.get("snapshots").num(), snapshot.snapshots);
    assert_eq!(counters.get("fixpoints").num(), snapshot.fixpoints);
    assert_eq!(counters.get("inserts").num(), snapshot.inserts);
    assert_eq!(counters.get("deletes").num(), snapshot.deletes);
    assert_eq!(
        counters.get("views_maintained").num(),
        snapshot.views_maintained
    );
    assert_eq!(
        counters.get("views_recomputed").num(),
        snapshot.views_recomputed
    );
    assert!(snapshot.commits > 0, "the script committed");
    assert_eq!(snapshot.inserts, 2, "the script inserted twice");
    assert_eq!(snapshot.deletes, 1, "the script deleted once");
    assert!(
        snapshot.views_maintained + snapshot.views_recomputed > 0,
        "the updates refreshed the materialized view and the fixpoint"
    );

    let indexes = parsed.get("column_indexes");
    assert_eq!(indexes.get("built").num(), snapshot.index_builds);
    assert_eq!(indexes.get("reused").num(), snapshot.index_reuses);

    let joins = parsed.get("join_strategies");
    for (key, value) in [
        ("pin_hash", snapshot.join_strategies.pin_hash),
        ("index_sweep", snapshot.join_strategies.index_sweep),
        ("box_sweep", snapshot.join_strategies.box_sweep),
        ("scan", snapshot.join_strategies.scan),
        ("mixed", snapshot.join_strategies.mixed),
    ] {
        assert_eq!(joins.get(key).num(), value, "join strategy {key}");
    }

    let (ch, cm, rh, rm) = snapshot
        .plan_cache
        .expect("Database::metrics attaches plan-cache stats");
    let plan = parsed.get("plan_cache");
    assert_eq!(plan.get("compile_hits").num(), ch);
    assert_eq!(plan.get("compile_misses").num(), cm);
    assert_eq!(plan.get("reoptimize_hits").num(), rh);
    assert_eq!(plan.get("reoptimize_misses").num(), rm);

    let reads: Vec<(u64, u64)> = parsed
        .get("reads_by_generation")
        .arr()
        .iter()
        .map(|pair| {
            let p = pair.arr();
            (p[0].num(), p[1].num())
        })
        .collect();
    assert_eq!(reads, snapshot.reads_by_generation);

    assert!(
        snapshot.query_latency.count > 0 && snapshot.commit_latency.count > 0,
        "both headline histograms have samples"
    );
    assert_histogram_round_trips(
        parsed.get("query_latency_ns"),
        &snapshot.query_latency,
        "query latency",
    );
    assert_histogram_round_trips(
        parsed.get("commit_latency_ns"),
        &snapshot.commit_latency,
        "commit latency",
    );
    assert_histogram_round_trips(
        parsed.get("fixpoint_latency_ns"),
        &snapshot.fixpoint_latency,
        "fixpoint latency",
    );
    assert_eq!(
        snapshot.update_delta_parts.count, 3,
        "every update records its effective delta size"
    );
    assert_histogram_round_trips(
        parsed.get("update_delta_parts"),
        &snapshot.update_delta_parts,
        "update delta parts",
    );
}

/// The timed render is opt-in and carries what the deterministic render
/// cannot: a total wall time and per-node millisecond spans.
#[test]
fn timed_trace_render_is_a_superset_of_the_deterministic_one() {
    let db: Database<DenseOrder> = Database::new();
    db.declare("r", 2).unwrap();
    db.execute_source(
        "r := {(x, y) | 0 <= x and x <= 2 and 0 <= y and y <= 2};\n\
         query q(x, y) := r(x, y) and r(y, x);\n",
        &mut Vec::new(),
    )
    .expect("setup runs");
    let (_, trace) = db.snapshot().trace_query("q").expect("trace runs");
    let plain = trace.to_string();
    let timed = trace.timed().to_string();
    assert!(!plain.contains("ms"), "deterministic render has no timings");
    assert!(timed.contains("-- total"), "timed render reports a total");
    assert!(timed.contains("ms"), "timed render carries per-node times");
    assert!(trace.total() >= Duration::ZERO);
}
