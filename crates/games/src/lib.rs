//! # frdb-games
//!
//! Ehrenfeucht–Fraïssé games over finitely representable databases — the main
//! inexpressibility tool that survives in the constraint setting (Section 5 of
//! Grumbach & Su; Theorem 5.8 for the classical correspondence, Theorem 5.9 for the
//! value-game / point-game relationship, Fig. 7 for the comb instances used against
//! region connectivity).
//!
//! The solver decides whether the duplicator has a winning strategy in the `r`-round
//! game between two `(Q, ≤, σ)`-instances.  Moves notionally range over all of `Q`,
//! but over a dense order the outcome of every future membership or order test depends
//! only on the position of a move relative to the constants of the two representations
//! and the previously chosen elements; the solver therefore searches over a finite,
//! *exact* move basis: every representation constant, every previously chosen element,
//! one witness strictly between each pair of consecutive relevant values, and one
//! witness beyond each end.  This makes the solver sound and complete for dense-order
//! constraint databases while keeping the game tree finite.
//!
//! The game tree is exponential in the number of rounds; the intended use (matching
//! the paper) is small `r` — quantifier rank 1–3 — which is already enough to witness
//! that low-rank first-order sentences cannot separate the paper's instance families.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod comb;
pub mod solver;

pub use comb::{comb_instance, comb_schema};
pub use solver::{duplicator_wins_point, duplicator_wins_value, GameReport};
