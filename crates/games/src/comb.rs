//! The comb instances of Fig. 7.
//!
//! The game proof of Lemma 5.5 plays on two planar instances that "look like two
//! imbricated combs": in `A_r` the two combs share one tooth (so the figure is
//! connected), in `B_r` they share none (so it is disconnected), and with enough teeth
//! the duplicator survives `r` rounds on the pair, showing that region connectivity is
//! not definable by any sentence of quantifier rank `r`.
//!
//! The builders below produce finite-scale versions of those instances out of
//! axis-parallel segments (the paper notes that dense-order constraints cannot express
//! diagonal teeth, and replaces them by staircases; at the scale used here plain
//! vertical teeth suffice).  The `connected` flag controls whether one shared tooth
//! joins the two combs.

use frdb_core::dense::{DenseAtom, DenseOrder};
use frdb_core::logic::{Term, Var};
use frdb_core::relation::{GenTuple, Instance, Relation};
use frdb_core::schema::Schema;

/// The schema of the comb instances: one binary relation `R` (a set of points of the
/// rational plane).
#[must_use]
pub fn comb_schema() -> Schema {
    Schema::from_pairs([("R", 2)])
}

fn hseg(y: i64, x0: i64, x1: i64) -> GenTuple<DenseAtom> {
    GenTuple::new(vec![
        DenseAtom::eq(Term::var("y"), Term::cst(y)),
        DenseAtom::le(Term::cst(x0), Term::var("x")),
        DenseAtom::le(Term::var("x"), Term::cst(x1)),
    ])
}

fn vseg(x: i64, y0: i64, y1: i64) -> GenTuple<DenseAtom> {
    GenTuple::new(vec![
        DenseAtom::eq(Term::var("x"), Term::cst(x)),
        DenseAtom::le(Term::cst(y0), Term::var("y")),
        DenseAtom::le(Term::var("y"), Term::cst(y1)),
    ])
}

/// Builds a comb instance with `teeth` teeth per comb.
///
/// The lower comb has spine `y = 0` with upward teeth at odd x-positions, the upper
/// comb has spine `y = 10` with downward teeth at even x-positions, so the teeth
/// interleave without touching.  When `connected` is true one extra tooth joins the
/// two spines, making the whole figure connected (the `A_r` instance); otherwise the
/// two combs are disjoint connected components (the `B_r` instance).
#[must_use]
pub fn comb_instance(teeth: usize, connected: bool) -> Instance<DenseOrder> {
    let teeth = teeth.max(1) as i64;
    let width = 2 * teeth + 2;
    let mut tuples = Vec::new();
    // Spines.
    tuples.push(hseg(0, 0, width));
    tuples.push(hseg(10, 0, width));
    // Lower comb teeth (upwards, stopping short of the top spine).
    for t in 0..teeth {
        let x = 2 * t + 1;
        tuples.push(vseg(x, 0, 8));
    }
    // Upper comb teeth (downwards, stopping short of the bottom spine).
    for t in 0..teeth {
        let x = 2 * t + 2;
        tuples.push(vseg(x, 2, 10));
    }
    if connected {
        // One shared tooth linking the two spines.
        tuples.push(vseg(width, 0, 10));
    }
    let mut inst = Instance::new(comb_schema());
    inst.set(
        "R",
        Relation::new(vec![Var::new("x"), Var::new("y")], tuples),
    )
    .expect("schema declares the relation");
    inst
}

#[cfg(test)]
mod tests {
    use super::*;
    use frdb_num::Rat;

    fn r(v: i64) -> Rat {
        Rat::from_i64(v)
    }

    #[test]
    fn comb_instances_have_expected_membership() {
        let a = comb_instance(3, true);
        let b = comb_instance(3, false);
        let ra = a.get(&"R".into()).unwrap();
        let rb = b.get(&"R".into()).unwrap();
        // Both contain the two spines and the interleaved teeth.
        assert!(ra.contains(&[r(4), r(0)]));
        assert!(ra.contains(&[r(1), r(5)]));
        assert!(rb.contains(&[r(2), r(9)]));
        // Only the connected instance contains the linking tooth.
        assert!(ra.contains(&[r(8), r(5)]));
        assert!(!rb.contains(&[r(8), r(5)]));
        // Points off the figure are in neither.
        assert!(!ra.contains(&[r(1), r(9)]));
        assert!(!rb.contains(&[r(1), r(9)]));
    }

    #[test]
    fn combs_grow_with_the_teeth_parameter() {
        let small = comb_instance(2, false);
        let large = comb_instance(6, false);
        let ns = small.get(&"R".into()).unwrap().num_tuples();
        let nl = large.get(&"R".into()).unwrap().num_tuples();
        assert!(nl > ns);
    }

    #[test]
    fn one_round_games_cannot_separate_the_combs() {
        // A single move never separates A from B: every point of one figure has an
        // order-equivalent point in the other.
        let a = comb_instance(2, true);
        let b = comb_instance(2, false);
        let report = crate::solver::duplicator_wins_value(&a, &b, 1);
        assert!(report.duplicator_wins);
    }
}
