//! The Ehrenfeucht–Fraïssé game solver.

use frdb_core::dense::DenseOrder;
use frdb_core::relation::{Instance, Relation};
use frdb_num::Rat;

/// Outcome report of a game analysis.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GameReport {
    /// Number of rounds analysed.
    pub rounds: usize,
    /// Whether the duplicator has a winning strategy.
    pub duplicator_wins: bool,
    /// Number of game positions explored (a rough cost measure).
    pub positions_explored: usize,
}

/// The exact move basis for one structure: all representation constants, all chosen
/// elements, witnesses strictly between consecutive values, and one witness beyond
/// each end.  Over a dense order without endpoints this basis is complete: any other
/// move is equivalent (for all future order and membership tests) to one of these,
/// because every relation of the instance is defined purely by order comparisons with
/// its representation constants.
fn move_basis(constants: &[Rat], chosen: &[Rat]) -> Vec<Rat> {
    let mut values: Vec<Rat> = constants.to_vec();
    values.extend(chosen.iter().cloned());
    values.sort();
    values.dedup();
    if values.is_empty() {
        return vec![Rat::zero()];
    }
    let mut out = Vec::with_capacity(2 * values.len() + 1);
    out.push(&values[0] - &Rat::one());
    for i in 0..values.len() {
        out.push(values[i].clone());
        if i + 1 < values.len() {
            out.push(values[i].midpoint(&values[i + 1]));
        }
    }
    out.push(values.last().unwrap() + &Rat::one());
    out
}

struct Search {
    /// Relations of the two instances, paired by name: `(arity, in A, in B)`.
    relations: Vec<(usize, Relation<DenseOrder>, Relation<DenseOrder>)>,
    constants_a: Vec<Rat>,
    constants_b: Vec<Rat>,
    positions: usize,
    /// Values contributed per move: 1 for the value game, 2 for the point game.
    group: usize,
}

impl Search {
    fn new(inst_a: &Instance<DenseOrder>, inst_b: &Instance<DenseOrder>, group: usize) -> Self {
        let mut relations = Vec::new();
        for (name, arity) in inst_a.schema().iter() {
            let ra = inst_a.get(name).expect("schema relation");
            let rb = inst_b
                .get(name)
                .unwrap_or_else(|| Relation::empty(ra.vars().to_vec()));
            relations.push((arity, ra, rb));
        }
        Search {
            relations,
            constants_a: inst_a.active_domain().into_iter().collect(),
            constants_b: inst_b.active_domain().into_iter().collect(),
            positions: 0,
            group,
        }
    }

    /// Checks that extending the position by the last `added` values on each side
    /// preserves the partial isomorphism (order among chosen elements, and membership
    /// of every relation tuple that involves at least one new element).
    fn extension_consistent(&self, a: &[Rat], b: &[Rat], added: usize) -> bool {
        let n = a.len();
        let first_new = n - added;
        // Order constraints between new and all elements.
        for i in first_new..n {
            for j in 0..n {
                if (a[i] <= a[j]) != (b[i] <= b[j]) || (a[j] <= a[i]) != (b[j] <= b[i]) {
                    return false;
                }
            }
        }
        // Relation membership for tuples touching a new element.
        for (arity, ra, rb) in &self.relations {
            let arity = *arity;
            if arity == 0 || n == 0 {
                continue;
            }
            let total = n.pow(arity as u32);
            for code in 0..total {
                let mut c = code;
                let mut touches_new = false;
                let mut ta = Vec::with_capacity(arity);
                let mut tb = Vec::with_capacity(arity);
                for _ in 0..arity {
                    let idx = c % n;
                    c /= n;
                    if idx >= first_new {
                        touches_new = true;
                    }
                    ta.push(a[idx].clone());
                    tb.push(b[idx].clone());
                }
                if !touches_new {
                    continue;
                }
                if ra.contains(&ta) != rb.contains(&tb) {
                    return false;
                }
            }
        }
        true
    }

    /// All move groups (tuples of `group` values) available in one structure, ordered
    /// starting from `preferred` (the index of the spoiler's move in its own basis),
    /// which makes the duplicator try the "mirror" answer first.
    fn move_groups(&self, in_a: bool, a: &[Rat], b: &[Rat], preferred: usize) -> Vec<Vec<Rat>> {
        let basis = if in_a {
            move_basis(&self.constants_a, a)
        } else {
            move_basis(&self.constants_b, b)
        };
        let mut groups: Vec<Vec<Rat>> = if self.group == 1 {
            basis.into_iter().map(|v| vec![v]).collect()
        } else {
            let mut stack: Vec<Vec<Rat>> = vec![Vec::new()];
            for _ in 0..self.group {
                let mut next = Vec::new();
                for prefix in &stack {
                    for v in &basis {
                        let mut p = prefix.clone();
                        p.push(v.clone());
                        next.push(p);
                    }
                }
                stack = next;
            }
            stack
        };
        if preferred > 0 && preferred < groups.len() {
            groups.rotate_left(preferred);
        }
        groups
    }

    fn duplicator_wins(&mut self, a: &mut Vec<Rat>, b: &mut Vec<Rat>, rounds: usize) -> bool {
        if rounds == 0 {
            return true;
        }
        for spoiler_in_a in [true, false] {
            let spoiler_moves = self.move_groups(spoiler_in_a, a, b, 0);
            for (si, sm) in spoiler_moves.iter().enumerate() {
                self.positions += 1;
                let mut answered = false;
                let duplicator_moves = self.move_groups(!spoiler_in_a, a, b, si);
                for dm in &duplicator_moves {
                    self.positions += 1;
                    let (am, bm) = if spoiler_in_a { (sm, dm) } else { (dm, sm) };
                    a.extend(am.iter().cloned());
                    b.extend(bm.iter().cloned());
                    let ok = self.extension_consistent(a, b, self.group)
                        && self.duplicator_wins(a, b, rounds - 1);
                    a.truncate(a.len() - am.len());
                    b.truncate(b.len() - bm.len());
                    if ok {
                        answered = true;
                        break;
                    }
                }
                if !answered {
                    return false;
                }
            }
        }
        true
    }
}

/// Decides whether the duplicator wins the `rounds`-round **value game** between two
/// instances over the same schema (Theorem 5.8's game; players pick rationals).
#[must_use]
pub fn duplicator_wins_value(
    inst_a: &Instance<DenseOrder>,
    inst_b: &Instance<DenseOrder>,
    rounds: usize,
) -> GameReport {
    let mut search = Search::new(inst_a, inst_b, 1);
    let mut a = Vec::new();
    let mut b = Vec::new();
    let wins = search.duplicator_wins(&mut a, &mut b, rounds);
    GameReport {
        rounds,
        duplicator_wins: wins,
        positions_explored: search.positions,
    }
}

/// Decides whether the duplicator wins the `rounds`-round **point game** between two
/// instances whose relations have even arity (players pick points of `Q²`; each point
/// move contributes both coordinates — the accounting used in Theorem 5.9).
#[must_use]
pub fn duplicator_wins_point(
    inst_a: &Instance<DenseOrder>,
    inst_b: &Instance<DenseOrder>,
    rounds: usize,
) -> GameReport {
    let mut search = Search::new(inst_a, inst_b, 2);
    let mut a = Vec::new();
    let mut b = Vec::new();
    let wins = search.duplicator_wins(&mut a, &mut b, rounds);
    GameReport {
        rounds,
        duplicator_wins: wins,
        positions_explored: search.positions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frdb_core::logic::Var;
    use frdb_core::relation::Relation;
    use frdb_core::schema::Schema;

    fn r(v: i64) -> Rat {
        Rat::from_i64(v)
    }

    /// A monadic instance containing the first `n` positive integers as points.
    fn point_set(n: i64) -> Instance<DenseOrder> {
        let schema = Schema::from_pairs([("R", 1)]);
        let mut inst = Instance::new(schema);
        inst.set(
            "R",
            Relation::from_points(vec![Var::new("x")], (1..=n).map(|i| vec![r(i)])),
        )
        .unwrap();
        inst
    }

    #[test]
    fn identical_instances_are_indistinguishable() {
        let a = point_set(3);
        let report = duplicator_wins_value(&a, &a, 2);
        assert!(report.duplicator_wins);
        assert!(report.positions_explored > 0);
    }

    #[test]
    fn cardinality_one_vs_two_is_separated_at_rank_two() {
        // ∃x∃y (R(x) ∧ R(y) ∧ x < y) has quantifier rank 2 and separates the sets, so
        // the spoiler wins the 2-round game but not the 1-round game.
        let a = point_set(1);
        let b = point_set(2);
        assert!(duplicator_wins_value(&a, &b, 1).duplicator_wins);
        assert!(!duplicator_wins_value(&a, &b, 2).duplicator_wins);
    }

    #[test]
    fn empty_vs_nonempty_is_separated_at_rank_one() {
        let empty = point_set(0);
        let one = point_set(1);
        assert!(!duplicator_wins_value(&empty, &one, 1).duplicator_wins);
        assert!(duplicator_wins_value(&empty, &one, 0).duplicator_wins);
    }

    #[test]
    fn large_sets_of_different_parity_are_rank_two_equivalent() {
        // The counting argument behind Lemma 5.6: finite sets with 4 and 5 elements
        // cannot be told apart by quantifier-rank-2 sentences, so no fixed first-order
        // sentence computes parity.
        let a = point_set(4);
        let b = point_set(5);
        assert!(duplicator_wins_value(&a, &b, 2).duplicator_wins);
    }

    #[test]
    fn interval_vs_split_interval_separated_at_rank_two() {
        // [0, 10] versus [0, 4] ∪ [6, 10]: the sentence "there is a non-member with a
        // member on each side" has rank 2 after sharing the outer quantifier, and the
        // spoiler indeed wins with 2 rounds but not with 1.
        use frdb_core::dense::DenseAtom;
        use frdb_core::logic::Term;
        use frdb_core::relation::GenTuple;
        let schema = Schema::from_pairs([("R", 1)]);
        let seg = |lo: i64, hi: i64| {
            GenTuple::new(vec![
                DenseAtom::le(Term::cst(lo), Term::var("x")),
                DenseAtom::le(Term::var("x"), Term::cst(hi)),
            ])
        };
        let mut a = Instance::new(schema.clone());
        a.set("R", Relation::new(vec![Var::new("x")], vec![seg(0, 10)]))
            .unwrap();
        let mut b = Instance::new(schema);
        b.set(
            "R",
            Relation::new(vec![Var::new("x")], vec![seg(0, 4), seg(6, 10)]),
        )
        .unwrap();
        assert!(duplicator_wins_value(&a, &b, 1).duplicator_wins);
        assert!(!duplicator_wins_value(&a, &b, 2).duplicator_wins);
    }

    #[test]
    fn point_game_on_tiny_planar_instances() {
        use frdb_core::dense::DenseAtom;
        use frdb_core::logic::Term;
        use frdb_core::relation::GenTuple;
        // A single axis-parallel segment versus a single point: two distinct points of
        // R exist only in the segment, so two point-rounds separate them.
        let schema = Schema::from_pairs([("R", 2)]);
        let mut seg = Instance::new(schema.clone());
        seg.set(
            "R",
            Relation::new(
                vec![Var::new("x"), Var::new("y")],
                vec![GenTuple::new(vec![
                    DenseAtom::eq(Term::var("y"), Term::cst(0)),
                    DenseAtom::le(Term::cst(0), Term::var("x")),
                    DenseAtom::le(Term::var("x"), Term::cst(1)),
                ])],
            ),
        )
        .unwrap();
        let mut pt = Instance::new(schema);
        pt.set(
            "R",
            Relation::from_points(vec![Var::new("x"), Var::new("y")], vec![vec![r(0), r(0)]]),
        )
        .unwrap();
        let report1 = duplicator_wins_point(&seg, &pt, 1);
        assert!(report1.positions_explored > 0);
        assert!(!duplicator_wins_point(&seg, &pt, 2).duplicator_wins);
    }

    #[test]
    fn theorem_5_9_direction_on_small_instances() {
        // Theorem 5.9(2): indistinguishability in the point game with r² rounds implies
        // indistinguishability in the value game with r rounds.  Check the contrapositive
        // shape on a pair the value game separates at rank 2: the point game with
        // 4 rounds would also separate them, and indeed already 2 point rounds do.
        let a = point_set(1);
        let b = point_set(2);
        // view monadic sets as degenerate planar data for the point game by squaring.
        use frdb_core::logic::Var;
        let schema = Schema::from_pairs([("R", 2)]);
        let mk = |n: i64| {
            let mut inst = Instance::new(schema.clone());
            inst.set(
                "R",
                Relation::from_points(
                    vec![Var::new("x"), Var::new("y")],
                    (1..=n).map(|i| vec![r(i), r(i)]),
                ),
            )
            .unwrap();
            inst
        };
        let pa = mk(1);
        let pb = mk(2);
        assert!(!duplicator_wins_value(&a, &b, 2).duplicator_wins);
        assert!(!duplicator_wins_point(&pa, &pb, 2).duplicator_wins);
    }
}
