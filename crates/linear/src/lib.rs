//! # frdb-linear
//!
//! Linear constraints over the rationals — the language `FO(≤, +)` of Section 7 of
//! Grumbach & Su and of \[GST94\] — as a second full instantiation of the
//! [`frdb_core::theory::Theory`] interface.
//!
//! Atoms are affine comparisons `Σ cᵢ·xᵢ + c ⋈ 0` with `⋈ ∈ {<, ≤, =}` and rational
//! coefficients.  Quantifier elimination is Fourier–Motzkin: equalities are removed by
//! substitution, and a variable bounded from both sides contributes one constraint per
//! (lower, upper) pair.  The theory of `(Q, ≤, +)` admits elimination of quantifiers,
//! so the generic FO evaluator of `frdb-core` works unchanged over linear constraint
//! databases; the benchmark harness compares its cost against the pure dense-order
//! engine (experiment E12 of `DESIGN.md`).
//!
//! The module also provides the *k-bounded* measure of \[GST94\] (the number of `+`
//! occurrences per constraint), and the midpoint-convexity query used to realize the
//! paper's convexity query (Lemma 5.4) — see `frdb-queries`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use frdb_core::logic::{Term, Var};
use frdb_core::theory::{Atom, Conj, Dnf, Theory};
use frdb_num::Rat;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::ops::Bound as StdBound;

/// An affine expression `Σ cᵢ·xᵢ + c` with rational coefficients.
#[derive(Clone, PartialEq, Eq, Hash, Debug, Default)]
pub struct LinExpr {
    coeffs: BTreeMap<Var, Rat>,
    constant: Rat,
}

impl LinExpr {
    /// The zero expression.
    #[must_use]
    pub fn zero() -> Self {
        LinExpr::default()
    }

    /// The expression consisting of a single variable.
    #[must_use]
    pub fn var(v: impl Into<Var>) -> Self {
        let mut e = LinExpr::zero();
        e.coeffs.insert(v.into(), Rat::one());
        e
    }

    /// A constant expression.
    #[must_use]
    pub fn constant(c: impl Into<Rat>) -> Self {
        LinExpr {
            coeffs: BTreeMap::new(),
            constant: c.into(),
        }
    }

    /// Converts a [`Term`] (variable or constant) into a linear expression.
    #[must_use]
    pub fn from_term(t: &Term) -> Self {
        match t {
            Term::Var(v) => LinExpr::var(v.clone()),
            Term::Const(c) => LinExpr::constant(c.clone()),
        }
    }

    /// The coefficient of a variable (zero if absent).
    #[must_use]
    pub fn coeff(&self, v: &Var) -> Rat {
        self.coeffs.get(v).cloned().unwrap_or_else(Rat::zero)
    }

    /// The constant term.
    #[must_use]
    pub fn constant_term(&self) -> &Rat {
        &self.constant
    }

    /// The variables with a non-zero coefficient.
    #[must_use]
    pub fn vars(&self) -> BTreeSet<Var> {
        self.coeffs.keys().cloned().collect()
    }

    /// Whether the expression is a constant.
    #[must_use]
    pub fn is_constant(&self) -> bool {
        self.coeffs.is_empty()
    }

    /// Addition of expressions.
    #[must_use]
    pub fn add(&self, other: &LinExpr) -> LinExpr {
        let mut out = self.clone();
        for (v, c) in &other.coeffs {
            let new = &out.coeff(v) + c;
            if new.is_zero() {
                out.coeffs.remove(v);
            } else {
                out.coeffs.insert(v.clone(), new);
            }
        }
        out.constant = &out.constant + &other.constant;
        out
    }

    /// Subtraction of expressions.
    #[must_use]
    pub fn sub(&self, other: &LinExpr) -> LinExpr {
        self.add(&other.scale(&Rat::from_i64(-1)))
    }

    /// Multiplication by a rational scalar.
    #[must_use]
    pub fn scale(&self, k: &Rat) -> LinExpr {
        if k.is_zero() {
            return LinExpr::zero();
        }
        LinExpr {
            coeffs: self
                .coeffs
                .iter()
                .map(|(v, c)| (v.clone(), c * k))
                .collect(),
            constant: &self.constant * k,
        }
    }

    /// Evaluates the expression under an assignment.
    #[must_use]
    pub fn eval(&self, assignment: &dyn Fn(&Var) -> Rat) -> Rat {
        let mut acc = self.constant.clone();
        for (v, c) in &self.coeffs {
            acc = &acc + &(c * &assignment(v));
        }
        acc
    }

    /// Substitutes an expression for a variable.
    #[must_use]
    pub fn subst_expr(&self, var: &Var, replacement: &LinExpr) -> LinExpr {
        let c = self.coeff(var);
        if c.is_zero() {
            return self.clone();
        }
        let mut without = self.clone();
        without.coeffs.remove(var);
        without.add(&replacement.scale(&c))
    }

    /// The number of `+` occurrences needed to write the expression: the *k-bounded*
    /// measure of \[GST94\] (one less than the number of monomials, at least zero).
    #[must_use]
    pub fn plus_occurrences(&self) -> usize {
        let monomials = self.coeffs.len() + usize::from(!self.constant.is_zero());
        monomials.saturating_sub(1)
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in &self.coeffs {
            if first {
                if *c == Rat::one() {
                    write!(f, "{v}")?;
                } else {
                    write!(f, "{c}·{v}")?;
                }
                first = false;
            } else if *c == Rat::one() {
                write!(f, " + {v}")?;
            } else {
                write!(f, " + {c}·{v}")?;
            }
        }
        if !self.constant.is_zero() || first {
            if first {
                write!(f, "{}", self.constant)?;
            } else {
                write!(f, " + {}", self.constant)?;
            }
        }
        Ok(())
    }
}

/// Comparison operators of linear atoms (the expression is compared to zero).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum LinOp {
    /// `expr < 0`.
    Lt,
    /// `expr ≤ 0`.
    Le,
    /// `expr = 0`.
    Eq,
}

/// A linear constraint atom `expr ⋈ 0`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct LinAtom {
    /// The affine expression compared to zero.
    pub expr: LinExpr,
    /// The comparison operator.
    pub op: LinOp,
}

impl LinAtom {
    /// The atom `lhs < rhs`.
    #[must_use]
    pub fn lt(lhs: LinExpr, rhs: LinExpr) -> Self {
        LinAtom {
            expr: lhs.sub(&rhs),
            op: LinOp::Lt,
        }
    }

    /// The atom `lhs ≤ rhs`.
    #[must_use]
    pub fn le(lhs: LinExpr, rhs: LinExpr) -> Self {
        LinAtom {
            expr: lhs.sub(&rhs),
            op: LinOp::Le,
        }
    }

    /// The atom `lhs = rhs`.
    #[must_use]
    pub fn eq(lhs: LinExpr, rhs: LinExpr) -> Self {
        LinAtom {
            expr: lhs.sub(&rhs),
            op: LinOp::Eq,
        }
    }

    /// Normalizes the atom: scales so that the leading coefficient (first variable in
    /// order, else the constant) is `±1`, keeping the comparison direction.
    #[must_use]
    pub fn normalized(&self) -> LinAtom {
        let scale = self
            .expr
            .coeffs
            .values()
            .next()
            .cloned()
            .unwrap_or_else(|| self.expr.constant.clone());
        if scale.is_zero() {
            return self.clone();
        }
        let k = scale.abs().recip();
        LinAtom {
            expr: self.expr.scale(&k),
            op: self.op,
        }
    }

    /// The number of `+` occurrences of the constraint (\[GST94\] k-boundedness).
    #[must_use]
    pub fn plus_occurrences(&self) -> usize {
        self.expr.plus_occurrences()
    }
}

impl fmt::Display for LinAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.op {
            LinOp::Lt => "<",
            LinOp::Le => "≤",
            LinOp::Eq => "=",
        };
        write!(f, "{} {op} 0", self.expr)
    }
}

impl Atom for LinAtom {
    fn vars(&self) -> BTreeSet<Var> {
        self.expr.vars()
    }

    fn constants(&self) -> BTreeSet<Rat> {
        let mut out: BTreeSet<Rat> = self.expr.coeffs.values().cloned().collect();
        out.insert(self.expr.constant.clone());
        out
    }

    fn eval(&self, assignment: &dyn Fn(&Var) -> Rat) -> bool {
        let v = self.expr.eval(assignment);
        match self.op {
            LinOp::Lt => v < Rat::zero(),
            LinOp::Le => v <= Rat::zero(),
            LinOp::Eq => v.is_zero(),
        }
    }

    fn negate(&self) -> Vec<Self> {
        let neg = self.expr.scale(&Rat::from_i64(-1));
        match self.op {
            // ¬(e < 0) ≡ -e ≤ 0
            LinOp::Lt => vec![LinAtom {
                expr: neg,
                op: LinOp::Le,
            }],
            // ¬(e ≤ 0) ≡ -e < 0
            LinOp::Le => vec![LinAtom {
                expr: neg,
                op: LinOp::Lt,
            }],
            // ¬(e = 0) ≡ e < 0 ∨ -e < 0
            LinOp::Eq => vec![
                LinAtom {
                    expr: self.expr.clone(),
                    op: LinOp::Lt,
                },
                LinAtom {
                    expr: neg,
                    op: LinOp::Lt,
                },
            ],
        }
    }

    fn subst(&self, var: &Var, replacement: &Term) -> Self {
        LinAtom {
            expr: self.expr.subst_expr(var, &LinExpr::from_term(replacement)),
            op: self.op,
        }
    }

    fn subst_simultaneous(&self, map: &std::collections::HashMap<Var, Term>) -> Self {
        // One pass over the coefficient map: every substituted variable's
        // coefficient is redistributed onto its image expression.
        let mut expr = LinExpr {
            coeffs: BTreeMap::new(),
            constant: self.expr.constant.clone(),
        };
        for (v, c) in &self.expr.coeffs {
            match map.get(v) {
                None => {
                    let entry = expr.coeffs.entry(v.clone()).or_insert_with(Rat::zero);
                    *entry = &*entry + c;
                }
                Some(t) => {
                    let image = LinExpr::from_term(t).scale(c);
                    for (iv, ic) in &image.coeffs {
                        let entry = expr.coeffs.entry(iv.clone()).or_insert_with(Rat::zero);
                        *entry = &*entry + ic;
                    }
                    expr.constant = &expr.constant + &image.constant;
                }
            }
        }
        expr.coeffs.retain(|_, c| !c.is_zero());
        LinAtom { expr, op: self.op }
    }

    fn map_constants(&self, f: &impl Fn(&Rat) -> Rat) -> Self {
        // The purely syntactic operation of Definition 4.3 (replace every constant of
        // the formula); note that for FO(≤,+) the automorphism group is smaller than
        // for FO(≤), so this is used for reporting rather than genericity proofs.
        LinAtom {
            expr: LinExpr {
                coeffs: self
                    .expr
                    .coeffs
                    .iter()
                    .map(|(v, c)| (v.clone(), f(c)))
                    .collect(),
                constant: f(&self.expr.constant),
            },
            op: self.op,
        }
    }
}

/// The linear-order theory `Th(Q, ≤, +, (q)_{q∈Q})` with Fourier–Motzkin elimination.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinearOrder;

impl LinearOrder {
    /// Eliminates one variable from a conjunction by substitution (if an equality pins
    /// it) or Fourier–Motzkin combination of lower and upper bounds.
    fn fm_eliminate(var: &Var, conj: &[LinAtom]) -> Vec<LinAtom> {
        // First look for an equality with a non-zero coefficient on `var`.
        if let Some((idx, atom)) = conj
            .iter()
            .enumerate()
            .find(|(_, a)| a.op == LinOp::Eq && !a.expr.coeff(var).is_zero())
        {
            let c = atom.expr.coeff(var);
            // var = -(rest)/c
            let mut rest = atom.expr.clone();
            rest.coeffs.remove(var);
            let solution = rest.scale(&(-Rat::one() / &c));
            return conj
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != idx)
                .map(|(_, a)| LinAtom {
                    expr: a.expr.subst_expr(var, &solution),
                    op: a.op,
                })
                .collect();
        }
        let mut lowers: Vec<(LinExpr, bool)> = Vec::new(); // (bound expr, strict): bound ⋈ var
        let mut uppers: Vec<(LinExpr, bool)> = Vec::new(); // var ⋈ bound
        let mut rest: Vec<LinAtom> = Vec::new();
        for a in conj {
            let c = a.expr.coeff(var);
            if c.is_zero() {
                rest.push(a.clone());
                continue;
            }
            // a: c·var + e ⋈ 0  ⇔  var ⋈ -e/c (if c > 0) or var ⋈⁻¹ -e/c (if c < 0).
            let mut e = a.expr.clone();
            e.coeffs.remove(var);
            let bound = e.scale(&(-Rat::one() / &c));
            let strict = a.op == LinOp::Lt;
            if c > Rat::zero() {
                uppers.push((bound, strict));
            } else {
                lowers.push((bound, strict));
            }
        }
        for (lo, ls) in &lowers {
            for (up, us) in &uppers {
                let expr = lo.sub(up); // lo - up ⋈ 0
                let op = if *ls || *us { LinOp::Lt } else { LinOp::Le };
                rest.push(LinAtom { expr, op });
            }
        }
        rest
    }

    /// Decides a conjunction of *ground* (variable-free) atoms.
    fn ground_consistent(conj: &[LinAtom]) -> bool {
        conj.iter().all(|a| {
            let v = &a.expr.constant;
            match a.op {
                LinOp::Lt => *v < Rat::zero(),
                LinOp::Le => *v <= Rat::zero(),
                LinOp::Eq => v.is_zero(),
            }
        })
    }
}

impl LinearOrder {
    /// Full Fourier–Motzkin satisfiability of a conjunction (the saturating
    /// operation of the theory; everything else is read off its verdict).
    fn fm_satisfiable(conj: &[LinAtom]) -> bool {
        let mut current: Vec<LinAtom> = conj.to_vec();
        loop {
            let vars: BTreeSet<Var> = current.iter().flat_map(Atom::vars).collect();
            match vars.into_iter().next() {
                None => return Self::ground_consistent(&current),
                Some(v) => {
                    current = Self::fm_eliminate(&v, &current);
                    // Drop trivially true ground atoms to keep the system small.
                    current.retain(|a| {
                        !(a.expr.is_constant()
                            && match a.op {
                                LinOp::Lt => a.expr.constant < Rat::zero(),
                                LinOp::Le => a.expr.constant <= Rat::zero(),
                                LinOp::Eq => a.expr.constant.is_zero(),
                            })
                    });
                    if current.iter().any(|a| a.expr.is_constant())
                        && !Self::ground_consistent(
                            &current
                                .iter()
                                .filter(|a| a.expr.is_constant())
                                .cloned()
                                .collect::<Vec<_>>(),
                        )
                    {
                        return false;
                    }
                }
            }
        }
    }
}

/// The canonical context of a linear conjunction: the atoms together with the
/// Fourier–Motzkin satisfiability verdict, computed once and cached by the
/// generalized tuples that carry it.
#[derive(Clone, Debug)]
pub struct LinCtx {
    conj: Vec<LinAtom>,
    satisfiable: bool,
}

impl Theory for LinearOrder {
    type A = LinAtom;
    type Ctx = LinCtx;

    fn name() -> &'static str {
        "linear order (Q, ≤, +)"
    }

    fn context(conj: &[LinAtom]) -> LinCtx {
        LinCtx {
            conj: conj.to_vec(),
            satisfiable: Self::fm_satisfiable(conj),
        }
    }

    fn ctx_satisfiable(ctx: &LinCtx) -> bool {
        ctx.satisfiable
    }

    fn ctx_canonical(ctx: &LinCtx) -> Option<Conj<LinAtom>> {
        if !ctx.satisfiable {
            return None;
        }
        let mut out: Vec<LinAtom> = ctx
            .conj
            .iter()
            .map(LinAtom::normalized)
            .filter(|a| {
                // Drop trivially true ground atoms.
                !(a.expr.is_constant()
                    && match a.op {
                        LinOp::Lt => a.expr.constant < Rat::zero(),
                        LinOp::Le => a.expr.constant <= Rat::zero(),
                        LinOp::Eq => a.expr.constant.is_zero(),
                    })
            })
            .collect();
        out.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        out.dedup();
        Some(out)
    }

    fn ctx_eliminate(ctx: &LinCtx, var: &Var) -> Dnf<LinAtom> {
        if !ctx.satisfiable {
            return Vec::new();
        }
        vec![Self::fm_eliminate(var, &ctx.conj)]
    }

    fn ctx_entails(ctx: &LinCtx, conclusion: &[LinAtom]) -> bool {
        if !ctx.satisfiable {
            return true;
        }
        conclusion.iter().all(|goal| {
            goal.negate().iter().all(|neg| {
                let mut system = ctx.conj.clone();
                system.push(neg.clone());
                !Self::fm_satisfiable(&system)
            })
        })
    }

    fn ctx_pinned(ctx: &LinCtx, var: &Var) -> Option<Rat> {
        if !ctx.satisfiable {
            return None;
        }
        // A syntactic single-variable equality `c·var + d = 0` pins the
        // variable to `-d/c`.  (Entailed equalities hiding behind several
        // atoms are left unpinned — `None` is always sound for the join's
        // hash partitioning.)
        ctx.conj.iter().find_map(|a| {
            if a.op != LinOp::Eq || a.expr.coeffs.len() != 1 {
                return None;
            }
            let (v, c) = a.expr.coeffs.iter().next()?;
            if v != var || c.is_zero() {
                return None;
            }
            Some(-(&(&a.expr.constant / c)))
        })
    }

    fn ctx_bounds(ctx: &LinCtx, var: &Var) -> Option<(StdBound<Rat>, StdBound<Rat>)> {
        if !ctx.satisfiable {
            return None;
        }
        // Syntactic single-variable atoms `c·var + d ⋈ 0` bound the variable
        // at `-d/c`: an upper bound when `c > 0`, a lower bound when `c < 0`,
        // both for an equality.  (Bounds entailed only through multi-variable
        // combinations are left undetected — an unbounded side is always
        // sound for the join's interval pruning.)
        let mut lower: Option<(Rat, bool)> = None; // (value, strict)
        let mut upper: Option<(Rat, bool)> = None;
        for a in &ctx.conj {
            if a.expr.coeffs.len() != 1 {
                continue;
            }
            let Some((v, c)) = a.expr.coeffs.iter().next() else {
                continue;
            };
            if v != var || c.is_zero() {
                continue;
            }
            let at = -(&(&a.expr.constant / c));
            let strict = a.op == LinOp::Lt;
            let mut tighten_upper = |at: &Rat, strict: bool| {
                if upper
                    .as_ref()
                    .is_none_or(|(uv, us)| at < uv || (at == uv && strict && !*us))
                {
                    upper = Some((at.clone(), strict));
                }
            };
            let mut tighten_lower = |at: &Rat, strict: bool| {
                if lower
                    .as_ref()
                    .is_none_or(|(lv, ls)| at > lv || (at == lv && strict && !*ls))
                {
                    lower = Some((at.clone(), strict));
                }
            };
            match a.op {
                LinOp::Eq => {
                    tighten_upper(&at, false);
                    tighten_lower(&at, false);
                }
                // c·var + d ⋈ 0  ⇔  var ⋈ -d/c when c > 0 (flipped when c < 0).
                LinOp::Lt | LinOp::Le => {
                    if *c > Rat::zero() {
                        tighten_upper(&at, strict);
                    } else {
                        tighten_lower(&at, strict);
                    }
                }
            }
        }
        if lower.is_none() && upper.is_none() {
            return None;
        }
        let to_bound = |side: Option<(Rat, bool)>| match side {
            None => StdBound::Unbounded,
            Some((v, true)) => StdBound::Excluded(v),
            Some((v, false)) => StdBound::Included(v),
        };
        Some((to_bound(lower), to_bound(upper)))
    }
}

/// Convenience constructors for linear formulas over [`Term`]s.
pub mod build {
    use super::{LinAtom, LinExpr};
    use frdb_core::logic::{Formula, Term};

    /// `lhs < rhs` as a formula.
    #[must_use]
    pub fn lt(lhs: &Term, rhs: &Term) -> Formula<LinAtom> {
        Formula::Atom(LinAtom::lt(
            LinExpr::from_term(lhs),
            LinExpr::from_term(rhs),
        ))
    }

    /// `lhs ≤ rhs` as a formula.
    #[must_use]
    pub fn le(lhs: &Term, rhs: &Term) -> Formula<LinAtom> {
        Formula::Atom(LinAtom::le(
            LinExpr::from_term(lhs),
            LinExpr::from_term(rhs),
        ))
    }

    /// `lhs = rhs` as a formula.
    #[must_use]
    pub fn eq(lhs: &Term, rhs: &Term) -> Formula<LinAtom> {
        Formula::Atom(LinAtom::eq(
            LinExpr::from_term(lhs),
            LinExpr::from_term(rhs),
        ))
    }

    /// `a + b = c` as a formula (the addition predicate of `FO(≤,+)`).
    #[must_use]
    pub fn sum_eq(a: &Term, b: &Term, c: &Term) -> Formula<LinAtom> {
        Formula::Atom(LinAtom::eq(
            LinExpr::from_term(a).add(&LinExpr::from_term(b)),
            LinExpr::from_term(c),
        ))
    }
}

/// The maximum number of `+` occurrences over the atoms of a conjunction — a
/// conjunction is *k-bounded* in the sense of \[GST94\] when this is at most `k`.
#[must_use]
pub fn k_boundedness(conj: &[LinAtom]) -> usize {
    conj.iter()
        .map(LinAtom::plus_occurrences)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use frdb_core::fo::{eval_query, eval_sentence};
    use frdb_core::logic::Formula;
    use frdb_core::relation::{Instance, Relation};
    use frdb_core::schema::Schema;

    fn x() -> LinExpr {
        LinExpr::var("x")
    }
    fn y() -> LinExpr {
        LinExpr::var("y")
    }
    fn k(v: i64) -> LinExpr {
        LinExpr::constant(Rat::from_i64(v))
    }
    fn r(v: i64) -> Rat {
        Rat::from_i64(v)
    }

    #[test]
    fn satisfiability_basic() {
        // x + y ≤ 1 ∧ x ≥ 0 ∧ y ≥ 0: satisfiable.
        assert!(LinearOrder::satisfiable(&[
            LinAtom::le(x().add(&y()), k(1)),
            LinAtom::le(k(0), x()),
            LinAtom::le(k(0), y()),
        ]));
        // x + y ≤ 1 ∧ x ≥ 1 ∧ y ≥ 1: unsatisfiable.
        assert!(!LinearOrder::satisfiable(&[
            LinAtom::le(x().add(&y()), k(1)),
            LinAtom::le(k(1), x()),
            LinAtom::le(k(1), y()),
        ]));
        // Strictness matters: x < y ∧ y < x is unsat, x ≤ y ∧ y ≤ x is sat.
        assert!(!LinearOrder::satisfiable(&[
            LinAtom::lt(x(), y()),
            LinAtom::lt(y(), x())
        ]));
        assert!(LinearOrder::satisfiable(&[
            LinAtom::le(x(), y()),
            LinAtom::le(y(), x())
        ]));
        // Equalities: 2x = 3 ∧ x < 1 is unsat.
        assert!(!LinearOrder::satisfiable(&[
            LinAtom::eq(x().scale(&r(2)), k(3)),
            LinAtom::lt(x(), k(1)),
        ]));
    }

    #[test]
    fn elimination_is_projection() {
        // ∃y. x < y ∧ y < 1  ≡  x < 1.
        let out = LinearOrder::eliminate(
            &Var::new("y"),
            &[LinAtom::lt(x(), y()), LinAtom::lt(y(), k(1))],
        );
        assert_eq!(out.len(), 1);
        assert!(LinearOrder::implies(&out[0], &[LinAtom::lt(x(), k(1))]));
        assert!(LinearOrder::implies(&[LinAtom::lt(x(), k(1))], &out[0]));
        // ∃y. x = 2y ∧ 0 ≤ y ≤ 1  ≡  0 ≤ x ≤ 2.
        let out = LinearOrder::eliminate(
            &Var::new("y"),
            &[
                LinAtom::eq(x(), y().scale(&r(2))),
                LinAtom::le(k(0), y()),
                LinAtom::le(y(), k(1)),
            ],
        );
        assert!(LinearOrder::implies(
            &out[0],
            &[LinAtom::le(k(0), x()), LinAtom::le(x(), k(2))]
        ));
        assert!(LinearOrder::implies(
            &[LinAtom::le(k(0), x()), LinAtom::le(x(), k(2))],
            &out[0]
        ));
    }

    #[test]
    fn implication_with_arithmetic() {
        // x ≥ 1 ∧ y ≥ 1 implies x + y ≥ 2.
        assert!(LinearOrder::implies(
            &[LinAtom::le(k(1), x()), LinAtom::le(k(1), y())],
            &[LinAtom::le(k(2), x().add(&y()))],
        ));
        assert!(!LinearOrder::implies(
            &[LinAtom::le(k(1), x())],
            &[LinAtom::le(k(2), x().add(&y()))],
        ));
    }

    #[test]
    fn fo_evaluation_over_linear_constraints() {
        // R = the triangle {(x, y) | 0 ≤ x, 0 ≤ y, x + y ≤ 1}.
        let schema = Schema::from_pairs([("R", 2)]);
        let mut inst: Instance<LinearOrder> = Instance::new(schema);
        inst.set(
            "R",
            Relation::from_dnf(
                vec![Var::new("x"), Var::new("y")],
                vec![vec![
                    LinAtom::le(k(0), x()),
                    LinAtom::le(k(0), y()),
                    LinAtom::le(x().add(&y()), k(1)),
                ]],
            ),
        )
        .unwrap();
        // The projection ∃y.R(x,y) is exactly [0, 1].
        let q: Formula<LinAtom> =
            Formula::exists(["y"], Formula::rel("R", [Term::var("x"), Term::var("y")]));
        let ans = eval_query(&q, &[Var::new("x")], &inst).unwrap();
        assert!(ans.contains(&[r(0)]));
        assert!(ans.contains(&["1/2".parse().unwrap()]));
        assert!(ans.contains(&[r(1)]));
        assert!(!ans.contains(&[r(2)]));
        assert!(!ans.contains(&[r(-1)]));
        // The diagonal x + x ≤ 1 inside R: R(x,x) ⇔ 0 ≤ x ≤ 1/2.
        let q2: Formula<LinAtom> = Formula::rel("R", [Term::var("x"), Term::var("x")]);
        let ans2 = eval_query(&q2, &[Var::new("x")], &inst).unwrap();
        assert!(ans2.contains(&["1/2".parse().unwrap()]));
        assert!(!ans2.contains(&["2/3".parse().unwrap()]));
        // A sentence with addition: ∀x∀y. R(x,y) → x + y ≤ 1.
        let q3: Formula<LinAtom> = Formula::forall(
            ["x", "y"],
            Formula::rel("R", [Term::var("x"), Term::var("y")])
                .implies(Formula::Atom(LinAtom::le(x().add(&y()), k(1)))),
        );
        assert!(eval_sentence(&q3, &inst).unwrap());
    }

    #[test]
    fn negation_of_linear_atoms() {
        let a = LinAtom::le(x(), k(0));
        let neg = a.negate();
        let at = |v: i64| move |_: &Var| Rat::from_i64(v);
        assert!(a.eval(&at(0)) && a.eval(&at(-1)) && !a.eval(&at(1)));
        assert!(!neg.iter().any(|n| n.eval(&at(0))));
        assert!(neg.iter().any(|n| n.eval(&at(1))));
        assert_eq!(LinAtom::eq(x(), k(0)).negate().len(), 2);
    }

    #[test]
    fn k_boundedness_measures_plus_occurrences() {
        let simple = LinAtom::le(x(), k(1));
        assert_eq!(simple.plus_occurrences(), 1);
        let sum = LinAtom::le(x().add(&y()).add(&LinExpr::var("z")), k(0));
        assert_eq!(sum.plus_occurrences(), 2);
        assert_eq!(k_boundedness(&[simple, sum]), 2);
        assert_eq!(k_boundedness(&[]), 0);
    }

    #[test]
    fn expressions_evaluate_and_substitute() {
        let e = x().scale(&r(2)).add(&y()).add(&k(3));
        let assign = |v: &Var| if v.name() == "x" { r(1) } else { r(5) };
        assert_eq!(e.eval(&assign), r(10));
        let substituted = e.subst_expr(&Var::new("y"), &x());
        // 2x + x + 3 = 3x + 3 at x = 1 is 6.
        assert_eq!(substituted.eval(&assign), r(6));
        assert_eq!(e.plus_occurrences(), 2);
    }
}
