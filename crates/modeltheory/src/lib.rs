//! # frdb-modeltheory
//!
//! Executable pieces of the *finitely representable model theory* of Sections 2–4 of
//! Grumbach & Su:
//!
//! * [`compactness`] — the family `Σ = {τ_k}` used in Theorem 3.2 to show that the
//!   compactness theorem fails over o-minimal contexts: each finite subset has a
//!   finitely representable model, but the models are forced to contain ever more
//!   disjoint pieces.
//! * [`reduction`] — the sentences `α_i` of Theorem 3.4 that force a finitely
//!   representable relation to be finite, reducing finite satisfiability to
//!   satisfiability over finitely representable models (the source of all the
//!   undecidability results of Section 4.3 / Theorem 4.12).
//! * [`iso_sentence`] — the isomorphism-defining sentence `σ_B` of Theorem 3.7 for
//!   monadic instances: a single FO sentence whose finitely representable models are
//!   exactly the isomorphic copies of `B`.
//! * [`monadic`] — Proposition 2.8: with equality only, a monadic relation is finitely
//!   representable iff it is finite or co-finite.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use frdb_core::dense::{DenseAtom, DenseOrder};
use frdb_core::logic::{Formula, Term, Var};
use frdb_core::normal::{decompose_1d, Piece1};
use frdb_core::relation::Relation;
use frdb_num::Rat;

/// The compactness-failure witness of Theorem 3.2.
pub mod compactness {
    use super::*;

    /// The sentence `τ_k` over a monadic relation `R`: "`R` contains `k` pairwise
    /// distinct elements `a₁ < … < a_k` that are *non-consecutive* (between any two of
    /// them lies a point outside `R`), and nothing else lies between `a₁` and `a_k`"
    /// — over a dense order every strictly increasing sequence is non-consecutive, so
    /// the sentence asserts that `R ∩ [a₁, a_k]` is exactly `{a₁, …, a_k}`.
    ///
    /// The formula returned asserts the existential half (the `k` isolated members);
    /// that is what drives the compactness argument: a model of all `τ_k`
    /// simultaneously would need infinitely many isolated points, which is not
    /// finitely representable over an o-minimal context.
    #[must_use]
    pub fn tau(k: usize) -> Formula<DenseAtom> {
        let vars: Vec<Var> = (0..k).map(|i| Var::new(format!("a{i}"))).collect();
        let mut parts: Vec<Formula<DenseAtom>> = Vec::new();
        for v in &vars {
            parts.push(Formula::rel("R", [Term::Var(v.clone())]));
        }
        for w in vars.windows(2) {
            parts.push(Formula::Atom(DenseAtom::lt(
                Term::Var(w[0].clone()),
                Term::Var(w[1].clone()),
            )));
            // Isolation: some non-member lies strictly between consecutive members.
            let z = Var::new(format!("z_{}_{}", w[0], w[1]));
            parts.push(Formula::Exists(
                vec![z.clone()],
                Box::new(Formula::conj([
                    Formula::Atom(DenseAtom::lt(Term::Var(w[0].clone()), Term::Var(z.clone()))),
                    Formula::Atom(DenseAtom::lt(Term::Var(z.clone()), Term::Var(w[1].clone()))),
                    Formula::rel("R", [Term::Var(z)]).not(),
                ])),
            ));
        }
        Formula::Exists(vars, Box::new(Formula::conj(parts)))
    }

    /// A finitely representable model of `{τ_1, …, τ_k}`: the point set `{1, …, k}`.
    #[must_use]
    pub fn finite_model(k: usize) -> Relation<DenseOrder> {
        Relation::from_points(
            vec![Var::new("x")],
            (1..=k as i64).map(|i| vec![Rat::from_i64(i)]),
        )
    }

    /// The number of maximal pieces any model of `τ_k` must have (at least `k`): the
    /// quantity that diverges and breaks compactness.
    #[must_use]
    pub fn required_pieces(model: &Relation<DenseOrder>) -> usize {
        decompose_1d(model).len()
    }
}

/// The finiteness-forcing sentences of Theorem 3.4.
pub mod reduction {
    use super::*;

    /// The sentence `α_i` for a binary relation `R`: between any two distinct values
    /// of the i-th column projection there is a value outside the projection.  Over a
    /// dense order, a finitely representable relation satisfying every `α_i` must be
    /// finite.
    ///
    /// `i` is 0-based and must be 0 or 1.
    #[must_use]
    pub fn alpha(i: usize) -> Formula<DenseAtom> {
        assert!(
            i < 2,
            "alpha is defined for the columns of a binary relation"
        );
        let proj = |value: &str| {
            // φ_i(value) = ∃ other. R(...)
            let other = Var::new(format!("o_{value}"));
            let args: Vec<Term> = if i == 0 {
                vec![Term::var(value), Term::Var(other.clone())]
            } else {
                vec![Term::Var(other.clone()), Term::var(value)]
            };
            Formula::Exists(
                vec![other],
                Box::new(Formula::Rel {
                    name: "R".into(),
                    args,
                }),
            )
        };
        // ∀x∀y (φ(x) ∧ φ(y) ∧ x < y → ∃z (x < z < y ∧ ¬φ(z)))
        Formula::forall(
            ["x", "y"],
            Formula::conj([
                proj("x"),
                proj("y"),
                Formula::Atom(DenseAtom::lt(Term::var("x"), Term::var("y"))),
            ])
            .implies(Formula::Exists(
                vec![Var::new("z")],
                Box::new(Formula::conj([
                    Formula::Atom(DenseAtom::lt(Term::var("x"), Term::var("z"))),
                    Formula::Atom(DenseAtom::lt(Term::var("z"), Term::var("y"))),
                    proj("z").not(),
                ])),
            )),
        )
    }

    /// The Theorem 3.4 translation: `ψ = φ ∧ α_0 ∧ α_1` has a finitely representable
    /// model iff `φ` has a finite model (for a schema with one binary relation `R`).
    #[must_use]
    pub fn translate(phi: Formula<DenseAtom>) -> Formula<DenseAtom> {
        Formula::conj([phi, alpha(0), alpha(1)])
    }
}

/// The isomorphism-defining sentence `σ_B` of Theorem 3.7 for monadic instances.
pub mod iso_sentence {
    use super::*;

    /// Builds `σ_B` for a monadic relation `B`: an existential description of the
    /// ordered endpoint structure of `B` together with the statement that `R`
    /// coincides with the corresponding union of points and intervals.  A finitely
    /// representable monadic instance satisfies `σ_B` iff it is the image of `B` under
    /// an automorphism of `(Q, ≤)`.
    #[must_use]
    pub fn sigma(b: &Relation<DenseOrder>) -> Formula<DenseAtom> {
        let pieces = decompose_1d(b);
        // One existential variable per finite endpoint, in increasing order.
        let mut vars: Vec<Var> = Vec::new();
        let mut var_of_endpoint = |idx: &mut usize| {
            let v = Var::new(format!("e{idx}"));
            *idx += 1;
            vars.push(v.clone());
            v
        };
        let mut idx = 0usize;
        let mut membership: Vec<Formula<DenseAtom>> = Vec::new();
        let x = Var::new("x");
        let mut piece_formulas: Vec<Formula<DenseAtom>> = Vec::new();
        for piece in &pieces {
            match piece {
                Piece1::Point(_) => {
                    let v = var_of_endpoint(&mut idx);
                    piece_formulas.push(Formula::Atom(DenseAtom::eq(
                        Term::Var(x.clone()),
                        Term::Var(v),
                    )));
                }
                Piece1::Interval { lo, hi } => {
                    let mut conj: Vec<Formula<DenseAtom>> = Vec::new();
                    if let Some((_, closed)) = lo {
                        let v = var_of_endpoint(&mut idx);
                        conj.push(Formula::Atom(if *closed {
                            DenseAtom::le(Term::Var(v), Term::Var(x.clone()))
                        } else {
                            DenseAtom::lt(Term::Var(v), Term::Var(x.clone()))
                        }));
                    }
                    if let Some((_, closed)) = hi {
                        let v = var_of_endpoint(&mut idx);
                        conj.push(Formula::Atom(if *closed {
                            DenseAtom::le(Term::Var(x.clone()), Term::Var(v))
                        } else {
                            DenseAtom::lt(Term::Var(x.clone()), Term::Var(v))
                        }));
                    }
                    piece_formulas.push(Formula::conj(conj));
                }
            }
        }
        // The endpoints are strictly increasing.
        let mut order: Vec<Formula<DenseAtom>> = Vec::new();
        for w in vars.windows(2) {
            order.push(Formula::Atom(DenseAtom::lt(
                Term::Var(w[0].clone()),
                Term::Var(w[1].clone()),
            )));
        }
        // R is exactly the union of the pieces.
        membership.push(Formula::Forall(
            vec![x.clone()],
            Box::new(Formula::rel("R", [Term::Var(x.clone())]).iff(Formula::disj(piece_formulas))),
        ));
        let body = Formula::conj(order.into_iter().chain(membership));
        if vars.is_empty() {
            body
        } else {
            Formula::Exists(vars, Box::new(body))
        }
    }
}

/// Proposition 2.8: monadic representability with equality only.
pub mod monadic {
    use super::*;

    /// Classification of a monadic dense-order relation for Proposition 2.8.
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub enum MonadicClass {
        /// A finite set of points.
        Finite,
        /// The complement of a finite set of points.
        CoFinite,
        /// Neither (it genuinely uses the order, e.g. an interval).
        Other,
    }

    /// Classifies a monadic relation: finite, co-finite, or other.  Proposition 2.8
    /// states that the first two classes are exactly the relations representable with
    /// equality (and constants) only.
    #[must_use]
    pub fn classify(relation: &Relation<DenseOrder>) -> MonadicClass {
        let pieces = decompose_1d(relation);
        if pieces.iter().all(Piece1::is_point) {
            return MonadicClass::Finite;
        }
        let co = decompose_1d(&relation.complement());
        if co.iter().all(Piece1::is_point) {
            return MonadicClass::CoFinite;
        }
        MonadicClass::Other
    }

    /// Whether the relation is representable in the language with equality and
    /// constants only (Proposition 2.8: iff finite or co-finite).
    #[must_use]
    pub fn equality_representable(relation: &Relation<DenseOrder>) -> bool {
        classify(relation) != MonadicClass::Other
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use frdb_core::fo::eval_sentence;
    use frdb_core::generic::Automorphism;
    use frdb_core::relation::{GenTuple, Instance};
    use frdb_core::schema::Schema;

    fn monadic_instance(rel: Relation<DenseOrder>) -> Instance<DenseOrder> {
        let mut inst = Instance::new(Schema::from_pairs([("R", 1)]));
        inst.set("R", rel).unwrap();
        inst
    }

    fn binary_instance(rel: Relation<DenseOrder>) -> Instance<DenseOrder> {
        let mut inst = Instance::new(Schema::from_pairs([("R", 2)]));
        inst.set("R", rel).unwrap();
        inst
    }

    fn r(v: i64) -> Rat {
        Rat::from_i64(v)
    }

    #[test]
    fn compactness_witness_each_finite_subset_has_a_model() {
        // The k-point model satisfies τ_1 … τ_k but not τ_{k+1}, and the number of
        // pieces a model needs grows with k (Theorem 3.2's divergence).  The range is
        // kept small because τ_k has 2k−1 nested quantifiers; the benchmark harness
        // measures the growth on larger k.
        for k in 1..=3usize {
            let model = compactness::finite_model(k);
            let inst = monadic_instance(model.clone());
            for j in 1..=k {
                assert!(
                    eval_sentence(&compactness::tau(j), &inst).unwrap(),
                    "τ_{j} must hold in the {k}-point model"
                );
            }
            if k <= 2 {
                assert!(!eval_sentence(&compactness::tau(k + 1), &inst).unwrap());
            }
            assert_eq!(compactness::required_pieces(&model), k);
        }
    }

    #[test]
    fn interval_models_fail_isolation() {
        // An interval satisfies τ_1 but not τ_2: its members are not isolated.
        let interval = Relation::new(
            vec![Var::new("x")],
            vec![GenTuple::new(vec![
                DenseAtom::le(Term::cst(0), Term::var("x")),
                DenseAtom::le(Term::var("x"), Term::cst(10)),
            ])],
        );
        let inst = monadic_instance(interval);
        assert!(eval_sentence(&compactness::tau(1), &inst).unwrap());
        assert!(!eval_sentence(&compactness::tau(2), &inst).unwrap());
    }

    #[test]
    fn theorem_3_4_alpha_accepts_finite_and_rejects_infinite_relations() {
        let finite = Relation::from_points(
            vec![Var::new("x"), Var::new("y")],
            vec![vec![r(1), r(2)], vec![r(3), r(4)]],
        );
        let inst = binary_instance(finite);
        assert!(eval_sentence(&reduction::alpha(0), &inst).unwrap());
        assert!(eval_sentence(&reduction::alpha(1), &inst).unwrap());
        // An infinite relation (a segment) violates α_0: its first projection is an
        // interval with no isolation.
        let segment = Relation::new(
            vec![Var::new("x"), Var::new("y")],
            vec![GenTuple::new(vec![
                DenseAtom::le(Term::cst(0), Term::var("x")),
                DenseAtom::le(Term::var("x"), Term::cst(1)),
                DenseAtom::eq(Term::var("y"), Term::cst(0)),
            ])],
        );
        let inst2 = binary_instance(segment);
        assert!(!eval_sentence(&reduction::alpha(0), &inst2).unwrap());
    }

    #[test]
    fn theorem_3_4_translation_tracks_finite_satisfiability() {
        // φ = "R is non-empty": ψ = translate(φ) holds on a finite instance and fails
        // on an instance whose relation is forced infinite.
        let phi: Formula<DenseAtom> = Formula::exists(
            ["x", "y"],
            Formula::rel("R", [Term::var("x"), Term::var("y")]),
        );
        let psi = reduction::translate(phi);
        let finite = binary_instance(Relation::from_points(
            vec![Var::new("x"), Var::new("y")],
            vec![vec![r(0), r(1)]],
        ));
        assert!(eval_sentence(&psi, &finite).unwrap());
        let infinite = binary_instance(Relation::new(
            vec![Var::new("x"), Var::new("y")],
            vec![GenTuple::new(vec![
                DenseAtom::le(Term::cst(0), Term::var("x")),
                DenseAtom::le(Term::var("x"), Term::cst(1)),
                DenseAtom::eq(Term::var("y"), Term::cst(7)),
            ])],
        ));
        assert!(!eval_sentence(&psi, &infinite).unwrap());
    }

    #[test]
    fn sigma_b_characterizes_isomorphic_instances() {
        // B = [0, 1] ∪ {5}.
        let b = Relation::new(
            vec![Var::new("x")],
            vec![GenTuple::new(vec![
                DenseAtom::le(Term::cst(0), Term::var("x")),
                DenseAtom::le(Term::var("x"), Term::cst(1)),
            ])],
        )
        .union(&Relation::from_points(
            vec![Var::new("x")],
            vec![vec![r(5)]],
        ));
        let sigma = iso_sentence::sigma(&b);
        // B itself is a model.
        assert!(eval_sentence(&sigma, &monadic_instance(b.clone())).unwrap());
        // An automorphic image is a model (Theorem 3.7, "if" direction).
        let mu = Automorphism::example_4_5();
        let image = mu.apply_relation(&b);
        assert!(eval_sentence(&sigma, &monadic_instance(image)).unwrap());
        // Non-isomorphic instances are not models.
        let missing_point = Relation::new(
            vec![Var::new("x")],
            vec![GenTuple::new(vec![
                DenseAtom::le(Term::cst(0), Term::var("x")),
                DenseAtom::le(Term::var("x"), Term::cst(1)),
            ])],
        );
        assert!(!eval_sentence(&sigma, &monadic_instance(missing_point)).unwrap());
        let two_points = Relation::from_points(vec![Var::new("x")], vec![vec![r(0)], vec![r(5)]]);
        assert!(!eval_sentence(&sigma, &monadic_instance(two_points)).unwrap());
    }

    #[test]
    fn proposition_2_8_classification() {
        use monadic::MonadicClass;
        let finite = Relation::from_points(vec![Var::new("x")], vec![vec![r(1)], vec![r(2)]]);
        assert_eq!(monadic::classify(&finite), MonadicClass::Finite);
        assert!(monadic::equality_representable(&finite));
        // Q \ {0} is co-finite (the Section 2.2 example ¬(x = 0)).
        let cofinite = Relation::from_points(vec![Var::new("x")], vec![vec![r(0)]]).complement();
        assert_eq!(monadic::classify(&cofinite), MonadicClass::CoFinite);
        assert!(monadic::equality_representable(&cofinite));
        // An interval is neither.
        let interval = Relation::new(
            vec![Var::new("x")],
            vec![GenTuple::new(vec![
                DenseAtom::le(Term::cst(0), Term::var("x")),
                DenseAtom::le(Term::var("x"), Term::cst(1)),
            ])],
        );
        assert_eq!(monadic::classify(&interval), MonadicClass::Other);
        assert!(!monadic::equality_representable(&interval));
        // The empty set and the full line are degenerate members of the two classes.
        assert_eq!(
            monadic::classify(&Relation::empty(vec![Var::new("x")])),
            MonadicClass::Finite
        );
        assert_eq!(
            monadic::classify(&Relation::universal(vec![Var::new("x")])),
            MonadicClass::CoFinite
        );
    }
}
