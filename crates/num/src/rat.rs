//! Exact rational numbers.
//!
//! A [`Rat`] is always stored in lowest terms with a strictly positive denominator,
//! so structural equality, ordering and hashing agree with numeric equality.  Rationals
//! are the constants of the paper's languages `L≤` and `L×`: every constraint atom in
//! the engine carries them.

use crate::bigint::ParseNumError;
use crate::{BigInt, Sign};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};
use std::str::FromStr;

/// An exact rational number `num / den`, normalized (`gcd(num, den) = 1`, `den > 0`).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rat {
    num: BigInt,
    den: BigInt,
}

impl Rat {
    /// The value `0`.
    #[must_use]
    pub fn zero() -> Self {
        Rat {
            num: BigInt::zero(),
            den: BigInt::one(),
        }
    }

    /// The value `1`.
    #[must_use]
    pub fn one() -> Self {
        Rat {
            num: BigInt::one(),
            den: BigInt::one(),
        }
    }

    /// Constructs a rational from numerator and denominator.
    ///
    /// # Panics
    /// Panics if `den` is zero.
    #[must_use]
    pub fn new(num: BigInt, den: BigInt) -> Self {
        assert!(!den.is_zero(), "rational with zero denominator");
        let (num, den) = if den.is_negative() {
            (-num, -den)
        } else {
            (num, den)
        };
        if num.is_zero() {
            return Rat::zero();
        }
        let g = num.gcd(&den);
        Rat {
            num: &num / &g,
            den: &den / &g,
        }
    }

    /// Constructs a rational from an integer.
    #[must_use]
    pub fn from_i64(v: i64) -> Self {
        Rat {
            num: BigInt::from(v),
            den: BigInt::one(),
        }
    }

    /// Constructs a rational `num / den` from machine integers.
    ///
    /// # Panics
    /// Panics if `den` is zero.
    #[must_use]
    pub fn from_pair(num: i64, den: i64) -> Self {
        Rat::new(BigInt::from(num), BigInt::from(den))
    }

    /// The numerator (sign-carrying).
    #[must_use]
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// The denominator (always strictly positive).
    #[must_use]
    pub fn denom(&self) -> &BigInt {
        &self.den
    }

    /// Returns `true` iff the value is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Returns `true` iff the value is an integer.
    #[must_use]
    pub fn is_integer(&self) -> bool {
        self.den == BigInt::one()
    }

    /// The sign of the value.
    #[must_use]
    pub fn sign(&self) -> Sign {
        self.num.sign()
    }

    /// Absolute value.
    #[must_use]
    pub fn abs(&self) -> Rat {
        Rat {
            num: self.num.abs(),
            den: self.den.clone(),
        }
    }

    /// The multiplicative inverse.
    ///
    /// # Panics
    /// Panics if the value is zero.
    #[must_use]
    pub fn recip(&self) -> Rat {
        assert!(!self.is_zero(), "reciprocal of zero");
        Rat::new(self.den.clone(), self.num.clone())
    }

    /// The midpoint `(self + other) / 2`.  Density of `Q` made executable: the engine
    /// uses this to pick witnesses strictly between two rationals.
    #[must_use]
    pub fn midpoint(&self, other: &Rat) -> Rat {
        (self + other) * Rat::from_pair(1, 2)
    }

    /// Floor as an integer.
    #[must_use]
    pub fn floor(&self) -> BigInt {
        let (q, r) = self.num.div_rem(&self.den);
        if self.num.is_negative() && !r.is_zero() {
            q - BigInt::one()
        } else {
            q
        }
    }

    /// Ceiling as an integer.
    #[must_use]
    pub fn ceil(&self) -> BigInt {
        -(-self.clone()).floor()
    }

    /// Approximate conversion to `f64` (for reporting only).
    #[must_use]
    pub fn to_f64(&self) -> f64 {
        self.num.to_f64() / self.den.to_f64()
    }

    /// Raises to an integer power (negative powers invert; `0^0 = 1`).
    ///
    /// # Panics
    /// Panics when raising zero to a negative power.
    #[must_use]
    pub fn pow(&self, exp: i32) -> Rat {
        if exp >= 0 {
            Rat {
                num: self.num.pow(exp as u32),
                den: self.den.pow(exp as u32),
            }
        } else {
            self.recip().pow(-exp)
        }
    }

    /// The smaller of two rationals.
    #[must_use]
    pub fn min(self, other: Rat) -> Rat {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of two rationals.
    #[must_use]
    pub fn max(self, other: Rat) -> Rat {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Default for Rat {
    fn default() -> Self {
        Rat::zero()
    }
}

impl From<i64> for Rat {
    fn from(v: i64) -> Self {
        Rat::from_i64(v)
    }
}

impl From<i32> for Rat {
    fn from(v: i32) -> Self {
        Rat::from_i64(i64::from(v))
    }
}

impl From<BigInt> for Rat {
    fn from(v: BigInt) -> Self {
        Rat {
            num: v,
            den: BigInt::one(),
        }
    }
}

impl Ord for Rat {
    fn cmp(&self, other: &Self) -> Ordering {
        // Denominators are positive, so cross-multiplication preserves order.
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }
}

impl Neg for &Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -(&self.num),
            den: self.den.clone(),
        }
    }
}

impl Add for &Rat {
    type Output = Rat;
    fn add(self, rhs: &Rat) -> Rat {
        Rat::new(
            &self.num * &rhs.den + &rhs.num * &self.den,
            &self.den * &rhs.den,
        )
    }
}

impl Sub for &Rat {
    type Output = Rat;
    fn sub(self, rhs: &Rat) -> Rat {
        Rat::new(
            &self.num * &rhs.den - &rhs.num * &self.den,
            &self.den * &rhs.den,
        )
    }
}

impl Mul for &Rat {
    type Output = Rat;
    fn mul(self, rhs: &Rat) -> Rat {
        Rat::new(&self.num * &rhs.num, &self.den * &rhs.den)
    }
}

impl Div for &Rat {
    type Output = Rat;
    fn div(self, rhs: &Rat) -> Rat {
        assert!(!rhs.is_zero(), "division by zero rational");
        Rat::new(&self.num * &rhs.den, &self.den * &rhs.num)
    }
}

macro_rules! forward_rat_binop {
    ($trait:ident, $method:ident) => {
        impl $trait for Rat {
            type Output = Rat;
            fn $method(self, rhs: Rat) -> Rat {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&Rat> for Rat {
            type Output = Rat;
            fn $method(self, rhs: &Rat) -> Rat {
                (&self).$method(rhs)
            }
        }
        impl $trait<Rat> for &Rat {
            type Output = Rat;
            fn $method(self, rhs: Rat) -> Rat {
                self.$method(&rhs)
            }
        }
    };
}

forward_rat_binop!(Add, add);
forward_rat_binop!(Sub, sub);
forward_rat_binop!(Mul, mul);
forward_rat_binop!(Div, div);

impl AddAssign<&Rat> for Rat {
    fn add_assign(&mut self, rhs: &Rat) {
        *self = &*self + rhs;
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_integer() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl fmt::Debug for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Rat({self})")
    }
}

impl FromStr for Rat {
    type Err = ParseNumError;

    /// Parses `"p"`, `"p/q"` or a decimal literal such as `"2.75"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if let Some((n, d)) = s.split_once('/') {
            let num: BigInt = n.parse()?;
            let den: BigInt = d.parse()?;
            if den.is_zero() {
                return Err(ParseNumError {
                    message: format!("zero denominator in {s:?}"),
                });
            }
            return Ok(Rat::new(num, den));
        }
        if let Some((int_part, frac_part)) = s.split_once('.') {
            if frac_part.is_empty() || !frac_part.bytes().all(|b| b.is_ascii_digit()) {
                return Err(ParseNumError {
                    message: format!("invalid decimal literal {s:?}"),
                });
            }
            let negative = int_part.trim_start().starts_with('-');
            let int: BigInt = if int_part.is_empty() || int_part == "-" || int_part == "+" {
                BigInt::zero()
            } else {
                int_part.parse()?
            };
            let frac: BigInt = frac_part.parse()?;
            let scale = BigInt::from(10i64).pow(frac_part.len() as u32);
            let mag = &int.abs() * &scale + frac;
            let num = if negative { -mag } else { mag };
            return Ok(Rat::new(num, scale));
        }
        Ok(Rat::from(s.parse::<BigInt>()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Rat {
        Rat::from_pair(n, d)
    }

    #[test]
    fn normalization() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert_eq!(r(0, 5), Rat::zero());
        assert_eq!(r(6, 3), Rat::from_i64(2));
    }

    #[test]
    fn arithmetic() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(2, 3) / r(4, 3), r(1, 2));
        assert_eq!(-r(1, 2), r(-1, 2));
    }

    #[test]
    fn ordering() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(7, 1) > r(13, 2));
        assert_eq!(r(3, 9), r(1, 3));
    }

    #[test]
    fn midpoint_is_strictly_between() {
        let a = r(1, 3);
        let b = r(1, 2);
        let m = a.midpoint(&b);
        assert!(a < m && m < b);
        assert_eq!(m, r(5, 12));
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(r(7, 2).floor(), BigInt::from(3i64));
        assert_eq!(r(7, 2).ceil(), BigInt::from(4i64));
        assert_eq!(r(-7, 2).floor(), BigInt::from(-4i64));
        assert_eq!(r(-7, 2).ceil(), BigInt::from(-3i64));
        assert_eq!(r(4, 1).floor(), BigInt::from(4i64));
        assert_eq!(r(4, 1).ceil(), BigInt::from(4i64));
    }

    #[test]
    fn parsing() {
        assert_eq!("3".parse::<Rat>().unwrap(), Rat::from_i64(3));
        assert_eq!("-3/6".parse::<Rat>().unwrap(), r(-1, 2));
        assert_eq!("2.75".parse::<Rat>().unwrap(), r(11, 4));
        assert_eq!("-0.5".parse::<Rat>().unwrap(), r(-1, 2));
        assert!("1/0".parse::<Rat>().is_err());
        assert!("abc".parse::<Rat>().is_err());
    }

    #[test]
    fn display() {
        assert_eq!(r(1, 2).to_string(), "1/2");
        assert_eq!(r(-4, 2).to_string(), "-2");
        assert_eq!(Rat::zero().to_string(), "0");
    }

    #[test]
    fn pow_and_recip() {
        assert_eq!(r(2, 3).pow(2), r(4, 9));
        assert_eq!(r(2, 3).pow(-1), r(3, 2));
        assert_eq!(r(2, 3).pow(0), Rat::one());
        assert_eq!(r(5, 7).recip(), r(7, 5));
    }
}
