//! Arbitrary-precision signed integers.
//!
//! Representation: a [`Sign`] plus a little-endian vector of `u64` limbs with no
//! high-order zero limbs.  Zero is represented by an empty limb vector and
//! [`Sign::Zero`], which makes structural equality coincide with numeric equality and
//! lets `#[derive(Hash)]`-style manual hashing stay trivial.

use crate::Sign;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Rem, Sub, SubAssign};
use std::str::FromStr;

/// An arbitrary-precision signed integer.
#[derive(Clone, Eq, PartialEq)]
pub struct BigInt {
    sign: Sign,
    /// Little-endian limbs; empty iff the value is zero; no trailing (high) zero limbs.
    mag: Vec<u64>,
}

impl BigInt {
    /// The value `0`.
    #[must_use]
    pub fn zero() -> Self {
        BigInt {
            sign: Sign::Zero,
            mag: Vec::new(),
        }
    }

    /// The value `1`.
    #[must_use]
    pub fn one() -> Self {
        BigInt::from(1i64)
    }

    /// Returns `true` iff the value is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// Returns `true` iff the value is strictly positive.
    #[must_use]
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Positive
    }

    /// Returns `true` iff the value is strictly negative.
    #[must_use]
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    /// The sign of the value.
    #[must_use]
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// Absolute value.
    #[must_use]
    pub fn abs(&self) -> BigInt {
        BigInt {
            sign: if self.sign == Sign::Zero {
                Sign::Zero
            } else {
                Sign::Positive
            },
            mag: self.mag.clone(),
        }
    }

    /// Construct from a sign and raw little-endian magnitude, normalizing.
    fn from_sign_mag(sign: Sign, mut mag: Vec<u64>) -> BigInt {
        while mag.last() == Some(&0) {
            mag.pop();
        }
        if mag.is_empty() {
            BigInt::zero()
        } else {
            debug_assert!(sign != Sign::Zero);
            BigInt { sign, mag }
        }
    }

    /// Number of significant bits in the magnitude (0 for zero).
    #[must_use]
    pub fn bits(&self) -> u64 {
        match self.mag.last() {
            None => 0,
            Some(&top) => (self.mag.len() as u64 - 1) * 64 + (64 - u64::from(top.leading_zeros())),
        }
    }

    /// Converts to `i64` if it fits.
    #[must_use]
    pub fn to_i64(&self) -> Option<i64> {
        match self.mag.len() {
            0 => Some(0),
            1 => {
                let m = self.mag[0];
                match self.sign {
                    Sign::Positive if m <= i64::MAX as u64 => Some(m as i64),
                    Sign::Negative if m <= i64::MAX as u64 + 1 => Some(-(m as i128) as i64),
                    _ => None,
                }
            }
            _ => None,
        }
    }

    /// Approximate conversion to `f64` (for reporting only; never used in decisions).
    #[must_use]
    pub fn to_f64(&self) -> f64 {
        let mut acc = 0.0f64;
        for &limb in self.mag.iter().rev() {
            acc = acc * 1.8446744073709552e19 + limb as f64;
        }
        match self.sign {
            Sign::Negative => -acc,
            _ => acc,
        }
    }

    // ---- magnitude helpers -------------------------------------------------

    fn cmp_mag(a: &[u64], b: &[u64]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for i in (0..a.len()).rev() {
            match a[i].cmp(&b[i]) {
                Ordering::Equal => {}
                other => return other,
            }
        }
        Ordering::Equal
    }

    fn add_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for i in 0..long.len() {
            let x = long[i] as u128;
            let y = if i < short.len() { short[i] as u128 } else { 0 };
            let s = x + y + carry as u128;
            out.push(s as u64);
            carry = (s >> 64) as u64;
        }
        if carry != 0 {
            out.push(carry);
        }
        out
    }

    /// Requires `a >= b` as magnitudes.
    fn sub_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        debug_assert!(Self::cmp_mag(a, b) != Ordering::Less);
        let mut out = Vec::with_capacity(a.len());
        let mut borrow = 0i128;
        for i in 0..a.len() {
            let x = a[i] as i128;
            let y = if i < b.len() { b[i] as i128 } else { 0 };
            let mut d = x - y - borrow;
            if d < 0 {
                d += 1i128 << 64;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out.push(d as u64);
        }
        debug_assert_eq!(borrow, 0);
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    fn mul_mag(a: &[u64], b: &[u64]) -> Vec<u64> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u64; a.len() + b.len()];
        for (i, &ai) in a.iter().enumerate() {
            if ai == 0 {
                continue;
            }
            let mut carry = 0u128;
            for (j, &bj) in b.iter().enumerate() {
                let cur = out[i + j] as u128 + ai as u128 * bj as u128 + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + b.len();
            while carry != 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        while out.last() == Some(&0) {
            out.pop();
        }
        out
    }

    /// Binary long division on magnitudes: returns `(quotient, remainder)`.
    ///
    /// Panics if `b` is zero.
    fn divmod_mag(a: &[u64], b: &[u64]) -> (Vec<u64>, Vec<u64>) {
        assert!(!b.is_empty(), "division by zero");
        if Self::cmp_mag(a, b) == Ordering::Less {
            return (Vec::new(), a.to_vec());
        }
        let total_bits = a.len() * 64;
        let mut quotient = vec![0u64; a.len()];
        let mut rem: Vec<u64> = Vec::new();
        for bit in (0..total_bits).rev() {
            // rem = rem << 1 | bit(a, bit)
            shl1(&mut rem);
            let abit = (a[bit / 64] >> (bit % 64)) & 1;
            if abit == 1 {
                if rem.is_empty() {
                    rem.push(1);
                } else {
                    rem[0] |= 1;
                }
            }
            if Self::cmp_mag(&rem, b) != Ordering::Less {
                rem = Self::sub_mag(&rem, b);
                quotient[bit / 64] |= 1 << (bit % 64);
            }
        }
        while quotient.last() == Some(&0) {
            quotient.pop();
        }
        (quotient, rem)
    }

    /// Truncated division with remainder: `self = q * other + r`, with `|r| < |other|`
    /// and `r` having the sign of `self` (or zero).
    ///
    /// Panics if `other` is zero.
    #[must_use]
    pub fn div_rem(&self, other: &BigInt) -> (BigInt, BigInt) {
        assert!(!other.is_zero(), "division by zero");
        let (qm, rm) = Self::divmod_mag(&self.mag, &other.mag);
        let qsign = self.sign.mul(other.sign);
        let q = BigInt::from_sign_mag(if qm.is_empty() { Sign::Zero } else { qsign }, qm);
        let r = BigInt::from_sign_mag(if rm.is_empty() { Sign::Zero } else { self.sign }, rm);
        (q, r)
    }

    /// Greatest common divisor (always non-negative).
    #[must_use]
    pub fn gcd(&self, other: &BigInt) -> BigInt {
        let mut a = self.abs();
        let mut b = other.abs();
        while !b.is_zero() {
            let r = a.div_rem(&b).1.abs();
            a = b;
            b = r;
        }
        a
    }

    /// Raises to a non-negative integer power (square-and-multiply).
    #[must_use]
    pub fn pow(&self, mut exp: u32) -> BigInt {
        let mut base = self.clone();
        let mut acc = BigInt::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = &acc * &base;
            }
            base = &base * &base;
            exp >>= 1;
        }
        acc
    }
}

/// Shift a little-endian magnitude left by one bit, in place.
fn shl1(mag: &mut Vec<u64>) {
    let mut carry = 0u64;
    for limb in mag.iter_mut() {
        let new_carry = *limb >> 63;
        *limb = (*limb << 1) | carry;
        carry = new_carry;
    }
    if carry != 0 {
        mag.push(carry);
    }
}

// ---- conversions -----------------------------------------------------------

impl From<i64> for BigInt {
    fn from(v: i64) -> Self {
        BigInt::from(v as i128)
    }
}

impl From<u64> for BigInt {
    fn from(v: u64) -> Self {
        if v == 0 {
            BigInt::zero()
        } else {
            BigInt {
                sign: Sign::Positive,
                mag: vec![v],
            }
        }
    }
}

impl From<i128> for BigInt {
    fn from(v: i128) -> Self {
        match v.cmp(&0) {
            Ordering::Equal => BigInt::zero(),
            Ordering::Greater => BigInt::from_sign_mag(
                Sign::Positive,
                vec![(v as u128) as u64, ((v as u128) >> 64) as u64],
            ),
            Ordering::Less => {
                let m = v.unsigned_abs();
                BigInt::from_sign_mag(Sign::Negative, vec![m as u64, (m >> 64) as u64])
            }
        }
    }
}

impl From<i32> for BigInt {
    fn from(v: i32) -> Self {
        BigInt::from(i64::from(v))
    }
}

// ---- comparison ------------------------------------------------------------

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.sign, other.sign) {
            (a, b) if a != b => a.cmp(&b),
            (Sign::Zero, Sign::Zero) => Ordering::Equal,
            (Sign::Positive, Sign::Positive) => Self::cmp_mag(&self.mag, &other.mag),
            (Sign::Negative, Sign::Negative) => Self::cmp_mag(&other.mag, &self.mag),
            _ => unreachable!(),
        }
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Hash for BigInt {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.sign.hash(state);
        self.mag.hash(state);
    }
}

// ---- arithmetic ------------------------------------------------------------

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        BigInt {
            sign: self.sign.neg(),
            mag: self.mag.clone(),
        }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(mut self) -> BigInt {
        self.sign = self.sign.neg();
        self
    }
}

impl Add for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        match (self.sign, rhs.sign) {
            (Sign::Zero, _) => rhs.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => BigInt::from_sign_mag(a, BigInt::add_mag(&self.mag, &rhs.mag)),
            (a, _) => match BigInt::cmp_mag(&self.mag, &rhs.mag) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => BigInt::from_sign_mag(a, BigInt::sub_mag(&self.mag, &rhs.mag)),
                Ordering::Less => {
                    BigInt::from_sign_mag(rhs.sign, BigInt::sub_mag(&rhs.mag, &self.mag))
                }
            },
        }
    }
}

impl Sub for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigInt) -> BigInt {
        self + &(-rhs)
    }
}

impl Mul for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        let sign = self.sign.mul(rhs.sign);
        if sign == Sign::Zero {
            BigInt::zero()
        } else {
            BigInt::from_sign_mag(sign, BigInt::mul_mag(&self.mag, &rhs.mag))
        }
    }
}

impl Div for &BigInt {
    type Output = BigInt;
    fn div(self, rhs: &BigInt) -> BigInt {
        self.div_rem(rhs).0
    }
}

impl Rem for &BigInt {
    type Output = BigInt;
    fn rem(self, rhs: &BigInt) -> BigInt {
        self.div_rem(rhs).1
    }
}

macro_rules! forward_binop {
    ($trait:ident, $method:ident) => {
        impl $trait for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: &BigInt) -> BigInt {
                (&self).$method(rhs)
            }
        }
        impl $trait<BigInt> for &BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                self.$method(&rhs)
            }
        }
    };
}

forward_binop!(Add, add);
forward_binop!(Sub, sub);
forward_binop!(Mul, mul);
forward_binop!(Div, div);
forward_binop!(Rem, rem);

impl AddAssign<&BigInt> for BigInt {
    fn add_assign(&mut self, rhs: &BigInt) {
        *self = &*self + rhs;
    }
}

impl SubAssign<&BigInt> for BigInt {
    fn sub_assign(&mut self, rhs: &BigInt) {
        *self = &*self - rhs;
    }
}

impl MulAssign<&BigInt> for BigInt {
    fn mul_assign(&mut self, rhs: &BigInt) {
        *self = &*self * rhs;
    }
}

// ---- formatting & parsing ---------------------------------------------------

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // Repeatedly divide by 10^19 (the largest power of ten below 2^64).
        let chunk = BigInt::from(10_000_000_000_000_000_000u64);
        let mut n = self.abs();
        let mut parts: Vec<u64> = Vec::new();
        while !n.is_zero() {
            let (q, r) = n.div_rem(&chunk);
            parts.push(
                r.to_i64()
                    .map(|v| v as u64)
                    .unwrap_or_else(|| r.mag.first().copied().unwrap_or(0)),
            );
            n = q;
        }
        if self.is_negative() {
            write!(f, "-")?;
        }
        let mut iter = parts.iter().rev();
        if let Some(first) = iter.next() {
            write!(f, "{first}")?;
        }
        for part in iter {
            write!(f, "{part:019}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BigInt({self})")
    }
}

/// Error returned when parsing a [`BigInt`] or [`crate::Rat`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNumError {
    /// Human-readable description of the failure.
    pub message: String,
}

impl fmt::Display for ParseNumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "number parse error: {}", self.message)
    }
}

impl std::error::Error for ParseNumError {}

impl FromStr for BigInt {
    type Err = ParseNumError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let (neg, digits) = match s.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, s.strip_prefix('+').unwrap_or(s)),
        };
        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
            return Err(ParseNumError {
                message: format!("invalid integer literal {s:?}"),
            });
        }
        let ten = BigInt::from(10i64);
        let mut acc = BigInt::zero();
        for b in digits.bytes() {
            acc = &acc * &ten + BigInt::from(i64::from(b - b'0'));
        }
        if neg {
            acc = -acc;
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(v: i64) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn small_arithmetic_matches_i64() {
        for &x in &[-7i64, -1, 0, 1, 3, 42, 1_000_000_007] {
            for &y in &[-13i64, -2, 0, 1, 5, 99, 123_456_789] {
                assert_eq!((b(x) + b(y)).to_i64(), Some(x + y), "{x}+{y}");
                assert_eq!((b(x) - b(y)).to_i64(), Some(x - y), "{x}-{y}");
                assert_eq!((b(x) * b(y)).to_i64(), Some(x * y), "{x}*{y}");
                if y != 0 {
                    assert_eq!((b(x) / b(y)).to_i64(), Some(x / y), "{x}/{y}");
                    assert_eq!((b(x) % b(y)).to_i64(), Some(x % y), "{x}%{y}");
                }
            }
        }
    }

    #[test]
    fn ordering_matches_i64() {
        let vals = [-1_000_000i64, -3, -1, 0, 1, 2, 7, 1_000_000_000];
        for &x in &vals {
            for &y in &vals {
                assert_eq!(b(x).cmp(&b(y)), x.cmp(&y));
            }
        }
    }

    #[test]
    fn large_multiplication_and_division_roundtrip() {
        let a: BigInt = "123456789012345678901234567890123456789".parse().unwrap();
        let c: BigInt = "98765432109876543210987654321".parse().unwrap();
        let prod = &a * &c;
        let (q, r) = prod.div_rem(&c);
        assert_eq!(q, a);
        assert!(r.is_zero());
    }

    #[test]
    fn display_and_parse_roundtrip() {
        for s in [
            "0",
            "-1",
            "42",
            "18446744073709551616",
            "-340282366920938463463374607431768211456",
        ] {
            let n: BigInt = s.parse().unwrap();
            assert_eq!(n.to_string(), s);
        }
    }

    #[test]
    fn gcd_basic() {
        assert_eq!(b(12).gcd(&b(18)), b(6));
        assert_eq!(b(-12).gcd(&b(18)), b(6));
        assert_eq!(b(0).gcd(&b(5)), b(5));
        assert_eq!(b(7).gcd(&b(0)), b(7));
        assert_eq!(b(0).gcd(&b(0)), b(0));
    }

    #[test]
    fn pow_matches_reference() {
        assert_eq!(b(2).pow(10), b(1024));
        assert_eq!(b(10).pow(0), b(1));
        assert_eq!(b(-3).pow(3), b(-27));
        assert_eq!(b(10).pow(25).to_string(), "10000000000000000000000000");
    }

    #[test]
    fn bits_counts_significant_bits() {
        assert_eq!(b(0).bits(), 0);
        assert_eq!(b(1).bits(), 1);
        assert_eq!(b(255).bits(), 8);
        assert_eq!(BigInt::from(1i128 << 70).bits(), 71);
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn division_by_zero_panics() {
        let _ = b(1).div_rem(&b(0));
    }
}
