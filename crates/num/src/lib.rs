//! # frdb-num
//!
//! Exact arithmetic substrate for the `frdb` constraint-database engine.
//!
//! Finitely representable databases (Grumbach & Su) interpret constants over the
//! ordered rationals `(Q, ≤)` or the ordered real field.  Every engine in the
//! workspace therefore needs *exact* rational arithmetic: dense-order reasoning only
//! compares constants, but Fourier–Motzkin elimination (linear constraints) and Sturm
//! sequences (polynomial constraints) multiply and add them with unbounded coefficient
//! growth.  This crate provides:
//!
//! * [`BigInt`] — arbitrary-precision signed integers (sign + little-endian `u64`
//!   limbs), with schoolbook multiplication and binary long division.  No `unsafe`,
//!   no external dependencies.
//! * [`Rat`] — exact rationals, always kept in lowest terms with a positive
//!   denominator, so that structural equality, ordering and hashing agree with
//!   numeric equality.
//!
//! The types are deliberately simple rather than maximally fast: database instances in
//! the paper's setting have a few hundred constraints, and constants stay small except
//! inside quantifier elimination, where correctness matters far more than speed.
//!
//! ```
//! use frdb_num::{BigInt, Rat};
//!
//! let a = Rat::from_pair(355, 113);
//! let b = Rat::from_i64(3);
//! assert!(b < a);
//! assert_eq!((a.clone() - b).to_string(), "16/113");
//! assert_eq!(BigInt::from(10).pow(20).to_string(), "100000000000000000000");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bigint;
mod rat;

pub use bigint::BigInt;
pub use rat::Rat;

/// Sign of a [`BigInt`] or [`Rat`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Sign {
    /// Strictly negative.
    Negative,
    /// Zero.
    Zero,
    /// Strictly positive.
    Positive,
}

impl Sign {
    /// The sign obtained by multiplying two signed quantities.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Sign) -> Sign {
        match (self, other) {
            (Sign::Zero, _) | (_, Sign::Zero) => Sign::Zero,
            (Sign::Positive, Sign::Positive) | (Sign::Negative, Sign::Negative) => Sign::Positive,
            _ => Sign::Negative,
        }
    }

    /// The opposite sign.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn neg(self) -> Sign {
        match self {
            Sign::Negative => Sign::Positive,
            Sign::Zero => Sign::Zero,
            Sign::Positive => Sign::Negative,
        }
    }
}
