//! Property-based tests for the arithmetic substrate.
//!
//! `BigInt` and `Rat` arithmetic is checked against `i128` reference arithmetic on
//! values small enough not to overflow it, and against algebraic laws (commutativity,
//! associativity, distributivity, field axioms for `Rat`) on arbitrarily large values
//! built by multiplying random factors.

use frdb_num::{BigInt, Rat};
use proptest::prelude::*;

fn bigint_strategy() -> impl Strategy<Value = BigInt> {
    // Mix of small values and large products that exceed 64 bits.
    prop_oneof![
        any::<i64>().prop_map(BigInt::from),
        (any::<i64>(), any::<i64>(), any::<i64>())
            .prop_map(|(a, b, c)| { BigInt::from(a) * BigInt::from(b) + BigInt::from(c) }),
    ]
}

fn rat_strategy() -> impl Strategy<Value = Rat> {
    (any::<i32>(), 1i32..=10_000).prop_map(|(n, d)| Rat::from_pair(i64::from(n), i64::from(d)))
}

proptest! {
    #[test]
    fn bigint_add_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let sum = BigInt::from(a) + BigInt::from(b);
        prop_assert_eq!(sum, BigInt::from(i128::from(a) + i128::from(b)));
    }

    #[test]
    fn bigint_mul_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let prod = BigInt::from(a) * BigInt::from(b);
        prop_assert_eq!(prod, BigInt::from(i128::from(a) * i128::from(b)));
    }

    #[test]
    fn bigint_cmp_matches_i64(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(BigInt::from(a).cmp(&BigInt::from(b)), a.cmp(&b));
    }

    #[test]
    fn bigint_div_rem_invariant(a in bigint_strategy(), b in bigint_strategy()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert_eq!(&q * &b + &r, a.clone());
        prop_assert!(r.abs() < b.abs());
    }

    #[test]
    fn bigint_add_commutative_associative(a in bigint_strategy(), b in bigint_strategy(), c in bigint_strategy()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
    }

    #[test]
    fn bigint_mul_distributes(a in bigint_strategy(), b in bigint_strategy(), c in bigint_strategy()) {
        prop_assert_eq!(&a * &(&b + &c), &a * &b + &a * &c);
    }

    #[test]
    fn bigint_display_parse_roundtrip(a in bigint_strategy()) {
        let s = a.to_string();
        prop_assert_eq!(s.parse::<BigInt>().unwrap(), a);
    }

    #[test]
    fn bigint_gcd_divides_both(a in bigint_strategy(), b in bigint_strategy()) {
        let g = a.gcd(&b);
        if !g.is_zero() {
            prop_assert!(a.div_rem(&g).1.is_zero());
            prop_assert!(b.div_rem(&g).1.is_zero());
        } else {
            prop_assert!(a.is_zero() && b.is_zero());
        }
    }

    #[test]
    fn rat_field_axioms(a in rat_strategy(), b in rat_strategy(), c in rat_strategy()) {
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&a * &(&b + &c), &a * &b + &a * &c);
        prop_assert_eq!(&a + &Rat::zero(), a.clone());
        prop_assert_eq!(&a * &Rat::one(), a.clone());
        prop_assert_eq!(&a - &a, Rat::zero());
        if !a.is_zero() {
            prop_assert_eq!(&a * &a.recip(), Rat::one());
        }
    }

    #[test]
    fn rat_ordering_total_and_consistent(a in rat_strategy(), b in rat_strategy()) {
        let diff = &a - &b;
        match a.cmp(&b) {
            std::cmp::Ordering::Less => prop_assert!(diff.sign() == frdb_num::Sign::Negative),
            std::cmp::Ordering::Equal => prop_assert!(diff.is_zero()),
            std::cmp::Ordering::Greater => prop_assert!(diff.sign() == frdb_num::Sign::Positive),
        }
    }

    #[test]
    fn rat_midpoint_between(a in rat_strategy(), b in rat_strategy()) {
        prop_assume!(a != b);
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let m = lo.midpoint(&hi);
        prop_assert!(lo < m && m < hi);
    }

    #[test]
    fn rat_display_parse_roundtrip(a in rat_strategy()) {
        let s = a.to_string();
        prop_assert_eq!(s.parse::<Rat>().unwrap(), a);
    }

    #[test]
    fn rat_floor_ceil_bracket(a in rat_strategy()) {
        let f = Rat::from(a.floor());
        let c = Rat::from(a.ceil());
        prop_assert!(f <= a && a <= c);
        prop_assert!(&c - &f <= Rat::one());
    }
}
