//! # frdb — finitely representable databases
//!
//! Umbrella crate for the workspace implementing Grumbach & Su, *Finitely
//! Representable Databases* (PODS 1994 / JCSS 1997): a constraint-database engine over
//! the ordered rationals with first-order and inflationary `DATALOG¬` query languages,
//! the paper's query catalog, Ehrenfeucht–Fraïssé games, and the executable pieces of
//! its model theory.
//!
//! See the individual crates for details:
//!
//! * [`core`] (re-export of `frdb-core`) — logic, dense-order constraints,
//!   generalized relations, FO evaluation, normal forms, encodings, genericity.
//! * [`datalog`] — inflationary `DATALOG¬` (Section 6).
//! * [`linear`] — `FO(≤,+)` with Fourier–Motzkin elimination (Section 7).
//! * [`poly`] — univariate real polynomial constraints (Proposition 2.9).
//! * [`games`] — Ehrenfeucht–Fraïssé games (Section 5).
//! * [`queries`] — the query catalog of Fig. 8 and the reductions of Figs. 3–6.
//! * [`modeltheory`] — compactness failure, the Theorem 3.4 reduction, σ_B.
//! * [`lang`] — the surface language: parser + printers for schemas,
//!   instances, FO queries and `DATALOG¬` programs (`.frdb` scripts, run by
//!   the `frdb-cli` binary).
//! * [`db`] — the embeddable concurrent database engine: a shared
//!   [`Database`](db::Database) handle with atomic snapshot reads, a
//!   copy-on-write commit path, and plan sharing through the process-wide
//!   plan cache.
//!
//! ```
//! use frdb::prelude::*;
//!
//! // The rectangle of Example 2.5, queried with the relational calculus.
//! let mut inst: Instance<DenseOrder> = Instance::new(Schema::from_pairs([("R", 2)]));
//! inst.set(
//!     "R",
//!     Relation::new(
//!         vec![Var::new("x"), Var::new("y")],
//!         vec![GenTuple::new(vec![
//!             DenseAtom::le(Term::cst(0), Term::var("x")),
//!             DenseAtom::le(Term::var("x"), Term::cst(4)),
//!             DenseAtom::le(Term::cst(0), Term::var("y")),
//!             DenseAtom::le(Term::var("y"), Term::cst(3)),
//!         ])],
//!     ),
//! )
//! .unwrap();
//! let q: Formula<DenseAtom> = Formula::exists(["y"], Formula::rel("R", [Term::var("x"), Term::var("y")]));
//! let shadow = eval_query(&q, &[Var::new("x")], &inst).unwrap();
//! assert!(shadow.contains(&[Rat::from_i64(2)]));
//! assert!(!shadow.contains(&[Rat::from_i64(5)]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use frdb_core as core;
pub use frdb_datalog as datalog;
pub use frdb_db as db;
pub use frdb_games as games;
pub use frdb_lang as lang;
pub use frdb_linear as linear;
pub use frdb_modeltheory as modeltheory;
pub use frdb_num as num;
pub use frdb_poly as poly;
pub use frdb_queries as queries;

/// The most frequently used types and functions, re-exported for convenience.
pub mod prelude {
    pub use frdb_core::dense::{CmpOp, DenseAtom, DenseOrder};
    pub use frdb_core::encode::{database_size, encode_instance, EncodeError};
    pub use frdb_core::fo::{
        compile_query, eval_query, eval_query_expand, eval_sentence, eval_sentence_expand,
        CompiledQuery, EvalError,
    };
    pub use frdb_core::generic::Automorphism;
    pub use frdb_core::logic::{Formula, Term, Var};
    pub use frdb_core::relation::{GenTuple, Instance, Relation};
    pub use frdb_core::schema::{RelName, Schema, SchemaError};
    pub use frdb_core::theory::{Atom, Theory};
    pub use frdb_datalog::{Literal, Program, Rule};
    pub use frdb_db::{Database, DbConfig, DbError, Snapshot};
    pub use frdb_lang::{
        parse_formula, parse_gen_tuple, parse_program, parse_relation, parse_rule, parse_script,
        AtomSyntax, ParseError, Script, Stmt, TheoryKind,
    };
    pub use frdb_num::{BigInt, Rat};
}
