//! End-to-end tests for the script runner: every example script executes, the
//! Fig. 8 catalog text files parse to exactly the Rust-built catalog ASTs, and
//! the land-registry script reproduces the Rust example's results.

use frdb_cli::{dense_relation, Session};
use frdb_core::dense::{DenseAtom, DenseOrder};
use frdb_core::logic::{Term, Var};
use frdb_core::relation::{GenTuple, Instance, Relation};
use frdb_core::schema::Schema;
use frdb_lang::{parse_script, script_theory, Stmt};
use frdb_queries::catalog::fo_catalog;
use std::path::PathBuf;

fn scripts_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/scripts")
}

fn read(path: &PathBuf) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path:?}: {e}"))
}

fn run_script(path: &PathBuf) -> (Session, String) {
    let src = read(path);
    let kind = script_theory(&src).unwrap_or_else(|e| panic!("{path:?}: {e}"));
    let mut session = Session::for_theory(kind);
    let mut out = Vec::new();
    session
        .execute_source(&src, &mut out)
        .unwrap_or_else(|e| panic!("{path:?} failed:\n{}", e.render("script", &src)));
    (session, String::from_utf8(out).expect("utf-8 output"))
}

#[test]
fn every_example_script_executes() {
    let dir = scripts_dir();
    let mut count = 0;
    for sub in [dir.clone(), dir.join("catalog")] {
        for entry in std::fs::read_dir(&sub).expect("scripts directory") {
            let path = entry.expect("dir entry").path();
            if path.extension().is_some_and(|e| e == "frdb") {
                run_script(&path);
                count += 1;
            }
        }
    }
    assert!(
        count >= 13,
        "expected the full script corpus, found {count}"
    );
}

/// Every Fig. 8 catalog entry re-expressed as text parses to **exactly** the
/// Rust-built AST: same formula, same answer variables.
#[test]
fn catalog_text_files_are_ast_identical_to_the_rust_catalog() {
    for entry in fo_catalog() {
        let path = scripts_dir()
            .join("catalog")
            .join(format!("{}.frdb", entry.name));
        let src = read(&path);
        let script = parse_script::<DenseOrder>(&src)
            .unwrap_or_else(|e| panic!("{path:?}:\n{}", e.render("script", &src)));
        let wanted = entry.name.replace('-', "_");
        let query = script
            .stmts
            .iter()
            .find_map(|s| match &s.node {
                Stmt::Query {
                    name,
                    free,
                    formula,
                } if *name == wanted => Some((free.clone(), formula.clone())),
                _ => None,
            })
            .unwrap_or_else(|| panic!("{path:?} defines no query `{wanted}`"));
        assert_eq!(query.0, entry.free, "{}: free variables differ", entry.name);
        assert_eq!(
            query.1, entry.formula,
            "{}: parsed formula differs from the Rust AST",
            entry.name
        );
    }
}

fn parcel(x0: i64, x1: i64, y0: i64, y1: i64) -> GenTuple<DenseAtom> {
    GenTuple::new(vec![
        DenseAtom::le(Term::cst(x0), Term::var("x")),
        DenseAtom::le(Term::var("x"), Term::cst(x1)),
        DenseAtom::le(Term::cst(y0), Term::var("y")),
        DenseAtom::le(Term::var("y"), Term::cst(y1)),
    ])
}

/// The land-registry script reproduces the Rust example end to end: the
/// estates overlap and the materialized `disputed` relation equals the
/// intersection computed through the relation algebra.
#[test]
fn land_registry_script_matches_the_rust_example() {
    let path = scripts_dir().join("land_registry.frdb");
    let (session, output) = run_script(&path);

    // The Rust example's data, built through the API (examples/land_registry.rs).
    let vars = vec![Var::new("x"), Var::new("y")];
    let alice =
        Relation::<DenseOrder>::new(vars.clone(), vec![parcel(0, 4, 0, 4), parcel(4, 8, 0, 2)]);
    let bob = Relation::new(
        vars.clone(),
        vec![parcel(6, 10, 1, 5), parcel(20, 24, 0, 4)],
    );

    let script_alice = dense_relation(&session, "alice").expect("alice is set");
    let script_bob = dense_relation(&session, "bob").expect("bob is set");
    assert!(script_alice.equivalent(&alice.rename(script_alice.vars().to_vec())));
    assert!(script_bob.equivalent(&bob.rename(script_bob.vars().to_vec())));

    let disputed = dense_relation(&session, "disputed").expect("disputed is materialized");
    let expected = alice.intersect(&bob.rename(vars));
    assert!(
        disputed.equivalent(&expected.rename(disputed.vars().to_vec())),
        "script disputed = {disputed}, API intersection = {expected}"
    );
    assert!(!disputed.is_empty(), "the estates do overlap");
    assert!(output.contains("check ∃x,y.((alice(x, y) ∧ bob(x, y))) = true"));
}

/// Golden test: the land-registry `explain disputed;` transcript is pinned
/// verbatim (and reproduced in `docs/ARCHITECTURE.md`).  The rendering is
/// deterministic — estimated cardinalities from the statistics snapshot,
/// actual generalized-tuple counts from the evaluator's memo, no timings.
#[test]
fn land_registry_explain_transcript_is_pinned() {
    let path = scripts_dir().join("land_registry.frdb");
    let (_, output) = run_script(&path);
    let golden = "\
explain disputed
⋈ join → (x, y)  [est≈1.3, actual=1, box-sweep 1/4 pairs]
├─ alice(x, y)  [est≈2, actual=2]
└─ bob(x, y)  [est≈2, actual=2]
";
    assert!(
        output.contains(golden),
        "explain transcript drifted.\nwanted:\n{golden}\ngot:\n{output}"
    );
}

/// Byte-exact golden transcripts: with timings off (the default), a script's
/// entire output is deterministic, so whole transcripts can be pinned.  Run
/// with `UPDATE_GOLDENS=1` to regenerate the `.golden` files after an
/// intentional output change.
#[test]
fn script_transcripts_match_pinned_goldens() {
    for name in [
        "land_registry",
        "quickstart",
        "graph_reachability",
        "observability",
        "updates",
    ] {
        let path = scripts_dir().join(format!("{name}.frdb"));
        let (_, output) = run_script(&path);
        let golden_path = scripts_dir().join(format!("{name}.golden"));
        if std::env::var_os("UPDATE_GOLDENS").is_some() {
            std::fs::write(&golden_path, &output)
                .unwrap_or_else(|e| panic!("cannot write {golden_path:?}: {e}"));
            continue;
        }
        let golden = read(&golden_path);
        assert_eq!(
            output, golden,
            "{name}.frdb transcript drifted from {name}.golden \
             (rerun with UPDATE_GOLDENS=1 if intentional)"
        );
    }
}

/// The quickstart script's shadow agrees with the API evaluation on the same
/// region.
#[test]
fn quickstart_script_shadow_matches_api_evaluation() {
    let path = scripts_dir().join("quickstart.frdb");
    let (session, _) = run_script(&path);
    let region = dense_relation(&session, "region").expect("region is set");
    let shadow = dense_relation(&session, "shadow").expect("shadow is materialized");
    let expected = region.project_out(&[Var::new("y")]);
    assert!(shadow.equivalent(&expected.rename(shadow.vars().to_vec())));
}

/// `Instance`'s `Display` output is itself a loadable script: dump an instance
/// built through the API, execute the dump, and compare states.
#[test]
fn instance_display_roundtrips_through_the_interpreter() {
    let schema = Schema::from_pairs([("R", 1), ("S", 2)]);
    let mut inst: Instance<DenseOrder> = Instance::new(schema);
    inst.set(
        "R",
        Relation::new(
            vec![Var::new("x")],
            vec![GenTuple::new(vec![
                DenseAtom::le(Term::cst(0), Term::var("x")),
                DenseAtom::lt(Term::var("x"), Term::cst(7)),
            ])],
        ),
    )
    .unwrap();
    inst.set(
        "S",
        Relation::from_points(
            vec![Var::new("x"), Var::new("y")],
            vec![vec![1.into(), 2.into()], vec![3.into(), 4.into()]],
        ),
    )
    .unwrap();

    let dumped = inst.to_string();
    let mut session = Session::for_theory(frdb_lang::TheoryKind::Dense);
    let mut out = Vec::new();
    session
        .execute_source(&dumped, &mut out)
        .unwrap_or_else(|e| panic!("dump failed to load:\n{dumped}\n{e}"));
    let reloaded_r = dense_relation(&session, "R").expect("R reloaded");
    let reloaded_s = dense_relation(&session, "S").expect("S reloaded");
    let orig_r = inst.get(&"R".into()).unwrap();
    let orig_s = inst.get(&"S".into()).unwrap();
    assert!(reloaded_r.equivalent(&orig_r.rename(reloaded_r.vars().to_vec())));
    assert!(reloaded_s.equivalent(&orig_s.rename(reloaded_s.vars().to_vec())));
}

/// Regression: a query whose declared answer variables do not cover the
/// formula's free variables is a typed error at `run` time — it used to build
/// an ill-formed relation and panic later inside membership tests.
#[test]
fn uncovered_free_variables_are_an_error_not_a_panic() {
    let src = "schema R/2;\nR := {(x, y) | x < y};\nquery bad(x) := R(x, y);\nrun bad;\n";
    let mut session = Session::for_theory(frdb_lang::TheoryKind::Dense);
    let mut out = Vec::new();
    let err = session.execute_source(src, &mut out).unwrap_err();
    assert!(
        err.message.contains("free variable y"),
        "unexpected error: {err}"
    );
}

/// Regression: `fixpoint` can be re-run — both immediately and after new EDB
/// facts arrive — instead of tripping over its own previously materialized
/// intensional relations as shadowed EDB names.
#[test]
fn fixpoint_is_rerunnable_and_sees_new_facts() {
    let mut session = Session::for_theory(frdb_lang::TheoryKind::Dense);
    let mut out = Vec::new();
    session
        .execute_source(
            "schema edge/2;\n\
             edge := {(x, y) | x = 0 and y = 1};\n\
             program p { tc(x, y) :- edge(x, y). tc(x, y) :- tc(x, z), edge(z, y). }\n\
             fixpoint p;\n\
             fixpoint p;\n\
             assert tc(0, 1);\n\
             assert not tc(0, 2);\n",
            &mut out,
        )
        .expect("running the same program twice must work");
    // Extend the EDB and re-run: the fixpoint reflects the new facts.
    session
        .execute_source(
            "edge := {(x, y) | x = 0 and y = 1 or x = 1 and y = 2};\n\
             fixpoint p;\n\
             assert tc(0, 2);\n",
            &mut out,
        )
        .expect("re-running after new facts must work");
    // Regression: the stored program's rule plans compiled on the first
    // `fixpoint` and were reused by the later ones — the CLI fixpoint path
    // must not re-plan per statement (let alone per iteration).
    let db = session.dense().expect("dense session");
    assert!(
        db.snapshot()
            .program("p")
            .expect("stored program")
            .plans_cached::<DenseOrder>(),
        "fixpoint left the program's compiled-plan cache cold"
    );
    // A program head genuinely colliding with a *user* relation still errors.
    let err = session
        .execute_source(
            "schema tc2/2;\n\
             tc2 := {(x, y) | x = 0 and y = 0};\n\
             program q { tc2(x, y) :- edge(x, y). }\n\
             fixpoint q;\n",
            &mut out,
        )
        .unwrap_err();
    assert!(err.message.contains("shadows"), "unexpected: {err}");
}

/// Regression: `run` refuses to clobber a stored *user* relation sharing the
/// query's name, while re-running the same query still overwrites its own
/// previous answer.
#[test]
fn run_never_clobbers_user_relations() {
    let mut session = Session::for_theory(frdb_lang::TheoryKind::Dense);
    let mut out = Vec::new();
    let err = session
        .execute_source(
            "schema R/1;\nR := {(x) | 0 <= x and x <= 5};\n\
             query R(x) := R(x) and x <= 1;\nrun R;\n",
            &mut out,
        )
        .unwrap_err();
    assert!(err.message.contains("cannot materialize"), "{err}");
    // The base relation is untouched by the refused run.
    let r = dense_relation(&session, "R").expect("R still stored");
    assert!(r.contains(&[4.into()]));
    // Re-running a differently named query twice overwrites its own answer.
    session
        .execute_source(
            "query small(x) := R(x) and x <= 1;\nrun small;\nrun small;\nassert small(1);\n",
            &mut out,
        )
        .expect("re-running a query is fine");
}

/// Regression: assigning over a `fixpoint`-derived relation hands it back to
/// the user — the next `fixpoint` must error on the genuine collision instead
/// of silently discarding the user's value.
#[test]
fn reassigned_derived_relations_are_user_relations_again() {
    let mut session = Session::for_theory(frdb_lang::TheoryKind::Dense);
    let mut out = Vec::new();
    session
        .execute_source(
            "schema edge/2;\nedge := {(x, y) | x = 0 and y = 1};\n\
             program p { tc(x, y) :- edge(x, y). }\nfixpoint p;\n",
            &mut out,
        )
        .unwrap();
    let err = session
        .execute_source(
            "schema tc/2;\ntc := {(x, y) | x = 5 and y = 5};\nfixpoint p;\n",
            &mut out,
        )
        .unwrap_err();
    assert!(err.message.contains("shadows"), "{err}");
    // The user's assignment survived.
    let tc = dense_relation(&session, "tc").expect("tc stored");
    assert!(tc.contains(&[5.into(), 5.into()]));
}

/// Regression: relation names that are not ASCII identifiers — the engine's
/// own `Δ`-prefixed EDB names are explicitly supported — survive the
/// dump-and-reload round trip.
#[test]
fn unicode_relation_names_roundtrip_through_dumps() {
    let schema = Schema::from_pairs([("Δedge", 2)]);
    let mut inst: Instance<DenseOrder> = Instance::new(schema);
    inst.set(
        "Δedge",
        Relation::from_points(
            vec![Var::new("x"), Var::new("y")],
            vec![vec![1.into(), 2.into()]],
        ),
    )
    .unwrap();
    let dumped = inst.to_string();
    let mut session = Session::for_theory(frdb_lang::TheoryKind::Dense);
    let mut out = Vec::new();
    session
        .execute_source(&dumped, &mut out)
        .unwrap_or_else(|e| panic!("Δ-named dump failed to load:\n{dumped}\n{e}"));
    let reloaded = dense_relation(&session, "Δedge").expect("Δedge reloaded");
    assert!(reloaded.contains(&[1.into(), 2.into()]));
}

/// Regression: duplicate column variables — in relation literals and in query
/// answer lists — are typed errors, not silently wrong membership answers.
#[test]
fn duplicate_columns_are_rejected() {
    let mut session = Session::for_theory(frdb_lang::TheoryKind::Dense);
    let mut out = Vec::new();
    let err = session
        .execute_source(
            "schema R/2;\nR := {(x, x) | 0 <= x and x <= 5};\n",
            &mut out,
        )
        .unwrap_err();
    assert!(err.message.contains("repeated"), "{err}");
    let err = session
        .execute_source(
            "schema S/1;\nS := {(x) | 0 <= x};\nquery q(x, x) := S(x);\nrun q;\n",
            &mut out,
        )
        .unwrap_err();
    assert!(err.message.contains("listed more than once"), "{err}");
}

/// Regression: update statements against a bad schema are rendered errors at
/// the script layer — an undeclared relation and a wrong-arity payload both
/// fail on the offending statement, and neither commits anything.
#[test]
fn updates_against_bad_schema_fail_with_rendered_errors() {
    let mut session = Session::for_theory(frdb_lang::TheoryKind::Dense);
    let mut out = Vec::new();
    session
        .execute_source("schema R/2;\nR := {(x, y) | x = 0 and y = 0};\n", &mut out)
        .unwrap();

    let src = "insert ghost {(x) | x = 1};\n";
    let err = session.execute_source(src, &mut out).unwrap_err();
    assert!(
        err.message.contains("unknown relation `ghost`"),
        "unexpected error: {err}"
    );
    let span = err.span.expect("span");
    assert_eq!(&src[span.start..span.end], "insert ghost {(x) | x = 1};");

    let src = "delete R {(x) | x = 0};\n";
    let err = session.execute_source(src, &mut out).unwrap_err();
    assert!(
        err.message.contains("arity mismatch"),
        "unexpected error: {err}"
    );
    let span = err.span.expect("span");
    assert_eq!(&src[span.start..span.end], "delete R {(x) | x = 0};");

    // Neither failed update touched the stored relation.
    let r = dense_relation(&session, "R").expect("R still stored");
    assert!(r.contains(&[0.into(), 0.into()]));
}

/// Assertions fail loudly with the offending statement's span.
#[test]
fn failed_assertions_carry_their_span() {
    let src = "schema R/1;\nR := {(x) | false};\nassert exists x. (R(x));\n";
    let mut session = Session::for_theory(frdb_lang::TheoryKind::Dense);
    let mut out = Vec::new();
    let err = session.execute_source(src, &mut out).unwrap_err();
    assert!(err.message.contains("assertion failed"));
    let span = err.span.expect("span");
    assert_eq!(&src[span.start..span.end], "assert exists x. (R(x));");
}
