//! # frdb-cli
//!
//! The interpreter behind the `frdb-cli` binary: a [`Session`] executes parsed
//! `.frdb` scripts — schema declarations, relation assignments, named FO
//! queries, `check` / `assert` sentences, and inflationary `DATALOG¬` programs
//! — against a live [`Instance`], evaluating queries through the compiled-plan
//! relational-algebra path ([`frdb_core::fo::compile_query`]) and printing
//! answer relations with timings.
//!
//! The library half exists so the script runner is testable end to end: the
//! integration tests drive whole scripts through [`Session::execute_source`]
//! and inspect the resulting state ([`Session::dense`] / [`Session::linear`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use frdb_core::dense::DenseOrder;
use frdb_core::fo::{compile_query, CompiledQuery, EvalError, Statistics};
use frdb_core::logic::{Formula, Var};
use frdb_core::relation::{Instance, Relation};
use frdb_core::schema::{RelName, Schema, SchemaError};
use frdb_core::theory::Theory;
use frdb_datalog::{DatalogError, Program};
use frdb_lang::{parse_script, AtomSyntax, ParseError, Span, Spanned, Stmt, TheoryKind};
use frdb_linear::LinearOrder;
use std::collections::BTreeMap;
use std::fmt;
use std::io::Write;
use std::time::Instant;

/// An error raised while parsing or executing a script, with an optional byte
/// span into the source that caused it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CliError {
    /// What went wrong.
    pub message: String,
    /// Byte span of the offending statement or token, when known.
    pub span: Option<Span>,
}

impl CliError {
    fn at(span: Span, message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            span: Some(span),
        }
    }

    /// Renders the error as a caret diagnostic against the source text.
    #[must_use]
    pub fn render(&self, origin: &str, src: &str) -> String {
        match self.span {
            Some(span) => ParseError::new(self.message.clone(), span).render(origin, src),
            None => format!("error: {message}\n  --> {origin}", message = self.message),
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.span {
            Some(span) => write!(f, "error at bytes {span}: {}", self.message),
            None => write!(f, "error: {}", self.message),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ParseError> for CliError {
    fn from(e: ParseError) -> Self {
        CliError {
            message: e.message.clone(),
            span: Some(e.span),
        }
    }
}

/// A named query: its declared answer variables and the plan compiled once at
/// definition time (re-evaluated against the changing instance on every
/// `run`).
pub struct QueryDef<T: Theory> {
    /// The declared answer variables.
    pub free: Vec<Var>,
    /// The compiled relational-algebra plan.
    pub compiled: CompiledQuery<T>,
}

/// The mutable interpreter state over one theory.
pub struct State<T: AtomSyntax> {
    /// The current database instance.
    pub instance: Instance<T>,
    /// Named queries in definition order.
    pub queries: BTreeMap<String, QueryDef<T>>,
    /// Named `DATALOG¬` programs.
    pub programs: BTreeMap<String, Program<T::A>>,
    /// Relation names materialized by `fixpoint` merges.  A later `fixpoint`
    /// over a program whose heads are in this set strips them back out of the
    /// evaluation EDB first, so programs can be re-run (the engine would
    /// otherwise reject its own previous output as head-shadowed EDB
    /// relations); a head colliding with a *user* relation — including a
    /// derived name the user has since re-assigned, which drops it from this
    /// set — still errors.
    pub derived: std::collections::BTreeSet<RelName>,
    /// Relation names materialized by `run`.  Re-running a query overwrites
    /// its own previous answer, but a query named like a *user* relation is
    /// refused rather than silently clobbering stored data.
    pub materialized: std::collections::BTreeSet<RelName>,
}

impl<T: AtomSyntax> Default for State<T> {
    fn default() -> Self {
        State {
            instance: Instance::new(Schema::new()),
            queries: BTreeMap::new(),
            programs: BTreeMap::new(),
            derived: std::collections::BTreeSet::new(),
            materialized: std::collections::BTreeSet::new(),
        }
    }
}

/// A session: interpreter state instantiated at the script's theory.
pub enum Session {
    /// A dense-order session.
    Dense(State<DenseOrder>),
    /// A linear (`FO(≤,+)`) session.
    Linear(State<LinearOrder>),
}

impl Session {
    /// A fresh session over the given theory.
    #[must_use]
    pub fn for_theory(kind: TheoryKind) -> Session {
        match kind {
            TheoryKind::Dense => Session::Dense(State::default()),
            TheoryKind::Linear => Session::Linear(State::default()),
        }
    }

    /// The session's theory kind.
    #[must_use]
    pub fn kind(&self) -> TheoryKind {
        match self {
            Session::Dense(_) => TheoryKind::Dense,
            Session::Linear(_) => TheoryKind::Linear,
        }
    }

    /// The dense-order state, when this is a dense session.
    #[must_use]
    pub fn dense(&self) -> Option<&State<DenseOrder>> {
        match self {
            Session::Dense(s) => Some(s),
            Session::Linear(_) => None,
        }
    }

    /// The linear state, when this is a linear session.
    #[must_use]
    pub fn linear(&self) -> Option<&State<LinearOrder>> {
        match self {
            Session::Linear(s) => Some(s),
            Session::Dense(_) => None,
        }
    }

    /// Parses and executes a script against this session, writing statement
    /// output (answer relations, check results, timings) to `out`.
    ///
    /// # Errors
    /// Returns the first parse or execution error, with its span when known.
    pub fn execute_source(&mut self, src: &str, out: &mut dyn Write) -> Result<(), CliError> {
        match self {
            Session::Dense(state) => execute::<DenseOrder>(state, src, out),
            Session::Linear(state) => execute::<LinearOrder>(state, src, out),
        }
    }
}

fn execute<T: AtomSyntax>(
    state: &mut State<T>,
    src: &str,
    out: &mut dyn Write,
) -> Result<(), CliError>
where
    T::A: fmt::Display,
{
    let script = parse_script::<T>(src)?;
    for stmt in &script.stmts {
        exec_stmt(state, stmt, out)?;
    }
    Ok(())
}

/// Milliseconds with two decimals, for the timing lines.
fn ms(start: Instant) -> String {
    format!("{:.2} ms", start.elapsed().as_secs_f64() * 1e3)
}

fn io_err(e: std::io::Error) -> CliError {
    CliError {
        message: format!("failed to write output: {e}"),
        span: None,
    }
}

fn eval_err(span: Span, e: &EvalError) -> CliError {
    CliError::at(span, e.to_string())
}

fn schema_err(span: Span, e: &SchemaError) -> CliError {
    CliError::at(span, e.to_string())
}

fn datalog_err(span: Span, e: &DatalogError) -> CliError {
    CliError::at(span, e.to_string())
}

fn exec_stmt<T: AtomSyntax>(
    state: &mut State<T>,
    stmt: &Spanned<Stmt<T>>,
    out: &mut dyn Write,
) -> Result<(), CliError>
where
    T::A: fmt::Display,
{
    let span = stmt.span;
    match &stmt.node {
        Stmt::Schema(decls) => {
            for (name, arity) in decls {
                state
                    .instance
                    .declare(name.clone(), *arity)
                    .map_err(|e| schema_err(span, &e))?;
            }
        }
        Stmt::Assign { name, relation } => {
            state
                .instance
                .set(name.clone(), relation.clone())
                .map_err(|e| schema_err(span, &e))?;
            // An explicit assignment makes the relation the user's again: a
            // later `fixpoint` must not strip it, and a later `run` must not
            // clobber it.
            state.derived.remove(name);
            state.materialized.remove(name);
        }
        Stmt::Query {
            name,
            free,
            formula,
        } => {
            state.queries.insert(
                name.clone(),
                QueryDef {
                    free: free.clone(),
                    compiled: compile_query::<T>(formula, free),
                },
            );
        }
        Stmt::Run { name } => {
            let query = state
                .queries
                .get(name)
                .ok_or_else(|| CliError::at(span, format!("unknown query `{name}`")))?;
            // The answer is materialized under the query's name, so later
            // statements (asserts, other queries, programs) can read it like
            // any stored relation; re-running overwrites the previous answer,
            // but a *user* relation of the same name is never clobbered.
            let rel_name = RelName::new(name);
            if state.instance.schema().contains(&rel_name)
                && !state.materialized.contains(&rel_name)
            {
                return Err(CliError::at(
                    span,
                    format!(
                        "cannot materialize query `{name}`: a stored relation with that name \
                         already exists (rename the query)"
                    ),
                ));
            }
            let start = Instant::now();
            // Re-optimize the stored plan against statistics of the relations
            // this query reads (cheap plan rewriting, scoped to the query —
            // unrelated stored relations are not scanned) — `explain` shows
            // exactly this plan.
            let statistics = Statistics::collect_only(
                &state.instance,
                query.compiled.relations().iter().map(|(name, _)| name),
            );
            let answer = query
                .compiled
                .optimized_for(&statistics)
                .eval(&state.instance)
                .map_err(|e| eval_err(span, &e))?;
            let elapsed = ms(start);
            // Only now that evaluation succeeded: a previous materialization
            // at a different arity (the query was redefined in between) is
            // stale; drop it so re-declaring below cannot fail.  A failed run
            // must leave the old answer untouched.
            if state.materialized.contains(&rel_name)
                && state.instance.schema().arity(&rel_name) != Some(answer.arity())
            {
                state.instance.remove(&rel_name);
            }
            writeln!(out, "{name} = {answer}").map_err(io_err)?;
            writeln!(
                out,
                "-- {n} generalized tuple(s) in {elapsed}",
                n = answer.num_tuples()
            )
            .map_err(io_err)?;
            state
                .instance
                .declare(rel_name.clone(), answer.arity())
                .map_err(|e| schema_err(span, &e))?;
            state
                .instance
                .set(rel_name.clone(), answer)
                .map_err(|e| schema_err(span, &e))?;
            state.materialized.insert(rel_name);
        }
        Stmt::Explain { name } => {
            let query = state
                .queries
                .get(name)
                .ok_or_else(|| CliError::at(span, format!("unknown query `{name}`")))?;
            // The same statistics-driven plan `run` executes, evaluated for
            // its actual per-node cardinalities, rendered deterministically
            // (no timings), so transcripts can be pinned by golden tests.
            let statistics = Statistics::collect_only(
                &state.instance,
                query.compiled.relations().iter().map(|(name, _)| name),
            );
            let (_, explain) = query
                .compiled
                .optimized_for(&statistics)
                .eval_explained(&state.instance)
                .map_err(|e| eval_err(span, &e))?;
            writeln!(out, "explain {name}").map_err(io_err)?;
            write!(out, "{explain}").map_err(io_err)?;
        }
        Stmt::Check { formula } => {
            let start = Instant::now();
            let holds = eval_sentence_compiled(state, formula, span)?;
            let elapsed = ms(start);
            writeln!(out, "check {formula} = {holds}").map_err(io_err)?;
            writeln!(out, "-- {elapsed}").map_err(io_err)?;
        }
        Stmt::Assert { formula } => {
            let holds = eval_sentence_compiled(state, formula, span)?;
            if !holds {
                return Err(CliError::at(span, format!("assertion failed: {formula}")));
            }
            writeln!(out, "assert {formula} -- ok").map_err(io_err)?;
        }
        Stmt::DefProgram { name, program } => {
            state.programs.insert(name.clone(), program.clone());
        }
        Stmt::Fixpoint { name } => {
            let program = state
                .programs
                .get(name)
                .ok_or_else(|| CliError::at(span, format!("unknown program `{name}`")))?;
            let idb = program.idb_schema().map_err(|e| datalog_err(span, &e))?;
            // Strip relations that an earlier `fixpoint` materialized for the
            // same heads, so programs can be re-run (against the current EDB)
            // instead of tripping over their own previous output; a head
            // colliding with a *user* relation still errors inside `run`.
            let mut edb = state.instance.clone();
            for head in idb.keys() {
                if state.derived.contains(head) {
                    edb.remove(head);
                }
            }
            let start = Instant::now();
            let result = program.run(&edb).map_err(|e| datalog_err(span, &e))?;
            let elapsed = ms(start);
            writeln!(
                out,
                "fixpoint {name}: {iters} iteration(s) in {elapsed}",
                iters = result.iterations
            )
            .map_err(io_err)?;
            for rel_name in idb.keys() {
                if let Some(rel) = result.instance.get(rel_name) {
                    writeln!(out, "{rel_name} = {rel}").map_err(io_err)?;
                }
            }
            // The fixpoint instance (EDB + IDB) becomes the current instance,
            // so later queries can read the derived predicates.
            state.instance = result.instance;
            state.derived.extend(idb.keys().cloned());
        }
        Stmt::Print { name } => {
            let rel = state
                .instance
                .get(name)
                .ok_or_else(|| CliError::at(span, format!("unknown relation `{name}`")))?;
            writeln!(out, "{name} = {rel}").map_err(io_err)?;
        }
    }
    Ok(())
}

/// Evaluates a sentence through a throwaway compiled plan; non-sentences
/// surface the evaluator's `FreeVariableNotListed` error.
fn eval_sentence_compiled<T: AtomSyntax>(
    state: &State<T>,
    formula: &Formula<T::A>,
    span: Span,
) -> Result<bool, CliError> {
    let compiled = compile_query::<T>(formula, &[]);
    let answer = compiled
        .eval(&state.instance)
        .map_err(|e| eval_err(span, &e))?;
    Ok(!answer.is_empty())
}

/// Convenience for tests: evaluates a named query in a session, returning the
/// dense answer relation.
///
/// # Errors
/// Returns an error if the session is not dense, the query is unknown, or
/// evaluation fails.
pub fn run_dense_query(session: &Session, name: &str) -> Result<Relation<DenseOrder>, CliError> {
    let state = session.dense().ok_or_else(|| CliError {
        message: "session is not dense".into(),
        span: None,
    })?;
    let query = state.queries.get(name).ok_or_else(|| CliError {
        message: format!("unknown query `{name}`"),
        span: None,
    })?;
    query.compiled.eval(&state.instance).map_err(|e| CliError {
        message: e.to_string(),
        span: None,
    })
}

/// Convenience for scripts and the REPL: the current value of a relation in a
/// dense session.
#[must_use]
pub fn dense_relation(session: &Session, name: &str) -> Option<Relation<DenseOrder>> {
    session.dense()?.instance.get(&RelName::new(name))
}
