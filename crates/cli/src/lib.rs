//! # frdb-cli
//!
//! The thin frontend behind the `frdb-cli` binary: a [`Session`] wraps an
//! embeddable [`Database`] (see `frdb-db`) instantiated at the script's
//! theory, and forwards `.frdb` sources to its script interpreter.  All
//! engine logic — snapshot state, the commit path, the shared plan cache,
//! statement execution — lives in `frdb-db`; this crate only chooses the
//! theory at runtime and adapts the CLI's flags (`--timings`) to
//! [`DbConfig`].
//!
//! The library half exists so the script runner is testable end to end: the
//! integration tests drive whole scripts through [`Session::execute_source`]
//! and inspect the resulting state via [`Session::dense`] /
//! [`Session::linear`] snapshots.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use frdb_db::{Database, DbConfig, DbError, FixpointRun, QueryDef, Snapshot};

use frdb_core::dense::DenseOrder;
use frdb_core::metrics::MetricsSnapshot;
use frdb_core::relation::Relation;
use frdb_core::theory::Theory;
use frdb_lang::TheoryKind;
use frdb_linear::LinearOrder;
use std::any::Any;
use std::io::Write;

/// The CLI's error type: an alias of the engine's [`DbError`].
pub type CliError = DbError;

/// A session: an embeddable database instantiated at the script's theory.
pub enum Session {
    /// A dense-order session.
    Dense(Database<DenseOrder>),
    /// A linear (`FO(≤,+)`) session.
    Linear(Database<LinearOrder>),
}

/// Dispatches `$body` over whichever theory the session runs, binding `$db`
/// to the underlying [`Database`].  The single point where the theory enum
/// meets the generic engine — everything downstream is one generic path.
macro_rules! with_db {
    ($session:expr, $db:ident => $body:expr) => {
        match $session {
            Session::Dense($db) => $body,
            Session::Linear($db) => $body,
        }
    };
}

impl Session {
    /// A fresh session over the given theory with default configuration
    /// (timings off).  Each session gets its **own** plan cache, so `stats;`
    /// output reflects only this session's work and stays deterministic
    /// (golden-testable) however many sessions share the process.
    #[must_use]
    pub fn for_theory(kind: TheoryKind) -> Session {
        Session::with_config(
            kind,
            DbConfig {
                plan_cache: Some(std::sync::Arc::new(frdb_core::fo::PlanCache::default())),
                ..DbConfig::default()
            },
        )
    }

    /// A fresh session over the given theory and configuration.
    #[must_use]
    pub fn with_config(kind: TheoryKind, config: DbConfig) -> Session {
        match kind {
            TheoryKind::Dense => Session::Dense(Database::with_config(config)),
            TheoryKind::Linear => Session::Linear(Database::with_config(config)),
        }
    }

    /// The session's theory kind.
    #[must_use]
    pub fn kind(&self) -> TheoryKind {
        match self {
            Session::Dense(_) => TheoryKind::Dense,
            Session::Linear(_) => TheoryKind::Linear,
        }
    }

    /// The underlying database, when this session runs theory `T` — the one
    /// generic accessor behind [`Session::dense`] and [`Session::linear`].
    #[must_use]
    pub fn database<T: Theory>(&self) -> Option<&Database<T>> {
        with_db!(self, db => (db as &dyn Any).downcast_ref::<Database<T>>())
    }

    /// The dense-order database, when this is a dense session.
    #[must_use]
    pub fn dense(&self) -> Option<&Database<DenseOrder>> {
        self.database::<DenseOrder>()
    }

    /// The linear database, when this is a linear session.
    #[must_use]
    pub fn linear(&self) -> Option<&Database<LinearOrder>> {
        self.database::<LinearOrder>()
    }

    /// Parses and executes a script against this session, writing statement
    /// output (answer relations, check results) to `out`.  When the session
    /// was built with [`DbConfig::timings`], timing lines go to stderr.
    ///
    /// # Errors
    /// Returns the first parse or execution error, with its span when known.
    pub fn execute_source(&mut self, src: &str, out: &mut dyn Write) -> Result<(), CliError> {
        with_db!(self, db => db.execute_source(src, out))
    }

    /// A point-in-time snapshot of the session's metrics registry (operation
    /// counters, join-strategy tallies, latency histograms, plan-cache
    /// counters).
    #[must_use]
    pub fn metrics(&self) -> MetricsSnapshot {
        with_db!(self, db => db.metrics())
    }

    /// The session's metrics as a JSON document — what the CLI's
    /// `--metrics-out <file.json>` flag writes.
    #[must_use]
    pub fn metrics_json(&self) -> String {
        self.metrics().to_json()
    }
}

/// Convenience for tests: evaluates a named query against a snapshot of a
/// dense session, returning the answer relation (nothing is materialized).
///
/// # Errors
/// Returns an error if the session is not dense, the query is unknown, or
/// evaluation fails.
pub fn run_dense_query(session: &Session, name: &str) -> Result<Relation<DenseOrder>, CliError> {
    let db = session
        .dense()
        .ok_or_else(|| CliError::new("session is not dense"))?;
    db.snapshot().eval_query(name)
}

/// Convenience for scripts and the REPL: the current value of a relation in a
/// dense session.
#[must_use]
pub fn dense_relation(session: &Session, name: &str) -> Option<Relation<DenseOrder>> {
    session.dense()?.snapshot().relation(name)
}
