//! `frdb-cli`: run `.frdb` scripts, or start a REPL on an empty database.
//!
//! ```text
//! frdb-cli script.frdb …    # execute scripts in order, exit non-zero on error
//! frdb-cli                  # interactive REPL (:help, :quit)
//! ```

use frdb_cli::{DbConfig, Session};
use frdb_core::dense::DenseOrder;
use frdb_lang::{parse_script, script_theory, ParseError, TheoryKind};
use frdb_linear::LinearOrder;
use std::io::{BufRead, Write};
use std::process::ExitCode;

const USAGE: &str = "\
frdb-cli — finitely representable databases, from text

USAGE:
  frdb-cli [OPTIONS] [SCRIPT.frdb ...]     execute scripts in order
                                           (non-zero exit on error)
  frdb-cli [OPTIONS]                       start an interactive session

OPTIONS:
  --timings              print wall-clock timing lines (to stderr) after
                         run/trace/check/fixpoint — stdout stays
                         byte-deterministic either way
  --metrics-out <FILE>   after execution, write the engine metrics registry
                         (counters + latency histograms) as JSON to FILE

A script is a sequence of statements:
  theory dense;                          // or `theory linear` (header, optional)
  schema R/2, S/1;                       // declare relations
  R := {(x, y) | 0 <= x and x <= y};     // set a relation (tuples joined by `or`)
  insert R {(x, y) | x = 1 and y = 2};   // union more tuples into a relation
  delete R {(x, y) | x < 0};             // subtract tuples from a relation
  query q(x) := exists y. (R(x, y));     // define a query
  run q;                                 // evaluate and print it
  explain q;                             // print the optimized plan tree with
                                         // estimated + actual cardinalities
  trace q;                               // evaluate and print the span tree
                                         // (cardinalities, join strategies,
                                         // index work; also for programs)
  check forall x. (S(x) -> 0 <= x);      // print a sentence's truth value
  assert exists x. (S(x));               // fail the script when false
  program p { tc(x,y) :- R(x,y). tc(x,y) :- tc(x,z), R(z,y). }
  fixpoint p;                            // run DATALOG¬ to its fixpoint
  print tc;                              // print a relation
  stats;                                 // plan-cache + index + join counters
  metrics;                               // engine metrics registry counters";

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let timings = args.iter().any(|a| a == "--timings");
    args.retain(|a| a != "--timings");
    let metrics_out = match take_metrics_out(&mut args) {
        Ok(path) => path,
        Err(msg) => {
            eprintln!("error: {msg}");
            return ExitCode::FAILURE;
        }
    };
    let config = DbConfig {
        timings,
        ..DbConfig::default()
    };
    if args.is_empty() {
        return repl(&config, metrics_out.as_deref());
    }
    let stdout = std::io::stdout();
    let mut last_session = None;
    for path in &args {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let kind = match script_theory(&src) {
            Ok(k) => k,
            Err(e) => {
                eprintln!("{}", e.render(path, &src));
                return ExitCode::FAILURE;
            }
        };
        let mut session = Session::with_config(kind, config.clone());
        let mut out = stdout.lock();
        let _ = writeln!(out, "== {path} ({} theory)", kind.name());
        if let Err(e) = session.execute_source(&src, &mut out) {
            drop(out);
            eprintln!("{}", e.render(path, &src));
            return ExitCode::FAILURE;
        }
        last_session = Some(session);
    }
    if let (Some(file), Some(session)) = (metrics_out.as_deref(), &last_session) {
        if let Err(code) = write_metrics(file, session) {
            return code;
        }
    }
    ExitCode::SUCCESS
}

/// Extracts `--metrics-out <FILE>` from the argument list, if present.
fn take_metrics_out(args: &mut Vec<String>) -> Result<Option<String>, String> {
    let Some(pos) = args.iter().position(|a| a == "--metrics-out") else {
        return Ok(None);
    };
    if pos + 1 >= args.len() {
        return Err("--metrics-out requires a file argument".to_string());
    }
    let file = args.remove(pos + 1);
    args.remove(pos);
    Ok(Some(file))
}

/// Writes a session's metrics registry as JSON; each script runs in its own
/// session, so the file reflects the last script executed.
fn write_metrics(file: &str, session: &Session) -> Result<(), ExitCode> {
    std::fs::write(file, session.metrics_json()).map_err(|e| {
        eprintln!("error: cannot write {file}: {e}");
        ExitCode::FAILURE
    })
}

/// The interactive loop: statements accumulate until they parse (so multi-line
/// input works), `:quit` leaves, `:help` prints the usage text.
fn repl(config: &DbConfig, metrics_out: Option<&str>) -> ExitCode {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut session: Option<Session> = None;
    let mut buffer = String::new();
    println!("frdb-cli — type statements ending in `;` (:help for help, :quit to leave)");
    loop {
        {
            let mut out = stdout.lock();
            let _ = write!(
                out,
                "{}",
                if buffer.is_empty() {
                    "frdb> "
                } else {
                    "....> "
                }
            );
            let _ = out.flush();
        }
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => return finish_repl(&session, metrics_out), // EOF
            Ok(_) => {}
            Err(e) => {
                eprintln!("error reading input: {e}");
                return ExitCode::FAILURE;
            }
        }
        let trimmed = line.trim();
        if buffer.is_empty() {
            match trimmed {
                "" => continue,
                ":quit" | ":q" | ":exit" => return finish_repl(&session, metrics_out),
                ":help" | ":h" => {
                    println!("{USAGE}");
                    continue;
                }
                _ => {}
            }
        }
        buffer.push_str(&line);
        let src = buffer.clone();
        // The theory for this input: the session's once one exists, otherwise
        // whatever the buffer's header declares (dense by default).
        let kind = match &session {
            Some(s) => s.kind(),
            None => match script_theory(&src) {
                Ok(kind) => kind,
                Err(e) if e.at_eof => continue,
                Err(e) => {
                    eprintln!("{}", e.render("<repl>", &src));
                    buffer.clear();
                    continue;
                }
            },
        };
        // A dry parse first: an unexpected-end-of-input error means the
        // statement continues on the next line, so keep accumulating.
        match dry_parse(kind, &src) {
            Err(e) if e.at_eof => continue,
            Err(e) => {
                eprintln!("{}", e.render("<repl>", &src));
                buffer.clear();
                continue;
            }
            Ok(stmts) => {
                // Don't pin the session's theory on content-free input (blank
                // lines, comments) — a later `theory linear;` must still work.
                if session.is_none() && stmts == 0 && !has_theory_header(&src) {
                    buffer.clear();
                    continue;
                }
            }
        }
        let current = session.get_or_insert_with(|| Session::with_config(kind, config.clone()));
        let mut out = stdout.lock();
        let result = current.execute_source(&src, &mut out);
        drop(out);
        if let Err(e) = result {
            eprintln!("{}", e.render("<repl>", &src));
        }
        buffer.clear();
    }
}

/// Writes the REPL session's metrics (when `--metrics-out` was given and any
/// statement ran) before a clean exit.
fn finish_repl(session: &Option<Session>, metrics_out: Option<&str>) -> ExitCode {
    if let (Some(file), Some(session)) = (metrics_out, session) {
        if let Err(code) = write_metrics(file, session) {
            return code;
        }
    }
    ExitCode::SUCCESS
}

/// Parses without executing, to classify incomplete vs malformed input;
/// returns the statement count on success.
fn dry_parse(kind: TheoryKind, src: &str) -> Result<usize, ParseError> {
    match kind {
        TheoryKind::Dense => parse_script::<DenseOrder>(src).map(|s| s.stmts.len()),
        TheoryKind::Linear => parse_script::<LinearOrder>(src).map(|s| s.stmts.len()),
    }
}

/// Whether the input opens with an explicit `theory …` header.
fn has_theory_header(src: &str) -> bool {
    matches!(
        frdb_lang::lexer::lex(src).ok().and_then(|t| t.into_iter().next()),
        Some(tok) if matches!(&tok.tok, frdb_lang::lexer::Tok::Ident(w) if w == "theory")
    )
}
