//! # frdb-queries
//!
//! The query catalog of Grumbach & Su, *Finitely Representable Databases*, Sections 5
//! and 6 — the concrete queries whose definability status makes up Fig. 8:
//!
//! | query | FO | DATALOG¬ | here |
//! |---|---|---|---|
//! | convexity, k-convex covering | yes (Lemma 5.4) | yes | [`convexity`] |
//! | 1-D connectivity / holes / Euler | yes | yes | [`shape1d`] |
//! | k-D region connectivity (k ≥ 2) | no (Lemma 5.5) | yes (Ex. 6.3) | [`connectivity`], [`programs`] |
//! | at least / exactly one hole (k ≥ 2) | no | yes | [`connectivity`] |
//! | Eulerian traversal (k ≥ 2) | no (Lemma 5.7) | yes (Ex. 6.4) | [`euler`] |
//! | parity, transitive closure | no (Lemma 5.6) | yes | [`graph`], [`frdb_datalog`] |
//! | 1-D homeomorphism | no | yes | [`shape1d`] |
//! | line separation, grid | not order-generic (Ex. 4.5) | — | [`separation`] |
//!
//! Each query is provided as a direct polynomial-time algorithm on the canonical
//! (cover) form and — where the paper gives one — as an FO sentence or `DATALOG¬`
//! program evaluated by the engines, so the two can be cross-checked.  The module
//! [`reductions`] contains the workload generators of Figs. 3–6 (majority / parity /
//! half reductions), and [`workload`] random-instance generators for the benchmark
//! harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod catalog;
pub mod connectivity;
pub mod convexity;
pub mod euler;
pub mod graph;
pub mod programs;
pub mod reductions;
pub mod separation;
pub mod shape1d;
pub mod workload;
