//! Queries that are **not** order-generic (Example 4.5 / Fig. 1): line separation and
//! the grid query.
//!
//! These queries are perfectly computable, but they do not commute with the
//! automorphisms of `(Q, ≤)` — the paper's Example 4.5 exhibits an instance and an
//! automorphism under which the *line separation* answer flips.  The experiment E1 of
//! `DESIGN.md` reproduces exactly that flip.
//!
//! The separation decision uses the fact that a line missing a connected set leaves it
//! entirely inside one open half-plane: a separating line exists iff the connected
//! components of the input can be split into two non-empty groups that are *strictly
//! linearly separable*.  Strict separability of two finite groups of bounded convex
//! cells is a linear feasibility question over the line coefficients `(a, b, c)`,
//! decided exactly with the Fourier–Motzkin engine of `frdb-linear`.

use crate::connectivity::components;
use frdb_core::dense::DenseOrder;
use frdb_core::normal::{Bound, PrimeTuple};
use frdb_core::relation::Relation;
use frdb_core::theory::Theory;
use frdb_linear::{LinAtom, LinExpr, LinearOrder};
use frdb_num::Rat;

/// Errors of the separation query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SeparationError {
    /// The input has an unbounded cell; the query is only implemented for bounded
    /// figures (all the paper's instances are bounded).
    Unbounded,
}

impl std::fmt::Display for SeparationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line separation is only implemented for bounded figures")
    }
}

impl std::error::Error for SeparationError {}

/// The corner points of a bounded 2-dimensional prime tuple (the extreme points of
/// its closure); the cell lies strictly on one side of a line iff all its corners do.
fn corners(cell: &PrimeTuple) -> Result<Vec<(Rat, Rat)>, SeparationError> {
    let bound_pair = |i: usize| -> Result<(Rat, Rat), SeparationError> {
        match (cell.lower(i), cell.upper(i)) {
            (Bound::Finite(l), Bound::Finite(u)) => Ok((l.clone(), u.clone())),
            _ => Err(SeparationError::Unbounded),
        }
    };
    let (xl, xu) = bound_pair(0)?;
    let (yl, yu) = bound_pair(1)?;
    let mut out = Vec::new();
    for x in [xl, xu] {
        for y in [yl.clone(), yu.clone()] {
            if !out.contains(&(x.clone(), y.clone())) {
                out.push((x.clone(), y));
            }
        }
    }
    Ok(out)
}

/// Whether two non-empty groups of corner points are strictly separable by a line
/// `a·x + b·y = c`: a linear feasibility problem in `(a, b, c)`, checked for the four
/// normalizations `a = ±1`, `b = ±1` (every separating line can be rescaled into one
/// of them).
fn strictly_separable(group1: &[(Rat, Rat)], group2: &[(Rat, Rat)]) -> bool {
    let va = frdb_core::logic::Var::new("a");
    let vb = frdb_core::logic::Var::new("b");
    let vc = frdb_core::logic::Var::new("c");
    let line_value = |p: &(Rat, Rat)| {
        LinExpr::var(va.clone())
            .scale(&p.0)
            .add(&LinExpr::var(vb.clone()).scale(&p.1))
    };
    for (fixed, value) in [(&va, 1i64), (&va, -1), (&vb, 1), (&vb, -1)] {
        let mut system: Vec<LinAtom> = vec![LinAtom::eq(
            LinExpr::var(fixed.clone()),
            LinExpr::constant(Rat::from_i64(value)),
        )];
        for p in group1 {
            system.push(LinAtom::lt(line_value(p), LinExpr::var(vc.clone())));
        }
        for q in group2 {
            system.push(LinAtom::lt(LinExpr::var(vc.clone()), line_value(q)));
        }
        if LinearOrder::satisfiable(&system) {
            return true;
        }
    }
    false
}

/// The *line separation* query of Example 4.5: is there a straight line with empty
/// intersection with the (bounded, binary) input region that has points of the region
/// strictly on both sides?
///
/// # Errors
/// Returns an error if the region has an unbounded cell.
pub fn line_separation(relation: &Relation<DenseOrder>) -> Result<bool, SeparationError> {
    let comps = components(relation);
    if comps.len() < 2 {
        // A connected (or empty) figure cannot be split by a line that misses it.
        return Ok(false);
    }
    let mut corner_groups: Vec<Vec<(Rat, Rat)>> = Vec::with_capacity(comps.len());
    for comp in &comps {
        let mut pts = Vec::new();
        for cell in comp {
            pts.extend(corners(cell)?);
        }
        corner_groups.push(pts);
    }
    // Try every bipartition of the components (the instances of interest have very
    // few components; Example 4.5 has two).
    let n = comps.len();
    for mask in 1..(1u32 << (n - 1)) {
        let mut g1: Vec<(Rat, Rat)> = Vec::new();
        let mut g2: Vec<(Rat, Rat)> = Vec::new();
        for (i, pts) in corner_groups.iter().enumerate() {
            if mask & (1 << i) != 0 {
                g1.extend(pts.iter().cloned());
            } else {
                g2.extend(pts.iter().cloned());
            }
        }
        if g1.is_empty() || g2.is_empty() {
            continue;
        }
        if strictly_separable(&g1, &g2) || strictly_separable(&g2, &g1) {
            return Ok(true);
        }
    }
    Ok(false)
}

/// The exact input relation `R` of Example 4.5 (Fig. 1a): two touching axis-parallel
/// segments and one isolated point at `(5, 90)`.
#[must_use]
pub fn example_4_5_instance() -> Relation<DenseOrder> {
    use frdb_core::dense::DenseAtom;
    use frdb_core::logic::{Term, Var};
    use frdb_core::relation::GenTuple;
    Relation::new(
        vec![Var::new("x"), Var::new("y")],
        vec![
            // y = 0 ∧ 0 ≤ x ≤ 100
            GenTuple::new(vec![
                DenseAtom::eq(Term::var("y"), Term::cst(0)),
                DenseAtom::le(Term::cst(0), Term::var("x")),
                DenseAtom::le(Term::var("x"), Term::cst(100)),
            ]),
            // x = 0 ∧ 0 ≤ y ≤ 100
            GenTuple::new(vec![
                DenseAtom::eq(Term::var("x"), Term::cst(0)),
                DenseAtom::le(Term::cst(0), Term::var("y")),
                DenseAtom::le(Term::var("y"), Term::cst(100)),
            ]),
            // the isolated point (5, 90)
            GenTuple::new(vec![
                DenseAtom::eq(Term::var("x"), Term::cst(5)),
                DenseAtom::eq(Term::var("y"), Term::cst(90)),
            ]),
        ],
    )
}

/// The *grid* query of Example 4.5: the input is a finite set of points lying on a
/// uniform grid `x = x₀ + i·Δx`, `y = y₀ + j·Δy`.
///
/// # Errors
/// Returns an error if the input is not a finite set of points.
pub fn is_grid(relation: &Relation<DenseOrder>) -> Result<bool, crate::graph::FiniteInputError> {
    let pts = crate::graph::finite_pairs(relation)?;
    if pts.len() <= 1 {
        return Ok(true);
    }
    let uniform = |values: Vec<Rat>| -> bool {
        let mut v = values;
        v.sort();
        v.dedup();
        if v.len() <= 2 {
            return true;
        }
        let step = &v[1] - &v[0];
        // Every value must be v[0] + k·step for an integer k.
        v.iter().all(|x| {
            let d = x - &v[0];
            (&d / &step).is_integer()
        })
    };
    let xs: Vec<Rat> = pts.iter().map(|(x, _)| x.clone()).collect();
    let ys: Vec<Rat> = pts.iter().map(|(_, y)| y.clone()).collect();
    Ok(uniform(xs) && uniform(ys))
}

#[cfg(test)]
mod tests {
    use super::*;
    use frdb_core::generic::Automorphism;
    use frdb_core::logic::Var;

    fn r(v: i64) -> Rat {
        Rat::from_i64(v)
    }

    #[test]
    fn example_4_5_is_not_separable_but_its_image_is() {
        // Fig. 1: the isolated point (5, 90) cannot be separated from the two
        // segments, but after the automorphism µ (which moves it to (15, 90)) the line
        // y = −x + 101 separates it — so line separation is not order-generic.
        let original = example_4_5_instance();
        assert_eq!(line_separation(&original), Ok(false));
        let mu = Automorphism::example_4_5();
        let image = mu.apply_relation(&original);
        assert_eq!(line_separation(&image), Ok(true));
    }

    #[test]
    fn separable_and_inseparable_figures() {
        // Two far-apart points are separable.
        let two_points = Relation::from_points(
            vec![Var::new("x"), Var::new("y")],
            vec![vec![r(0), r(0)], vec![r(10), r(10)]],
        );
        assert_eq!(line_separation(&two_points), Ok(true));
        // A single point is not (nothing on the other side).
        let one = Relation::from_points(vec![Var::new("x"), Var::new("y")], vec![vec![r(0), r(0)]]);
        assert_eq!(line_separation(&one), Ok(false));
    }

    #[test]
    fn grid_query() {
        let grid = Relation::from_points(
            vec![Var::new("x"), Var::new("y")],
            vec![
                vec![r(0), r(0)],
                vec![r(2), r(0)],
                vec![r(4), r(0)],
                vec![r(0), r(3)],
                vec![r(2), r(3)],
            ],
        );
        assert_eq!(is_grid(&grid), Ok(true));
        let not_grid = Relation::from_points(
            vec![Var::new("x"), Var::new("y")],
            vec![
                vec![r(0), r(0)],
                vec![r(2), r(0)],
                vec![r(5), r(0)],
                vec![r(9), r(0)],
            ],
        );
        assert_eq!(is_grid(&not_grid), Ok(false));
    }
}
