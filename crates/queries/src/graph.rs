//! Finite-graph queries embedded in the constraint model: parity and transitive
//! closure (Lemma 5.6: neither is FO-definable with dense-order constraints; both are
//! in `DATALOG¬`, Theorem 6.5).
//!
//! Finite relations are the classical relational model embedded into the constraint
//! model (a tuple is a conjunction of equalities, Section 2.2); the direct algorithms
//! below work on that embedding, and the `DATALOG¬` counterpart of transitive closure
//! lives in [`frdb_datalog::transitive_closure_program`].

use frdb_core::dense::DenseOrder;
use frdb_core::normal::{decompose_1d, Piece1};
use frdb_core::relation::Relation;
use frdb_num::Rat;
use std::collections::{BTreeMap, BTreeSet};

/// Errors for queries that require a *finite* input relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FiniteInputError {
    /// The relation contains an infinite piece (an interval), so the query is not
    /// defined on it.
    NotFinite,
}

impl std::fmt::Display for FiniteInputError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "the query requires a finite input relation")
    }
}

impl std::error::Error for FiniteInputError {}

/// The elements of a finite monadic relation, in increasing order.
///
/// # Errors
/// Fails if the relation has an interval piece (it is not finite).
pub fn finite_elements(relation: &Relation<DenseOrder>) -> Result<Vec<Rat>, FiniteInputError> {
    let mut out = Vec::new();
    for piece in decompose_1d(relation) {
        match piece {
            Piece1::Point(p) => out.push(p),
            Piece1::Interval { .. } => return Err(FiniteInputError::NotFinite),
        }
    }
    Ok(out)
}

/// The parity query: does the finite monadic relation have an even number of
/// elements?
///
/// # Errors
/// Fails if the relation is not finite.
pub fn parity(relation: &Relation<DenseOrder>) -> Result<bool, FiniteInputError> {
    Ok(finite_elements(relation)?.len() % 2 == 0)
}

/// The pairs of a finite binary relation, read off its canonical representation.
///
/// # Errors
/// Fails if some generalized tuple does not pin both columns to constants.
pub fn finite_pairs(relation: &Relation<DenseOrder>) -> Result<Vec<(Rat, Rat)>, FiniteInputError> {
    use frdb_core::normal::{cover, Bound};
    let mut out = BTreeSet::new();
    for cell in cover(relation) {
        if cell.arity() != 2 || !cell.is_pinned(0) || !cell.is_pinned(1) {
            return Err(FiniteInputError::NotFinite);
        }
        let x = match cell.lower(0) {
            Bound::Finite(v) => v.clone(),
            Bound::Infinite => return Err(FiniteInputError::NotFinite),
        };
        let y = match cell.lower(1) {
            Bound::Finite(v) => v.clone(),
            Bound::Infinite => return Err(FiniteInputError::NotFinite),
        };
        out.insert((x, y));
    }
    Ok(out.into_iter().collect())
}

/// The transitive closure of a finite binary relation, as explicit pairs
/// (semi-naive iteration; polynomial time).
///
/// # Errors
/// Fails if the relation is not a finite set of pairs.
pub fn transitive_closure(
    relation: &Relation<DenseOrder>,
) -> Result<Vec<(Rat, Rat)>, FiniteInputError> {
    let edges = finite_pairs(relation)?;
    let mut closure: BTreeSet<(Rat, Rat)> = edges.iter().cloned().collect();
    let mut frontier: BTreeSet<(Rat, Rat)> = closure.clone();
    let mut succ: BTreeMap<Rat, Vec<Rat>> = BTreeMap::new();
    for (a, b) in &edges {
        succ.entry(a.clone()).or_default().push(b.clone());
    }
    while !frontier.is_empty() {
        let mut next = BTreeSet::new();
        for (a, b) in &frontier {
            if let Some(cs) = succ.get(b) {
                for c in cs {
                    let pair = (a.clone(), c.clone());
                    if !closure.contains(&pair) {
                        next.insert(pair);
                    }
                }
            }
        }
        closure.extend(next.iter().cloned());
        frontier = next;
    }
    Ok(closure.into_iter().collect())
}

/// The graph-connectivity query: is the (undirected view of the) finite graph
/// connected?
///
/// # Errors
/// Fails if the relation is not a finite set of pairs.
pub fn graph_connected(relation: &Relation<DenseOrder>) -> Result<bool, FiniteInputError> {
    let edges = finite_pairs(relation)?;
    let mut nodes: BTreeSet<Rat> = BTreeSet::new();
    for (a, b) in &edges {
        nodes.insert(a.clone());
        nodes.insert(b.clone());
    }
    if nodes.len() <= 1 {
        return Ok(true);
    }
    let mut adj: BTreeMap<Rat, Vec<Rat>> = BTreeMap::new();
    for (a, b) in &edges {
        adj.entry(a.clone()).or_default().push(b.clone());
        adj.entry(b.clone()).or_default().push(a.clone());
    }
    let start = nodes.iter().next().unwrap().clone();
    let mut seen: BTreeSet<Rat> = BTreeSet::new();
    let mut stack = vec![start];
    while let Some(v) = stack.pop() {
        if !seen.insert(v.clone()) {
            continue;
        }
        for w in adj.get(&v).into_iter().flatten() {
            if !seen.contains(w) {
                stack.push(w.clone());
            }
        }
    }
    Ok(seen.len() == nodes.len())
}

/// Builds the finite monadic relation `{1, …, n}` (a convenient parity workload).
#[must_use]
pub fn integer_set(n: usize) -> Relation<DenseOrder> {
    Relation::from_points(
        vec![frdb_core::logic::Var::new("x")],
        (1..=n as i64).map(|i| vec![Rat::from_i64(i)]),
    )
}

/// Builds a finite path graph `1 → 2 → … → n` as a binary constraint relation.
#[must_use]
pub fn path_graph(n: usize) -> Relation<DenseOrder> {
    Relation::from_points(
        vec![
            frdb_core::logic::Var::new("x"),
            frdb_core::logic::Var::new("y"),
        ],
        (1..n as i64).map(|i| vec![Rat::from_i64(i), Rat::from_i64(i + 1)]),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use frdb_core::dense::DenseAtom;
    use frdb_core::logic::{Term, Var};
    use frdb_core::relation::GenTuple;
    use frdb_core::schema::{RelName, Schema};
    use frdb_datalog::transitive_closure_program;

    fn r(v: i64) -> Rat {
        Rat::from_i64(v)
    }

    #[test]
    fn parity_counts_points() {
        assert!(parity(&integer_set(0)).unwrap());
        assert!(!parity(&integer_set(3)).unwrap());
        assert!(parity(&integer_set(8)).unwrap());
        // Parity is undefined on infinite relations.
        let interval = Relation::new(
            vec![Var::new("x")],
            vec![GenTuple::new(vec![
                DenseAtom::le(Term::cst(0), Term::var("x")),
                DenseAtom::le(Term::var("x"), Term::cst(1)),
            ])],
        );
        assert!(parity(&interval).is_err());
    }

    #[test]
    fn transitive_closure_direct_matches_datalog() {
        let edges = path_graph(5);
        let direct = transitive_closure(&edges).unwrap();
        // Via the DATALOG¬ engine (Theorem 6.5(3)).
        let schema = Schema::from_pairs([("edge", 2)]);
        let mut inst = frdb_core::relation::Instance::new(schema);
        inst.set("edge", edges).unwrap();
        let program = transitive_closure_program("edge", "tc");
        let tc = program.run_for(&inst, &RelName::new("tc")).unwrap();
        for i in 1..=5i64 {
            for j in 1..=5i64 {
                let expected = i < j;
                assert_eq!(direct.contains(&(r(i), r(j))), expected);
                assert_eq!(tc.contains(&[r(i), r(j)]), expected);
            }
        }
    }

    #[test]
    fn graph_connectivity() {
        assert!(graph_connected(&path_graph(6)).unwrap());
        // Two disjoint edges are disconnected.
        let rel = Relation::from_points(
            vec![Var::new("x"), Var::new("y")],
            vec![vec![r(1), r(2)], vec![r(5), r(6)]],
        );
        assert!(!graph_connected(&rel).unwrap());
        assert!(graph_connected(&Relation::empty(vec![Var::new("x"), Var::new("y")])).unwrap());
    }

    #[test]
    fn finite_pairs_rejects_infinite_relations() {
        let segment = Relation::new(
            vec![Var::new("x"), Var::new("y")],
            vec![GenTuple::new(vec![
                DenseAtom::eq(Term::var("y"), Term::cst(0)),
                DenseAtom::le(Term::cst(0), Term::var("x")),
                DenseAtom::le(Term::var("x"), Term::cst(1)),
            ])],
        );
        assert!(finite_pairs(&segment).is_err());
    }
}
