//! The Eulerian traversal query (Section 5, Lemma 5.7; expressible in `DATALOG¬` per
//! Example 6.4).
//!
//! The input is a planar figure made of line segments; the query asks whether there is
//! a traversal that goes continuously through every segment exactly once.  As in
//! Example 6.4, the problem reduces to a finite graph question once the intersection
//! and end points are extracted: an Euler path exists iff the figure is connected and
//! has at most two odd-degree vertices.
//!
//! The implementation works on figures whose segments meet only at shared endpoints
//! (the shape of every instance produced by the reductions of Figs. 3–6 and of the
//! examples in this repository); general position segment splitting is not needed for
//! the paper's constructions and is documented as out of scope.

use frdb_num::Rat;
use std::collections::BTreeMap;

/// A closed straight segment between two rational points (possibly degenerate).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Segment {
    /// One endpoint.
    pub a: (Rat, Rat),
    /// The other endpoint.
    pub b: (Rat, Rat),
}

impl Segment {
    /// Creates a segment from integer coordinates.
    #[must_use]
    pub fn from_i64(ax: i64, ay: i64, bx: i64, by: i64) -> Self {
        Segment {
            a: (Rat::from_i64(ax), Rat::from_i64(ay)),
            b: (Rat::from_i64(bx), Rat::from_i64(by)),
        }
    }

    /// Creates a segment from rational points.
    #[must_use]
    pub fn new(a: (Rat, Rat), b: (Rat, Rat)) -> Self {
        Segment { a, b }
    }
}

/// Whether an Eulerian traversal of the figure exists: the segment graph is connected
/// and has at most two odd-degree vertices.  Degenerate (point) segments only
/// contribute isolated vertices and make a traversal impossible unless they are the
/// whole figure.
#[must_use]
pub fn euler_traversal(segments: &[Segment]) -> bool {
    let proper: Vec<&Segment> = segments.iter().filter(|s| s.a != s.b).collect();
    if proper.is_empty() {
        // Only isolated points (or nothing): traversable iff at most one point.
        let mut pts: Vec<&(Rat, Rat)> = segments.iter().map(|s| &s.a).collect();
        pts.sort();
        pts.dedup();
        return pts.len() <= 1;
    }
    if proper.len() < segments.len() {
        // A mix of segments and isolated points can never be traversed continuously.
        let mut pts: Vec<(Rat, Rat)> = Vec::new();
        for s in segments {
            if s.a == s.b {
                pts.push(s.a.clone());
            }
        }
        let on_some_segment = |p: &(Rat, Rat)| proper.iter().any(|s| s.a == *p || s.b == *p);
        if !pts.iter().all(on_some_segment) {
            return false;
        }
    }
    // Build the endpoint graph.
    let mut index: BTreeMap<(Rat, Rat), usize> = BTreeMap::new();
    let mut degree: Vec<usize> = Vec::new();
    let mut adj: Vec<Vec<usize>> = Vec::new();
    let mut intern =
        |p: &(Rat, Rat), degree: &mut Vec<usize>, adj: &mut Vec<Vec<usize>>| -> usize {
            if let Some(&i) = index.get(p) {
                i
            } else {
                let i = degree.len();
                index.insert(p.clone(), i);
                degree.push(0);
                adj.push(Vec::new());
                i
            }
        };
    for s in &proper {
        let i = intern(&s.a, &mut degree, &mut adj);
        let j = intern(&s.b, &mut degree, &mut adj);
        degree[i] += 1;
        degree[j] += 1;
        adj[i].push(j);
        adj[j].push(i);
    }
    // Connectivity over vertices incident to at least one segment.
    let mut seen = vec![false; degree.len()];
    let mut stack = vec![0usize];
    while let Some(v) = stack.pop() {
        if seen[v] {
            continue;
        }
        seen[v] = true;
        for &w in &adj[v] {
            if !seen[w] {
                stack.push(w);
            }
        }
    }
    if seen.iter().any(|s| !s) {
        return false;
    }
    let odd = degree.iter().filter(|&&d| d % 2 == 1).count();
    odd <= 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_path_and_cycle_are_traversable() {
        // A path of three segments.
        let path = vec![
            Segment::from_i64(0, 0, 1, 0),
            Segment::from_i64(1, 0, 1, 1),
            Segment::from_i64(1, 1, 2, 1),
        ];
        assert!(euler_traversal(&path));
        // A square cycle.
        let square = vec![
            Segment::from_i64(0, 0, 1, 0),
            Segment::from_i64(1, 0, 1, 1),
            Segment::from_i64(1, 1, 0, 1),
            Segment::from_i64(0, 1, 0, 0),
        ];
        assert!(euler_traversal(&square));
    }

    #[test]
    fn disconnected_or_bad_degrees_fail() {
        // Two disjoint segments.
        let disjoint = vec![Segment::from_i64(0, 0, 1, 0), Segment::from_i64(5, 5, 6, 5)];
        assert!(!euler_traversal(&disjoint));
        // A star with four odd-degree leaves.
        let star = vec![
            Segment::from_i64(0, 0, 1, 0),
            Segment::from_i64(0, 0, -1, 0),
            Segment::from_i64(0, 0, 0, 1),
            Segment::from_i64(0, 0, 0, -1),
        ];
        assert!(!euler_traversal(&star));
        // The classical Königsberg-style multigraph with 4 odd vertices would also
        // fail; a "T" shape (3 odd vertices + 1) still has ≤ 2 odd? A T has 3 leaves
        // and one degree-3 centre: 4 odd vertices, no traversal.
        let tee = vec![
            Segment::from_i64(-1, 0, 0, 0),
            Segment::from_i64(0, 0, 1, 0),
            Segment::from_i64(0, 0, 0, 1),
        ];
        assert!(!euler_traversal(&tee));
    }

    #[test]
    fn degenerate_inputs() {
        assert!(euler_traversal(&[]));
        assert!(euler_traversal(&[Segment::from_i64(1, 1, 1, 1)]));
        assert!(!euler_traversal(&[
            Segment::from_i64(1, 1, 1, 1),
            Segment::from_i64(2, 2, 2, 2)
        ]));
        // An isolated point away from a segment blocks the traversal.
        assert!(!euler_traversal(&[
            Segment::from_i64(0, 0, 1, 0),
            Segment::from_i64(5, 5, 5, 5)
        ]));
    }
}
