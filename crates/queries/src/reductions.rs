//! The reductions of Figs. 3–6: from the Boolean functions `majority`, `parity` and
//! `half` to the topological queries.
//!
//! These are the constructions behind the non-definability results of Lemmas 5.5–5.7:
//! because `majority`, `parity` and `half` are not in AC⁰ while FO with dense-order
//! constraints is (Theorem 5.2), any query to which they reduce by such simple
//! constructions cannot be FO-definable.  Here the constructions serve two purposes:
//! they are *correctness tests* (the reduction output must give back the Boolean
//! value when fed to the direct query algorithms) and *workload generators* for the
//! benchmark harness.
//!
//! Where the paper's figure uses diagonal segments (not representable with dense-order
//! constraints — the paper itself replaces them with staircases, Fig. 3b) or leaves
//! coordinates partly implicit, the construction below uses an equivalent staircase
//! layout; `DESIGN.md` records the adaptation.

use crate::euler::Segment;
use frdb_core::dense::{DenseAtom, DenseOrder};
use frdb_core::logic::{Term, Var};
use frdb_core::relation::{GenTuple, Relation};
use frdb_num::Rat;

/// The Boolean `majority` function: more than half of the inputs are true.
#[must_use]
pub fn majority(bits: &[bool]) -> bool {
    2 * bits.iter().filter(|&&b| b).count() > bits.len()
}

/// The Boolean `parity` function: an even number of inputs are true.
#[must_use]
pub fn parity(bits: &[bool]) -> bool {
    bits.iter().filter(|&&b| b).count() % 2 == 0
}

/// The Boolean `half` function: exactly half of the inputs are true.
#[must_use]
pub fn half(bits: &[bool]) -> bool {
    2 * bits.iter().filter(|&&b| b).count() == bits.len()
}

fn hseg2(y: Rat, x0: Rat, x1: Rat) -> GenTuple<DenseAtom> {
    GenTuple::new(vec![
        DenseAtom::eq(Term::var("y"), Term::rat(y)),
        DenseAtom::le(Term::rat(x0), Term::var("x")),
        DenseAtom::le(Term::var("x"), Term::rat(x1)),
    ])
}

fn vseg2(x: Rat, y0: Rat, y1: Rat) -> GenTuple<DenseAtom> {
    GenTuple::new(vec![
        DenseAtom::eq(Term::var("x"), Term::rat(x)),
        DenseAtom::le(Term::rat(y0), Term::var("y")),
        DenseAtom::le(Term::var("y"), Term::rat(y1)),
    ])
}

/// The staircase path encoding of a Boolean vector: starting at `(0, 0)`, step right
/// one unit per variable, climbing one unit first whenever the variable is true
/// (Fig. 3b's staircase replacement of the diagonal).  Returns the constraint tuples
/// and the height reached at `x = n`.
fn staircase(bits: &[bool]) -> (Vec<GenTuple<DenseAtom>>, i64) {
    let mut tuples = Vec::new();
    let mut height = 0i64;
    for (i, &bit) in bits.iter().enumerate() {
        let x = i as i64;
        if bit {
            tuples.push(vseg2(
                Rat::from_i64(x),
                Rat::from_i64(height),
                Rat::from_i64(height + 1),
            ));
            height += 1;
        }
        tuples.push(hseg2(
            Rat::from_i64(height),
            Rat::from_i64(x),
            Rat::from_i64(x + 1),
        ));
    }
    (tuples, height)
}

/// Fig. 3: the reduction from `majority` to 2-dimensional region connectivity.  The
/// output region is connected iff `majority(bits)` is true.
#[must_use]
pub fn majority_to_connectivity(bits: &[bool]) -> Relation<DenseOrder> {
    let n = bits.len() as i64;
    let (mut tuples, _height) = staircase(bits);
    // The target segment on the line x = n, starting strictly above n/2: the staircase
    // reaches it iff the number of ones exceeds n/2.
    let target_lo = Rat::from_pair(2 * n + 1, 4); // n/2 + 1/4
    tuples.push(vseg2(Rat::from_i64(n), target_lo, Rat::from_i64(n + 1)));
    Relation::new(vec![Var::new("x"), Var::new("y")], tuples)
}

/// Fig. 4: the reduction from `majority` to the *at least / exactly one hole* queries.
/// The output region has (exactly) one hole iff `majority(bits)` is true.
#[must_use]
pub fn majority_to_holes(bits: &[bool]) -> Relation<DenseOrder> {
    let n = bits.len() as i64;
    let (mut tuples, _height) = staircase(bits);
    let target_lo = Rat::from_pair(2 * n + 1, 4);
    let top = Rat::from_i64(n + 1);
    // The target segment, plus a frame closing a loop through it: right edge, bottom
    // edge and a top connector.  When the staircase reaches the target a cycle (hence
    // a hole) is created; otherwise the figure is a tree and has no hole.
    tuples.push(vseg2(Rat::from_i64(n), target_lo, top.clone()));
    tuples.push(hseg2(top.clone(), Rat::from_i64(n), Rat::from_i64(n + 2)));
    tuples.push(vseg2(Rat::from_i64(n + 2), Rat::from_i64(0), top));
    tuples.push(hseg2(
        Rat::from_i64(0),
        Rat::from_i64(0),
        Rat::from_i64(n + 2),
    ));
    Relation::new(vec![Var::new("x"), Var::new("y")], tuples)
}

/// Fig. 5: the reduction from `parity` to 3-dimensional region connectivity.  The
/// output (a set of axis-parallel segments and points in `Q³`) is connected iff
/// `parity(bits)` is true (an even number of ones).
#[must_use]
pub fn parity_to_connectivity_3d(bits: &[bool]) -> Relation<DenseOrder> {
    let positions: Vec<i64> = bits
        .iter()
        .enumerate()
        .filter(|(_, &b)| b)
        .map(|(i, _)| i as i64 + 1)
        .collect();
    let m = positions.len();
    let vx = Var::new("x");
    let vy = Var::new("y");
    let vz = Var::new("z");
    let seg3 = |a: (i64, i64, i64), b: (i64, i64, i64)| {
        let mut atoms = Vec::new();
        for (var, (lo, hi)) in [
            ("x", (a.0.min(b.0), a.0.max(b.0))),
            ("y", (a.1.min(b.1), a.1.max(b.1))),
            ("z", (a.2.min(b.2), a.2.max(b.2))),
        ] {
            if lo == hi {
                atoms.push(DenseAtom::eq(Term::var(var), Term::cst(lo)));
            } else {
                atoms.push(DenseAtom::le(Term::cst(lo), Term::var(var)));
                atoms.push(DenseAtom::le(Term::var(var), Term::cst(hi)));
            }
        }
        GenTuple::new(atoms)
    };
    let mut tuples = Vec::new();
    // The base points (aᵢ, 0, 0).
    for &a in &positions {
        tuples.push(seg3((a, 0, 0), (a, 0, 0)));
    }
    // Arcs linking aᵢ to aᵢ₊₂ through the planes y = 1 and height z = aᵢ, exactly as
    // in the paper's construction, so arcs of the odd and even chains never touch.
    for i in 0..m.saturating_sub(2) {
        let a = positions[i];
        let b = positions[i + 2];
        tuples.push(seg3((a, 0, 0), (a, 0, a)));
        tuples.push(seg3((a, 0, a), (a, 1, a)));
        tuples.push(seg3((a, 1, a), (b, 1, a)));
        tuples.push(seg3((b, 1, a), (b, 0, a)));
        tuples.push(seg3((b, 0, a), (b, 0, 0)));
    }
    // The closing arc from the last position back to the first, in the plane z = 0.
    if m >= 2 {
        let first = positions[0];
        let last = positions[m - 1];
        tuples.push(seg3((last, 0, 0), (last, 1, 0)));
        tuples.push(seg3((last, 1, 0), (first, 1, 0)));
        tuples.push(seg3((first, 1, 0), (first, 0, 0)));
    } else if m == 1 {
        // A single 1-bit: add a far-away point so that the figure is disconnected,
        // matching parity = odd.
        tuples.push(seg3((-10, -10, -10), (-10, -10, -10)));
    }
    Relation::new(vec![vx, vy, vz], tuples)
}

/// Fig. 6: the reduction from `half` to the 2-dimensional Eulerian traversal, as an
/// explicit list of segments.  A traversal exists iff exactly half of the bits are
/// true.
#[must_use]
pub fn half_to_euler(bits: &[bool]) -> Vec<Segment> {
    let n = bits.len() as i64;
    let mut segments = Vec::new();
    let mut height = Rat::zero();
    for (i, &bit) in bits.iter().enumerate() {
        let x = Rat::from_i64(i as i64);
        if bit {
            let top = &height + &Rat::one();
            segments.push(Segment::new(
                (x.clone(), height.clone()),
                (x.clone(), top.clone()),
            ));
            height = top;
        }
        segments.push(Segment::new(
            (x.clone(), height.clone()),
            (&x + &Rat::one(), height.clone()),
        ));
    }
    // A small square loop whose lower-left corner sits at (n, n/2): the staircase ends
    // exactly there iff half(bits), attaching the path to the loop and leaving exactly
    // two odd-degree vertices.  The side length 1/4 keeps every other loop point at a
    // non-integer height, so no unintended attachment can occur.
    let corner_y = Rat::from_pair(n, 2);
    let side = Rat::from_pair(1, 4);
    let nx = Rat::from_i64(n);
    let c = |dx: &Rat, dy: &Rat| (&nx + dx, &corner_y + dy);
    let zero = Rat::zero();
    segments.push(Segment::new(c(&zero, &zero), c(&side, &zero)));
    segments.push(Segment::new(c(&side, &zero), c(&side, &side)));
    segments.push(Segment::new(c(&side, &side), c(&zero, &side)));
    segments.push(Segment::new(c(&zero, &side), c(&zero, &zero)));
    segments
}

/// Fig. 6 (second part): the reduction from `half` to 1-dimensional homeomorphism.
/// Returns the two monadic relations `R₁ = {−1, …, −n}` and
/// `R₂ = {i, n+i | bitᵢ = 1}`; they are homeomorphic iff `half(bits)` is true.
#[must_use]
pub fn half_to_homeomorphism(bits: &[bool]) -> (Relation<DenseOrder>, Relation<DenseOrder>) {
    let n = bits.len() as i64;
    let r1 = Relation::from_points(
        vec![Var::new("x")],
        (1..=n).map(|i| vec![Rat::from_i64(-i)]),
    );
    let mut pts = Vec::new();
    for (i, &bit) in bits.iter().enumerate() {
        if bit {
            let i = i as i64 + 1;
            pts.push(vec![Rat::from_i64(i)]);
            pts.push(vec![Rat::from_i64(n + i)]);
        }
    }
    let r2 = Relation::from_points(vec![Var::new("x")], pts);
    (r1, r2)
}

/// Deterministic pseudo-random Boolean vectors for the test and benchmark workloads.
#[must_use]
pub fn boolean_vector(n: usize, ones: usize) -> Vec<bool> {
    let mut bits = vec![false; n];
    // Spread the ones deterministically.
    let mut idx = 0usize;
    for k in 0..ones.min(n) {
        bits[idx % n] = true;
        idx += 2 * k + 3;
        while k + 1 < ones.min(n) && bits[idx % n] {
            idx += 1;
        }
    }
    // Ensure the exact count.
    let mut count = bits.iter().filter(|&&b| b).count();
    let mut i = 0;
    while count < ones.min(n) {
        if !bits[i] {
            bits[i] = true;
            count += 1;
        }
        i += 1;
    }
    while count > ones.min(n) {
        if bits[i % n] {
            bits[i % n] = false;
            count -= 1;
        }
        i += 1;
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::{has_exactly_one_hole, has_hole, is_connected};
    use crate::euler::euler_traversal;
    use crate::shape1d::homeomorphic_1d;

    #[test]
    fn boolean_functions() {
        assert!(majority(&[true, true, false]));
        assert!(!majority(&[true, false, false, false]));
        assert!(parity(&[]));
        assert!(!parity(&[true, false, true, true]));
        assert!(half(&[true, false, true, false]));
        assert!(!half(&[true, true, true, false]));
        let v = boolean_vector(10, 4);
        assert_eq!(v.len(), 10);
        assert_eq!(v.iter().filter(|&&b| b).count(), 4);
    }

    #[test]
    fn majority_reduction_to_connectivity_is_correct() {
        for ones in 0..=6 {
            let bits = boolean_vector(6, ones);
            let region = majority_to_connectivity(&bits);
            assert_eq!(
                is_connected(&region),
                majority(&bits),
                "majority→connectivity failed for {ones} ones out of 6"
            );
        }
    }

    #[test]
    fn majority_reduction_to_holes_is_correct() {
        for ones in 0..=5 {
            let bits = boolean_vector(5, ones);
            let region = majority_to_holes(&bits);
            assert_eq!(has_hole(&region), majority(&bits), "{ones} ones out of 5");
            assert_eq!(
                has_exactly_one_hole(&region),
                majority(&bits),
                "{ones} ones out of 5"
            );
        }
    }

    #[test]
    fn parity_reduction_to_3d_connectivity_is_correct() {
        for ones in 0..=5 {
            let bits = boolean_vector(5, ones);
            let region = parity_to_connectivity_3d(&bits);
            assert_eq!(is_connected(&region), parity(&bits), "{ones} ones out of 5");
        }
    }

    #[test]
    fn half_reductions_are_correct() {
        for ones in 0..=6 {
            let bits = boolean_vector(6, ones);
            let segments = half_to_euler(&bits);
            assert_eq!(
                euler_traversal(&segments),
                half(&bits),
                "euler: {ones} ones of 6"
            );
            let (r1, r2) = half_to_homeomorphism(&bits);
            assert_eq!(
                homeomorphic_1d(&r1, &r2),
                half(&bits),
                "homeo: {ones} ones of 6"
            );
        }
    }
}
