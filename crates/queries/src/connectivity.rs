//! Region connectivity and holes, in any dimension.
//!
//! The paper's k-dimensional *region connectivity* query (Section 5) asks whether
//! every pair of points of the region can be linked by a continuous curve inside it;
//! *at least one hole* and *exactly one hole* ask about the connectivity of the
//! complement.  Connectivity is not FO-definable for k ≥ 2 (Lemma 5.5) but is
//! expressible in `DATALOG¬` (Example 6.3); this module provides the direct
//! polynomial-time algorithm that the PTIME-capture theorem guarantees must exist.
//!
//! **Algorithm.**  A dense-order constraint region is a finite union of *convex*
//! cells: every prime tuple is an intersection of half-spaces of the forms `x ⋈ c` and
//! `x ⋈ y`.  For convex sets `A`, `B` the union `A ∪ B` is connected iff
//! `A ∩ cl(B) ≠ ∅` or `cl(A) ∩ B ≠ ∅` (if `x ∈ A ∩ cl(B)` then the half-open segment
//! from `x` to any point of `B` stays in `B` by convexity; conversely two sets that
//! are separated in that sense are topologically separated).  The closure of a
//! nonempty cell is obtained by relaxing its strict atoms to non-strict ones.  The
//! region is therefore connected iff the graph on its cells with those adjacency edges
//! is connected, and the number of its connected components is the number of graph
//! components — all decided with the dense-order satisfiability procedure, no
//! numerical geometry involved.
//!
//! As in the constraint-database literature, the region denoted by a formula is read
//! over the reals (the rational points alone would be totally disconnected); all
//! decisions are still exact rational computations.

use frdb_core::dense::{CmpOp, DenseAtom, DenseOrder};
use frdb_core::normal::{cover, PrimeTuple};
use frdb_core::relation::Relation;
use frdb_core::theory::Theory;

/// Relaxes every strict atom of a conjunction to its non-strict counterpart — the
/// topological closure of the (convex, nonempty) cell it defines.
fn closure_of(conj: &[DenseAtom]) -> Vec<DenseAtom> {
    conj.iter()
        .map(|a| match a.op {
            CmpOp::Lt => DenseAtom::le(a.lhs.clone(), a.rhs.clone()),
            _ => a.clone(),
        })
        .collect()
}

/// Whether two convex cells are adjacent within the region: their union is connected.
fn cells_adjacent(a: &[DenseAtom], b: &[DenseAtom]) -> bool {
    let a_meets_clb = {
        let mut sys = a.to_vec();
        sys.extend(closure_of(b));
        DenseOrder::satisfiable(&sys)
    };
    if a_meets_clb {
        return true;
    }
    let cla_meets_b = {
        let mut sys = closure_of(a);
        sys.extend(b.iter().cloned());
        DenseOrder::satisfiable(&sys)
    };
    cla_meets_b
}

fn find(parent: &mut Vec<usize>, i: usize) -> usize {
    if parent[i] != i {
        let root = find(parent, parent[i]);
        parent[i] = root;
    }
    parent[i]
}

/// Groups arbitrary convex cells (conjunctions) into connected components
/// (union–find over the adjacency graph); returns the cells grouped by component.
#[must_use]
pub fn group_cells(conjs: &[Vec<DenseAtom>]) -> Vec<Vec<usize>> {
    let n = conjs.len();
    let mut parent: Vec<usize> = (0..n).collect();
    for i in 0..n {
        for j in (i + 1)..n {
            if find(&mut parent, i) != find(&mut parent, j) && cells_adjacent(&conjs[i], &conjs[j])
            {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                parent[ri] = rj;
            }
        }
    }
    let mut groups: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for i in 0..n {
        groups.entry(find(&mut parent, i)).or_default().push(i);
    }
    groups.into_values().collect()
}

/// Groups the cells of a *cover* into connected components, returning prime tuples
/// (used by queries that need the tabular form of each cell, e.g. line separation).
#[must_use]
pub fn components(relation: &Relation<DenseOrder>) -> Vec<Vec<PrimeTuple>> {
    let cells = cover(relation);
    let conjs: Vec<Vec<DenseAtom>> = cells.iter().map(PrimeTuple::to_conj).collect();
    group_cells(&conjs)
        .into_iter()
        .map(|group| group.into_iter().map(|i| cells[i].clone()).collect())
        .collect()
}

/// The number of connected components of the region (0 for the empty region).
///
/// The generalized tuples of the canonical representation are themselves convex
/// cells, so no further decomposition is needed to run the adjacency argument.
#[must_use]
pub fn component_count(relation: &Relation<DenseOrder>) -> usize {
    let cells: Vec<Vec<DenseAtom>> = relation
        .tuples()
        .iter()
        .map(|t| t.atoms().to_vec())
        .collect();
    group_cells(&cells).len()
}

/// The k-dimensional region connectivity query: is the region connected?
/// (The empty region counts as connected, matching the 1-D convention of Theorem 5.3:
/// "connectivity holds if the input consists of at most one interval".)
#[must_use]
pub fn is_connected(relation: &Relation<DenseOrder>) -> bool {
    component_count(relation) <= 1
}

/// The *at least one hole* query: the complement of the region is disconnected.
#[must_use]
pub fn has_hole(relation: &Relation<DenseOrder>) -> bool {
    component_count(&relation.complement()) >= 2
}

/// The *exactly one hole* query: the complement of the region has exactly two
/// connected components (the unbounded outside and one bounded hole).
#[must_use]
pub fn has_exactly_one_hole(relation: &Relation<DenseOrder>) -> bool {
    component_count(&relation.complement()) == 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use frdb_core::logic::{Term, Var};
    use frdb_core::relation::GenTuple;
    use frdb_num::Rat;

    fn vx() -> Var {
        Var::new("x")
    }
    fn vy() -> Var {
        Var::new("y")
    }

    fn rect(x0: i64, x1: i64, y0: i64, y1: i64) -> GenTuple<DenseAtom> {
        GenTuple::new(vec![
            DenseAtom::le(Term::cst(x0), Term::var("x")),
            DenseAtom::le(Term::var("x"), Term::cst(x1)),
            DenseAtom::le(Term::cst(y0), Term::var("y")),
            DenseAtom::le(Term::var("y"), Term::cst(y1)),
        ])
    }

    fn rel2(tuples: Vec<GenTuple<DenseAtom>>) -> Relation<DenseOrder> {
        Relation::new(vec![vx(), vy()], tuples)
    }

    #[test]
    fn overlapping_and_touching_rectangles_are_connected() {
        // Overlapping.
        assert!(is_connected(&rel2(vec![
            rect(0, 2, 0, 2),
            rect(1, 3, 1, 3)
        ])));
        // Touching along an edge.
        assert!(is_connected(&rel2(vec![
            rect(0, 1, 0, 1),
            rect(1, 2, 0, 1)
        ])));
        // Touching at a single corner point still connects the union.
        assert!(is_connected(&rel2(vec![
            rect(0, 1, 0, 1),
            rect(1, 2, 1, 2)
        ])));
    }

    #[test]
    fn disjoint_rectangles_are_disconnected() {
        let rel = rel2(vec![rect(0, 1, 0, 1), rect(3, 4, 3, 4)]);
        assert!(!is_connected(&rel));
        assert_eq!(component_count(&rel), 2);
        let three = rel2(vec![rect(0, 1, 0, 1), rect(3, 4, 0, 1), rect(6, 7, 0, 1)]);
        assert_eq!(component_count(&three), 3);
    }

    #[test]
    fn open_cells_touching_only_in_a_missing_point_are_disconnected() {
        // Two open rectangles whose closures share the corner (1,1), which belongs to
        // neither: the union is *not* connected.
        let open_rect = |x0: i64, x1: i64, y0: i64, y1: i64| {
            GenTuple::new(vec![
                DenseAtom::lt(Term::cst(x0), Term::var("x")),
                DenseAtom::lt(Term::var("x"), Term::cst(x1)),
                DenseAtom::lt(Term::cst(y0), Term::var("y")),
                DenseAtom::lt(Term::var("y"), Term::cst(y1)),
            ])
        };
        let rel = rel2(vec![open_rect(0, 1, 0, 1), open_rect(1, 2, 1, 2)]);
        assert!(!is_connected(&rel));
        // Adding the shared corner point reconnects it.
        let with_corner = rel.union(&Relation::from_points(
            vec![vx(), vy()],
            vec![vec![Rat::from_i64(1), Rat::from_i64(1)]],
        ));
        assert!(is_connected(&with_corner));
    }

    #[test]
    fn empty_and_single_cell_regions() {
        assert!(is_connected(&Relation::empty(vec![vx(), vy()])));
        assert_eq!(component_count(&Relation::empty(vec![vx(), vy()])), 0);
        assert!(is_connected(&rel2(vec![rect(0, 5, 0, 5)])));
        assert!(is_connected(&Relation::universal(vec![vx(), vy()])));
    }

    #[test]
    fn one_dimensional_connectivity_agrees_with_interval_count() {
        let seg = |lo: i64, hi: i64| {
            GenTuple::new(vec![
                DenseAtom::le(Term::cst(lo), Term::var("x")),
                DenseAtom::le(Term::var("x"), Term::cst(hi)),
            ])
        };
        let one = Relation::new(vec![vx()], vec![seg(0, 2), seg(2, 5)]);
        assert!(is_connected(&one));
        let two = Relation::new(vec![vx()], vec![seg(0, 2), seg(3, 5)]);
        assert!(!is_connected(&two));
        assert_eq!(component_count(&two), 2);
    }

    #[test]
    fn square_annulus_has_exactly_one_hole() {
        // A square ring: the 6×6 square with the open 2×2 middle removed.
        let outer = rel2(vec![rect(0, 6, 0, 6)]);
        let inner_open = rel2(vec![GenTuple::new(vec![
            DenseAtom::lt(Term::cst(2), Term::var("x")),
            DenseAtom::lt(Term::var("x"), Term::cst(4)),
            DenseAtom::lt(Term::cst(2), Term::var("y")),
            DenseAtom::lt(Term::var("y"), Term::cst(4)),
        ])]);
        let ring = outer.difference(&inner_open);
        assert!(is_connected(&ring));
        assert!(has_hole(&ring));
        assert!(has_exactly_one_hole(&ring));
        // A solid square has no hole; its complement is connected.
        assert!(!has_hole(&outer));
        // Two separate rings have two holes, not exactly one.
        let shifted = ring.map_constants(&|c| c + &Rat::from_i64(20));
        let shifted = shifted.rename(vec![vx(), vy()]);
        let two_rings = ring.union(&shifted);
        assert!(has_hole(&two_rings));
        assert!(!has_exactly_one_hole(&two_rings));
    }

    #[test]
    fn three_dimensional_connectivity() {
        // Two unit cubes sharing a face are connected; far apart they are not.
        let vz = Var::new("z");
        let cube = |x0: i64| {
            GenTuple::new(vec![
                DenseAtom::le(Term::cst(x0), Term::var("x")),
                DenseAtom::le(Term::var("x"), Term::cst(x0 + 1)),
                DenseAtom::le(Term::cst(0), Term::var("y")),
                DenseAtom::le(Term::var("y"), Term::cst(1)),
                DenseAtom::le(Term::cst(0), Term::var("z")),
                DenseAtom::le(Term::var("z"), Term::cst(1)),
            ])
        };
        let touching = Relation::new(vec![vx(), vy(), vz.clone()], vec![cube(0), cube(1)]);
        assert!(is_connected(&touching));
        let apart = Relation::new(vec![vx(), vy(), vz], vec![cube(0), cube(5)]);
        assert!(!is_connected(&apart));
    }
}
