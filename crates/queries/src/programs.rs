//! The `DATALOG¬` programs of Section 6 (Example 6.3): region connectivity by
//! alternating sweeps and transitive closure.
//!
//! The program follows the paper's construction: a first-order rule defines
//! `sweep(x, y, u, v)` — both points are in `R` and the axis-parallel or diagonal
//! segment between them lies entirely in `R` — and two recursive rules compute its
//! transitive closure `conn`.  The region is connected iff every pair of points of
//! `R` ends up related by `conn`, a check performed on the fixpoint (re-evaluating the
//! final condition on the completed instance replaces the timestamp trick the paper
//! mentions for pure inflationary semantics).

use frdb_core::dense::{DenseAtom, DenseOrder};
use frdb_core::logic::{Formula, Term, Var};
use frdb_core::relation::{Instance, Relation};
use frdb_core::schema::{RelName, Schema};
use frdb_datalog::{DatalogError, Literal, Program, Rule};

/// "`z` lies (weakly) between `a` and `b`" as a dense-order formula.
fn between(z: &str, a: &str, b: &str) -> Formula<DenseAtom> {
    Formula::disj([
        Formula::conj([
            Formula::Atom(DenseAtom::le(Term::var(a), Term::var(z))),
            Formula::Atom(DenseAtom::le(Term::var(z), Term::var(b))),
        ]),
        Formula::conj([
            Formula::Atom(DenseAtom::le(Term::var(b), Term::var(z))),
            Formula::Atom(DenseAtom::le(Term::var(z), Term::var(a))),
        ]),
    ])
}

/// The sweep body of Example 6.3: `(x,y)` and `(u,v)` are in `R` and are joined by a
/// vertical, horizontal, or diagonal segment entirely contained in `R`.
///
/// Public so the evaluator-equivalence tests and the benchmark harness can run
/// the paper's heaviest FO body (five relation atoms under nested negated
/// quantifiers) as a standalone query.
#[must_use]
pub fn sweep_body(r: &str) -> Formula<DenseAtom> {
    let in_r = |a: &str, b: &str| Formula::rel(r, [Term::var(a), Term::var(b)]);
    // Vertical sweep: x = u and every (x, z) with z between y and v is in R.
    let vertical = Formula::conj([
        Formula::Atom(DenseAtom::eq(Term::var("x"), Term::var("u"))),
        Formula::Exists(
            vec![Var::new("z")],
            Box::new(
                between("z", "y", "v").and(Formula::rel(r, [Term::var("x"), Term::var("z")]).not()),
            ),
        )
        .not(),
    ]);
    // Horizontal sweep: y = v and every (z, y) with z between x and u is in R.
    let horizontal = Formula::conj([
        Formula::Atom(DenseAtom::eq(Term::var("y"), Term::var("v"))),
        Formula::Exists(
            vec![Var::new("z")],
            Box::new(
                between("z", "x", "u").and(Formula::rel(r, [Term::var("z"), Term::var("y")]).not()),
            ),
        )
        .not(),
    ]);
    // Diagonal sweep: x = y, u = v, and every (z, z) with z between x and u is in R.
    let diagonal = Formula::conj([
        Formula::Atom(DenseAtom::eq(Term::var("x"), Term::var("y"))),
        Formula::Atom(DenseAtom::eq(Term::var("u"), Term::var("v"))),
        Formula::Exists(
            vec![Var::new("z")],
            Box::new(
                between("z", "x", "u").and(Formula::rel(r, [Term::var("z"), Term::var("z")]).not()),
            ),
        )
        .not(),
    ]);
    Formula::conj([
        in_r("x", "y"),
        in_r("u", "v"),
        Formula::disj([vertical, horizontal, diagonal]),
    ])
}

/// The region-connectivity program of Example 6.3 over a binary EDB relation `r`:
/// derives `sweep` and its transitive closure `conn`.
#[must_use]
pub fn region_connectivity_program(r: &str) -> Program<DenseAtom> {
    let head_vars = ["x", "y", "u", "v"];
    let mut program = Program::from_rules(vec![
        Rule::from_formula("sweep", head_vars, sweep_body(r)),
        Rule::new(
            "conn",
            head_vars,
            vec![Literal::pos(
                "sweep",
                [
                    Term::var("x"),
                    Term::var("y"),
                    Term::var("u"),
                    Term::var("v"),
                ],
            )],
        ),
        Rule::new(
            "conn",
            head_vars,
            vec![
                Literal::pos(
                    "conn",
                    [
                        Term::var("x"),
                        Term::var("y"),
                        Term::var("w"),
                        Term::var("t"),
                    ],
                ),
                Literal::pos(
                    "conn",
                    [
                        Term::var("w"),
                        Term::var("t"),
                        Term::var("u"),
                        Term::var("v"),
                    ],
                ),
            ],
        ),
    ]);
    program = program.with_max_iterations(64);
    program
}

/// Runs the Example 6.3 program on a binary region and reads off the Boolean answer:
/// every pair of points of the region is `conn`-related on the fixpoint.
///
/// # Errors
/// Propagates `DATALOG¬` evaluation errors.
pub fn region_connected_datalog(region: &Relation<DenseOrder>) -> Result<bool, DatalogError> {
    let schema = Schema::from_pairs([("R", 2)]);
    let mut edb: Instance<DenseOrder> = Instance::new(schema);
    let region = region.rename(vec![Var::new("x"), Var::new("y")]);
    edb.set("R", region.clone()).expect("schema declares R");
    let program = region_connectivity_program("R");
    let result = program.run(&edb)?;
    let conn = result
        .instance
        .get(&RelName::new("conn"))
        .ok_or(DatalogError::IterationLimit(0))?;
    // R × R ⊆ conn ?
    let vars = vec![Var::new("x"), Var::new("y"), Var::new("u"), Var::new("v")];
    let left = region.rename(vec![Var::new("x"), Var::new("y")]);
    let right = region.rename(vec![Var::new("u"), Var::new("v")]);
    let mut product_tuples = Vec::new();
    for a in left.tuples() {
        for b in right.tuples() {
            let mut c = a.atoms().to_vec();
            c.extend(b.atoms().iter().cloned());
            product_tuples.push(c);
        }
    }
    let product = Relation::<DenseOrder>::from_dnf(vars.clone(), product_tuples);
    let conn = conn.rename(vars);
    Ok(product.subset_of(&conn))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::is_connected;
    use frdb_core::relation::GenTuple;

    fn rect(x0: i64, x1: i64, y0: i64, y1: i64) -> GenTuple<DenseAtom> {
        GenTuple::new(vec![
            DenseAtom::le(Term::cst(x0), Term::var("x")),
            DenseAtom::le(Term::var("x"), Term::cst(x1)),
            DenseAtom::le(Term::cst(y0), Term::var("y")),
            DenseAtom::le(Term::var("y"), Term::cst(y1)),
        ])
    }

    #[test]
    fn datalog_connectivity_matches_direct_algorithm() {
        // Kept deliberately small: the generic bottom-up evaluator is polynomial but
        // not fast; the benchmark harness measures its scaling on larger inputs.
        let connected = Relation::new(vec![Var::new("x"), Var::new("y")], vec![rect(0, 3, 0, 3)]);
        let disconnected = Relation::new(
            vec![Var::new("x"), Var::new("y")],
            vec![rect(0, 1, 0, 1), rect(3, 4, 3, 4)],
        );
        for (region, expected) in [(connected, true), (disconnected, false)] {
            assert_eq!(is_connected(&region), expected);
            assert_eq!(region_connected_datalog(&region).unwrap(), expected);
        }
    }
}
