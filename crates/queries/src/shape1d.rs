//! One-dimensional queries: connectivity, holes, Eulerian traversal and
//! homeomorphism of monadic relations.
//!
//! Theorem 5.3(iii) notes that the one-dimensional versions of the topological
//! queries *are* FO-definable ("the connectivity of one-dimensional regions holds if
//! the input consists of at most one interval"); this module provides both the direct
//! algorithms on the canonical interval decomposition and the FO sentences, so the
//! engines can be cross-checked.

use frdb_core::dense::{DenseAtom, DenseOrder};
use frdb_core::logic::{Formula, Term};
use frdb_core::normal::{decompose_1d, Piece1};
use frdb_core::relation::Relation;

/// 1-D region connectivity: the region is a single interval or point (or empty).
#[must_use]
pub fn is_connected_1d(relation: &Relation<DenseOrder>) -> bool {
    decompose_1d(relation).len() <= 1
}

/// 1-D "at least one hole": a bounded gap exists between two pieces, i.e. the region
/// has at least two pieces.
#[must_use]
pub fn has_hole_1d(relation: &Relation<DenseOrder>) -> bool {
    decompose_1d(relation).len() >= 2
}

/// 1-D "exactly one hole": exactly two maximal pieces.
#[must_use]
pub fn has_exactly_one_hole_1d(relation: &Relation<DenseOrder>) -> bool {
    decompose_1d(relation).len() == 2
}

/// 1-D Eulerian traversal: a continuous traversal visiting each point exactly once
/// exists iff the region is a single interval or point.
#[must_use]
pub fn euler_traversal_1d(relation: &Relation<DenseOrder>) -> bool {
    is_connected_1d(relation)
}

/// The FO sentence expressing 1-D connectivity of the relation named `r`:
/// `∀x∀y∀z (R(x) ∧ R(y) ∧ x ≤ z ∧ z ≤ y → R(z))` — the region is order-convex.
#[must_use]
pub fn connectivity_1d_sentence(r: &str) -> Formula<DenseAtom> {
    Formula::forall(
        ["x", "y", "z"],
        Formula::conj([
            Formula::rel(r, [Term::var("x")]),
            Formula::rel(r, [Term::var("y")]),
            Formula::Atom(DenseAtom::le(Term::var("x"), Term::var("z"))),
            Formula::Atom(DenseAtom::le(Term::var("z"), Term::var("y"))),
        ])
        .implies(Formula::rel(r, [Term::var("z")])),
    )
}

/// The abstract "shape type" of a 1-D piece, used by the homeomorphism test: two
/// subsets of the line are homeomorphic iff their ordered sequences of piece types
/// agree (the paper's Example 6.4 discussion: "the same sequence of points and
/// intervals").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PieceType {
    /// An isolated point.
    Point,
    /// A bounded interval containing both, one, or none of its endpoints.
    Bounded {
        /// Whether the lower endpoint belongs to the set.
        lo_closed: bool,
        /// Whether the upper endpoint belongs to the set.
        hi_closed: bool,
    },
    /// An interval unbounded below (and bounded above).
    UnboundedBelow {
        /// Whether the upper endpoint belongs to the set.
        hi_closed: bool,
    },
    /// An interval unbounded above (and bounded below).
    UnboundedAbove {
        /// Whether the lower endpoint belongs to the set.
        lo_closed: bool,
    },
    /// The whole line.
    Line,
}

/// The ordered sequence of piece types of a monadic relation.
#[must_use]
pub fn piece_types(relation: &Relation<DenseOrder>) -> Vec<PieceType> {
    decompose_1d(relation)
        .into_iter()
        .map(|p| match p {
            Piece1::Point(_) => PieceType::Point,
            Piece1::Interval { lo, hi } => match (lo, hi) {
                (None, None) => PieceType::Line,
                (None, Some((_, hc))) => PieceType::UnboundedBelow { hi_closed: hc },
                (Some((_, lc)), None) => PieceType::UnboundedAbove { lo_closed: lc },
                (Some((_, lc)), Some((_, hc))) => PieceType::Bounded {
                    lo_closed: lc,
                    hi_closed: hc,
                },
            },
        })
        .collect()
}

/// The mirror image of a piece-type sequence (a homeomorphism of the line may reverse
/// orientation, swapping the roles of the endpoints).
fn reversed(types: &[PieceType]) -> Vec<PieceType> {
    types
        .iter()
        .rev()
        .map(|t| match *t {
            PieceType::Point => PieceType::Point,
            PieceType::Line => PieceType::Line,
            PieceType::Bounded {
                lo_closed,
                hi_closed,
            } => PieceType::Bounded {
                lo_closed: hi_closed,
                hi_closed: lo_closed,
            },
            PieceType::UnboundedBelow { hi_closed } => PieceType::UnboundedAbove {
                lo_closed: hi_closed,
            },
            PieceType::UnboundedAbove { lo_closed } => PieceType::UnboundedBelow {
                hi_closed: lo_closed,
            },
        })
        .collect()
}

/// 1-D homeomorphism: two monadic relations are homeomorphic (as subsets of the line,
/// under a bi-continuous bijection of the line) iff they decompose into the same
/// ordered sequence of piece types, possibly after reversing orientation.
#[must_use]
pub fn homeomorphic_1d(a: &Relation<DenseOrder>, b: &Relation<DenseOrder>) -> bool {
    let ta = piece_types(a);
    let tb = piece_types(b);
    ta == tb || ta == reversed(&tb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use frdb_core::fo::eval_sentence;
    use frdb_core::logic::Var;
    use frdb_core::relation::{GenTuple, Instance};
    use frdb_core::schema::Schema;
    use frdb_num::Rat;

    fn seg(lo: i64, hi: i64) -> GenTuple<DenseAtom> {
        GenTuple::new(vec![
            DenseAtom::le(Term::cst(lo), Term::var("x")),
            DenseAtom::le(Term::var("x"), Term::cst(hi)),
        ])
    }

    fn rel(tuples: Vec<GenTuple<DenseAtom>>) -> Relation<DenseOrder> {
        Relation::new(vec![Var::new("x")], tuples)
    }

    #[test]
    fn direct_and_fo_connectivity_agree() {
        let connected = rel(vec![seg(0, 3), seg(3, 8)]);
        let split = rel(vec![seg(0, 3), seg(5, 8)]);
        assert!(is_connected_1d(&connected));
        assert!(!is_connected_1d(&split));
        // The FO sentence gives the same answers (Theorem 5.3(iii)).
        let schema = Schema::from_pairs([("R", 1)]);
        let sentence = connectivity_1d_sentence("R");
        for (relation, expected) in [(connected, true), (split, false)] {
            let mut inst = Instance::new(schema.clone());
            inst.set("R", relation).unwrap();
            assert_eq!(eval_sentence(&sentence, &inst).unwrap(), expected);
        }
    }

    #[test]
    fn hole_queries_1d() {
        assert!(!has_hole_1d(&rel(vec![seg(0, 5)])));
        assert!(has_hole_1d(&rel(vec![seg(0, 1), seg(2, 3)])));
        assert!(has_exactly_one_hole_1d(&rel(vec![seg(0, 1), seg(2, 3)])));
        assert!(!has_exactly_one_hole_1d(&rel(vec![
            seg(0, 1),
            seg(2, 3),
            seg(4, 5)
        ])));
        assert!(euler_traversal_1d(&rel(vec![seg(0, 5)])));
        assert!(!euler_traversal_1d(&rel(vec![seg(0, 1), seg(2, 3)])));
    }

    #[test]
    fn homeomorphism_ignores_lengths_but_not_structure() {
        // [0,1] ∪ {5}  ≅  [10,400] ∪ {999}
        let a = rel(vec![seg(0, 1)]).union(&Relation::from_points(
            vec![Var::new("x")],
            vec![vec![Rat::from_i64(5)]],
        ));
        let b = rel(vec![seg(10, 400)]).union(&Relation::from_points(
            vec![Var::new("x")],
            vec![vec![Rat::from_i64(999)]],
        ));
        assert!(homeomorphic_1d(&a, &b));
        // But a closed interval is not homeomorphic to a half-open one, and the order
        // of the pieces matters.
        let half_open = Relation::from_dnf(
            vec![Var::new("x")],
            vec![vec![
                DenseAtom::le(Term::cst(0), Term::var("x")),
                DenseAtom::lt(Term::var("x"), Term::cst(1)),
            ]],
        );
        assert!(!homeomorphic_1d(&rel(vec![seg(0, 1)]), &half_open));
        // An interval followed by a point IS homeomorphic to a point followed by an
        // interval: x ↦ −x reverses the line.
        let point_then_interval =
            Relation::from_points(vec![Var::new("x")], vec![vec![Rat::from_i64(-5)]])
                .union(&rel(vec![seg(0, 1)]));
        assert!(homeomorphic_1d(&a, &point_then_interval));
        // But an interval plus a point is not homeomorphic to two points.
        let two_points = Relation::from_points(
            vec![Var::new("x")],
            vec![vec![Rat::from_i64(0)], vec![Rat::from_i64(1)]],
        );
        assert!(!homeomorphic_1d(&a, &two_points));
    }

    #[test]
    fn piece_types_cover_unbounded_cases() {
        let below = Relation::from_dnf(
            vec![Var::new("x")],
            vec![vec![DenseAtom::le(Term::var("x"), Term::cst(0))]],
        );
        assert_eq!(
            piece_types(&below),
            vec![PieceType::UnboundedBelow { hi_closed: true }]
        );
        let above = Relation::from_dnf(
            vec![Var::new("x")],
            vec![vec![DenseAtom::lt(Term::cst(0), Term::var("x"))]],
        );
        assert_eq!(
            piece_types(&above),
            vec![PieceType::UnboundedAbove { lo_closed: false }]
        );
        assert_eq!(
            piece_types(&Relation::universal(vec![Var::new("x")])),
            vec![PieceType::Line]
        );
        assert!(homeomorphic_1d(&below, &below));
        assert!(!homeomorphic_1d(&below, &above));
    }
}
