//! The executable FO query catalog: the Fig. 8 queries (and the standard
//! relational-algebra shapes they exercise) paired with small instances, as
//! one reusable list.
//!
//! The catalog serves two purposes:
//!
//! * the **evaluator-equivalence property tests** run every entry through both
//!   the relational-algebra evaluator and the expand-then-eliminate baseline
//!   and require identical answer relations;
//! * the **benchmark harness** uses the heavier entries (the multi-relation
//!   joins and the Example 6.3 sweep body) as its evaluator-comparison
//!   workloads.
//!
//! Entries are kept deliberately small — the expand baseline is exponential in
//! exactly the shapes this catalog collects.

use crate::programs::sweep_body;
use crate::reductions::{boolean_vector, majority_to_connectivity, parity_to_connectivity_3d};
use crate::workload::{random_graph, random_intervals, random_region2, single_relation_instance};
use frdb_core::dense::{DenseAtom, DenseOrder};
use frdb_core::logic::{Formula, Term, Var};
use frdb_core::relation::Instance;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One catalog entry: a named FO query with its free variables and a set of
/// instances to evaluate it on.
pub struct CatalogEntry {
    /// A short stable name (used in test failure messages and benchmark ids).
    pub name: &'static str,
    /// The query formula.
    pub formula: Formula<DenseAtom>,
    /// The free (answer) variables.
    pub free: Vec<Var>,
    /// Instances the query is meant to run on.
    pub instances: Vec<Instance<DenseOrder>>,
}

fn v(name: &str) -> Var {
    Var::new(name)
}

fn interval_instances() -> Vec<Instance<DenseOrder>> {
    [3usize, 5]
        .into_iter()
        .enumerate()
        .map(|(i, n)| {
            let mut rng = StdRng::seed_from_u64(11 + i as u64);
            single_relation_instance("R", random_intervals(&mut rng, n, 40))
        })
        .collect()
}

fn region_instances() -> Vec<Instance<DenseOrder>> {
    let mut out: Vec<Instance<DenseOrder>> = [2usize, 3]
        .into_iter()
        .enumerate()
        .map(|(i, n)| {
            let mut rng = StdRng::seed_from_u64(23 + i as u64);
            single_relation_instance("R", random_region2(&mut rng, n, 24))
        })
        .collect();
    // The Fig. 3 reduction region: the staircase + target of the majority
    // construction, renamed onto the catalog's column convention.
    let region = majority_to_connectivity(&boolean_vector(3, 2));
    out.push(single_relation_instance(
        "R",
        region.rename(vec![v("x"), v("y")]),
    ));
    out
}

fn graph_instances() -> Vec<Instance<DenseOrder>> {
    (0..2u64)
        .map(|seed| {
            let mut rng = StdRng::seed_from_u64(37 + seed);
            single_relation_instance("S", random_graph(&mut rng, 4, 5))
        })
        .collect()
}

/// The "gap" query `{x | ¬R(x) ∧ ∃y (R(y) ∧ y < x) ∧ ∃z (R(z) ∧ x < z)}` —
/// a quantifier-depth-2 selection with negation over a monadic relation.
#[must_use]
pub fn gap_query() -> Formula<DenseAtom> {
    Formula::rel("R", [Term::var("x")])
        .not()
        .and(Formula::exists(
            ["y"],
            Formula::rel("R", [Term::var("y")])
                .and(Formula::Atom(DenseAtom::lt(Term::var("y"), Term::var("x")))),
        ))
        .and(Formula::exists(
            ["z"],
            Formula::rel("R", [Term::var("z")])
                .and(Formula::Atom(DenseAtom::lt(Term::var("x"), Term::var("z")))),
        ))
}

/// The two-hop join `{(x, z) | ∃y. S(x, y) ∧ S(y, z)}`.
#[must_use]
pub fn two_hop_query() -> Formula<DenseAtom> {
    Formula::exists(
        ["y"],
        Formula::rel("S", [Term::var("x"), Term::var("y")])
            .and(Formula::rel("S", [Term::var("y"), Term::var("z")])),
    )
}

/// The three-hop join `{(x, w) | ∃y ∃z. S(x,y) ∧ S(y,z) ∧ S(z,w)}` — the
/// multi-relation-join shape whose eager flattening the expand baseline pays
/// for quadratically per conjunction.
#[must_use]
pub fn three_hop_query() -> Formula<DenseAtom> {
    Formula::exists(
        ["y", "z"],
        Formula::conj([
            Formula::rel("S", [Term::var("x"), Term::var("y")]),
            Formula::rel("S", [Term::var("y"), Term::var("z")]),
            Formula::rel("S", [Term::var("z"), Term::var("w")]),
        ]),
    )
}

/// The "zigzag" multi-join `{(x, w) | ∃y ∃z. S(x,y) ∧ S(z,w) ∧ S(y,z)}` —
/// semantically the three-hop chain, deliberately *written* cross-product
/// first: syntactic-order evaluation multiplies `S(x,y) × S(z,w)` before the
/// linking conjunct `S(y,z)` arrives.  This is the shape the cost-guided
/// plan optimizer re-orders into the chain `S(x,y) ⋈ S(y,z) ⋈ S(z,w)`, and
/// the benchmark harness measures that win on it.
#[must_use]
pub fn zigzag_query() -> Formula<DenseAtom> {
    Formula::exists(
        ["y", "z"],
        Formula::conj([
            Formula::rel("S", [Term::var("x"), Term::var("y")]),
            Formula::rel("S", [Term::var("z"), Term::var("w")]),
            Formula::rel("S", [Term::var("y"), Term::var("z")]),
        ]),
    )
}

/// `{x | shadow_R(x) ↔ shadow-of-converse_R(x)}` over a binary region — the
/// bi-implication duplicates both shadow sub-formulas, exercising the
/// evaluator's hash-consing and memoization.
#[must_use]
pub fn iff_shadow_query() -> Formula<DenseAtom> {
    let shadow = Formula::exists(
        ["y"],
        Formula::<DenseAtom>::rel("R", [Term::var("x"), Term::var("y")]),
    );
    let converse = Formula::exists(
        ["y"],
        Formula::<DenseAtom>::rel("R", [Term::var("y"), Term::var("x")]),
    );
    shadow.iff(converse)
}

/// The full dense-order catalog.
#[must_use]
pub fn fo_catalog() -> Vec<CatalogEntry> {
    let mut entries = vec![
        CatalogEntry {
            name: "connectivity-1d",
            formula: crate::shape1d::connectivity_1d_sentence("R"),
            free: Vec::new(),
            instances: interval_instances(),
        },
        CatalogEntry {
            name: "gap",
            formula: gap_query(),
            free: vec![v("x")],
            instances: interval_instances(),
        },
        CatalogEntry {
            name: "shadow",
            formula: Formula::exists(["y"], Formula::rel("R", [Term::var("x"), Term::var("y")])),
            free: vec![v("x")],
            instances: region_instances(),
        },
        CatalogEntry {
            name: "iff-shadow",
            formula: iff_shadow_query(),
            free: vec![v("x")],
            instances: region_instances(),
        },
        CatalogEntry {
            name: "two-hop",
            formula: two_hop_query(),
            free: vec![v("x"), v("z")],
            instances: graph_instances(),
        },
        CatalogEntry {
            name: "three-hop",
            formula: three_hop_query(),
            free: vec![v("x"), v("w")],
            instances: graph_instances(),
        },
        CatalogEntry {
            name: "zigzag",
            formula: zigzag_query(),
            free: vec![v("x"), v("w")],
            instances: graph_instances(),
        },
        CatalogEntry {
            name: "diagonal-membership",
            formula: Formula::rel("S", [Term::var("x"), Term::var("x")]),
            free: vec![v("x")],
            instances: graph_instances(),
        },
        CatalogEntry {
            name: "nonempty-3d",
            formula: Formula::exists(
                ["x", "y", "z"],
                Formula::rel("R", [Term::var("x"), Term::var("y"), Term::var("z")]),
            ),
            free: Vec::new(),
            instances: vec![single_relation_instance(
                "R",
                parity_to_connectivity_3d(&boolean_vector(3, 2)),
            )],
        },
    ];
    // The Example 6.3 sweep body: the heaviest FO shape of the paper (five
    // relation atoms, three negated quantified sub-formulas), on tiny Fig. 3
    // staircase regions.
    let sweep_instances: Vec<Instance<DenseOrder>> = (0..2usize)
        .map(|ones| {
            let region = majority_to_connectivity(&boolean_vector(2, ones));
            single_relation_instance("R", region.rename(vec![v("x"), v("y")]))
        })
        .collect();
    entries.push(CatalogEntry {
        name: "sweep",
        formula: sweep_body("R"),
        free: vec![v("x"), v("y"), v("u"), v("v")],
        instances: sweep_instances,
    });
    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use frdb_core::fo::eval_query;

    #[test]
    fn catalog_entries_evaluate_on_their_instances() {
        for entry in fo_catalog() {
            for (i, inst) in entry.instances.iter().enumerate() {
                let ans = eval_query(&entry.formula, &entry.free, inst)
                    .unwrap_or_else(|e| panic!("{} on instance {i}: {e}", entry.name));
                assert_eq!(ans.arity(), entry.free.len(), "{}", entry.name);
            }
        }
    }
}
