//! Random-instance generators for property tests and the benchmark harness.

use frdb_core::dense::{DenseAtom, DenseOrder};
use frdb_core::logic::{Term, Var};
use frdb_core::relation::{GenTuple, Instance, Relation};
use frdb_core::schema::Schema;
use frdb_num::Rat;
use rand::Rng;

/// A random monadic relation: the union of `n` random closed intervals with integer
/// endpoints in `[0, range]`.
#[must_use]
pub fn random_intervals(rng: &mut impl Rng, n: usize, range: i64) -> Relation<DenseOrder> {
    let tuples = (0..n)
        .map(|_| {
            let a = rng.gen_range(0..=range);
            let b = rng.gen_range(0..=range);
            let (lo, hi) = (a.min(b), a.max(b));
            GenTuple::new(vec![
                DenseAtom::le(Term::cst(lo), Term::var("x")),
                DenseAtom::le(Term::var("x"), Term::cst(hi)),
            ])
        })
        .collect();
    Relation::new(vec![Var::new("x")], tuples)
}

/// A random binary region: the union of `n` random axis-parallel rectangles (some of
/// them degenerate segments) with integer corners in `[0, range]²`.
#[must_use]
pub fn random_region2(rng: &mut impl Rng, n: usize, range: i64) -> Relation<DenseOrder> {
    let tuples = (0..n)
        .map(|_| {
            let x0 = rng.gen_range(0..=range);
            let x1 = (x0 + rng.gen_range(0..=range / 4 + 1)).min(range);
            let y0 = rng.gen_range(0..=range);
            let y1 = (y0 + rng.gen_range(0..=range / 4 + 1)).min(range);
            GenTuple::new(vec![
                DenseAtom::le(Term::cst(x0), Term::var("x")),
                DenseAtom::le(Term::var("x"), Term::cst(x1)),
                DenseAtom::le(Term::cst(y0), Term::var("y")),
                DenseAtom::le(Term::var("y"), Term::cst(y1)),
            ])
        })
        .collect();
    Relation::new(vec![Var::new("x"), Var::new("y")], tuples)
}

/// A random finite directed graph on `nodes` vertices with `edges` edges, embedded as
/// a finite binary constraint relation.
#[must_use]
pub fn random_graph(rng: &mut impl Rng, nodes: usize, edges: usize) -> Relation<DenseOrder> {
    let points: Vec<Vec<Rat>> = (0..edges)
        .map(|_| {
            let a = rng.gen_range(0..nodes.max(1)) as i64;
            let b = rng.gen_range(0..nodes.max(1)) as i64;
            vec![Rat::from_i64(a), Rat::from_i64(b)]
        })
        .collect();
    Relation::from_points(vec![Var::new("x"), Var::new("y")], points)
}

/// Wraps a relation named `name` into a single-relation instance.
#[must_use]
pub fn single_relation_instance(
    name: &str,
    relation: Relation<DenseOrder>,
) -> Instance<DenseOrder> {
    let schema = Schema::from_pairs([(name, relation.arity())]);
    let mut inst = Instance::new(schema);
    inst.set(name, relation)
        .expect("schema built from the relation");
    inst
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn generators_produce_relations_of_the_requested_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let r1 = random_intervals(&mut rng, 10, 100);
        assert_eq!(r1.arity(), 1);
        assert!(r1.num_tuples() <= 10);
        let r2 = random_region2(&mut rng, 8, 50);
        assert_eq!(r2.arity(), 2);
        let g = random_graph(&mut rng, 10, 20);
        assert_eq!(g.arity(), 2);
        let inst = single_relation_instance("R", r2);
        assert_eq!(inst.schema().arity(&"R".into()), Some(2));
    }

    #[test]
    fn random_regions_admit_the_catalog_queries() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..3 {
            let r = random_intervals(&mut rng, 6, 60);
            // The 1-D queries never panic and are mutually consistent.
            let connected = crate::shape1d::is_connected_1d(&r);
            let convex = crate::convexity::is_convex_1d(&r);
            assert_eq!(connected, convex);
            let _ = crate::shape1d::has_hole_1d(&r);
        }
    }
}
