//! Convexity and k-convex covering (Lemma 5.4 / Fig. 2).
//!
//! The paper shows convexity and k-convex covering to be FO-definable with dense-order
//! constraints by enumerating the finitely many representable shapes.  This module
//! provides:
//!
//! * a direct decision procedure for 1-D inputs (convex ⇔ at most one maximal piece)
//!   and the k-convex covering query in 1-D (at most `k` maximal pieces);
//! * the **midpoint-convexity sentence** in `FO(≤, +)` for any dimension, evaluated by
//!   the linear-constraint engine of `frdb-linear`.  For a finite union of convex
//!   polyhedral cells (which every dense-order constraint region is), midpoint
//!   convexity is equivalent to convexity: the dyadic points of a segment between two
//!   members are members, and the intersection of the segment with the region is a
//!   finite union of subintervals, so a missing open piece would contain a dyadic
//!   point.  `DESIGN.md` records this as the substitution for the paper's
//!   shape-enumeration formula.

use frdb_core::dense::{DenseAtom, DenseOrder};
use frdb_core::fo::eval_sentence;
use frdb_core::logic::{Formula, Term, Var};
use frdb_core::normal::decompose_1d;
use frdb_core::relation::{Instance, Relation};
use frdb_core::schema::Schema;
use frdb_linear::{LinAtom, LinExpr, LinearOrder};

/// 1-D convexity: the region is empty, a point, or a single interval.
#[must_use]
pub fn is_convex_1d(relation: &Relation<DenseOrder>) -> bool {
    decompose_1d(relation).len() <= 1
}

/// 1-D k-convex covering: the region is a union of at most `k` convex sets, i.e. has
/// at most `k` maximal pieces.
#[must_use]
pub fn k_convex_covering_1d(relation: &Relation<DenseOrder>, k: usize) -> bool {
    decompose_1d(relation).len() <= k
}

/// Translates a dense-order atom into the linear-constraint language (every `L≤` atom
/// is a special case of an `L+` atom).
fn dense_to_linear(atom: &DenseAtom) -> LinAtom {
    let lhs = LinExpr::from_term(&atom.lhs);
    let rhs = LinExpr::from_term(&atom.rhs);
    match atom.op {
        frdb_core::dense::CmpOp::Lt => LinAtom::lt(lhs, rhs),
        frdb_core::dense::CmpOp::Le => LinAtom::le(lhs, rhs),
        frdb_core::dense::CmpOp::Eq => LinAtom::eq(lhs, rhs),
    }
}

/// Converts a dense-order constraint relation into the equivalent linear-constraint
/// relation (same columns, same points).
#[must_use]
pub fn to_linear_relation(relation: &Relation<DenseOrder>) -> Relation<LinearOrder> {
    Relation::from_dnf(
        relation.vars().to_vec(),
        relation
            .tuples()
            .iter()
            .map(|conj| conj.atoms().iter().map(dense_to_linear).collect())
            .collect(),
    )
}

/// The midpoint-convexity sentence for a `k`-ary relation named `r`:
/// `∀p̅ ∀q̅ ∀m̅ ( R(p̅) ∧ R(q̅) ∧ ⋀ᵢ mᵢ + mᵢ = pᵢ + qᵢ → R(m̅) )`, phrased in its
/// equivalent `¬∃` form (no counterexample midpoint exists), which the evaluator
/// handles with a single block of quantifier eliminations.
#[must_use]
pub fn midpoint_convexity_sentence(r: &str, arity: usize) -> Formula<LinAtom> {
    let p: Vec<Var> = (0..arity).map(|i| Var::new(format!("p{i}"))).collect();
    let q: Vec<Var> = (0..arity).map(|i| Var::new(format!("q{i}"))).collect();
    let m: Vec<Var> = (0..arity).map(|i| Var::new(format!("m{i}"))).collect();
    let mut conj: Vec<Formula<LinAtom>> = vec![
        Formula::rel(r, p.iter().cloned().map(Term::Var)),
        Formula::rel(r, q.iter().cloned().map(Term::Var)),
    ];
    for i in 0..arity {
        // mᵢ + mᵢ = pᵢ + qᵢ
        conj.push(Formula::Atom(LinAtom::eq(
            LinExpr::var(m[i].clone()).scale(&frdb_num::Rat::from_i64(2)),
            LinExpr::var(p[i].clone()).add(&LinExpr::var(q[i].clone())),
        )));
    }
    // The counterexample: members p̅ and q̅ whose midpoint m̅ is not a member.
    conj.push(Formula::rel(r, m.iter().cloned().map(Term::Var)).not());
    let mut all_vars: Vec<Var> = Vec::new();
    all_vars.extend(p);
    all_vars.extend(q);
    all_vars.extend(m);
    Formula::Exists(all_vars, Box::new(Formula::conj(conj))).not()
}

/// The convexity query for a dense-order constraint region of any arity, decided by
/// evaluating the midpoint-convexity sentence over the linear-constraint engine.
///
/// # Errors
/// Propagates evaluation errors from the FO engine (never expected for well-formed
/// input).
pub fn is_convex(relation: &Relation<DenseOrder>) -> Result<bool, frdb_core::fo::EvalError> {
    let arity = relation.arity();
    let schema = Schema::from_pairs([("R", arity)]);
    let mut inst: Instance<LinearOrder> = Instance::new(schema);
    inst.set("R", to_linear_relation(relation))
        .expect("schema declares R");
    eval_sentence(&midpoint_convexity_sentence("R", arity), &inst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use frdb_core::relation::GenTuple;
    use frdb_num::Rat;

    fn vx() -> Var {
        Var::new("x")
    }
    fn vy() -> Var {
        Var::new("y")
    }

    fn seg(lo: i64, hi: i64) -> GenTuple<DenseAtom> {
        GenTuple::new(vec![
            DenseAtom::le(Term::cst(lo), Term::var("x")),
            DenseAtom::le(Term::var("x"), Term::cst(hi)),
        ])
    }

    #[test]
    fn one_dimensional_convexity() {
        let one = Relation::new(vec![vx()], vec![seg(0, 4), seg(2, 7)]);
        assert!(is_convex_1d(&one));
        assert!(k_convex_covering_1d(&one, 1));
        let two = Relation::new(vec![vx()], vec![seg(0, 1), seg(3, 4)]);
        assert!(!is_convex_1d(&two));
        assert!(k_convex_covering_1d(&two, 2));
        assert!(!k_convex_covering_1d(&two, 1));
        assert!(is_convex_1d(&Relation::empty(vec![vx()])));
        assert!(is_convex_1d(&Relation::from_points(
            vec![vx()],
            vec![vec![Rat::from_i64(3)]]
        )));
    }

    #[test]
    fn midpoint_convexity_agrees_in_one_dimension() {
        let convex = Relation::new(vec![vx()], vec![seg(0, 4)]);
        let not_convex = Relation::new(vec![vx()], vec![seg(0, 1), seg(3, 4)]);
        assert!(is_convex(&convex).unwrap());
        assert!(!is_convex(&not_convex).unwrap());
    }

    #[test]
    fn two_dimensional_convexity() {
        let rect = Relation::new(
            vec![vx(), vy()],
            vec![GenTuple::new(vec![
                DenseAtom::le(Term::cst(0), Term::var("x")),
                DenseAtom::le(Term::var("x"), Term::cst(2)),
                DenseAtom::le(Term::cst(0), Term::var("y")),
                DenseAtom::le(Term::var("y"), Term::cst(2)),
            ])],
        );
        assert!(is_convex(&rect).unwrap());
        // A triangle bounded by the diagonal is convex (one of the Fig. 2 shapes).
        let triangle = Relation::new(
            vec![vx(), vy()],
            vec![GenTuple::new(vec![
                DenseAtom::le(Term::cst(0), Term::var("x")),
                DenseAtom::le(Term::var("x"), Term::var("y")),
                DenseAtom::le(Term::var("y"), Term::cst(3)),
            ])],
        );
        assert!(is_convex(&triangle).unwrap());
        // Two disjoint rectangles are not convex.
        let rect2 = rect
            .map_constants(&|c| c + &Rat::from_i64(10))
            .rename(vec![vx(), vy()]);
        let both = rect.union(&rect2);
        assert!(!is_convex(&both).unwrap());
        // An L-shaped union of two touching rectangles is connected but not convex.
        let ell = rect.union(&Relation::new(
            vec![vx(), vy()],
            vec![GenTuple::new(vec![
                DenseAtom::le(Term::cst(2), Term::var("x")),
                DenseAtom::le(Term::var("x"), Term::cst(4)),
                DenseAtom::le(Term::cst(0), Term::var("y")),
                DenseAtom::le(Term::var("y"), Term::cst(1)),
            ])],
        ));
        assert!(!is_convex(&ell).unwrap());
    }
}
