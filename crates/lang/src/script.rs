//! `.frdb` scripts: the statement language driven by `frdb-cli`.
//!
//! ```text
//! script    := [ "theory" ("dense" | "linear") ";" ] { stmt }
//! stmt      := "schema" IDENT "/" NUMBER { "," IDENT "/" NUMBER } ";"
//!            | IDENT ":=" relation ";"                  (set a relation)
//!            | "insert" IDENT relation ";"              (add generalized tuples)
//!            | "delete" IDENT relation ";"              (remove the covered region)
//!            | "query" IDENT "(" [ varlist ] ")" ":=" formula ";"
//!            | "run" IDENT ";"                          (evaluate and print)
//!            | "explain" IDENT ";"                      (print the optimized plan
//!                                                        with est/actual cardinalities)
//!            | "trace" IDENT ";"                        (evaluate a query or program
//!                                                        and print its span tree)
//!            | "check" formula ";"                      (print true/false)
//!            | "assert" formula ";"                     (error when false)
//!            | "program" IDENT "{" { rule } "}"
//!            | "fixpoint" IDENT ";"                     (run a program)
//!            | "print" IDENT ";"                        (print a relation)
//!            | "stats" ";"                              (print plan-cache and
//!                                                        index counters)
//!            | "metrics" ";"                            (print the engine metrics
//!                                                        registry's counters)
//! ```
//!
//! The statement keywords are contextual: a relation may be called `query` or
//! `print`, because an identifier followed by `:=` always parses as an
//! assignment.

use crate::lexer::{lex, Tok};
use crate::parser::{self, AtomSyntax, Parser};
use crate::{ParseError, Span};
use frdb_core::logic::{Formula, Var};
use frdb_core::relation::Relation;
use frdb_core::schema::RelName;
use frdb_core::theory::Theory;
use frdb_datalog::Program;

/// The constraint theory a script runs over, declared by its `theory` header
/// (dense order is the default, matching the paper's case study).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TheoryKind {
    /// Dense order `(Q, ≤)` — `frdb_core::dense::DenseOrder`.
    Dense,
    /// Linear constraints `(Q, ≤, +)` — `frdb_linear::LinearOrder`.
    Linear,
}

impl TheoryKind {
    /// The name used in the `theory …;` header.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TheoryKind::Dense => "dense",
            TheoryKind::Linear => "linear",
        }
    }

    /// The kind with the given header name, if any.
    #[must_use]
    pub fn from_name(name: &str) -> Option<TheoryKind> {
        match name {
            "dense" => Some(TheoryKind::Dense),
            "linear" => Some(TheoryKind::Linear),
            _ => None,
        }
    }
}

/// A node paired with its byte span, for execution-time diagnostics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Spanned<T> {
    /// The node.
    pub node: T,
    /// Its byte span in the source.
    pub span: Span,
}

/// One script statement over theory `T`.
#[derive(Clone, Debug)]
pub enum Stmt<T: Theory> {
    /// `schema R/2, S/1;` — declare relations with arities.
    Schema(Vec<(RelName, usize)>),
    /// `R := {(x, y) | …};` — set a declared relation's value.
    Assign {
        /// The relation name.
        name: RelName,
        /// The parsed relation literal.
        relation: Relation<T>,
    },
    /// `insert R {(x, y) | …};` — add generalized tuples to a declared
    /// relation (the stored value becomes the union of the old value and the
    /// literal; materialized views and fixpoints refresh incrementally).
    Insert {
        /// The relation name.
        name: RelName,
        /// The generalized tuples to add.
        relation: Relation<T>,
    },
    /// `delete R {(x, y) | …};` — remove from a declared relation every point
    /// covered by the literal (the stored value becomes the DNF difference).
    Delete {
        /// The relation name.
        name: RelName,
        /// The region to remove.
        relation: Relation<T>,
    },
    /// `query q(x, z) := …;` — define a named query.
    Query {
        /// The query name.
        name: String,
        /// The declared answer variables.
        free: Vec<Var>,
        /// The query formula.
        formula: Formula<T::A>,
    },
    /// `run q;` — evaluate a named query and print the answer relation.
    Run {
        /// The query name.
        name: String,
    },
    /// `explain q;` — evaluate a named query and print its optimized plan
    /// tree with estimated and actual cardinalities (no materialization).
    Explain {
        /// The query name.
        name: String,
    },
    /// `trace q;` — evaluate a named query (or run a named program's
    /// fixpoint on a snapshot) and print the evaluation's span tree: per
    /// node, cardinalities, part counts, join strategy, and index work.
    /// Nothing is materialized or committed.
    Trace {
        /// The query or program name.
        name: String,
    },
    /// `check φ;` — evaluate a sentence and print `true` / `false`.
    Check {
        /// The sentence.
        formula: Formula<T::A>,
    },
    /// `assert φ;` — evaluate a sentence, error (non-zero exit) when false.
    Assert {
        /// The sentence.
        formula: Formula<T::A>,
    },
    /// `program p { … }` — define a named `DATALOG¬` program.
    DefProgram {
        /// The program name.
        name: String,
        /// The parsed program.
        program: Program<T::A>,
    },
    /// `fixpoint p;` — run a named program to its inflationary fixpoint and
    /// merge the intensional relations into the current instance.
    Fixpoint {
        /// The program name.
        name: String,
    },
    /// `print R;` — print a relation's current value.
    Print {
        /// The relation name.
        name: RelName,
    },
    /// `stats;` — print the session's plan-cache statistics, the column
    /// index build/reuse counters, and the per-strategy join breakdown in a
    /// deterministic format.
    Stats,
    /// `metrics;` — print the engine metrics registry's deterministic
    /// counters (operation counts, join strategies, index work, latency
    /// sample counts; histogram values are JSON-export only).
    Metrics,
}

/// A parsed script: the declared theory and the statement list.
#[derive(Clone, Debug)]
pub struct Script<T: Theory> {
    /// The theory declared by the header (or the dense default).
    pub theory: TheoryKind,
    /// The statements in source order.
    pub stmts: Vec<Spanned<Stmt<T>>>,
}

/// Reads a script's `theory …;` header without parsing the rest — the hook a
/// driver uses to choose the theory before instantiating [`parse_script`].
///
/// # Errors
/// Returns a span-carrying [`ParseError`] when the source does not lex or the
/// header names an unknown theory.
pub fn script_theory(src: &str) -> Result<TheoryKind, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser::new(src, tokens);
    Ok(read_theory_header(&mut p)?.unwrap_or(TheoryKind::Dense))
}

/// Parses the optional `theory …;` header, returning the declared kind when
/// one is present.
fn read_theory_header(p: &mut Parser<'_>) -> Result<Option<TheoryKind>, ParseError> {
    if let Tok::Ident(word) = p.peek() {
        if word == "theory" {
            p.advance();
            let (name, name_span) = p.ident("a theory name (`dense` or `linear`)")?;
            let Some(kind) = TheoryKind::from_name(&name) else {
                return Err(ParseError::new(
                    format!("unknown theory `{name}` (expected `dense` or `linear`)"),
                    name_span,
                ));
            };
            p.expect(&Tok::Semi, "`;` after the theory header")?;
            return Ok(Some(kind));
        }
    }
    Ok(None)
}

/// Parses a whole `.frdb` script over theory `T`.
///
/// An explicit `theory` header must agree with `T` (use [`script_theory`]
/// first to pick the instantiation); a script without a header parses over
/// whichever theory it is instantiated at.
///
/// # Errors
/// Returns a span-carrying [`ParseError`] on malformed input or a theory
/// header mismatching `T`.
pub fn parse_script<T: AtomSyntax>(src: &str) -> Result<Script<T>, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser::new(src, tokens);
    let declared = read_theory_header(&mut p)?;
    if let Some(d) = declared {
        if d.name() != T::THEORY_NAME {
            return Err(ParseError::new(
                format!(
                    "script declares theory `{}` but is being parsed over `{}`",
                    d.name(),
                    T::THEORY_NAME
                ),
                Span::new(0, 0),
            ));
        }
    }
    let theory = declared
        .or_else(|| TheoryKind::from_name(T::THEORY_NAME))
        .unwrap_or(TheoryKind::Dense);
    let mut stmts = Vec::new();
    while !matches!(p.peek(), Tok::Eof) {
        stmts.push(statement::<T>(&mut p)?);
    }
    Ok(Script { theory, stmts })
}

fn statement<T: AtomSyntax>(p: &mut Parser<'_>) -> Result<Spanned<Stmt<T>>, ParseError> {
    let start = p.span();
    // An identifier followed by `:=` is always an assignment, whatever the
    // identifier says; statement keywords are only recognized otherwise.
    if let Tok::Ident(word) = p.peek().clone() {
        if matches!(p.peek2(), Tok::Assign) {
            p.advance(); // name
            p.advance(); // :=
            let relation = parser::relation::<T>(p)?;
            let end = p.expect(&Tok::Semi, "`;` terminating the assignment")?.span;
            return Ok(Spanned {
                node: Stmt::Assign {
                    name: RelName::new(word),
                    relation,
                },
                span: start.join(end),
            });
        }
        match word.as_str() {
            "schema" => {
                p.advance();
                let mut decls = Vec::new();
                loop {
                    let (name, _) = p.ident("a relation name")?;
                    p.expect(&Tok::Slash, "`/` between relation name and arity")?;
                    let arity = p.parse_arity()?;
                    decls.push((RelName::new(name), arity));
                    if matches!(p.peek(), Tok::Comma) {
                        p.advance();
                    } else {
                        break;
                    }
                }
                let end = p
                    .expect(&Tok::Semi, "`;` terminating the schema statement")?
                    .span;
                return Ok(Spanned {
                    node: Stmt::Schema(decls),
                    span: start.join(end),
                });
            }
            "query" => {
                p.advance();
                let (name, _) = p.ident("a query name")?;
                p.expect(&Tok::LParen, "`(` before the answer variables")?;
                let free = if matches!(p.peek(), Tok::RParen) {
                    Vec::new()
                } else {
                    p.varlist()?
                };
                p.expect(&Tok::RParen, "`)` after the answer variables")?;
                p.expect(&Tok::Assign, "`:=` before the query formula")?;
                let formula = parser::formula::<T>(p)?;
                let end = p
                    .expect(&Tok::Semi, "`;` terminating the query definition")?
                    .span;
                return Ok(Spanned {
                    node: Stmt::Query {
                        name,
                        free,
                        formula,
                    },
                    span: start.join(end),
                });
            }
            "insert" | "delete" => {
                let is_insert = word == "insert";
                p.advance();
                let (name, _) = p.ident("a relation name")?;
                let relation = parser::relation::<T>(p)?;
                let end = p
                    .expect(&Tok::Semi, "`;` terminating the update statement")?
                    .span;
                let name = RelName::new(name);
                return Ok(Spanned {
                    node: if is_insert {
                        Stmt::Insert { name, relation }
                    } else {
                        Stmt::Delete { name, relation }
                    },
                    span: start.join(end),
                });
            }
            "run" | "explain" | "trace" | "fixpoint" => {
                let kind = word.as_str().to_string();
                p.advance();
                let (name, _) = p.ident(match kind.as_str() {
                    "fixpoint" => "a program name",
                    "trace" => "a query or program name",
                    _ => "a query name",
                })?;
                let end = p.expect(&Tok::Semi, "`;` terminating the statement")?.span;
                return Ok(Spanned {
                    node: match kind.as_str() {
                        "run" => Stmt::Run { name },
                        "fixpoint" => Stmt::Fixpoint { name },
                        "trace" => Stmt::Trace { name },
                        _ => Stmt::Explain { name },
                    },
                    span: start.join(end),
                });
            }
            "check" | "assert" => {
                let is_check = word == "check";
                p.advance();
                let formula = parser::formula::<T>(p)?;
                let end = p.expect(&Tok::Semi, "`;` terminating the statement")?.span;
                return Ok(Spanned {
                    node: if is_check {
                        Stmt::Check { formula }
                    } else {
                        Stmt::Assert { formula }
                    },
                    span: start.join(end),
                });
            }
            "program" => {
                p.advance();
                let (name, _) = p.ident("a program name")?;
                p.expect(&Tok::LBrace, "`{` opening the program body")?;
                let rules = parser::rules_until_rbrace::<T>(p)?;
                let end = p.expect(&Tok::RBrace, "`}` closing the program body")?.span;
                return Ok(Spanned {
                    node: Stmt::DefProgram {
                        name,
                        program: Program::from_rules(rules),
                    },
                    span: start.join(end),
                });
            }
            "print" => {
                p.advance();
                let (name, _) = p.ident("a relation name")?;
                let end = p.expect(&Tok::Semi, "`;` terminating the statement")?.span;
                return Ok(Spanned {
                    node: Stmt::Print {
                        name: RelName::new(name),
                    },
                    span: start.join(end),
                });
            }
            "stats" | "metrics" => {
                let is_stats = word == "stats";
                p.advance();
                let end = p.expect(&Tok::Semi, "`;` terminating the statement")?.span;
                return Ok(Spanned {
                    node: if is_stats { Stmt::Stats } else { Stmt::Metrics },
                    span: start.join(end),
                });
            }
            _ => {}
        }
    }
    Err(p.error_here(
        "expected a statement (`schema`, `R := …`, `insert`, `delete`, `query`, \
         `run`, `explain`, `trace`, `check`, `assert`, `program`, `fixpoint`, \
         `print`, `stats`, or `metrics`)",
    ))
}
