//! # frdb-lang
//!
//! The **surface language** for finitely representable databases: a lexer and
//! recursive-descent parser with span-carrying diagnostics for the concrete
//! first-order syntax the paper writes its examples in (Examples 2.4–2.5, the
//! Fig. 8 catalog), covering
//!
//! * **schemas** — `schema R/2, S/1;`
//! * **constraint instances** — generalized tuples of dense-order *and* linear
//!   `FO(≤,+)` atoms, assigned with `R := {(x, y) | 0 <= x and x <= y ; y = 3};`
//! * **FO formulas and queries** — `query q(x) := exists y. (R(x, y) and x < y);`
//! * **inflationary `DATALOG¬` programs** — `tc(x, y) :- tc(x, z), edge(z, y).`
//!
//! The parser is **theory generic**: the [`AtomSyntax`] trait extends
//! [`frdb_core::theory::Theory`] with one hook — how to parse a constraint atom
//! — and is implemented here for both [`DenseOrder`] (atoms `s ⋈ t`) and
//! [`LinearOrder`] (affine atoms `2·x + y <= 3`).  Everything above the atoms
//! (formulas, tuples, relations, rules, scripts) is shared.
//!
//! **Printing is parsing's inverse.**  The engine's `Display` implementations
//! (`Formula`, `GenTuple`, `Relation`, `Instance`, `Rule`, `Program`) emit text
//! this parser reads back, and the round trip is the identity on the AST:
//! `parse(print(x)) == x`.  The property tests in `tests/roundtrip.rs` pin this
//! on randomized values over both theories.
//!
//! Errors never panic: every failure — including the reserved `#` fresh-variable
//! namespace, zero denominators and malformed numbers — is a [`ParseError`]
//! carrying the byte [`Span`] of the offending text, renderable as a
//! caret-underlined diagnostic via [`ParseError::render`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod parser;
pub mod script;

use frdb_core::dense::{DenseAtom, DenseOrder};
use frdb_core::logic::Formula;
use frdb_core::relation::{GenTuple, Relation};
use frdb_datalog::{Program, Rule};
use frdb_linear::{LinAtom, LinearOrder};
use std::fmt;

pub use parser::{AtomSyntax, Parser};
pub use script::{parse_script, script_theory, Script, Spanned, Stmt, TheoryKind};

/// A byte range in the source text.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Span {
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Span {
    /// A span from byte offsets.
    #[must_use]
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both operands.
    #[must_use]
    pub fn join(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A parse error: a message plus the byte span of the offending text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of what went wrong.
    pub message: String,
    /// Byte span of the offending text (empty at end of input).
    pub span: Span,
    /// Whether the error is an unexpected end of input — interactive front
    /// ends use this to keep reading instead of reporting.
    pub at_eof: bool,
}

impl ParseError {
    /// A parse error at a span.
    #[must_use]
    pub fn new(message: impl Into<String>, span: Span) -> Self {
        ParseError {
            message: message.into(),
            span,
            at_eof: false,
        }
    }

    /// Renders the error as a two-line diagnostic with the source line and a
    /// caret run under the offending span.
    #[must_use]
    pub fn render(&self, origin: &str, src: &str) -> String {
        let start = self.span.start.min(src.len());
        let line_no = src[..start].matches('\n').count() + 1;
        let line_start = src[..start].rfind('\n').map_or(0, |p| p + 1);
        let line_end = src[start..]
            .find('\n')
            .map_or(src.len(), |p| start + p)
            .max(line_start);
        let line = &src[line_start..line_end];
        let col = src[line_start..start].chars().count() + 1;
        let width = src[start..self.span.end.min(src.len()).max(start)]
            .chars()
            .count()
            .max(1);
        let mut out = format!(
            "error: {message}\n  --> {origin}:{line_no}:{col} (bytes {span})\n   |\n   | {line}\n   | ",
            message = self.message,
            span = self.span,
        );
        out.push_str(&" ".repeat(col - 1));
        out.push_str(&"^".repeat(width));
        out
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at bytes {}: {}", self.span, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Runs a parser function over a full source string, requiring it to consume
/// every token.
fn parse_all<R>(
    src: &str,
    f: impl FnOnce(&mut Parser<'_>) -> Result<R, ParseError>,
) -> Result<R, ParseError> {
    let tokens = lexer::lex(src)?;
    let mut p = Parser::new(src, tokens);
    let value = f(&mut p)?;
    p.expect_eof()?;
    Ok(value)
}

/// Parses a first-order formula over theory `T`'s atoms.
///
/// # Errors
/// Returns a span-carrying [`ParseError`] on malformed input.
pub fn parse_formula<T: AtomSyntax>(src: &str) -> Result<Formula<T::A>, ParseError> {
    parse_all(src, parser::formula::<T>)
}

/// Parses a generalized tuple — a conjunction of constraint atoms such as
/// `0 <= x ∧ x < y`, or `true` for the universal tuple.
///
/// # Errors
/// Returns a span-carrying [`ParseError`] on malformed input.
pub fn parse_gen_tuple<T: AtomSyntax>(src: &str) -> Result<GenTuple<T::A>, ParseError> {
    parse_all(src, parser::gen_tuple::<T>)
}

/// Parses a relation literal `{(x, y) | tuple ∨ tuple ∨ …}` (with `false` for
/// the empty relation), validating that every tuple mentions only column
/// variables.
///
/// # Errors
/// Returns a span-carrying [`ParseError`] on malformed input or a tuple
/// mentioning a variable outside the columns.
pub fn parse_relation<T: AtomSyntax>(src: &str) -> Result<Relation<T>, ParseError> {
    parse_all(src, parser::relation::<T>)
}

/// Parses one `DATALOG¬` rule, e.g. `tc(x, y) :- tc(x, z), edge(z, y).`
///
/// # Errors
/// Returns a span-carrying [`ParseError`] on malformed input.
pub fn parse_rule<T: AtomSyntax>(src: &str) -> Result<Rule<T::A>, ParseError> {
    parse_all(src, parser::rule::<T>)
}

/// Parses a whole `DATALOG¬` program: a sequence of `.`-terminated rules.
///
/// # Errors
/// Returns a span-carrying [`ParseError`] on malformed input.
pub fn parse_program<T: AtomSyntax>(src: &str) -> Result<Program<T::A>, ParseError> {
    parse_all(src, |p| {
        let rules = parser::rules_until_eof::<T>(p)?;
        Ok(Program::from_rules(rules))
    })
}

// ---------------------------------------------------------------------------
// AtomSyntax implementations for the two bundled theories
// ---------------------------------------------------------------------------

impl AtomSyntax for DenseOrder {
    const THEORY_NAME: &'static str = "dense";

    fn parse_atom(p: &mut Parser<'_>) -> Result<DenseAtom, ParseError> {
        let lhs = p.parse_term()?;
        let (op, op_span) = p.parse_cmp_op()?;
        let rhs = p.parse_term()?;
        Ok(match op {
            parser::CmpTok::Lt => DenseAtom::lt(lhs, rhs),
            parser::CmpTok::Le => DenseAtom::le(lhs, rhs),
            parser::CmpTok::Eq => DenseAtom::eq(lhs, rhs),
            parser::CmpTok::Gt => DenseAtom::lt(rhs, lhs),
            parser::CmpTok::Ge => DenseAtom::le(rhs, lhs),
            parser::CmpTok::Ne => {
                return Err(ParseError::new(
                    "`!=` is not an atom of the dense-order language; \
                     write `not (s = t)` or a disjunction of strict comparisons",
                    op_span,
                ))
            }
        })
    }
}

impl AtomSyntax for LinearOrder {
    const THEORY_NAME: &'static str = "linear";

    fn parse_atom(p: &mut Parser<'_>) -> Result<LinAtom, ParseError> {
        let lhs = p.parse_affine()?;
        let (op, op_span) = p.parse_cmp_op()?;
        let rhs = p.parse_affine()?;
        Ok(match op {
            parser::CmpTok::Lt => LinAtom::lt(lhs, rhs),
            parser::CmpTok::Le => LinAtom::le(lhs, rhs),
            parser::CmpTok::Eq => LinAtom::eq(lhs, rhs),
            parser::CmpTok::Gt => LinAtom::lt(rhs, lhs),
            parser::CmpTok::Ge => LinAtom::le(rhs, lhs),
            parser::CmpTok::Ne => {
                return Err(ParseError::new(
                    "`!=` is not an atom of the linear language; \
                     write `not (s = t)` or a disjunction of strict comparisons",
                    op_span,
                ))
            }
        })
    }
}
