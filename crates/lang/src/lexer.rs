//! The lexer: source text to a span-carrying token stream.
//!
//! Every operator has an ASCII spelling and, where the engine's pretty-printers
//! emit one, a Unicode spelling (`<=` / `≤`, `and` / `∧`, `exists` / `∃`, …).
//! Accepting both makes the parser a left inverse of the `Display`
//! implementations — `parse(print(x)) == x` — while keeping `.frdb` files
//! typeable on any keyboard.
//!
//! The lexer never panics on arbitrary input: unknown characters (including the
//! `#` that [`frdb_core::logic::Var::new`] reserves for internally generated
//! fresh variables) are reported as [`ParseError`]s with the offending byte
//! span.

use crate::{ParseError, Span};
use std::fmt;

/// The kind of a token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// An identifier: a Unicode letter or `_` followed by letters, digits and
    /// `_` (keywords excluded).
    Ident(String),
    /// An unsigned numeric literal: digits, optionally `digits.digits`.
    Number(String),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `.`
    Dot,
    /// `|`
    Pipe,
    /// `/`
    Slash,
    /// `:=`
    Assign,
    /// `:-` or `←` (rule arrow)
    Turnstile,
    /// `<`
    Lt,
    /// `<=` or `≤`
    Le,
    /// `>`
    Gt,
    /// `>=` or `≥`
    Ge,
    /// `=`
    EqOp,
    /// `!=` or `≠`
    Ne,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*` or `·` (scalar multiplication)
    Star,
    /// `and`, `&` or `∧`
    And,
    /// `or` or `∨`
    Or,
    /// `not`, `!` or `¬`
    Not,
    /// `->` or `→`
    Implies,
    /// `<->` or `↔`
    Iff,
    /// `exists` or `∃`
    Exists,
    /// `forall` or `∀`
    Forall,
    /// `true`
    True,
    /// `false`
    False,
    /// End of input (always the last token).
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::Number(s) => write!(f, "number `{s}`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Semi => write!(f, "`;`"),
            Tok::Dot => write!(f, "`.`"),
            Tok::Pipe => write!(f, "`|`"),
            Tok::Slash => write!(f, "`/`"),
            Tok::Assign => write!(f, "`:=`"),
            Tok::Turnstile => write!(f, "`:-`"),
            Tok::Lt => write!(f, "`<`"),
            Tok::Le => write!(f, "`<=`"),
            Tok::Gt => write!(f, "`>`"),
            Tok::Ge => write!(f, "`>=`"),
            Tok::EqOp => write!(f, "`=`"),
            Tok::Ne => write!(f, "`!=`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Minus => write!(f, "`-`"),
            Tok::Star => write!(f, "`*`"),
            Tok::And => write!(f, "`and`"),
            Tok::Or => write!(f, "`or`"),
            Tok::Not => write!(f, "`not`"),
            Tok::Implies => write!(f, "`->`"),
            Tok::Iff => write!(f, "`<->`"),
            Tok::Exists => write!(f, "`exists`"),
            Tok::Forall => write!(f, "`forall`"),
            Tok::True => write!(f, "`true`"),
            Tok::False => write!(f, "`false`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its byte span in the source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// The token kind (and payload, for identifiers and numbers).
    pub tok: Tok,
    /// The byte range the token occupies in the source text.
    pub span: Span,
}

/// Lexes a source string into tokens (the final token is always [`Tok::Eof`]).
///
/// # Errors
/// Returns a [`ParseError`] on an unknown character, an unterminated block
/// comment, or a malformed numeric literal; the error carries the byte span.
pub fn lex(src: &str) -> Result<Vec<Token>, ParseError> {
    let mut out = Vec::new();
    let chars: Vec<(usize, char)> = src.char_indices().collect();
    let mut ci = 0usize; // index into `chars`
    while ci < chars.len() {
        let (i, c) = chars[ci];
        // Whitespace.
        if c.is_whitespace() {
            ci += 1;
            continue;
        }
        // Line comments.
        if c == '/' && matches!(chars.get(ci + 1), Some((_, '/'))) {
            while ci < chars.len() && chars[ci].1 != '\n' {
                ci += 1;
            }
            continue;
        }
        // Block comments.
        if c == '/' && matches!(chars.get(ci + 1), Some((_, '*'))) {
            let open = i;
            ci += 2;
            loop {
                match (chars.get(ci), chars.get(ci + 1)) {
                    (Some((_, '*')), Some((_, '/'))) => {
                        ci += 2;
                        break;
                    }
                    (Some(_), _) => ci += 1,
                    (None, _) => {
                        // The comment runs off the end of the input, so flag
                        // `at_eof`: interactive front ends keep reading more
                        // lines instead of reporting a hard error.
                        return Err(ParseError {
                            message: "unterminated block comment".into(),
                            span: Span::new(open, src.len()),
                            at_eof: true,
                        });
                    }
                }
            }
            continue;
        }
        let start = i;
        // Identifiers and word operators.  Identifiers are Unicode letters,
        // digits and `_` (letter or `_` first), so names the engine itself can
        // produce — e.g. the `Δ`-prefixed EDB relations the Datalog engine
        // supports — survive an `Instance` dump-and-reload round trip.  The
        // operator characters (`∧ ∨ ¬ ∃ ∀ ≤ …`) are symbols, not letters, so
        // they never collide.
        if c.is_alphabetic() || c == '_' {
            let mut end = ci;
            while end < chars.len() && (chars[end].1.is_alphanumeric() || chars[end].1 == '_') {
                end += 1;
            }
            let stop = chars.get(end).map_or(src.len(), |(p, _)| *p);
            let word = &src[start..stop];
            let tok = match word {
                "and" => Tok::And,
                "or" => Tok::Or,
                "not" => Tok::Not,
                "exists" => Tok::Exists,
                "forall" => Tok::Forall,
                "true" => Tok::True,
                "false" => Tok::False,
                _ => Tok::Ident(word.to_string()),
            };
            out.push(Token {
                tok,
                span: Span::new(start, stop),
            });
            ci = end;
            continue;
        }
        // Numbers: digits, optionally `.` followed by digits (a lone trailing
        // `.` stays a separate token so rule terminators after a number work).
        if c.is_ascii_digit() {
            let mut end = ci;
            while end < chars.len() && chars[end].1.is_ascii_digit() {
                end += 1;
            }
            if end < chars.len()
                && chars[end].1 == '.'
                && end + 1 < chars.len()
                && chars[end + 1].1.is_ascii_digit()
            {
                end += 1;
                while end < chars.len() && chars[end].1.is_ascii_digit() {
                    end += 1;
                }
            }
            let stop = chars.get(end).map_or(src.len(), |(p, _)| *p);
            out.push(Token {
                tok: Tok::Number(src[start..stop].to_string()),
                span: Span::new(start, stop),
            });
            ci = end;
            continue;
        }
        // Symbols (ASCII multi-character first, then Unicode aliases).
        let two = |o: usize| chars.get(ci + o).map(|(_, ch)| *ch);
        let (tok, consumed) = match c {
            '(' => (Tok::LParen, 1),
            ')' => (Tok::RParen, 1),
            '{' => (Tok::LBrace, 1),
            '}' => (Tok::RBrace, 1),
            ',' => (Tok::Comma, 1),
            ';' => (Tok::Semi, 1),
            '.' => (Tok::Dot, 1),
            '|' => (Tok::Pipe, 1),
            '/' => (Tok::Slash, 1),
            '+' => (Tok::Plus, 1),
            '*' => (Tok::Star, 1),
            '&' => (Tok::And, 1),
            '=' => (Tok::EqOp, 1),
            ':' => match two(1) {
                Some('=') => (Tok::Assign, 2),
                Some('-') => (Tok::Turnstile, 2),
                _ => {
                    return Err(ParseError::new(
                        "stray `:` (expected `:=` or `:-`)",
                        Span::new(start, start + 1),
                    ))
                }
            },
            '<' => match (two(1), two(2)) {
                (Some('-'), Some('>')) => (Tok::Iff, 3),
                (Some('='), _) => (Tok::Le, 2),
                _ => (Tok::Lt, 1),
            },
            '>' => match two(1) {
                Some('=') => (Tok::Ge, 2),
                _ => (Tok::Gt, 1),
            },
            '-' => match two(1) {
                Some('>') => (Tok::Implies, 2),
                _ => (Tok::Minus, 1),
            },
            '!' => match two(1) {
                Some('=') => (Tok::Ne, 2),
                _ => (Tok::Not, 1),
            },
            '≤' => (Tok::Le, 1),
            '≥' => (Tok::Ge, 1),
            '≠' => (Tok::Ne, 1),
            '∧' => (Tok::And, 1),
            '∨' => (Tok::Or, 1),
            '¬' => (Tok::Not, 1),
            '∃' => (Tok::Exists, 1),
            '∀' => (Tok::Forall, 1),
            '→' => (Tok::Implies, 1),
            '↔' => (Tok::Iff, 1),
            '←' => (Tok::Turnstile, 1),
            '·' => (Tok::Star, 1),
            other => {
                return Err(ParseError::new(
                    format!("unexpected character {other:?}"),
                    Span::new(start, start + other.len_utf8()),
                ))
            }
        };
        // Character-count consumption translated back to byte positions.
        let stop = chars.get(ci + consumed).map_or(src.len(), |(p, _)| *p);
        out.push(Token {
            tok,
            span: Span::new(start, stop),
        });
        ci += consumed;
    }
    out.push(Token {
        tok: Tok::Eof,
        span: Span::new(src.len(), src.len()),
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn ascii_and_unicode_spell_the_same_tokens() {
        assert_eq!(kinds("x <= 3 and y"), kinds("x ≤ 3 ∧ y"));
        assert_eq!(kinds("exists z. not (a -> b)"), kinds("∃z. ¬(a → b)"));
        assert_eq!(kinds(":-"), kinds("←"));
    }

    #[test]
    fn numbers_keep_rule_dots_separate() {
        // `x < 1.` must lex the dot as a rule terminator, `1.5` as one number.
        assert_eq!(
            kinds("1."),
            vec![Tok::Number("1".into()), Tok::Dot, Tok::Eof]
        );
        assert_eq!(kinds("1.5"), vec![Tok::Number("1.5".into()), Tok::Eof]);
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(kinds("x // trailing\n y"), kinds("x /* inline */ y"));
    }

    #[test]
    fn reserved_hash_namespace_is_rejected_with_a_span() {
        let err = lex("x < #0").unwrap_err();
        assert_eq!(err.span.start, 4);
        assert!(err.message.contains("'#'"));
    }

    #[test]
    fn unterminated_block_comment_is_an_error() {
        assert!(lex("/* never closed").is_err());
    }
}
