//! The recursive-descent parser.
//!
//! Grammar (EBNF; ASCII spellings shown, Unicode aliases accepted — see
//! [`crate::lexer`]):
//!
//! ```text
//! formula   := iff
//! iff       := implies { "<->" implies }                 (left associative)
//! implies   := or [ "->" implies ]                       (right associative)
//! or        := and { "or" and }                          (n-ary Or node)
//! and       := unary { "and" unary }                     (n-ary And node)
//! unary     := "not" unary
//!            | ("exists" | "forall") varlist "." unary
//!            | primary
//! primary   := "true" | "false" | "(" formula ")"
//!            | IDENT "(" [ term { "," term } ] ")"       (relation atom)
//!            | atom                                      (theory constraint)
//! varlist   := IDENT { "," IDENT }
//! term      := IDENT | [ "-" ] number
//! number    := NUMBER [ "/" NUMBER ]                     (rational literal)
//!
//! tuple     := "true" | atom { ("," | "and") atom }
//! relation  := "{" "(" [ varlist ] ")" "|"
//!                  ( "false" | reltuple { ("or" | ";") reltuple } ) "}"
//! reltuple  := "true" | "(" atom { ("," | "and") atom } ")"
//!            | atom { ("," | "and") atom }
//!
//! rule      := IDENT "(" [ varlist ] ")" ":-" body "."
//! body      := bodyitem { "," bodyitem }                 (each at iff level)
//! ```
//!
//! A rule body whose items are all *literals* — `R(t̅)`, `not R(t̅)`, or a
//! constraint atom — builds a literal-bodied [`Rule`]; any other body (a
//! quantifier, a parenthesized formula, a disjunction, …) builds a
//! formula-bodied rule via [`Rule::from_formula`], mirroring how the engine
//! distinguishes the two (Example 6.3's `sweep` rule needs an embedded
//! universal quantifier).
//!
//! The theory plugs in below `primary`: [`AtomSyntax::parse_atom`] parses one
//! constraint atom of the theory's language.  The dense-order instance reads
//! `term ⋈ term`; the linear instance reads affine comparisons
//! `2·x + y - 3 <= z` via [`Parser::parse_affine`].

use crate::lexer::{Tok, Token};
use crate::{ParseError, Span};
use frdb_core::logic::{Formula, Term, Var};
use frdb_core::relation::{GenTuple, Relation};
use frdb_core::schema::RelName;
use frdb_core::theory::Theory;
use frdb_datalog::{Literal, Rule};
use frdb_linear::LinExpr;
use frdb_num::Rat;

/// A theory whose constraint atoms have a concrete syntax.
///
/// This is the single extension point that makes the whole surface language —
/// formulas, generalized tuples, relation literals, `DATALOG¬` rules, scripts
/// — generic over the constraint theory: implement one method parsing one
/// atom.  Implemented in this crate for [`frdb_core::dense::DenseOrder`] and
/// [`frdb_linear::LinearOrder`].
pub trait AtomSyntax: Theory {
    /// The name used by the `theory …;` script header (`"dense"`, `"linear"`).
    const THEORY_NAME: &'static str;

    /// Parses one constraint atom at the parser's current position.
    ///
    /// # Errors
    /// Returns a span-carrying [`ParseError`] on malformed input.
    fn parse_atom(p: &mut Parser<'_>) -> Result<Self::A, ParseError>;
}

/// A comparison operator token, handed to [`AtomSyntax`] implementations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpTok {
    /// `<`
    Lt,
    /// `<=` / `≤`
    Le,
    /// `=`
    Eq,
    /// `>`
    Gt,
    /// `>=` / `≥`
    Ge,
    /// `!=` / `≠` (no theory accepts it as an atom; kept for a good error)
    Ne,
}

/// The maximum formula nesting depth: recursive descent recurses once per
/// nesting level, so unbounded depth would let `((((…` crash the process with
/// a stack overflow instead of a [`ParseError`] — and a file loader must never
/// crash on input.  Each nesting level costs several debug-build frames, and
/// test threads run on 2 MiB stacks, so the cap is conservative.  A printed
/// `¬(…)` or quantifier level consumes two units (the operator and its paren
/// group), so 128 units reparse formulas up to ~64 printed nesting levels —
/// far beyond any formula the engine or a human produces; deeper input gets a
/// ParseError naming this bound.
const MAX_NESTING_DEPTH: usize = 128;

/// The token-stream cursor shared by all grammar productions.
pub struct Parser<'a> {
    src: &'a str,
    tokens: Vec<Token>,
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    /// A parser over a lexed token stream.
    #[must_use]
    pub fn new(src: &'a str, tokens: Vec<Token>) -> Self {
        Parser {
            src,
            tokens,
            pos: 0,
            depth: 0,
        }
    }

    /// Enters one formula nesting level, erroring out beyond
    /// [`MAX_NESTING_DEPTH`]; paired with [`Parser::exit_nested`].
    fn enter_nested(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_NESTING_DEPTH {
            return Err(ParseError::new(
                format!("formula nesting deeper than {MAX_NESTING_DEPTH} levels"),
                self.span(),
            ));
        }
        Ok(())
    }

    fn exit_nested(&mut self) {
        self.depth -= 1;
    }

    /// The source text being parsed.
    #[must_use]
    pub fn source(&self) -> &'a str {
        self.src
    }

    /// The current token.
    #[must_use]
    pub fn peek(&self) -> &Tok {
        &self.tokens[self.pos.min(self.tokens.len() - 1)].tok
    }

    /// The next token after the current one.
    #[must_use]
    pub fn peek2(&self) -> &Tok {
        &self.tokens[(self.pos + 1).min(self.tokens.len() - 1)].tok
    }

    /// The current token's span.
    #[must_use]
    pub fn span(&self) -> Span {
        self.tokens[self.pos.min(self.tokens.len() - 1)].span
    }

    pub(crate) fn advance(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    /// An error at the current token, flagged `at_eof` when the input ended.
    pub(crate) fn error_here(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            span: self.span(),
            at_eof: matches!(self.peek(), Tok::Eof),
        }
    }

    pub(crate) fn expect(&mut self, tok: &Tok, what: &str) -> Result<Token, ParseError> {
        if self.peek() == tok {
            Ok(self.advance())
        } else {
            Err(self.error_here(format!("expected {what}, found {}", self.peek())))
        }
    }

    /// Requires the input to be fully consumed.
    ///
    /// # Errors
    /// Returns an error at the first unconsumed token.
    pub fn expect_eof(&mut self) -> Result<(), ParseError> {
        if matches!(self.peek(), Tok::Eof) {
            Ok(())
        } else {
            Err(self.error_here(format!("expected end of input, found {}", self.peek())))
        }
    }

    pub(crate) fn ident(&mut self, what: &str) -> Result<(String, Span), ParseError> {
        match self.peek().clone() {
            Tok::Ident(name) => {
                let span = self.span();
                self.advance();
                Ok((name, span))
            }
            other => Err(self.error_here(format!("expected {what}, found {other}"))),
        }
    }

    /// Parses an unsigned rational literal: `NUMBER [ "/" NUMBER ]`.
    fn parse_unsigned_rat(&mut self) -> Result<Rat, ParseError> {
        let (digits, span) = match self.peek().clone() {
            Tok::Number(s) => (s, self.span()),
            other => return Err(self.error_here(format!("expected a number, found {other}"))),
        };
        self.advance();
        let num: Rat = digits
            .parse()
            .map_err(|e| ParseError::new(format!("invalid number: {e:?}"), span))?;
        if matches!(self.peek(), Tok::Slash) {
            self.advance();
            let (den_digits, den_span) = match self.peek().clone() {
                Tok::Number(s) => (s, self.span()),
                other => {
                    return Err(self.error_here(format!("expected a denominator, found {other}")))
                }
            };
            self.advance();
            let den: Rat = den_digits
                .parse()
                .map_err(|e| ParseError::new(format!("invalid number: {e:?}"), den_span))?;
            if den.is_zero() {
                return Err(ParseError::new(
                    "zero denominator in rational literal",
                    span.join(den_span),
                ));
            }
            return Ok(&num / &den);
        }
        Ok(num)
    }

    /// Parses a possibly negated rational literal.
    ///
    /// # Errors
    /// Returns a span-carrying [`ParseError`] on malformed input.
    pub fn parse_rat(&mut self) -> Result<Rat, ParseError> {
        if matches!(self.peek(), Tok::Minus) {
            self.advance();
            return Ok(-(&self.parse_unsigned_rat()?));
        }
        self.parse_unsigned_rat()
    }

    /// Parses a term: a variable or a rational constant.
    ///
    /// # Errors
    /// Returns a span-carrying [`ParseError`] on malformed input.
    pub fn parse_term(&mut self) -> Result<Term, ParseError> {
        match self.peek().clone() {
            Tok::Ident(name) => {
                self.advance();
                Ok(Term::Var(Var::new(name)))
            }
            Tok::Number(_) | Tok::Minus => Ok(Term::Const(self.parse_rat()?)),
            other => Err(self.error_here(format!(
                "expected a term (variable or constant), found {other}"
            ))),
        }
    }

    /// Parses a comparison operator, returning its kind and span.
    ///
    /// # Errors
    /// Returns a span-carrying [`ParseError`] if the current token is not a
    /// comparison.
    pub fn parse_cmp_op(&mut self) -> Result<(CmpTok, Span), ParseError> {
        let span = self.span();
        let op = match self.peek() {
            Tok::Lt => CmpTok::Lt,
            Tok::Le => CmpTok::Le,
            Tok::EqOp => CmpTok::Eq,
            Tok::Gt => CmpTok::Gt,
            Tok::Ge => CmpTok::Ge,
            Tok::Ne => CmpTok::Ne,
            other => {
                return Err(self.error_here(format!(
                    "expected a comparison operator (`<`, `<=`, `=`, `>=`, `>`), found {other}"
                )))
            }
        };
        self.advance();
        Ok((op, span))
    }

    /// Parses an affine expression `[-] monom { (+|-) monom }` where a monom
    /// is `rat`, `rat · IDENT`, or `IDENT` — the syntax of `FO(≤,+)` atoms and
    /// exactly what [`frdb_linear::LinExpr`]'s printer emits.
    ///
    /// # Errors
    /// Returns a span-carrying [`ParseError`] on malformed input.
    pub fn parse_affine(&mut self) -> Result<LinExpr, ParseError> {
        let mut acc = self.parse_monom()?;
        loop {
            let negate = match self.peek() {
                Tok::Plus => false,
                Tok::Minus => true,
                _ => break,
            };
            self.advance();
            let monom = self.parse_monom()?;
            acc = if negate {
                acc.sub(&monom)
            } else {
                acc.add(&monom)
            };
        }
        Ok(acc)
    }

    fn parse_monom(&mut self) -> Result<LinExpr, ParseError> {
        let mut sign = Rat::one();
        if matches!(self.peek(), Tok::Minus) {
            self.advance();
            sign = -(&sign);
        }
        match self.peek().clone() {
            Tok::Ident(name) => {
                self.advance();
                Ok(LinExpr::var(Var::new(name)).scale(&sign))
            }
            Tok::Number(_) => {
                let coef = self.parse_unsigned_rat()?;
                if matches!(self.peek(), Tok::Star) {
                    self.advance();
                    let (name, _) = self.ident("a variable after `·`")?;
                    Ok(LinExpr::var(Var::new(name)).scale(&(&coef * &sign)))
                } else {
                    Ok(LinExpr::constant(&coef * &sign))
                }
            }
            other => Err(self.error_here(format!(
                "expected a monomial (number, `c·x`, or variable), found {other}"
            ))),
        }
    }

    /// Parses a relation arity: a plain nonnegative integer.
    pub(crate) fn parse_arity(&mut self) -> Result<usize, ParseError> {
        let span = self.span();
        match self.peek().clone() {
            Tok::Number(s) => {
                self.advance();
                s.parse::<usize>().map_err(|_| {
                    ParseError::new(format!("invalid arity `{s}` (expected an integer)"), span)
                })
            }
            other => Err(self.error_here(format!("expected an arity, found {other}"))),
        }
    }

    /// Parses a nonempty comma-separated variable list.
    ///
    /// # Errors
    /// Returns a span-carrying [`ParseError`] on malformed input.
    pub fn varlist(&mut self) -> Result<Vec<Var>, ParseError> {
        let mut out = Vec::new();
        let (first, _) = self.ident("a variable name")?;
        out.push(Var::new(first));
        while matches!(self.peek(), Tok::Comma) {
            self.advance();
            let (name, _) = self.ident("a variable name")?;
            out.push(Var::new(name));
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Formulas
// ---------------------------------------------------------------------------

/// Parses a formula at the lowest precedence level.
///
/// # Errors
/// Returns a span-carrying [`ParseError`] on malformed input.
pub fn formula<T: AtomSyntax>(p: &mut Parser<'_>) -> Result<Formula<T::A>, ParseError> {
    iff_level::<T>(p)
}

fn iff_level<T: AtomSyntax>(p: &mut Parser<'_>) -> Result<Formula<T::A>, ParseError> {
    let mut lhs = implies_level::<T>(p)?;
    while matches!(p.peek(), Tok::Iff) {
        p.advance();
        let rhs = implies_level::<T>(p)?;
        lhs = lhs.iff(rhs);
    }
    Ok(lhs)
}

fn implies_level<T: AtomSyntax>(p: &mut Parser<'_>) -> Result<Formula<T::A>, ParseError> {
    let lhs = or_level::<T>(p)?;
    if matches!(p.peek(), Tok::Implies) {
        p.advance();
        let rhs = implies_level::<T>(p)?; // right associative
        return Ok(lhs.implies(rhs));
    }
    Ok(lhs)
}

fn or_level<T: AtomSyntax>(p: &mut Parser<'_>) -> Result<Formula<T::A>, ParseError> {
    let mut parts = vec![and_level::<T>(p)?];
    while matches!(p.peek(), Tok::Or) {
        p.advance();
        parts.push(and_level::<T>(p)?);
    }
    Ok(if parts.len() == 1 {
        parts.pop().expect("nonempty")
    } else {
        Formula::Or(parts)
    })
}

fn and_level<T: AtomSyntax>(p: &mut Parser<'_>) -> Result<Formula<T::A>, ParseError> {
    let mut parts = vec![unary_level::<T>(p)?];
    while matches!(p.peek(), Tok::And) {
        p.advance();
        parts.push(unary_level::<T>(p)?);
    }
    Ok(if parts.len() == 1 {
        parts.pop().expect("nonempty")
    } else {
        Formula::And(parts)
    })
}

/// Every recursion cycle of the formula grammar passes through here (paren
/// groups via `primary -> formula -> … -> unary`, negations and quantifier
/// bodies directly), so this single depth guard bounds the whole parse stack.
fn unary_level<T: AtomSyntax>(p: &mut Parser<'_>) -> Result<Formula<T::A>, ParseError> {
    p.enter_nested()?;
    let result = unary_level_inner::<T>(p);
    p.exit_nested();
    result
}

fn unary_level_inner<T: AtomSyntax>(p: &mut Parser<'_>) -> Result<Formula<T::A>, ParseError> {
    match p.peek() {
        Tok::Not => {
            p.advance();
            Ok(Formula::Not(Box::new(unary_level::<T>(p)?)))
        }
        Tok::Exists | Tok::Forall => {
            let exists = matches!(p.peek(), Tok::Exists);
            p.advance();
            let vars = p.varlist()?;
            p.expect(&Tok::Dot, "`.` after the quantified variables")?;
            let body = Box::new(unary_level::<T>(p)?);
            Ok(if exists {
                Formula::Exists(vars, body)
            } else {
                Formula::Forall(vars, body)
            })
        }
        _ => primary::<T>(p),
    }
}

fn primary<T: AtomSyntax>(p: &mut Parser<'_>) -> Result<Formula<T::A>, ParseError> {
    match p.peek().clone() {
        Tok::True => {
            p.advance();
            Ok(Formula::True)
        }
        Tok::False => {
            p.advance();
            Ok(Formula::False)
        }
        Tok::LParen => {
            p.advance();
            let inner = formula::<T>(p)?;
            p.expect(&Tok::RParen, "`)`")?;
            Ok(inner)
        }
        Tok::Ident(name) if matches!(p.peek2(), Tok::LParen) => {
            p.advance(); // name
            p.advance(); // (
            let mut args = Vec::new();
            if !matches!(p.peek(), Tok::RParen) {
                args.push(p.parse_term()?);
                while matches!(p.peek(), Tok::Comma) {
                    p.advance();
                    args.push(p.parse_term()?);
                }
            }
            p.expect(&Tok::RParen, "`)` after the relation's arguments")?;
            Ok(Formula::Rel {
                name: RelName::new(name),
                args,
            })
        }
        _ => Ok(Formula::Atom(T::parse_atom(p)?)),
    }
}

// ---------------------------------------------------------------------------
// Generalized tuples and relation literals
// ---------------------------------------------------------------------------

fn atom_list<T: AtomSyntax>(p: &mut Parser<'_>) -> Result<Vec<T::A>, ParseError> {
    let mut atoms = vec![T::parse_atom(p)?];
    while matches!(p.peek(), Tok::Comma | Tok::And) {
        p.advance();
        atoms.push(T::parse_atom(p)?);
    }
    Ok(atoms)
}

/// Parses a generalized tuple: `true` or a conjunction of atoms.
///
/// # Errors
/// Returns a span-carrying [`ParseError`] on malformed input.
pub fn gen_tuple<T: AtomSyntax>(p: &mut Parser<'_>) -> Result<GenTuple<T::A>, ParseError> {
    if matches!(p.peek(), Tok::True) {
        p.advance();
        return Ok(GenTuple::universal());
    }
    Ok(GenTuple::new(atom_list::<T>(p)?))
}

fn rel_tuple<T: AtomSyntax>(p: &mut Parser<'_>) -> Result<GenTuple<T::A>, ParseError> {
    match p.peek() {
        Tok::True => {
            p.advance();
            Ok(GenTuple::universal())
        }
        Tok::LParen => {
            p.advance();
            let atoms = if matches!(p.peek(), Tok::True) {
                p.advance();
                Vec::new()
            } else {
                atom_list::<T>(p)?
            };
            p.expect(&Tok::RParen, "`)` closing the tuple")?;
            Ok(GenTuple::new(atoms))
        }
        _ => Ok(GenTuple::new(atom_list::<T>(p)?)),
    }
}

/// Parses a relation literal `{(x, y) | tuples}` and validates the tuples
/// against the column list.
///
/// # Errors
/// Returns a span-carrying [`ParseError`] on malformed input or when a tuple
/// mentions a variable outside the columns.
pub fn relation<T: AtomSyntax>(p: &mut Parser<'_>) -> Result<Relation<T>, ParseError> {
    let open = p
        .expect(&Tok::LBrace, "`{` opening a relation literal")?
        .span;
    p.expect(&Tok::LParen, "`(` before the column variables")?;
    let vars = if matches!(p.peek(), Tok::RParen) {
        Vec::new()
    } else {
        p.varlist()?
    };
    p.expect(&Tok::RParen, "`)` after the column variables")?;
    p.expect(&Tok::Pipe, "`|` between columns and tuples")?;
    let tuples = if matches!(p.peek(), Tok::False) {
        p.advance();
        Vec::new()
    } else {
        let mut ts = vec![rel_tuple::<T>(p)?];
        while matches!(p.peek(), Tok::Or | Tok::Semi) {
            p.advance();
            ts.push(rel_tuple::<T>(p)?);
        }
        ts
    };
    let close = p
        .expect(&Tok::RBrace, "`}` closing the relation literal")?
        .span;
    Relation::try_new(vars, tuples).map_err(|e| ParseError::new(e.to_string(), open.join(close)))
}

// ---------------------------------------------------------------------------
// DATALOG¬ rules
// ---------------------------------------------------------------------------

/// Converts a parsed body item into a rule literal when it has literal shape:
/// `R(t̅)`, `not R(t̅)` (without extra parentheses), or a constraint atom.
fn literal_of<A: frdb_core::theory::Atom>(f: &Formula<A>) -> Option<Literal<A>> {
    match f {
        Formula::Rel { name, args } => Some(Literal::Rel {
            positive: true,
            name: name.clone(),
            args: args.clone(),
        }),
        Formula::Not(inner) => match &**inner {
            Formula::Rel { name, args } => Some(Literal::Rel {
                positive: false,
                name: name.clone(),
                args: args.clone(),
            }),
            _ => None,
        },
        Formula::Atom(a) => Some(Literal::Constraint(a.clone())),
        _ => None,
    }
}

/// Parses one rule `head(x̅) :- body.`; a body of literals builds a
/// literal-bodied [`Rule`], any richer body a formula-bodied one.
///
/// # Errors
/// Returns a span-carrying [`ParseError`] on malformed input.
pub fn rule<T: AtomSyntax>(p: &mut Parser<'_>) -> Result<Rule<T::A>, ParseError> {
    let (head, _) = p.ident("a rule head")?;
    p.expect(&Tok::LParen, "`(` after the rule head")?;
    let head_vars = if matches!(p.peek(), Tok::RParen) {
        Vec::new()
    } else {
        p.varlist()?
    };
    p.expect(&Tok::RParen, "`)` after the head variables")?;
    p.expect(&Tok::Turnstile, "`:-` between head and body")?;
    let mut items = vec![formula::<T>(p)?];
    while matches!(p.peek(), Tok::Comma) {
        p.advance();
        items.push(formula::<T>(p)?);
    }
    p.expect(&Tok::Dot, "`.` terminating the rule")?;
    let literals: Option<Vec<Literal<T::A>>> = items.iter().map(literal_of).collect();
    Ok(match literals {
        Some(body) => Rule::new(head, head_vars, body),
        None => {
            let body = if items.len() == 1 {
                items.pop().expect("nonempty")
            } else {
                Formula::And(items)
            };
            Rule::from_formula(head, head_vars, body)
        }
    })
}

/// Parses rules until end of input.
///
/// # Errors
/// Returns a span-carrying [`ParseError`] on malformed input.
pub fn rules_until_eof<T: AtomSyntax>(p: &mut Parser<'_>) -> Result<Vec<Rule<T::A>>, ParseError> {
    let mut out = Vec::new();
    while !matches!(p.peek(), Tok::Eof) {
        out.push(rule::<T>(p)?);
    }
    Ok(out)
}

/// Parses rules until a closing `}` (used by `program name { … }` blocks; the
/// brace itself is left unconsumed).
///
/// # Errors
/// Returns a span-carrying [`ParseError`] on malformed input.
pub fn rules_until_rbrace<T: AtomSyntax>(
    p: &mut Parser<'_>,
) -> Result<Vec<Rule<T::A>>, ParseError> {
    let mut out = Vec::new();
    while !matches!(p.peek(), Tok::RBrace | Tok::Eof) {
        out.push(rule::<T>(p)?);
    }
    Ok(out)
}
