//! Golden tests pinning the parser's error diagnostics — message **and** byte
//! span — for a catalog of malformed inputs.  The rendered diagnostics live in
//! `tests/golden_errors.txt`; regenerate with `BLESS=1 cargo test -p frdb-lang
//! --test errors` after an intentional change.

use frdb_core::dense::DenseOrder;
use frdb_lang::{parse_formula, parse_relation, parse_rule, parse_script};
use frdb_linear::LinearOrder;

/// A diagnostics case: a name, the malformed source, and the parser entry
/// point it exercises.
type Case = (&'static str, &'static str, fn(&str) -> String);

/// The malformed inputs.
fn cases() -> Vec<Case> {
    fn formula_dense(src: &str) -> String {
        parse_formula::<DenseOrder>(src).map_or_else(|e| e.render("<test>", src), |_| "OK".into())
    }
    fn formula_linear(src: &str) -> String {
        parse_formula::<LinearOrder>(src).map_or_else(|e| e.render("<test>", src), |_| "OK".into())
    }
    fn relation_dense(src: &str) -> String {
        parse_relation::<DenseOrder>(src).map_or_else(|e| e.render("<test>", src), |_| "OK".into())
    }
    fn rule_dense(src: &str) -> String {
        parse_rule::<DenseOrder>(src).map_or_else(|e| e.render("<test>", src), |_| "OK".into())
    }
    fn script_dense(src: &str) -> String {
        parse_script::<DenseOrder>(src).map_or_else(|e| e.render("<test>", src), |_| "OK".into())
    }
    vec![
        ("truncated-comparison", "x <", formula_dense),
        ("unclosed-rel-atom", "R(x", formula_dense),
        ("reserved-hash-namespace", "x < #0", formula_dense),
        ("neq-is-not-an-atom", "x != y", formula_dense),
        ("zero-denominator", "x < 1/0", formula_dense),
        ("empty-quantifier-varlist", "exists . R(x)", formula_dense),
        (
            "missing-dot-after-varlist",
            "forall x (R(x))",
            formula_dense,
        ),
        ("linear-neq-is-not-an-atom", "2·x + y != 0", formula_linear),
        (
            "loose-variable-in-relation",
            "{(x) | y < 1}",
            relation_dense,
        ),
        ("missing-rule-terminator", "p(x) :- R(x)", rule_dense),
        ("rule-missing-turnstile", "p(x) R(x).", rule_dense),
        (
            "run-without-query-name",
            "schema R/2;\nrun ;\n",
            script_dense,
        ),
        (
            "explain-without-query-name",
            "schema R/2;\nexplain + 3;\n",
            script_dense,
        ),
        ("not-a-statement", "<= 3;", script_dense),
        ("bad-arity", "schema R/x;", script_dense),
        ("unknown-theory", "theory euclidean;", script_dense),
        (
            "unterminated-statement",
            "schema R/1;\nR := {(x) | x < 1}",
            script_dense,
        ),
    ]
}

#[test]
fn diagnostics_match_golden_file() {
    let mut rendered = String::new();
    for (name, src, run) in cases() {
        rendered.push_str(&format!("==== {name}\ninput: {src:?}\n{}\n\n", run(src)));
    }
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden_errors.txt");
    if std::env::var("BLESS").is_ok() {
        std::fs::write(golden_path, &rendered).expect("write golden file");
        return;
    }
    let golden = std::fs::read_to_string(golden_path)
        .expect("golden file missing — run with BLESS=1 to create it");
    assert_eq!(
        rendered, golden,
        "diagnostics drifted from the golden file; run with BLESS=1 if intentional"
    );
}

#[test]
fn every_case_is_actually_an_error() {
    for (name, src, run) in cases() {
        assert!(run(src) != "OK", "{name} unexpectedly parsed: {src}");
    }
}

#[test]
fn deep_nesting_is_an_error_not_a_stack_overflow() {
    // Regression: unbounded recursive descent crashed the process on deeply
    // nested input; a file loader must report a ParseError instead.
    for n in [1_000usize, 100_000] {
        let deep = format!("{}true{}", "(".repeat(n), ")".repeat(n));
        let err = parse_formula::<DenseOrder>(&deep).unwrap_err();
        assert!(err.message.contains("nesting deeper"), "{err}");
        let nots = format!("{}true", "not ".repeat(n));
        let err = parse_formula::<DenseOrder>(&nots).unwrap_err();
        assert!(err.message.contains("nesting deeper"), "{err}");
    }
    // Readably deep formulas still parse.
    let fine = format!("{}true{}", "(".repeat(50), ")".repeat(50));
    assert!(parse_formula::<DenseOrder>(&fine).is_ok());
}

#[test]
fn eof_errors_are_flagged_for_interactive_continuation() {
    let err = parse_formula::<DenseOrder>("exists x. (R(x)").unwrap_err();
    assert!(err.at_eof, "unterminated input must set at_eof");
    let err = parse_script::<DenseOrder>("schema R/1;\nR := {(x) | x < 1}").unwrap_err();
    assert!(err.at_eof);
    // A mid-input error is not an EOF error.
    let err = parse_formula::<DenseOrder>("x != y").unwrap_err();
    assert!(!err.at_eof);
    // An unterminated block comment runs off the end of the input, so the
    // REPL must keep reading rather than report it (regression).
    let err = parse_script::<DenseOrder>("/* a multi-line").unwrap_err();
    assert!(err.at_eof, "unterminated block comment must set at_eof");
}
