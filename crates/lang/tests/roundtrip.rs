//! Property tests pinning the parser as the left inverse of the printers:
//! `parse(print(x)) == x` on randomized formulas, generalized tuples, relation
//! literals and `DATALOG¬` rules over **both** bundled theories, plus a
//! fuzz-style property that the parser never panics on arbitrary input.

use frdb_core::dense::{DenseAtom, DenseOrder};
use frdb_core::logic::{Formula, Term, Var};
use frdb_core::relation::{GenTuple, Relation};
use frdb_datalog::{Literal, Program, Rule};
use frdb_lang::{
    parse_formula, parse_gen_tuple, parse_program, parse_relation, parse_rule, parse_script, Stmt,
};
use frdb_linear::{LinAtom, LinExpr, LinearOrder};
use frdb_num::Rat;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------------------
// Dense-order generators
// ---------------------------------------------------------------------------

fn rand_rat(rng: &mut StdRng) -> Rat {
    let num = rng.gen_range(-6i64..=9);
    if rng.gen_range(0..3) == 0 {
        // A non-integer rational, to exercise `p/q` literals.
        Rat::new(num.into(), rng.gen_range(2i64..=4).into())
    } else {
        Rat::from_i64(num)
    }
}

fn rand_dense_term(rng: &mut StdRng) -> Term {
    match rng.gen_range(0..=4) {
        0 => Term::var("x"),
        1 => Term::var("y"),
        2 => Term::var("z"),
        _ => Term::rat(rand_rat(rng)),
    }
}

fn rand_dense_atom(rng: &mut StdRng) -> DenseAtom {
    let (l, r) = (rand_dense_term(rng), rand_dense_term(rng));
    match rng.gen_range(0..=2) {
        0 => DenseAtom::lt(l, r),
        1 => DenseAtom::le(l, r),
        _ => DenseAtom::eq(l, r),
    }
}

fn rand_dense_leaf(rng: &mut StdRng) -> Formula<DenseAtom> {
    match rng.gen_range(0..=5) {
        0 => Formula::True,
        1 => Formula::False,
        2 => Formula::rel("R", vec![rand_dense_term(rng)]),
        3 => Formula::rel("S", vec![rand_dense_term(rng), rand_dense_term(rng)]),
        _ => Formula::Atom(rand_dense_atom(rng)),
    }
}

/// A random formula whose `Display` output must parse back to itself: n-ary
/// connectives have at least two operands and quantifier blocks at least one
/// variable (empty and singleton nodes print as their simplified forms, which
/// parse to different — equivalent — ASTs, so the generator avoids them).
fn rand_dense_formula(rng: &mut StdRng, depth: usize) -> Formula<DenseAtom> {
    if depth == 0 {
        return rand_dense_leaf(rng);
    }
    match rng.gen_range(0..=7) {
        0 => rand_dense_formula(rng, depth - 1).not(),
        1 | 2 => {
            let n = rng.gen_range(2..=3);
            Formula::And((0..n).map(|_| rand_dense_formula(rng, depth - 1)).collect())
        }
        3 | 4 => {
            let n = rng.gen_range(2..=3);
            Formula::Or((0..n).map(|_| rand_dense_formula(rng, depth - 1)).collect())
        }
        5 => {
            let vars = ["u", "v", "w"][..rng.gen_range(1..=3)].to_vec();
            Formula::exists(vars, rand_dense_formula(rng, depth - 1))
        }
        6 => {
            let vars = ["u", "v"][..rng.gen_range(1..=2)].to_vec();
            Formula::forall(vars, rand_dense_formula(rng, depth - 1))
        }
        _ => {
            let a = rand_dense_formula(rng, depth - 1);
            let b = rand_dense_formula(rng, depth - 1);
            if rng.gen_range(0..2) == 0 {
                a.implies(b)
            } else {
                a.iff(b)
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Linear generators
// ---------------------------------------------------------------------------

fn rand_lin_expr(rng: &mut StdRng) -> LinExpr {
    let mut e = LinExpr::constant(rand_rat(rng));
    for name in ["x", "y", "z"] {
        if rng.gen_range(0..2) == 0 {
            let coef = rand_rat(rng);
            e = e.add(&LinExpr::var(name).scale(&coef));
        }
    }
    e
}

fn rand_lin_atom(rng: &mut StdRng) -> LinAtom {
    let (l, r) = (rand_lin_expr(rng), rand_lin_expr(rng));
    match rng.gen_range(0..=2) {
        0 => LinAtom::lt(l, r),
        1 => LinAtom::le(l, r),
        _ => LinAtom::eq(l, r),
    }
}

fn rand_lin_formula(rng: &mut StdRng, depth: usize) -> Formula<LinAtom> {
    if depth == 0 {
        return match rng.gen_range(0..=3) {
            0 => Formula::rel("R", vec![rand_dense_term(rng)]),
            _ => Formula::Atom(rand_lin_atom(rng)),
        };
    }
    match rng.gen_range(0..=4) {
        0 => rand_lin_formula(rng, depth - 1).not(),
        1 => {
            let n = rng.gen_range(2..=3);
            Formula::And((0..n).map(|_| rand_lin_formula(rng, depth - 1)).collect())
        }
        2 => {
            let n = rng.gen_range(2..=3);
            Formula::Or((0..n).map(|_| rand_lin_formula(rng, depth - 1)).collect())
        }
        3 => Formula::exists(["u"], rand_lin_formula(rng, depth - 1)),
        _ => Formula::forall(["u"], rand_lin_formula(rng, depth - 1)),
    }
}

// ---------------------------------------------------------------------------
// Rule generators
// ---------------------------------------------------------------------------

fn rand_dense_literal(rng: &mut StdRng) -> Literal<DenseAtom> {
    match rng.gen_range(0..=2) {
        0 => Literal::pos("S", vec![rand_dense_term(rng), rand_dense_term(rng)]),
        1 => Literal::neg("R", vec![rand_dense_term(rng)]),
        _ => Literal::constraint(rand_dense_atom(rng)),
    }
}

fn rand_dense_rule(rng: &mut StdRng) -> Rule<DenseAtom> {
    let head_vars: Vec<&str> = ["x", "y"][..rng.gen_range(1..=2)].to_vec();
    if rng.gen_range(0..2) == 0 {
        let n = rng.gen_range(1..=3);
        Rule::new(
            "p",
            head_vars,
            (0..n).map(|_| rand_dense_literal(rng)).collect(),
        )
    } else {
        // Formula bodies are kept visibly formula-shaped (a quantifier or an
        // n-ary connective): a body printing exactly like a literal list
        // legitimately parses back as one.
        let body = match rng.gen_range(0..=2) {
            0 => Formula::exists(["q"], rand_dense_formula(rng, 1)),
            1 => Formula::forall(["q"], rand_dense_formula(rng, 1)),
            _ => Formula::And(vec![rand_dense_formula(rng, 1), rand_dense_formula(rng, 1)]),
        };
        Rule::from_formula("p", head_vars, body)
    }
}

// ---------------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn dense_formulas_roundtrip(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let depth = rng.gen_range(1..=3);
        let formula = rand_dense_formula(&mut rng, depth);
        let printed = formula.to_string();
        let parsed = parse_formula::<DenseOrder>(&printed)
            .unwrap_or_else(|e| panic!("printed formula must parse: {printed}\n  {e}"));
        prop_assert_eq!(&parsed, &formula, "roundtrip changed {}", printed);
    }

    #[test]
    fn linear_formulas_roundtrip(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let depth = rng.gen_range(1..=2);
        let formula = rand_lin_formula(&mut rng, depth);
        let printed = formula.to_string();
        let parsed = parse_formula::<LinearOrder>(&printed)
            .unwrap_or_else(|e| panic!("printed formula must parse: {printed}\n  {e}"));
        prop_assert_eq!(&parsed, &formula, "roundtrip changed {}", printed);
    }

    #[test]
    fn dense_tuples_roundtrip(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(0..=4);
        let tuple = GenTuple::new((0..n).map(|_| rand_dense_atom(&mut rng)).collect());
        let printed = tuple.to_string();
        let parsed = parse_gen_tuple::<DenseOrder>(&printed)
            .unwrap_or_else(|e| panic!("printed tuple must parse: {printed}\n  {e}"));
        prop_assert_eq!(parsed.atoms(), tuple.atoms());
    }

    #[test]
    fn linear_tuples_roundtrip(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(0..=3);
        let tuple = GenTuple::new((0..n).map(|_| rand_lin_atom(&mut rng)).collect());
        let printed = tuple.to_string();
        let parsed = parse_gen_tuple::<LinearOrder>(&printed)
            .unwrap_or_else(|e| panic!("printed tuple must parse: {printed}\n  {e}"));
        prop_assert_eq!(parsed.atoms(), tuple.atoms());
    }

    #[test]
    fn dense_rules_roundtrip(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rule = rand_dense_rule(&mut rng);
        let printed = rule.to_string();
        let full = format!("{printed}.");
        let parsed = parse_rule::<DenseOrder>(&full)
            .unwrap_or_else(|e| panic!("printed rule must parse: {full}\n  {e}"));
        prop_assert_eq!(&parsed, &rule, "roundtrip changed {}", full);
    }

    #[test]
    fn dense_programs_roundtrip(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.gen_range(1..=4);
        let program = Program::from_rules((0..n).map(|_| rand_dense_rule(&mut rng)).collect());
        let printed = program.to_string();
        let parsed = parse_program::<DenseOrder>(&printed)
            .unwrap_or_else(|e| panic!("printed program must parse:\n{printed}\n  {e}"));
        prop_assert_eq!(parsed.rules(), program.rules());
    }

    #[test]
    fn dense_relations_roundtrip(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let vars = vec![Var::new("x"), Var::new("y")];
        // Atoms drawn over the columns only: a loose variable is rejected at
        // construction time (see `try_new_rejects_tuples_with_loose_variables`).
        let column_atom = |rng: &mut StdRng| {
            let term = |rng: &mut StdRng| match rng.gen_range(0..=3) {
                0 => Term::var("x"),
                1 => Term::var("y"),
                _ => Term::rat(rand_rat(rng)),
            };
            let (l, r) = (term(rng), term(rng));
            match rng.gen_range(0..=2) {
                0 => DenseAtom::lt(l, r),
                1 => DenseAtom::le(l, r),
                _ => DenseAtom::eq(l, r),
            }
        };
        let n = rng.gen_range(0..=3);
        let tuples: Vec<GenTuple<DenseAtom>> = (0..n)
            .map(|_| {
                let k = rng.gen_range(0..=3);
                GenTuple::new((0..k).map(|_| column_atom(&mut rng)).collect())
            })
            .collect();
        let relation: Relation<DenseOrder> = Relation::new(vars, tuples);
        let printed = relation.to_string();
        let parsed = parse_relation::<DenseOrder>(&printed)
            .unwrap_or_else(|e| panic!("printed relation must parse: {printed}\n  {e}"));
        // The stored tuples are canonical, and canonicalization is idempotent,
        // so the reparsed representation is syntactically identical.
        prop_assert_eq!(parsed.vars(), relation.vars());
        prop_assert_eq!(parsed.to_dnf(), relation.to_dnf());
        prop_assert!(parsed.equivalent(&relation));
    }

    /// Update statements round-trip: printing a relation literal into an
    /// `insert`/`delete` statement and parsing the script back yields the
    /// same statement kind, relation name, and canonical DNF.
    #[test]
    fn update_statements_roundtrip(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let vars = vec![Var::new("x"), Var::new("y")];
        let atom = |rng: &mut StdRng| {
            let term = |rng: &mut StdRng| match rng.gen_range(0..=3) {
                0 => Term::var("x"),
                1 => Term::var("y"),
                _ => Term::rat(rand_rat(rng)),
            };
            let (l, r) = (term(rng), term(rng));
            match rng.gen_range(0..=2) {
                0 => DenseAtom::lt(l, r),
                1 => DenseAtom::le(l, r),
                _ => DenseAtom::eq(l, r),
            }
        };
        let n = rng.gen_range(0..=3);
        let tuples: Vec<GenTuple<DenseAtom>> = (0..n)
            .map(|_| {
                let k = rng.gen_range(0..=3);
                GenTuple::new((0..k).map(|_| atom(&mut rng)).collect())
            })
            .collect();
        let relation: Relation<DenseOrder> = Relation::new(vars, tuples);
        let insert = rng.gen_range(0..2) == 0;
        let keyword = if insert { "insert" } else { "delete" };
        let src = format!("{keyword} R {relation};");
        let script = parse_script::<DenseOrder>(&src)
            .unwrap_or_else(|e| panic!("printed update must parse: {src}\n  {e}"));
        prop_assert_eq!(script.stmts.len(), 1);
        match &script.stmts[0].node {
            Stmt::Insert { name, relation: parsed } if insert => {
                prop_assert_eq!(name.as_str(), "R");
                prop_assert_eq!(parsed.vars(), relation.vars());
                prop_assert_eq!(parsed.to_dnf(), relation.to_dnf());
            }
            Stmt::Delete { name, relation: parsed } if !insert => {
                prop_assert_eq!(name.as_str(), "R");
                prop_assert_eq!(parsed.vars(), relation.vars());
                prop_assert_eq!(parsed.to_dnf(), relation.to_dnf());
            }
            other => prop_assert!(false, "unexpected statement for {}: {:?}", src, other),
        }
    }
}

// ---------------------------------------------------------------------------
// Fuzz: the parser never panics on arbitrary input
// ---------------------------------------------------------------------------

/// Characters drawn by the fuzzer: everything the grammar uses, plus noise
/// (the reserved `#`, stray unicode, unbalanced brackets).
const FUZZ_CHARS: &[char] = &[
    'a', 'b', 'R', 'S', 'x', 'y', '_', '0', '1', '9', '(', ')', '{', '}', ',', ';', '.', '|', '/',
    ':', '=', '<', '>', '!', '+', '-', '*', '&', ' ', '\n', '∧', '∨', '¬', '∃', '∀', '≤', '≥', '≠',
    '→', '↔', '←', '·', '#', '@', 'é', '"',
];

fn fuzz_string(rng: &mut StdRng) -> String {
    let len = rng.gen_range(0..=80);
    (0..len)
        .map(|_| FUZZ_CHARS[rng.gen_range(0..FUZZ_CHARS.len())])
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn parser_never_panics_on_arbitrary_strings(seed in 0u64..10_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let input = fuzz_string(&mut rng);
        // Any outcome is fine — panics are not.
        let _ = parse_script::<DenseOrder>(&input);
        let _ = parse_script::<LinearOrder>(&input);
        let _ = parse_formula::<DenseOrder>(&input);
        let _ = parse_relation::<DenseOrder>(&input);
        let _ = parse_rule::<LinearOrder>(&input);
    }

    #[test]
    fn parser_never_panics_on_mutated_valid_scripts(seed in 0u64..10_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let valid = "theory dense;\nschema R/2;\nR := {(x, y) | 0 <= x and x <= y};\n\
                     insert R {(x, y) | x = 1 and y = 2};\n\
                     delete R {(x, y) | x < 0};\n\
                     query q(x) := exists y. (R(x, y));\nrun q;\n";
        let mut mutated: Vec<char> = valid.chars().collect();
        for _ in 0..rng.gen_range(1..=6) {
            let pos = rng.gen_range(0..mutated.len());
            let c = FUZZ_CHARS[rng.gen_range(0..FUZZ_CHARS.len())];
            if rng.gen_range(0..2) == 0 {
                mutated[pos] = c;
            } else {
                mutated.insert(pos, c);
            }
        }
        let input: String = mutated.into_iter().collect();
        let _ = parse_script::<DenseOrder>(&input);
    }
}
