//! # frdb-datalog
//!
//! Inflationary **Datalog with negation and constraints** (`DATALOG¬`) over finitely
//! representable databases — the fixpoint query language of Section 6 of Grumbach &
//! Su, *Finitely Representable Databases*.
//!
//! A `DATALOG¬` program is a finite set of rules
//!
//! ```text
//! A(x₁,…,xₙ)  ←  B(y₁,…,yₘ), …, ¬C(z₁,…,zₖ), …, s₁ ≤ t₁, …, sₗ ≤ tₗ
//! ```
//!
//! whose body mixes positive and negated relation atoms (over both the database schema
//! and the intensional predicates) with dense-order constraints.  The semantics is the
//! *inflationary* one used in the paper: every rule body is an FO query evaluated
//! against the current instance, the result is unioned into the head relation, and
//! iteration continues until a fixpoint.  Because dense-order quantifier elimination
//! introduces no constants outside the active domain, the fixpoint is reached after
//! finitely many rounds and the output is again a finitely representable relation
//! ("closed form", [KKR95]); the engine nevertheless takes a configurable iteration
//! cap as a defensive bound.
//!
//! `DATALOG¬` expresses exactly the order-generic PTIME queries (Theorem 6.6); the
//! query catalog in `frdb-queries` provides the programs the paper discusses
//! (transitive closure, region connectivity, …) and cross-checks them against direct
//! polynomial-time algorithms.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use frdb_core::fo::{eval_query, EvalError};
use frdb_core::logic::{Formula, Term, Var};
use frdb_core::relation::{Instance, Relation};
use frdb_core::schema::{RelName, Schema};
use frdb_core::theory::Theory;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A literal of a rule body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Literal<A> {
    /// A (possibly negated) relation atom over an EDB or IDB predicate.
    Rel {
        /// `false` for a negated occurrence `¬R(t̅)`.
        positive: bool,
        /// The relation name.
        name: RelName,
        /// Argument terms.
        args: Vec<Term>,
    },
    /// A constraint atom of the underlying theory.
    Constraint(A),
}

impl<A> Literal<A> {
    /// A positive relation literal.
    #[must_use]
    pub fn pos(name: impl Into<RelName>, args: impl IntoIterator<Item = impl Into<Term>>) -> Self {
        Literal::Rel {
            positive: true,
            name: name.into(),
            args: args.into_iter().map(Into::into).collect(),
        }
    }

    /// A negated relation literal.
    #[must_use]
    pub fn neg(name: impl Into<RelName>, args: impl IntoIterator<Item = impl Into<Term>>) -> Self {
        Literal::Rel {
            positive: false,
            name: name.into(),
            args: args.into_iter().map(Into::into).collect(),
        }
    }

    /// A constraint literal.
    #[must_use]
    pub fn constraint(atom: A) -> Self {
        Literal::Constraint(atom)
    }
}

impl<A: fmt::Display> fmt::Display for Literal<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Rel { positive, name, args } => {
                if !positive {
                    write!(f, "¬")?;
                }
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Literal::Constraint(a) => write!(f, "{a}"),
        }
    }
}

/// A rule `head(vars) ← body`.
///
/// The body is either a list of literals (the syntax shown in Section 6 of the paper)
/// or, more generally, an arbitrary first-order formula over the EDB and IDB
/// predicates — the engine evaluates each rule body as an FO query anyway, and rules
/// such as the `Sweep` relation of Example 6.3 need an embedded universal quantifier
/// ("the segment between the two points is entirely in R").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rule<A> {
    /// Head predicate name.
    pub head: RelName,
    /// Head variables (the columns of the derived relation).
    pub head_vars: Vec<Var>,
    /// Body literals (empty when `formula` is used instead).
    pub body: Vec<Literal<A>>,
    /// An explicit body formula taking precedence over `body` when present.
    formula: Option<Formula<A>>,
}

impl<A: frdb_core::theory::Atom> Rule<A> {
    /// Creates a rule from body literals.
    #[must_use]
    pub fn new(
        head: impl Into<RelName>,
        head_vars: impl IntoIterator<Item = impl Into<Var>>,
        body: Vec<Literal<A>>,
    ) -> Self {
        Rule {
            head: head.into(),
            head_vars: head_vars.into_iter().map(Into::into).collect(),
            body,
            formula: None,
        }
    }

    /// Creates a rule whose body is an arbitrary FO formula (free variables not in the
    /// head are implicitly existentially quantified by the evaluation).
    #[must_use]
    pub fn from_formula(
        head: impl Into<RelName>,
        head_vars: impl IntoIterator<Item = impl Into<Var>>,
        body: Formula<A>,
    ) -> Self {
        Rule {
            head: head.into(),
            head_vars: head_vars.into_iter().map(Into::into).collect(),
            body: Vec::new(),
            formula: Some(body),
        }
    }

    /// The body as an FO formula: the conjunction of the literals with all non-head
    /// variables existentially quantified.
    #[must_use]
    pub fn body_formula(&self) -> Formula<A> {
        if let Some(f) = &self.formula {
            let head_set: BTreeSet<Var> = self.head_vars.iter().cloned().collect();
            let free: Vec<Var> = f.free_vars().difference(&head_set).cloned().collect();
            return if free.is_empty() {
                f.clone()
            } else {
                Formula::Exists(free, Box::new(f.clone()))
            };
        }
        let mut parts: Vec<Formula<A>> = Vec::with_capacity(self.body.len());
        let mut body_vars: BTreeSet<Var> = BTreeSet::new();
        for lit in &self.body {
            match lit {
                Literal::Rel { positive, name, args } => {
                    for a in args {
                        if let Term::Var(v) = a {
                            body_vars.insert(v.clone());
                        }
                    }
                    let atom = Formula::Rel { name: name.clone(), args: args.clone() };
                    parts.push(if *positive { atom } else { atom.not() });
                }
                Literal::Constraint(a) => {
                    body_vars.extend(a.vars());
                    parts.push(Formula::Atom(a.clone()));
                }
            }
        }
        let head_set: BTreeSet<Var> = self.head_vars.iter().cloned().collect();
        let quantified: Vec<Var> = body_vars.difference(&head_set).cloned().collect();
        let conj = Formula::And(parts);
        if quantified.is_empty() {
            conj
        } else {
            Formula::Exists(quantified, Box::new(conj))
        }
    }
}

impl<A: fmt::Display> fmt::Display for Rule<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.head)?;
        for (i, v) in self.head_vars.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ") ← ")?;
        for (i, l) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l}")?;
        }
        Ok(())
    }
}

/// Errors raised while evaluating a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatalogError {
    /// A rule body failed to evaluate (unknown relation, arity mismatch, …).
    Eval(EvalError),
    /// The program did not reach a fixpoint within the configured iteration cap.
    IterationLimit(usize),
    /// Two rules for the same head predicate disagree on its arity.
    InconsistentHeadArity(String),
    /// A head predicate clashes with an EDB relation of the input schema.
    HeadShadowsEdb(String),
}

impl fmt::Display for DatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatalogError::Eval(e) => write!(f, "rule evaluation failed: {e}"),
            DatalogError::IterationLimit(n) => {
                write!(f, "no fixpoint reached within {n} iterations")
            }
            DatalogError::InconsistentHeadArity(r) => {
                write!(f, "rules for {r} use different head arities")
            }
            DatalogError::HeadShadowsEdb(r) => {
                write!(f, "intensional predicate {r} shadows an EDB relation")
            }
        }
    }
}

impl std::error::Error for DatalogError {}

impl From<EvalError> for DatalogError {
    fn from(e: EvalError) -> Self {
        DatalogError::Eval(e)
    }
}

/// An inflationary `DATALOG¬` program.
#[derive(Clone, Debug, Default)]
pub struct Program<A> {
    rules: Vec<Rule<A>>,
    max_iterations: usize,
}

/// The result of running a program: the final values of all intensional predicates.
#[derive(Debug)]
pub struct FixpointResult<T: Theory> {
    /// The combined instance (EDB relations plus the fixpoint of every IDB predicate).
    pub instance: Instance<T>,
    /// The number of iterations needed to reach the fixpoint.
    pub iterations: usize,
}

impl<A: frdb_core::theory::Atom> Program<A> {
    /// Creates an empty program with the default iteration cap.
    #[must_use]
    pub fn new() -> Self {
        Program { rules: Vec::new(), max_iterations: 10_000 }
    }

    /// Creates a program from rules.
    #[must_use]
    pub fn from_rules(rules: Vec<Rule<A>>) -> Self {
        Program { rules, max_iterations: 10_000 }
    }

    /// Adds a rule.
    pub fn add_rule(&mut self, rule: Rule<A>) -> &mut Self {
        self.rules.push(rule);
        self
    }

    /// Sets the defensive iteration cap (the paper guarantees termination for dense
    /// order; the cap protects against ill-formed theories).
    pub fn with_max_iterations(mut self, cap: usize) -> Self {
        self.max_iterations = cap;
        self
    }

    /// The rules of the program.
    #[must_use]
    pub fn rules(&self) -> &[Rule<A>] {
        &self.rules
    }

    /// The intensional (IDB) predicates with their arities.
    ///
    /// # Errors
    /// Returns an error if two rules disagree on a head arity.
    pub fn idb_schema(&self) -> Result<BTreeMap<RelName, usize>, DatalogError> {
        let mut out = BTreeMap::new();
        for rule in &self.rules {
            let arity = rule.head_vars.len();
            match out.insert(rule.head.clone(), arity) {
                Some(prev) if prev != arity => {
                    return Err(DatalogError::InconsistentHeadArity(rule.head.to_string()))
                }
                _ => {}
            }
        }
        Ok(out)
    }

    /// Runs the program to its inflationary fixpoint over an input instance.
    ///
    /// # Errors
    /// Returns an error if a rule fails to evaluate, head arities are inconsistent, an
    /// IDB predicate shadows an EDB relation, or the iteration cap is exceeded.
    pub fn run<T: Theory<A = A>>(&self, edb: &Instance<T>) -> Result<FixpointResult<T>, DatalogError> {
        let idb = self.idb_schema()?;
        for name in idb.keys() {
            if edb.schema().contains(name) {
                return Err(DatalogError::HeadShadowsEdb(name.to_string()));
            }
        }
        // Combined schema: EDB relations plus IDB predicates.
        let mut schema = Schema::new();
        for (name, arity) in edb.schema().iter() {
            schema.add(name.clone(), arity);
        }
        for (name, arity) in &idb {
            schema.add(name.clone(), *arity);
        }
        let mut current: Instance<T> = Instance::new(schema);
        for (name, rel) in edb.iter() {
            current.set(name.clone(), rel.clone());
        }
        let mut idb_state: BTreeMap<RelName, Relation<T>> = idb
            .iter()
            .map(|(name, arity)| {
                let vars: Vec<Var> = (0..*arity).map(|i| Var::new(format!("c{i}"))).collect();
                (name.clone(), Relation::empty(vars))
            })
            .collect();
        for (name, rel) in &idb_state {
            current.set(name.clone(), rel.clone());
        }

        for iteration in 0..self.max_iterations {
            let mut changed = false;
            let mut next_state = idb_state.clone();
            for rule in &self.rules {
                let body = rule.body_formula();
                let delta = eval_query(&body, &rule.head_vars, &current)?;
                let existing = next_state
                    .get(&rule.head)
                    .expect("idb_schema lists every head predicate")
                    .clone();
                let delta = delta.rename(existing.vars().to_vec());
                // Inflationary semantics: the head only grows, so the fixpoint test
                // reduces to `delta ⊆ old`.
                if delta.subset_of(&existing) {
                    continue;
                }
                changed = true;
                next_state.insert(rule.head.clone(), existing.union(&delta));
            }
            idb_state = next_state;
            for (name, rel) in &idb_state {
                current.set(name.clone(), rel.clone());
            }
            if !changed {
                return Ok(FixpointResult { instance: current, iterations: iteration + 1 });
            }
        }
        Err(DatalogError::IterationLimit(self.max_iterations))
    }

    /// Runs the program and returns the fixpoint value of one predicate.
    ///
    /// # Errors
    /// As for [`Program::run`]; additionally if the predicate is unknown.
    pub fn run_for<T: Theory<A = A>>(
        &self,
        edb: &Instance<T>,
        answer: &RelName,
    ) -> Result<Relation<T>, DatalogError> {
        let result = self.run(edb)?;
        result
            .instance
            .get(answer)
            .ok_or_else(|| DatalogError::Eval(EvalError::UnknownRelation(answer.to_string())))
    }
}

/// Builds the classical transitive-closure program over a binary EDB relation `edge`:
///
/// ```text
/// tc(x, y) ← edge(x, y)
/// tc(x, y) ← tc(x, z), edge(z, y)
/// ```
#[must_use]
pub fn transitive_closure_program(
    edge: impl Into<RelName>,
    tc: impl Into<RelName>,
) -> Program<frdb_core::dense::DenseAtom> {
    let edge = edge.into();
    let tc = tc.into();
    let x = || Term::var("x");
    let y = || Term::var("y");
    let z = || Term::var("z");
    Program::from_rules(vec![
        Rule::new(tc.clone(), ["x", "y"], vec![Literal::pos(edge.clone(), [x(), y()])]),
        Rule::new(
            tc.clone(),
            ["x", "y"],
            vec![Literal::pos(tc, [x(), z()]), Literal::pos(edge, [z(), y()])],
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use frdb_core::dense::{DenseAtom, DenseOrder};
    use frdb_core::fo::eval_sentence;
    use frdb_num::Rat;

    fn r(v: i64) -> Rat {
        Rat::from_i64(v)
    }

    fn path_graph(n: i64) -> Instance<DenseOrder> {
        // edge = {(i, i+1) | 0 ≤ i < n}
        let schema = Schema::from_pairs([("edge", 2)]);
        let mut inst = Instance::new(schema);
        let points: Vec<Vec<Rat>> = (0..n).map(|i| vec![r(i), r(i + 1)]).collect();
        inst.set(
            "edge",
            Relation::from_points(vec![Var::new("x"), Var::new("y")], points),
        );
        inst
    }

    #[test]
    fn transitive_closure_of_a_path() {
        let inst = path_graph(5);
        let program = transitive_closure_program("edge", "tc");
        let tc = program.run_for(&inst, &RelName::new("tc")).unwrap();
        for i in 0..=5i64 {
            for j in 0..=5i64 {
                assert_eq!(tc.contains(&[r(i), r(j)]), i < j, "tc({i},{j})");
            }
        }
    }

    #[test]
    fn fixpoint_iteration_count_is_reported() {
        let inst = path_graph(6);
        let program = transitive_closure_program("edge", "tc");
        let result = program.run(&inst).unwrap();
        // A path of length 6 needs several rounds plus one quiescent round.
        assert!(result.iterations >= 3);
    }

    #[test]
    fn negation_in_bodies() {
        // unreachable-from-0 nodes of the vertex set: node(x) ∧ ¬tc0(x)
        // where tc0(x) ← tc(0, x) and tc is the closure of edge.
        let mut inst = path_graph(3);
        // add isolated vertices 10, 11 to the vertex relation
        let mut schema = Schema::from_pairs([("edge", 2), ("node", 1)]);
        schema.add("node", 1);
        let mut inst2 = Instance::new(schema);
        inst2.set("edge", inst.get(&RelName::new("edge")).unwrap());
        let nodes: Vec<Vec<Rat>> = (0..=3).chain(10..=11).map(|i| vec![r(i)]).collect();
        inst2.set("node", Relation::from_points(vec![Var::new("x")], nodes));
        inst = inst2;

        let mut program = transitive_closure_program("edge", "tc");
        program.add_rule(Rule::new(
            "reach0",
            ["x"],
            vec![Literal::pos("tc", [Term::cst(0), Term::var("x")])],
        ));
        program.add_rule(Rule::new(
            "isolated",
            ["x"],
            vec![Literal::pos("node", [Term::var("x")]), Literal::neg("reach0", [Term::var("x")])],
        ));
        // Note: with inflationary semantics the `isolated` rule may fire early while
        // `reach0` is still growing; re-running the body on the *final* instance is the
        // timestamp-free way to read off the intended answer (the paper's Example 6.3
        // makes the same point with its delayed connectivity check).
        let result = program.run(&inst).unwrap();
        let final_isolated = eval_query(
            &Formula::<DenseAtom>::rel("node", [Term::var("x")])
                .and(Formula::rel("reach0", [Term::var("x")]).not()),
            &[Var::new("x")],
            &result.instance,
        )
        .unwrap();
        assert!(final_isolated.contains(&[r(10)]));
        assert!(final_isolated.contains(&[r(11)]));
        assert!(!final_isolated.contains(&[r(2)]));
    }

    #[test]
    fn constraint_literals_restrict_derivations() {
        // bounded(x, y) ← edge(x, y), x < 3
        let inst = path_graph(5);
        let program = Program::from_rules(vec![Rule::new(
            "bounded",
            ["x", "y"],
            vec![
                Literal::pos("edge", [Term::var("x"), Term::var("y")]),
                Literal::constraint(DenseAtom::lt(Term::var("x"), Term::cst(3))),
            ],
        )]);
        let ans = program.run_for(&inst, &RelName::new("bounded")).unwrap();
        assert!(ans.contains(&[r(0), r(1)]));
        assert!(ans.contains(&[r(2), r(3)]));
        assert!(!ans.contains(&[r(3), r(4)]));
    }

    #[test]
    fn rules_can_derive_infinite_relations() {
        // between(x) ← edge(u, v), u < x, x < v: the open intervals spanned by edges.
        let inst = path_graph(2);
        let program = Program::from_rules(vec![Rule::new(
            "between",
            ["x"],
            vec![
                Literal::pos("edge", [Term::var("u"), Term::var("v")]),
                Literal::constraint(DenseAtom::lt(Term::var("u"), Term::var("x"))),
                Literal::constraint(DenseAtom::lt(Term::var("x"), Term::var("v"))),
            ],
        )]);
        let ans = program.run_for(&inst, &RelName::new("between")).unwrap();
        assert!(ans.contains(&["1/2".parse().unwrap()]));
        assert!(ans.contains(&["3/2".parse().unwrap()]));
        assert!(!ans.contains(&[r(2)]));
    }

    #[test]
    fn errors_are_surfaced() {
        let inst = path_graph(2);
        // Head shadowing an EDB relation.
        let bad = Program::<DenseAtom>::from_rules(vec![Rule::new(
            "edge",
            ["x", "y"],
            vec![Literal::pos("edge", [Term::var("x"), Term::var("y")])],
        )]);
        assert!(matches!(bad.run(&inst), Err(DatalogError::HeadShadowsEdb(_))));
        // Inconsistent arities.
        let bad2 = Program::<DenseAtom>::from_rules(vec![
            Rule::new("p", ["x"], vec![Literal::pos("edge", [Term::var("x"), Term::var("y")])]),
            Rule::new(
                "p",
                ["x", "y"],
                vec![Literal::pos("edge", [Term::var("x"), Term::var("y")])],
            ),
        ]);
        assert!(matches!(bad2.run(&inst), Err(DatalogError::InconsistentHeadArity(_))));
        // Unknown EDB relation inside a body.
        let bad3 = Program::<DenseAtom>::from_rules(vec![Rule::new(
            "p",
            ["x"],
            vec![Literal::pos("ghost", [Term::var("x")])],
        )]);
        assert!(matches!(bad3.run(&inst), Err(DatalogError::Eval(_))));
    }

    #[test]
    fn boolean_answers_via_sentences_on_the_fixpoint() {
        // The path graph is connected from 0 to 5: tc(0, 5) holds.
        let inst = path_graph(5);
        let program = transitive_closure_program("edge", "tc");
        let result = program.run(&inst).unwrap();
        let reachable: Formula<DenseAtom> = Formula::rel("tc", [Term::cst(0), Term::cst(5)]);
        assert!(eval_sentence(&reachable, &result.instance).unwrap());
        let not_reachable: Formula<DenseAtom> = Formula::rel("tc", [Term::cst(5), Term::cst(0)]);
        assert!(!eval_sentence(&not_reachable, &result.instance).unwrap());
    }
}
