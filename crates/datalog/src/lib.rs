//! # frdb-datalog
//!
//! Inflationary **Datalog with negation and constraints** (`DATALOG¬`) over finitely
//! representable databases — the fixpoint query language of Section 6 of Grumbach &
//! Su, *Finitely Representable Databases*.
//!
//! A `DATALOG¬` program is a finite set of rules
//!
//! ```text
//! A(x₁,…,xₙ)  ←  B(y₁,…,yₘ), …, ¬C(z₁,…,zₖ), …, s₁ ≤ t₁, …, sₗ ≤ tₗ
//! ```
//!
//! whose body mixes positive and negated relation atoms (over both the database schema
//! and the intensional predicates) with dense-order constraints.  The semantics is the
//! *inflationary* one used in the paper: every rule body is an FO query evaluated
//! against the current instance, the result is unioned into the head relation, and
//! iteration continues until a fixpoint.  Because dense-order quantifier elimination
//! introduces no constants outside the active domain, the fixpoint is reached after
//! finitely many rounds and the output is again a finitely representable relation
//! ("closed form", \[KKR95\]); the engine nevertheless takes a configurable iteration
//! cap as a defensive bound.
//!
//! `DATALOG¬` expresses exactly the order-generic PTIME queries (Theorem 6.6); the
//! query catalog in `frdb-queries` provides the programs the paper discusses
//! (transitive closure, region connectivity, …) and cross-checks them against direct
//! polynomial-time algorithms.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

use frdb_core::fo::{CompiledQuery, EvalError, PlanCache, PlanConfig, Statistics};
use frdb_core::logic::{Formula, Term, Var};
use frdb_core::relation::{GenTuple, Instance, Relation};
use frdb_core::schema::{RelName, Schema};
use frdb_core::theory::Theory;
use std::any::Any;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::{Arc, OnceLock};

/// A literal of a rule body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Literal<A> {
    /// A (possibly negated) relation atom over an EDB or IDB predicate.
    Rel {
        /// `false` for a negated occurrence `¬R(t̅)`.
        positive: bool,
        /// The relation name.
        name: RelName,
        /// Argument terms.
        args: Vec<Term>,
    },
    /// A constraint atom of the underlying theory.
    Constraint(A),
}

impl<A> Literal<A> {
    /// A positive relation literal.
    #[must_use]
    pub fn pos(name: impl Into<RelName>, args: impl IntoIterator<Item = impl Into<Term>>) -> Self {
        Literal::Rel {
            positive: true,
            name: name.into(),
            args: args.into_iter().map(Into::into).collect(),
        }
    }

    /// A negated relation literal.
    #[must_use]
    pub fn neg(name: impl Into<RelName>, args: impl IntoIterator<Item = impl Into<Term>>) -> Self {
        Literal::Rel {
            positive: false,
            name: name.into(),
            args: args.into_iter().map(Into::into).collect(),
        }
    }

    /// A constraint literal.
    #[must_use]
    pub fn constraint(atom: A) -> Self {
        Literal::Constraint(atom)
    }
}

impl<A: fmt::Display> fmt::Display for Literal<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Rel {
                positive,
                name,
                args,
            } => {
                if !positive {
                    write!(f, "¬")?;
                }
                write!(f, "{name}(")?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Literal::Constraint(a) => write!(f, "{a}"),
        }
    }
}

/// A rule `head(vars) ← body`.
///
/// The body is either a list of literals (the syntax shown in Section 6 of the paper)
/// or, more generally, an arbitrary first-order formula over the EDB and IDB
/// predicates — the engine evaluates each rule body as an FO query anyway, and rules
/// such as the `Sweep` relation of Example 6.3 need an embedded universal quantifier
/// ("the segment between the two points is entirely in R").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rule<A> {
    /// Head predicate name.
    pub head: RelName,
    /// Head variables (the columns of the derived relation).
    pub head_vars: Vec<Var>,
    /// Body literals (empty when `formula` is used instead).
    pub body: Vec<Literal<A>>,
    /// An explicit body formula taking precedence over `body` when present.
    formula: Option<Formula<A>>,
}

impl<A: frdb_core::theory::Atom> Rule<A> {
    /// Creates a rule from body literals.
    #[must_use]
    pub fn new(
        head: impl Into<RelName>,
        head_vars: impl IntoIterator<Item = impl Into<Var>>,
        body: Vec<Literal<A>>,
    ) -> Self {
        Rule {
            head: head.into(),
            head_vars: head_vars.into_iter().map(Into::into).collect(),
            body,
            formula: None,
        }
    }

    /// Creates a rule whose body is an arbitrary FO formula (free variables not in the
    /// head are implicitly existentially quantified by the evaluation).
    #[must_use]
    pub fn from_formula(
        head: impl Into<RelName>,
        head_vars: impl IntoIterator<Item = impl Into<Var>>,
        body: Formula<A>,
    ) -> Self {
        Rule {
            head: head.into(),
            head_vars: head_vars.into_iter().map(Into::into).collect(),
            body: Vec::new(),
            formula: Some(body),
        }
    }

    /// The body as an FO formula: the conjunction of the literals with all non-head
    /// variables existentially quantified.
    #[must_use]
    pub fn body_formula(&self) -> Formula<A> {
        self.body_formula_mapped(&|_, name| name.clone())
    }

    /// Like [`Rule::body_formula`], but the relation name of each body literal
    /// is passed through `map` together with its literal index — the hook the
    /// semi-naive evaluator uses to point one positive occurrence at a delta
    /// relation.  Formula-bodied rules ignore the mapping (they are evaluated
    /// naively).
    fn body_formula_mapped(&self, map: &dyn Fn(usize, &RelName) -> RelName) -> Formula<A> {
        if let Some(f) = &self.formula {
            let head_set: BTreeSet<Var> = self.head_vars.iter().cloned().collect();
            let free: Vec<Var> = f.free_vars().difference(&head_set).cloned().collect();
            return if free.is_empty() {
                f.clone()
            } else {
                Formula::Exists(free, Box::new(f.clone()))
            };
        }
        let mut parts: Vec<Formula<A>> = Vec::with_capacity(self.body.len());
        let mut body_vars: BTreeSet<Var> = BTreeSet::new();
        for (idx, lit) in self.body.iter().enumerate() {
            match lit {
                Literal::Rel {
                    positive,
                    name,
                    args,
                } => {
                    for a in args {
                        if let Term::Var(v) = a {
                            body_vars.insert(v.clone());
                        }
                    }
                    let atom = Formula::Rel {
                        name: map(idx, name),
                        args: args.clone(),
                    };
                    parts.push(if *positive { atom } else { atom.not() });
                }
                Literal::Constraint(a) => {
                    body_vars.extend(a.vars());
                    parts.push(Formula::Atom(a.clone()));
                }
            }
        }
        let head_set: BTreeSet<Var> = self.head_vars.iter().cloned().collect();
        let quantified: Vec<Var> = body_vars.difference(&head_set).cloned().collect();
        let conj = Formula::And(parts);
        if quantified.is_empty() {
            conj
        } else {
            Formula::Exists(quantified, Box::new(conj))
        }
    }

    /// Indices of the positive body literals over one of the given intensional
    /// predicates (empty for formula-bodied rules).
    fn positive_idb_literals(&self, idb: &BTreeMap<RelName, usize>) -> Vec<usize> {
        if self.formula.is_some() {
            return Vec::new();
        }
        self.body
            .iter()
            .enumerate()
            .filter_map(|(i, lit)| match lit {
                Literal::Rel {
                    positive: true,
                    name,
                    ..
                } if idb.contains_key(name) => Some(i),
                _ => None,
            })
            .collect()
    }

    /// Whether the rule's body mentions any of the given intensional predicates
    /// at all (positively, negatively, or inside a formula body).
    fn mentions_idb(&self, idb: &BTreeMap<RelName, usize>) -> bool {
        if let Some(f) = &self.formula {
            return f.relation_names().iter().any(|n| idb.contains_key(n));
        }
        self.body.iter().any(|lit| match lit {
            Literal::Rel { name, .. } => idb.contains_key(name),
            Literal::Constraint(_) => false,
        })
    }
}

impl<A: fmt::Display> fmt::Display for Rule<A> {
    /// Prints the rule in the surface syntax the `frdb-lang` parser reads
    /// back: literal bodies as a comma-separated literal list, formula bodies
    /// (which used to print as an empty body) as the body formula itself.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.head)?;
        for (i, v) in self.head_vars.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ") ← ")?;
        if let Some(formula) = &self.formula {
            return write!(f, "{formula}");
        }
        for (i, l) in self.body.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{l}")?;
        }
        Ok(())
    }
}

/// Errors raised while evaluating a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatalogError {
    /// A rule body failed to evaluate (unknown relation, arity mismatch, …).
    Eval(EvalError),
    /// The program did not reach a fixpoint within the configured iteration cap.
    IterationLimit(usize),
    /// Two rules for the same head predicate disagree on its arity.
    InconsistentHeadArity(String),
    /// A head predicate clashes with an EDB relation of the input schema.
    HeadShadowsEdb(String),
    /// A fixpoint seed names a predicate that is not an intensional head of
    /// the program, or disagrees with the head's arity.
    SeedMismatch(String),
}

impl fmt::Display for DatalogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatalogError::Eval(e) => write!(f, "rule evaluation failed: {e}"),
            DatalogError::IterationLimit(n) => {
                write!(f, "no fixpoint reached within {n} iterations")
            }
            DatalogError::InconsistentHeadArity(r) => {
                write!(f, "rules for {r} use different head arities")
            }
            DatalogError::HeadShadowsEdb(r) => {
                write!(f, "intensional predicate {r} shadows an EDB relation")
            }
            DatalogError::SeedMismatch(r) => {
                write!(f, "seed relation {r} is not an intensional head of the program (or its arity disagrees)")
            }
        }
    }
}

impl std::error::Error for DatalogError {}

impl From<EvalError> for DatalogError {
    fn from(e: EvalError) -> Self {
        DatalogError::Eval(e)
    }
}

/// The reserved name of the per-round delta relation of an intensional
/// predicate (semi-naive evaluation only).
fn delta_name(name: &RelName) -> RelName {
    RelName::new(format!("Δ{name}"))
}

/// The canonical column variables (`c0`, `c1`, …) of an intensional predicate.
fn idb_columns(arity: usize) -> Vec<Var> {
    (0..arity).map(|i| Var::new(format!("c{i}"))).collect()
}

/// Builds the combined evaluation schema (EDB relations plus IDB predicates,
/// plus their reserved delta relations when `with_deltas`), the initial
/// instance, and the empty IDB state.  Shared by both engines so the schema
/// assembly and column-naming convention — which their iteration-parity
/// contract depends on — cannot drift apart.
fn seed_state<A: frdb_core::theory::Atom, T: Theory<A = A>>(
    edb: &Instance<T>,
    idb: &BTreeMap<RelName, usize>,
    with_deltas: bool,
) -> (Instance<T>, BTreeMap<RelName, Relation<T>>) {
    let mut schema = Schema::new();
    for (name, arity) in edb.schema().iter() {
        schema.add(name.clone(), arity);
    }
    for (name, arity) in idb {
        schema.add(name.clone(), *arity);
        if with_deltas {
            schema.add(delta_name(name), *arity);
        }
    }
    let mut current: Instance<T> = Instance::new(schema);
    for (name, rel) in edb.iter() {
        current
            .set(name.clone(), rel.clone())
            .expect("engine-declared relation");
    }
    let idb_state: BTreeMap<RelName, Relation<T>> = idb
        .iter()
        .map(|(name, arity)| (name.clone(), Relation::empty(idb_columns(*arity))))
        .collect();
    for (name, rel) in &idb_state {
        current
            .set(name.clone(), rel.clone())
            .expect("engine-declared relation");
        if with_deltas {
            current
                .set(delta_name(name), rel.clone())
                .expect("engine-declared relation");
        }
    }
    (current, idb_state)
}

/// One rule compiled onto the relational-algebra evaluator: the full body and
/// the semi-naive delta variants become reusable plans, re-evaluated against
/// the changing instance every round without re-expanding or re-planning the
/// formula.
struct CompiledRule<T: Theory> {
    head: RelName,
    full_body: CompiledQuery<T>,
    /// (idb predicate whose delta gates the variant, rewritten body plan).
    variants: Vec<(RelName, CompiledQuery<T>)>,
    mentions_idb: bool,
    has_literal_body: bool,
}

/// Everything about a program that can be compiled once and reused across
/// `run` / `run_naive` calls: per-rule plans for both engines and the
/// `Δ`-namespace scan over the rules themselves.
struct CompiledProgram<T: Theory> {
    rules: Vec<CompiledRule<T>>,
    naive_bodies: Vec<CompiledQuery<T>>,
    /// Whether any rule head or body touches the reserved `Δ` namespace
    /// (forces the naive engine; the EDB side of that check stays per-call).
    rules_touch_delta: bool,
}

/// Evaluates what one rule derives in the current round (`None` when the rule
/// has nothing to contribute this round).
fn derive_rule<T: Theory>(
    rule: &CompiledRule<T>,
    current: &Instance<T>,
    iteration: usize,
) -> Result<Option<Relation<T>>, DatalogError> {
    if iteration == 0 {
        // First round: every rule runs naively against the empty IDB.
        return Ok(Some(rule.full_body.eval(current)?));
    }
    if rule.has_literal_body && !rule.variants.is_empty() {
        // Semi-naive: one variant per positive IDB literal, gated on that
        // predicate's delta being nonempty.
        let mut acc: Option<Relation<T>> = None;
        for (gate, body) in &rule.variants {
            let gate_delta = current
                .get(&delta_name(gate))
                .expect("delta relations are declared");
            if gate_delta.is_empty() {
                continue;
            }
            let part = body.eval(current)?;
            acc = Some(match acc {
                None => part,
                Some(prev) => {
                    let part = part.rename(prev.vars().to_vec());
                    prev.union(&part)
                }
            });
        }
        return Ok(acc);
    }
    if rule.mentions_idb {
        // Formula-bodied rule over the IDB: possibly non-monotone,
        // re-evaluate (its precompiled plan) every round.
        return Ok(Some(rule.full_body.eval(current)?));
    }
    // EDB-only rule: nothing new after the first round.
    Ok(None)
}

/// Evaluates one fixpoint round's rule bodies: sequentially, or — with a
/// thread budget — across a `std::thread::scope` worker pool, one chunk of
/// rules per worker.  All bodies read the same immutable `current` instance,
/// and results come back in rule order, so the round is deterministic at any
/// thread count.
fn eval_round<T: Theory>(
    rules: &[CompiledRule<T>],
    current: &Instance<T>,
    iteration: usize,
    threads: usize,
) -> Result<Vec<Option<Relation<T>>>, DatalogError> {
    if threads <= 1 || rules.len() < 2 {
        return rules
            .iter()
            .map(|rule| derive_rule(rule, current, iteration))
            .collect();
    }
    let chunk = rules.len().div_ceil(threads);
    let parts: Vec<Result<Vec<Option<Relation<T>>>, DatalogError>> = std::thread::scope(|s| {
        let handles: Vec<_> = rules
            .chunks(chunk)
            .map(|part| {
                s.spawn(move || {
                    part.iter()
                        .map(|rule| derive_rule(rule, current, iteration))
                        .collect()
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rule worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(rules.len());
    for part in parts {
        out.extend(part?);
    }
    Ok(out)
}

/// An inflationary `DATALOG¬` program.
pub struct Program<A> {
    rules: Vec<Rule<A>>,
    max_iterations: usize,
    plan_config: PlanConfig,
    /// Rule bodies compiled once per theory and reused across `run` /
    /// `run_naive` calls (a `fixpoint` statement re-running a stored program
    /// used to re-plan every rule).  Keyed by the concrete theory through
    /// `Any`; reset by every mutation of the rule set or the configuration.
    compiled: OnceLock<Arc<dyn Any + Send + Sync>>,
}

impl<A: Clone> Clone for Program<A> {
    fn clone(&self) -> Self {
        Program {
            rules: self.rules.clone(),
            max_iterations: self.max_iterations,
            plan_config: self.plan_config,
            // The cache is shared: clones have identical rules, so the
            // compiled plans stay valid for both (mutation resets per value).
            compiled: self.compiled.clone(),
        }
    }
}

impl<A: fmt::Debug> fmt::Debug for Program<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Program")
            .field("rules", &self.rules)
            .field("max_iterations", &self.max_iterations)
            .field("plan_config", &self.plan_config)
            .field("plans_cached", &self.compiled.get().is_some())
            .finish()
    }
}

impl<A: frdb_core::theory::Atom> Default for Program<A> {
    fn default() -> Self {
        Program::new()
    }
}

impl<A: fmt::Display> fmt::Display for Program<A> {
    /// One `.`-terminated rule per line — the body of a surface-language
    /// `program name { … }` block.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for rule in &self.rules {
            writeln!(f, "{rule}.")?;
        }
        Ok(())
    }
}

/// The result of running a program: the final values of all intensional predicates.
#[derive(Debug)]
pub struct FixpointResult<T: Theory> {
    /// The combined instance (EDB relations plus the fixpoint of every IDB predicate).
    pub instance: Instance<T>,
    /// The number of iterations needed to reach the fixpoint.
    pub iterations: usize,
}

/// A per-round account of one fixpoint run (see [`Program::run_traced`]):
/// how many new tuples each head predicate derived per round, whether the
/// rule plans were served warm from the process-wide plan cache, and which
/// engine evaluated.  Rendering is deterministic — counts only, no timings —
/// so `trace p;` transcripts can be pinned by golden tests.
#[derive(Clone, Debug)]
pub struct FixpointTrace {
    /// Whether the compiled rule plans were already cached for this theory
    /// before the run (a cold run pays one compile through the plan cache).
    pub plans_warm: bool,
    /// Whether the naive engine ran (the `Δ`-name fallback) instead of the
    /// semi-naive delta engine.
    pub naive: bool,
    /// One entry per round: `(head, new tuples derived this round)` for every
    /// head predicate in name order.  The final round derives nothing — that
    /// is the convergence test.
    pub rounds: Vec<Vec<(RelName, usize)>>,
}

impl fmt::Display for FixpointTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "engine: {}, rule plans: {}",
            if self.naive { "naive" } else { "semi-naive" },
            if self.plans_warm { "warm" } else { "cold" },
        )?;
        for (i, round) in self.rounds.iter().enumerate() {
            let grown: Vec<String> = round
                .iter()
                .filter(|(_, n)| *n > 0)
                .map(|(name, n)| format!("{name} +{n}"))
                .collect();
            if grown.is_empty() {
                writeln!(f, "round {}: (no new tuples)", i + 1)?;
            } else {
                writeln!(f, "round {}: {}", i + 1, grown.join(", "))?;
            }
        }
        Ok(())
    }
}

impl<A: frdb_core::theory::Atom> Program<A> {
    /// Creates an empty program with the default iteration cap.
    #[must_use]
    pub fn new() -> Self {
        Program {
            rules: Vec::new(),
            max_iterations: 10_000,
            plan_config: PlanConfig::default(),
            compiled: OnceLock::new(),
        }
    }

    /// Creates a program from rules.
    #[must_use]
    pub fn from_rules(rules: Vec<Rule<A>>) -> Self {
        Program {
            rules,
            ..Program::new()
        }
    }

    /// Adds a rule.  Mutating the rule set invalidates the compiled-plan
    /// cache: the next `run` re-plans every body.
    pub fn add_rule(&mut self, rule: Rule<A>) -> &mut Self {
        self.rules.push(rule);
        self.compiled = OnceLock::new();
        self
    }

    /// Sets the defensive iteration cap (the paper guarantees termination for dense
    /// order; the cap protects against ill-formed theories).
    pub fn with_max_iterations(mut self, cap: usize) -> Self {
        self.max_iterations = cap;
        self
    }

    /// Sets the evaluation configuration — the optimization level rule bodies
    /// compile under, and the worker-thread budget: with `threads > 1`,
    /// independent rule bodies of each fixpoint round evaluate across a
    /// `std::thread::scope` pool (and each body's joins may partition
    /// further).  Thread count never changes the fixpoint or the iteration
    /// count.  Changing the configuration invalidates the compiled-plan
    /// cache.
    #[must_use]
    pub fn with_plan_config(mut self, config: PlanConfig) -> Self {
        self.plan_config = config;
        self.compiled = OnceLock::new();
        self
    }

    /// The evaluation configuration rule bodies compile under.
    #[must_use]
    pub fn plan_config(&self) -> &PlanConfig {
        &self.plan_config
    }

    /// Whether the compiled-plan cache is warm for theory `T` — plans are
    /// compiled on the first `run`/`run_naive` and reused by later calls
    /// until a rule is added or the configuration changes.  Observable so
    /// tests can pin the reuse-and-invalidation contract.
    #[must_use]
    pub fn plans_cached<T: Theory<A = A>>(&self) -> bool {
        self.compiled
            .get()
            .is_some_and(|c| c.clone().downcast::<CompiledProgram<T>>().is_ok())
    }

    /// The compiled plans for theory `T`, building and caching them on first
    /// use.  A cache slot occupied by a *different* theory over the same atom
    /// type stays correct: the plans are rebuilt for this call, uncached.
    ///
    /// Individual rule-body plans are compiled through the process-wide
    /// [`PlanCache`], so two programs sharing a rule body (or one program
    /// recompiled after a mutation that left some rules unchanged) share the
    /// compiled plans with each other and with the FO query path.
    fn compiled_for<T: Theory<A = A>>(
        &self,
        idb: &BTreeMap<RelName, usize>,
    ) -> Arc<CompiledProgram<T>> {
        let build = || {
            let config = self.plan_config;
            let cache = PlanCache::global();
            let rules: Vec<CompiledRule<T>> = self
                .rules
                .iter()
                .map(|rule| {
                    let variants = rule
                        .positive_idb_literals(idb)
                        .into_iter()
                        .map(|target| {
                            let gate = match &rule.body[target] {
                                Literal::Rel { name, .. } => name.clone(),
                                Literal::Constraint(_) => {
                                    unreachable!("target literal is a positive IDB literal")
                                }
                            };
                            let body = rule.body_formula_mapped(&|idx, name| {
                                if idx == target {
                                    delta_name(name)
                                } else {
                                    name.clone()
                                }
                            });
                            (gate, cache.compile::<T>(&body, &rule.head_vars, &config))
                        })
                        .collect();
                    CompiledRule {
                        head: rule.head.clone(),
                        full_body: cache.compile::<T>(
                            &rule.body_formula(),
                            &rule.head_vars,
                            &config,
                        ),
                        variants,
                        mentions_idb: rule.mentions_idb(idb),
                        has_literal_body: rule.formula.is_none(),
                    }
                })
                .collect();
            // The naive engine evaluates the same full-body plans; cloning is
            // cheap (the plan is an Arc) and halves both compile time and the
            // cached-plan footprint.
            let naive_bodies = rules.iter().map(|r| r.full_body.clone()).collect();
            let rules_touch_delta = idb.keys().any(|n| n.as_str().starts_with('Δ'))
                || self.rules.iter().any(|rule| {
                    rule.body_formula()
                        .relation_names()
                        .iter()
                        .any(|n| n.as_str().starts_with('Δ'))
                });
            Arc::new(CompiledProgram {
                rules,
                naive_bodies,
                rules_touch_delta,
            })
        };
        let entry = self
            .compiled
            .get_or_init(|| build() as Arc<dyn Any + Send + Sync>);
        match entry.clone().downcast::<CompiledProgram<T>>() {
            Ok(cached) => cached,
            Err(_) => build(),
        }
    }

    /// The rules of the program.
    #[must_use]
    pub fn rules(&self) -> &[Rule<A>] {
        &self.rules
    }

    /// The intensional (IDB) predicates with their arities.
    ///
    /// # Errors
    /// Returns an error if two rules disagree on a head arity.
    pub fn idb_schema(&self) -> Result<BTreeMap<RelName, usize>, DatalogError> {
        let mut out = BTreeMap::new();
        for rule in &self.rules {
            let arity = rule.head_vars.len();
            match out.insert(rule.head.clone(), arity) {
                Some(prev) if prev != arity => {
                    return Err(DatalogError::InconsistentHeadArity(rule.head.to_string()))
                }
                _ => {}
            }
        }
        Ok(out)
    }

    fn validated_idb(&self, edb_schema: &Schema) -> Result<BTreeMap<RelName, usize>, DatalogError> {
        let idb = self.idb_schema()?;
        for name in idb.keys() {
            if edb_schema.contains(name) {
                return Err(DatalogError::HeadShadowsEdb(name.to_string()));
            }
        }
        Ok(idb)
    }

    /// Runs the program to its inflationary fixpoint over an input instance
    /// using **semi-naive (delta) evaluation**.
    ///
    /// # Examples
    /// ```
    /// use frdb_core::prelude::*;
    /// use frdb_datalog::transitive_closure_program;
    ///
    /// // The transitive closure of a two-edge path 0 → 1 → 2.
    /// let mut edb: Instance<DenseOrder> = Instance::new(Schema::from_pairs([("edge", 2)]));
    /// edb.set(
    ///     "edge",
    ///     Relation::from_points(
    ///         vec![Var::new("x"), Var::new("y")],
    ///         vec![
    ///             vec![Rat::from_i64(0), Rat::from_i64(1)],
    ///             vec![Rat::from_i64(1), Rat::from_i64(2)],
    ///         ],
    ///     ),
    /// )
    /// .unwrap();
    /// let program = transitive_closure_program("edge", "tc");
    /// let result = program.run(&edb).unwrap();
    /// let tc = result.instance.get(&RelName::new("tc")).unwrap();
    /// assert!(tc.contains(&[Rat::from_i64(0), Rat::from_i64(2)]));
    /// ```
    ///
    /// Each round evaluates, for every rule with positive intensional body
    /// literals, one *delta variant* per such literal — the occurrence pointed
    /// at the tuples derived in the previous round (exposed in the evaluation
    /// instance under the reserved `Δ`-prefixed names), all other literals at
    /// their full current values.  Because negated literals and constraints
    /// can only *lose* satisfying tuples as the intensional relations grow,
    /// every fact newly derivable in a round uses at least one delta tuple in
    /// a positive position, so the variants find exactly the naive round's new
    /// facts: the fixpoint **and the iteration count** coincide with
    /// [`Program::run_naive`].  Rules whose body is an arbitrary formula over
    /// an intensional predicate are re-evaluated naively each round (a formula
    /// may be non-monotone in the predicate, e.g. under a universal
    /// quantifier, so delta rewriting would be unsound for them); rules that
    /// never mention an intensional predicate run only in the first round.
    ///
    /// # Errors
    /// Returns an error if a rule fails to evaluate, head arities are inconsistent, an
    /// IDB predicate shadows an EDB relation, or the iteration cap is exceeded.
    pub fn run<T: Theory<A = A>>(
        &self,
        edb: &Instance<T>,
    ) -> Result<FixpointResult<T>, DatalogError> {
        self.run_with(edb, None, None)
    }

    /// Delta-aware fixpoint **re-entry**: runs the program with the
    /// intensional predicates seeded at `seed` instead of empty — the
    /// incremental-maintenance entry point after an update to the extensional
    /// database.  The seed doubles as the first round's semi-naive delta, so
    /// rules re-fire against the seeded tuples and the changed EDB without
    /// re-deriving the seed itself; the result is the inflationary fixpoint
    /// **containing the seed**.  For a monotone program whose seed is the
    /// previous fixpoint and whose EDB only grew, that is semantically
    /// equivalent to a from-scratch run — though the DNF representation may
    /// differ in shape, which is why the database layer's exact-equality
    /// commit path re-runs from scratch and leaves re-entry to embedders that
    /// only need semantic equivalence.
    ///
    /// # Errors
    /// As for [`Program::run`]; additionally [`DatalogError::SeedMismatch`]
    /// when a seed entry is not an intensional head (or disagrees on arity).
    pub fn run_seeded<T: Theory<A = A>>(
        &self,
        edb: &Instance<T>,
        seed: &BTreeMap<RelName, Relation<T>>,
    ) -> Result<FixpointResult<T>, DatalogError> {
        self.run_with(edb, None, Some(seed))
    }

    /// [`Program::run`] with a per-round trace: the fixpoint result plus a
    /// [`FixpointTrace`] recording, for every round, how many new tuples each
    /// head predicate derived, whether the rule plans were already warm in
    /// the process-wide plan cache, and which engine ran.  The trace renders
    /// deterministically (no timings), so `trace p;` transcripts are
    /// golden-testable.
    ///
    /// # Errors
    /// As for [`Program::run`].
    pub fn run_traced<T: Theory<A = A>>(
        &self,
        edb: &Instance<T>,
    ) -> Result<(FixpointResult<T>, FixpointTrace), DatalogError> {
        let mut trace = FixpointTrace {
            plans_warm: self.plans_cached::<T>(),
            naive: false,
            rounds: Vec::new(),
        };
        let result = self.run_with(edb, Some(&mut trace), None)?;
        Ok((result, trace))
    }

    /// Overlays a fixpoint seed onto the freshly seeded evaluation state:
    /// validates every entry against the IDB schema, renames it onto the
    /// engine's canonical columns, and installs it as both the predicate's
    /// starting value and (when the deltas exist) its first-round delta.
    fn apply_seed<T: Theory<A = A>>(
        seed: &BTreeMap<RelName, Relation<T>>,
        idb: &BTreeMap<RelName, usize>,
        current: &mut Instance<T>,
        idb_state: &mut BTreeMap<RelName, Relation<T>>,
        with_deltas: bool,
    ) -> Result<(), DatalogError> {
        for (name, rel) in seed {
            let Some(&arity) = idb.get(name) else {
                return Err(DatalogError::SeedMismatch(name.to_string()));
            };
            if rel.arity() != arity {
                return Err(DatalogError::SeedMismatch(name.to_string()));
            }
            let seeded = rel.rename(idb_columns(arity));
            idb_state.insert(name.clone(), seeded.clone());
            current
                .set(name.clone(), seeded.clone())
                .expect("engine-declared relation");
            if with_deltas {
                current
                    .set(delta_name(name), seeded)
                    .expect("engine-declared relation");
            }
        }
        Ok(())
    }

    fn run_with<T: Theory<A = A>>(
        &self,
        edb: &Instance<T>,
        mut trace: Option<&mut FixpointTrace>,
        seed: Option<&BTreeMap<RelName, Relation<T>>>,
    ) -> Result<FixpointResult<T>, DatalogError> {
        let idb = self.validated_idb(edb.schema())?;
        // Compiled once per program and theory, reused across `run` calls
        // (the plans re-evaluate against the changing instance every round;
        // nothing is re-planned per call, let alone per iteration).
        let compiled = self.compiled_for::<T>(&idb);
        // The delta namespace is reserved; a `Δ`-prefixed name anywhere — an
        // IDB head, an EDB relation, or a reference inside any rule body —
        // could collide with the engine's internal delta relations, so fall
        // back to the naive engine (which has no reserved names and therefore
        // reports the same result or error a user would expect for them).
        if compiled.rules_touch_delta
            || edb
                .schema()
                .iter()
                .any(|(n, _)| n.as_str().starts_with('Δ'))
        {
            if let Some(t) = trace.as_deref_mut() {
                t.naive = true;
            }
            return self.run_naive_with(edb, trace, seed);
        }
        // Evaluation schema and state: EDB relations, IDB predicates, and
        // their deltas (initially empty, like the IDB itself — unless seeded
        // for a re-entrant run, in which case the seed is the first delta).
        let (mut current, mut idb_state) = seed_state(edb, &idb, true);
        if let Some(seed) = seed {
            Self::apply_seed(seed, &idb, &mut current, &mut idb_state, true)?;
        }

        // Re-optimize the cached plans once per run against statistics of the
        // seeded instance (cheap plan rewriting — the source formulas are not
        // touched).  IDB relations start empty, so their operands sort first,
        // which is exactly where the semi-naive deltas want them.
        let statistics = Statistics::collect(&current);
        // Budget split: when the round itself fans rules out across workers,
        // each body evaluates serially inside its worker — otherwise N rule
        // workers each spawning N join workers would oversubscribe to N².
        let threads = self.plan_config.threads.max(1);
        let body_threads = if threads > 1 && compiled.rules.len() >= 2 {
            1
        } else {
            threads
        };
        let rules: Vec<CompiledRule<T>> = compiled
            .rules
            .iter()
            .map(|rule| CompiledRule {
                head: rule.head.clone(),
                full_body: rule
                    .full_body
                    .optimized_for(&statistics)
                    .with_threads(body_threads),
                variants: rule
                    .variants
                    .iter()
                    .map(|(gate, body)| {
                        (
                            gate.clone(),
                            body.optimized_for(&statistics).with_threads(body_threads),
                        )
                    })
                    .collect(),
                mentions_idb: rule.mentions_idb,
                has_literal_body: rule.has_literal_body,
            })
            .collect();
        for iteration in 0..self.max_iterations {
            let mut changed = false;
            let mut next_state = idb_state.clone();
            let mut next_delta: BTreeMap<RelName, Vec<GenTuple<A>>> =
                idb.keys().map(|n| (n.clone(), Vec::new())).collect();
            // Every rule body of a round reads the same `current` instance,
            // so the evaluations are independent: with a thread budget they
            // run on a scoped worker pool, merged below in rule order (the
            // fixpoint and iteration count are identical at any count).
            let derived_per_rule: Vec<Option<Relation<T>>> =
                eval_round(&rules, &current, iteration, threads)?;
            for (rule, derived) in rules.iter().zip(derived_per_rule) {
                let Some(derived) = derived else { continue };
                let existing = next_state
                    .get(&rule.head)
                    .expect("idb_schema lists every head predicate")
                    .clone();
                let derived = derived.rename(existing.vars().to_vec());
                // Inflationary semantics: keep only the genuinely new tuples.
                let fresh: Vec<GenTuple<A>> = derived
                    .tuples()
                    .iter()
                    .filter(|t| !existing.covers_tuple(t))
                    .cloned()
                    .collect();
                if fresh.is_empty() {
                    continue;
                }
                changed = true;
                let fresh_rel = Relation::new(existing.vars().to_vec(), fresh.clone());
                next_state.insert(rule.head.clone(), existing.union(&fresh_rel));
                next_delta
                    .get_mut(&rule.head)
                    .expect("initialized for every head")
                    .extend(fresh);
            }
            if let Some(t) = trace.as_deref_mut() {
                t.rounds.push(
                    idb.keys()
                        .map(|name| (name.clone(), next_delta.get(name).map_or(0, Vec::len)))
                        .collect(),
                );
            }
            idb_state = next_state;
            for (name, rel) in &idb_state {
                current
                    .set(name.clone(), rel.clone())
                    .expect("engine-declared relation");
            }
            for (name, arity) in &idb {
                let tuples = next_delta.remove(name).unwrap_or_default();
                let delta_rel = Relation::new(idb_columns(*arity), tuples);
                current
                    .set(delta_name(name), delta_rel)
                    .expect("engine-declared relation");
            }
            if !changed {
                // Return a clean instance without the reserved delta relations.
                let mut out_schema = Schema::new();
                for (name, arity) in edb.schema().iter() {
                    out_schema.add(name.clone(), arity);
                }
                for (name, arity) in &idb {
                    out_schema.add(name.clone(), *arity);
                }
                let mut out = Instance::new(out_schema);
                for (name, rel) in edb.iter() {
                    out.set(name.clone(), rel.clone())
                        .expect("engine-declared relation");
                }
                for (name, rel) in &idb_state {
                    out.set(name.clone(), rel.clone())
                        .expect("engine-declared relation");
                }
                return Ok(FixpointResult {
                    instance: out,
                    iterations: iteration + 1,
                });
            }
        }
        Err(DatalogError::IterationLimit(self.max_iterations))
    }

    /// Runs the program to its inflationary fixpoint by **naive re-evaluation**
    /// — every rule body against the full current instance, every round.
    ///
    /// Retained as the semantics baseline: [`Program::run`] must produce the
    /// same fixpoint in the same number of iterations, and the benchmark
    /// harness measures the speedup of the delta engine against this path.
    ///
    /// # Errors
    /// As for [`Program::run`].
    pub fn run_naive<T: Theory<A = A>>(
        &self,
        edb: &Instance<T>,
    ) -> Result<FixpointResult<T>, DatalogError> {
        self.run_naive_with(edb, None, None)
    }

    fn run_naive_with<T: Theory<A = A>>(
        &self,
        edb: &Instance<T>,
        mut trace: Option<&mut FixpointTrace>,
        seed: Option<&BTreeMap<RelName, Relation<T>>>,
    ) -> Result<FixpointResult<T>, DatalogError> {
        let idb = self.validated_idb(edb.schema())?;
        // Combined schema and state: EDB relations plus IDB predicates.
        let (mut current, mut idb_state) = seed_state(edb, &idb, false);
        if let Some(seed) = seed {
            Self::apply_seed(seed, &idb, &mut current, &mut idb_state, false)?;
        }

        // Bodies are planned once per program and theory and cached across
        // calls (the "naive" in naive evaluation is the full re-evaluation
        // every round, not re-compilation).
        let compiled = self.compiled_for::<T>(&idb);
        let bodies = &compiled.naive_bodies;
        for iteration in 0..self.max_iterations {
            let mut changed = false;
            let mut next_state = idb_state.clone();
            for (rule, body) in self.rules.iter().zip(bodies) {
                let delta = body.eval(&current)?;
                let existing = next_state
                    .get(&rule.head)
                    .expect("idb_schema lists every head predicate")
                    .clone();
                let delta = delta.rename(existing.vars().to_vec());
                // Inflationary semantics: the head only grows, so the fixpoint test
                // reduces to `delta ⊆ old`.
                if delta.subset_of(&existing) {
                    continue;
                }
                changed = true;
                next_state.insert(rule.head.clone(), existing.union(&delta));
            }
            if let Some(t) = trace.as_deref_mut() {
                // The naive engine has no per-rule deltas; record each head's
                // tuple-count growth this round (absorption can shrink a
                // union, hence the saturation).
                t.rounds.push(
                    idb.keys()
                        .map(|name| {
                            let grown = next_state.get(name).map_or(0, Relation::num_tuples);
                            let had = idb_state.get(name).map_or(0, Relation::num_tuples);
                            (name.clone(), grown.saturating_sub(had))
                        })
                        .collect(),
                );
            }
            idb_state = next_state;
            for (name, rel) in &idb_state {
                current
                    .set(name.clone(), rel.clone())
                    .expect("engine-declared relation");
            }
            if !changed {
                return Ok(FixpointResult {
                    instance: current,
                    iterations: iteration + 1,
                });
            }
        }
        Err(DatalogError::IterationLimit(self.max_iterations))
    }

    /// Runs the program and returns the fixpoint value of one predicate.
    ///
    /// # Errors
    /// As for [`Program::run`]; additionally if the predicate is unknown.
    pub fn run_for<T: Theory<A = A>>(
        &self,
        edb: &Instance<T>,
        answer: &RelName,
    ) -> Result<Relation<T>, DatalogError> {
        let result = self.run(edb)?;
        result
            .instance
            .get(answer)
            .ok_or_else(|| DatalogError::Eval(EvalError::UnknownRelation(answer.to_string())))
    }
}

/// Builds the classical transitive-closure program over a binary EDB relation `edge`:
///
/// ```text
/// tc(x, y) ← edge(x, y)
/// tc(x, y) ← tc(x, z), edge(z, y)
/// ```
#[must_use]
pub fn transitive_closure_program(
    edge: impl Into<RelName>,
    tc: impl Into<RelName>,
) -> Program<frdb_core::dense::DenseAtom> {
    let edge = edge.into();
    let tc = tc.into();
    let x = || Term::var("x");
    let y = || Term::var("y");
    let z = || Term::var("z");
    Program::from_rules(vec![
        Rule::new(
            tc.clone(),
            ["x", "y"],
            vec![Literal::pos(edge.clone(), [x(), y()])],
        ),
        Rule::new(
            tc.clone(),
            ["x", "y"],
            vec![Literal::pos(tc, [x(), z()]), Literal::pos(edge, [z(), y()])],
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use frdb_core::dense::{DenseAtom, DenseOrder};
    use frdb_core::fo::{eval_query, eval_sentence};
    use frdb_num::Rat;

    fn r(v: i64) -> Rat {
        Rat::from_i64(v)
    }

    fn path_graph(n: i64) -> Instance<DenseOrder> {
        // edge = {(i, i+1) | 0 ≤ i < n}
        let schema = Schema::from_pairs([("edge", 2)]);
        let mut inst = Instance::new(schema);
        let points: Vec<Vec<Rat>> = (0..n).map(|i| vec![r(i), r(i + 1)]).collect();
        inst.set(
            "edge",
            Relation::from_points(vec![Var::new("x"), Var::new("y")], points),
        )
        .unwrap();
        inst
    }

    #[test]
    fn transitive_closure_of_a_path() {
        let inst = path_graph(5);
        let program = transitive_closure_program("edge", "tc");
        let tc = program.run_for(&inst, &RelName::new("tc")).unwrap();
        for i in 0..=5i64 {
            for j in 0..=5i64 {
                assert_eq!(tc.contains(&[r(i), r(j)]), i < j, "tc({i},{j})");
            }
        }
    }

    #[test]
    fn fixpoint_iteration_count_is_reported() {
        let inst = path_graph(6);
        let program = transitive_closure_program("edge", "tc");
        let result = program.run(&inst).unwrap();
        // A path of length 6 needs several rounds plus one quiescent round.
        assert!(result.iterations >= 3);
    }

    #[test]
    fn semi_naive_pins_iteration_count_on_path_closure() {
        // The linear tc rule extends paths by one edge per round: a path with n
        // edges needs n productive rounds plus the quiescent one, and the
        // semi-naive engine must take exactly as many rounds as the naive one.
        for n in [1i64, 2, 4, 5] {
            let inst = path_graph(n);
            let program = transitive_closure_program("edge", "tc");
            let semi = program.run(&inst).unwrap();
            let naive = program.run_naive(&inst).unwrap();
            assert_eq!(semi.iterations, naive.iterations, "path({n})");
            assert_eq!(semi.iterations as i64, n + 1, "path({n})");
        }
    }

    #[test]
    fn seeded_reentry_matches_from_scratch_semantically() {
        // Close a 5-path, then extend the graph by one edge and re-enter the
        // fixpoint from the previous closure: the result must be semantically
        // the closure of the grown graph, in fewer rounds than from scratch.
        let before = path_graph(5);
        let program = transitive_closure_program("edge", "tc");
        let tc_name = RelName::new("tc");
        let old = program.run(&before).unwrap();
        let seed: BTreeMap<RelName, Relation<DenseOrder>> =
            [(tc_name.clone(), old.instance.get(&tc_name).unwrap())]
                .into_iter()
                .collect();

        let after = path_graph(6);
        let scratch = program.run(&after).unwrap();
        let seeded = program.run_seeded(&after, &seed).unwrap();
        assert!(seeded
            .instance
            .get(&tc_name)
            .unwrap()
            .equivalent(&scratch.instance.get(&tc_name).unwrap()));
        assert!(
            seeded.iterations < scratch.iterations,
            "re-entry took {} rounds, from scratch {}",
            seeded.iterations,
            scratch.iterations
        );
    }

    #[test]
    fn empty_seed_matches_unseeded_run_exactly() {
        let inst = path_graph(4);
        let program = transitive_closure_program("edge", "tc");
        let plain = program.run(&inst).unwrap();
        let seeded = program.run_seeded(&inst, &BTreeMap::new()).unwrap();
        assert_eq!(plain.iterations, seeded.iterations);
        let tc = RelName::new("tc");
        assert_eq!(
            plain.instance.get(&tc).unwrap().to_dnf(),
            seeded.instance.get(&tc).unwrap().to_dnf(),
            "an empty seed must not perturb the run"
        );
    }

    #[test]
    fn seed_mismatch_is_a_typed_error() {
        let inst = path_graph(3);
        let program = transitive_closure_program("edge", "tc");
        let bogus_name: BTreeMap<RelName, Relation<DenseOrder>> = [(
            RelName::new("nosuch"),
            Relation::empty(vec![Var::new("c0"), Var::new("c1")]),
        )]
        .into_iter()
        .collect();
        assert_eq!(
            program.run_seeded(&inst, &bogus_name).unwrap_err(),
            DatalogError::SeedMismatch("nosuch".to_string())
        );
        let bogus_arity: BTreeMap<RelName, Relation<DenseOrder>> =
            [(RelName::new("tc"), Relation::empty(vec![Var::new("c0")]))]
                .into_iter()
                .collect();
        assert_eq!(
            program.run_seeded(&inst, &bogus_arity).unwrap_err(),
            DatalogError::SeedMismatch("tc".to_string())
        );
    }

    #[test]
    fn semi_naive_matches_naive_fixpoint_with_negation_and_constraints() {
        // A program mixing positive recursion, negation over an IDB predicate
        // and a constraint literal: the two engines must agree on every
        // intensional relation and on the round count.
        let mut inst = path_graph(4);
        let mut schema = Schema::from_pairs([("edge", 2), ("node", 1)]);
        schema.add("node", 1);
        let mut inst2 = Instance::new(schema);
        inst2
            .set("edge", inst.get(&RelName::new("edge")).unwrap())
            .unwrap();
        let nodes: Vec<Vec<Rat>> = (0..=4).chain(20..=21).map(|i| vec![r(i)]).collect();
        inst2
            .set("node", Relation::from_points(vec![Var::new("x")], nodes))
            .unwrap();
        inst = inst2;

        let mut program = transitive_closure_program("edge", "tc");
        program.add_rule(Rule::new(
            "reach0",
            ["x"],
            vec![Literal::pos("tc", [Term::cst(0), Term::var("x")])],
        ));
        program.add_rule(Rule::new(
            "far",
            ["x"],
            vec![
                Literal::pos("node", [Term::var("x")]),
                Literal::neg("reach0", [Term::var("x")]),
                Literal::constraint(DenseAtom::lt(Term::cst(1), Term::var("x"))),
            ],
        ));
        let semi = program.run(&inst).unwrap();
        let naive = program.run_naive(&inst).unwrap();
        assert_eq!(semi.iterations, naive.iterations);
        for name in ["tc", "reach0", "far"] {
            let a = semi.instance.get(&RelName::new(name)).unwrap();
            let b = naive.instance.get(&RelName::new(name)).unwrap();
            let b = b.rename(a.vars().to_vec());
            assert!(a.equivalent(&b), "fixpoints differ on {name}");
        }
    }

    #[test]
    fn semi_naive_handles_formula_bodied_rules() {
        // A formula-bodied rule over an IDB predicate is re-evaluated naively
        // inside the semi-naive engine; results must still agree.
        let inst = path_graph(3);
        let mut program = transitive_closure_program("edge", "tc");
        program.add_rule(Rule::from_formula(
            "has_succ",
            ["x"],
            Formula::exists(
                ["y"],
                Formula::<DenseAtom>::rel("tc", [Term::var("x"), Term::var("y")]),
            ),
        ));
        let semi = program.run(&inst).unwrap();
        let naive = program.run_naive(&inst).unwrap();
        assert_eq!(semi.iterations, naive.iterations);
        let a = semi.instance.get(&RelName::new("has_succ")).unwrap();
        let b = naive.instance.get(&RelName::new("has_succ")).unwrap();
        assert!(a.equivalent(&b.rename(a.vars().to_vec())));
        assert!(a.contains(&[r(0)]));
        assert!(!a.contains(&[r(3)]));
    }

    #[test]
    fn negation_in_bodies() {
        // unreachable-from-0 nodes of the vertex set: node(x) ∧ ¬tc0(x)
        // where tc0(x) ← tc(0, x) and tc is the closure of edge.
        let mut inst = path_graph(3);
        // add isolated vertices 10, 11 to the vertex relation
        let mut schema = Schema::from_pairs([("edge", 2), ("node", 1)]);
        schema.add("node", 1);
        let mut inst2 = Instance::new(schema);
        inst2
            .set("edge", inst.get(&RelName::new("edge")).unwrap())
            .unwrap();
        let nodes: Vec<Vec<Rat>> = (0..=3).chain(10..=11).map(|i| vec![r(i)]).collect();
        inst2
            .set("node", Relation::from_points(vec![Var::new("x")], nodes))
            .unwrap();
        inst = inst2;

        let mut program = transitive_closure_program("edge", "tc");
        program.add_rule(Rule::new(
            "reach0",
            ["x"],
            vec![Literal::pos("tc", [Term::cst(0), Term::var("x")])],
        ));
        program.add_rule(Rule::new(
            "isolated",
            ["x"],
            vec![
                Literal::pos("node", [Term::var("x")]),
                Literal::neg("reach0", [Term::var("x")]),
            ],
        ));
        // Note: with inflationary semantics the `isolated` rule may fire early while
        // `reach0` is still growing; re-running the body on the *final* instance is the
        // timestamp-free way to read off the intended answer (the paper's Example 6.3
        // makes the same point with its delayed connectivity check).
        let result = program.run(&inst).unwrap();
        let final_isolated = eval_query(
            &Formula::<DenseAtom>::rel("node", [Term::var("x")])
                .and(Formula::rel("reach0", [Term::var("x")]).not()),
            &[Var::new("x")],
            &result.instance,
        )
        .unwrap();
        assert!(final_isolated.contains(&[r(10)]));
        assert!(final_isolated.contains(&[r(11)]));
        assert!(!final_isolated.contains(&[r(2)]));
    }

    #[test]
    fn constraint_literals_restrict_derivations() {
        // bounded(x, y) ← edge(x, y), x < 3
        let inst = path_graph(5);
        let program = Program::from_rules(vec![Rule::new(
            "bounded",
            ["x", "y"],
            vec![
                Literal::pos("edge", [Term::var("x"), Term::var("y")]),
                Literal::constraint(DenseAtom::lt(Term::var("x"), Term::cst(3))),
            ],
        )]);
        let ans = program.run_for(&inst, &RelName::new("bounded")).unwrap();
        assert!(ans.contains(&[r(0), r(1)]));
        assert!(ans.contains(&[r(2), r(3)]));
        assert!(!ans.contains(&[r(3), r(4)]));
    }

    #[test]
    fn rules_can_derive_infinite_relations() {
        // between(x) ← edge(u, v), u < x, x < v: the open intervals spanned by edges.
        let inst = path_graph(2);
        let program = Program::from_rules(vec![Rule::new(
            "between",
            ["x"],
            vec![
                Literal::pos("edge", [Term::var("u"), Term::var("v")]),
                Literal::constraint(DenseAtom::lt(Term::var("u"), Term::var("x"))),
                Literal::constraint(DenseAtom::lt(Term::var("x"), Term::var("v"))),
            ],
        )]);
        let ans = program.run_for(&inst, &RelName::new("between")).unwrap();
        assert!(ans.contains(&["1/2".parse().unwrap()]));
        assert!(ans.contains(&["3/2".parse().unwrap()]));
        assert!(!ans.contains(&[r(2)]));
    }

    #[test]
    fn reserved_delta_names_fall_back_to_naive() {
        // A rule body referencing a Δ-prefixed relation must behave exactly
        // like the naive engine (here: an unknown-relation error), never read
        // the semi-naive engine's internal delta state.
        let inst = path_graph(2);
        let mut program = transitive_closure_program("edge", "tc");
        program.add_rule(Rule::new(
            "p",
            ["x", "y"],
            vec![Literal::pos("Δtc", [Term::var("x"), Term::var("y")])],
        ));
        let semi = program.run(&inst);
        let naive = program.run_naive(&inst);
        assert!(matches!(semi, Err(DatalogError::Eval(_))));
        assert!(matches!(naive, Err(DatalogError::Eval(_))));

        // A Δ-prefixed EDB relation also routes through the naive engine and
        // still computes the right fixpoint.
        let mut inst2: Instance<DenseOrder> = Instance::new(Schema::from_pairs([("Δedge", 2)]));
        inst2
            .set(
                "Δedge",
                Relation::from_points(vec![Var::new("x"), Var::new("y")], vec![vec![r(1), r(2)]]),
            )
            .unwrap();
        let p2 = transitive_closure_program("Δedge", "tc");
        let tc = p2.run_for(&inst2, &RelName::new("tc")).unwrap();
        assert!(tc.contains(&[r(1), r(2)]));
    }

    #[test]
    fn errors_are_surfaced() {
        let inst = path_graph(2);
        // Head shadowing an EDB relation.
        let bad = Program::<DenseAtom>::from_rules(vec![Rule::new(
            "edge",
            ["x", "y"],
            vec![Literal::pos("edge", [Term::var("x"), Term::var("y")])],
        )]);
        assert!(matches!(
            bad.run(&inst),
            Err(DatalogError::HeadShadowsEdb(_))
        ));
        // Inconsistent arities.
        let bad2 = Program::<DenseAtom>::from_rules(vec![
            Rule::new(
                "p",
                ["x"],
                vec![Literal::pos("edge", [Term::var("x"), Term::var("y")])],
            ),
            Rule::new(
                "p",
                ["x", "y"],
                vec![Literal::pos("edge", [Term::var("x"), Term::var("y")])],
            ),
        ]);
        assert!(matches!(
            bad2.run(&inst),
            Err(DatalogError::InconsistentHeadArity(_))
        ));
        // Unknown EDB relation inside a body.
        let bad3 = Program::<DenseAtom>::from_rules(vec![Rule::new(
            "p",
            ["x"],
            vec![Literal::pos("ghost", [Term::var("x")])],
        )]);
        assert!(matches!(bad3.run(&inst), Err(DatalogError::Eval(_))));
    }

    #[test]
    fn compiled_plans_are_cached_across_runs_and_invalidated_on_mutation() {
        // Regression: a stored program re-run by a `fixpoint` statement used
        // to re-plan every rule body on each call.  Plans must now compile on
        // the first run, be reused by later runs, and be dropped the moment
        // the rule set changes (a stale cache would silently evaluate the old
        // program).
        let inst = path_graph(3);
        let mut program = transitive_closure_program("edge", "tc");
        assert!(!program.plans_cached::<DenseOrder>());
        let first = program.run(&inst).unwrap();
        assert!(program.plans_cached::<DenseOrder>());
        let second = program.run(&inst).unwrap();
        assert_eq!(first.iterations, second.iterations);
        // A clone shares the warm cache (same rules, same plans).
        let cloned = program.clone();
        assert!(cloned.plans_cached::<DenseOrder>());
        // Mutation invalidates: the added rule must be part of the next run.
        program.add_rule(Rule::new(
            "reach0",
            ["x"],
            vec![Literal::pos("tc", [Term::cst(0), Term::var("x")])],
        ));
        assert!(!program.plans_cached::<DenseOrder>());
        let third = program.run(&inst).unwrap();
        assert!(third
            .instance
            .get(&RelName::new("reach0"))
            .unwrap()
            .contains(&[r(3)]));
        // run_naive shares the same cache.
        let naive = program.run_naive(&inst).unwrap();
        assert_eq!(third.iterations, naive.iterations);
    }

    #[test]
    fn parallel_rule_evaluation_matches_serial_fixpoints() {
        // The worker-pool round evaluation must reproduce the serial engine's
        // fixpoint and iteration count exactly, at any thread count.
        use frdb_core::fo::PlanConfig;
        let mut inst = path_graph(4);
        let mut schema = Schema::from_pairs([("edge", 2), ("node", 1)]);
        schema.add("node", 1);
        let mut inst2 = Instance::new(schema);
        inst2
            .set("edge", inst.get(&RelName::new("edge")).unwrap())
            .unwrap();
        let nodes: Vec<Vec<Rat>> = (0..=4).chain(20..=21).map(|i| vec![r(i)]).collect();
        inst2
            .set("node", Relation::from_points(vec![Var::new("x")], nodes))
            .unwrap();
        inst = inst2;
        let base = {
            let mut p = transitive_closure_program("edge", "tc");
            p.add_rule(Rule::new(
                "reach0",
                ["x"],
                vec![Literal::pos("tc", [Term::cst(0), Term::var("x")])],
            ));
            p.add_rule(Rule::new(
                "far",
                ["x"],
                vec![
                    Literal::pos("node", [Term::var("x")]),
                    Literal::neg("reach0", [Term::var("x")]),
                    Literal::constraint(DenseAtom::lt(Term::cst(1), Term::var("x"))),
                ],
            ));
            p
        };
        let serial = base.run(&inst).unwrap();
        for threads in [2usize, 4] {
            let parallel = base.clone().with_plan_config(PlanConfig {
                threads,
                ..PlanConfig::default()
            });
            let result = parallel.run(&inst).unwrap();
            assert_eq!(serial.iterations, result.iterations, "threads={threads}");
            for name in ["tc", "reach0", "far"] {
                let a = serial.instance.get(&RelName::new(name)).unwrap();
                let b = result.instance.get(&RelName::new(name)).unwrap();
                assert!(
                    a.equivalent(&b.rename(a.vars().to_vec())),
                    "threads={threads}: fixpoints differ on {name}"
                );
            }
        }
    }

    #[test]
    fn interval_edb_fixpoint_is_thread_invariant() {
        // Interval-valued edges drive the rule bodies through the index-sweep
        // join path (no column is pinned, every column carries an envelope);
        // the fixpoint must agree with the serial engine at 2 and 4 threads.
        use frdb_core::fo::PlanConfig;
        use frdb_core::relation::GenTuple;
        let tuples = (0..12i64)
            .map(|i| {
                GenTuple::new(vec![
                    DenseAtom::le(Term::cst(i), Term::var("x")),
                    DenseAtom::le(Term::var("x"), Term::cst(i + 2)),
                    DenseAtom::le(Term::cst(i + 1), Term::var("y")),
                    DenseAtom::le(Term::var("y"), Term::cst(i + 3)),
                ])
            })
            .collect();
        let edge = Relation::new(vec![Var::new("x"), Var::new("y")], tuples);
        let mut inst: Instance<DenseOrder> = Instance::new(Schema::from_pairs([("edge", 2)]));
        inst.set("edge", edge).unwrap();
        let program = transitive_closure_program("edge", "tc");
        let serial = program.run(&inst).unwrap();
        for threads in [2usize, 4] {
            let parallel = program.clone().with_plan_config(PlanConfig {
                threads,
                ..PlanConfig::default()
            });
            let result = parallel.run(&inst).unwrap();
            assert_eq!(serial.iterations, result.iterations, "threads={threads}");
            let a = serial.instance.get(&RelName::new("tc")).unwrap();
            let b = result.instance.get(&RelName::new("tc")).unwrap();
            assert!(
                a.equivalent(&b.rename(a.vars().to_vec())),
                "threads={threads}: interval fixpoints differ on tc"
            );
        }
    }

    #[test]
    fn boolean_answers_via_sentences_on_the_fixpoint() {
        // The path graph is connected from 0 to 5: tc(0, 5) holds.
        let inst = path_graph(5);
        let program = transitive_closure_program("edge", "tc");
        let result = program.run(&inst).unwrap();
        let reachable: Formula<DenseAtom> = Formula::rel("tc", [Term::cst(0), Term::cst(5)]);
        assert!(eval_sentence(&reachable, &result.instance).unwrap());
        let not_reachable: Formula<DenseAtom> = Formula::rel("tc", [Term::cst(5), Term::cst(0)]);
        assert!(!eval_sentence(&not_reachable, &result.instance).unwrap());
    }
}
