//! Plan-optimizer comparison (PR 5): the cost-guided optimizer and the
//! parallel executor against the unoptimized serial evaluator of PR 2, on
//! join workloads whose *written* conjunct order is poor.
//!
//! Four configurations per workload:
//!
//! * `unopt`        — `OptLevel::None`, serial: the PR 2 syntactic-order plan.
//! * `opt`          — the default cost-guided plan, serial.
//! * `opt-2threads` / `opt-4threads` — the optimized plan with the evaluator's
//!   worker pool enabled (joins/projections partition their tuples; results
//!   are bit-identical to serial, so this measures pure scheduling).
//!
//! Workloads (every query re-optimized against the instance's statistics, as
//! the CLI's `run`/`explain` path does):
//!
//! * **chain joins** — the zigzag (cross-product-first three-hop) on the
//!   0→1→…→n chain, and the three-hop chain with a trailing selection.
//! * **Fig. 3 region joins** — the zigzag over the staircase region of the
//!   majority reduction (no pinned columns: the optimizer works from shared
//!   columns alone).
//! * **zigzag (new catalog entry)** — the same shape on random finite graphs.
//! * **two-hop / three-hop chains and iff-shadow** — regression guards: the
//!   optimizer finds nothing to improve and must not cost more than noise.
//!
//! Results are written as JSON to `target/frdb-bench/` and snapshotted in
//! `BENCH_PR5.json` (uploaded as a CI artifact).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use frdb_core::dense::{DenseAtom, DenseOrder};
use frdb_core::fo::{compile_query_with, CompiledQuery, PlanConfig, Statistics};
use frdb_core::logic::{Formula, Term, Var};
use frdb_core::relation::{Instance, Relation};
use frdb_num::Rat;
use frdb_queries::catalog::{iff_shadow_query, three_hop_query, two_hop_query, zigzag_query};
use frdb_queries::reductions::{boolean_vector, majority_to_connectivity};
use frdb_queries::workload::{random_graph, single_relation_instance};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn v(name: &str) -> Var {
    Var::new(name)
}

/// The chain `0 → 1 → … → n` as a finite binary relation.
fn chain_instance(n: usize) -> Instance<DenseOrder> {
    let points: Vec<Vec<Rat>> = (0..n as i64)
        .map(|i| vec![Rat::from_i64(i), Rat::from_i64(i + 1)])
        .collect();
    single_relation_instance("S", Relation::from_points(vec![v("x"), v("y")], points))
}

/// A random finite graph under the catalog's `S` schema.
fn graph_instance(n: usize) -> Instance<DenseOrder> {
    let mut rng = StdRng::seed_from_u64(n as u64 + 3);
    single_relation_instance("S", random_graph(&mut rng, n, 2 * n))
}

/// The Fig. 3 staircase region of the majority reduction as `S`.
fn fig3_region_as_s(n: usize) -> Instance<DenseOrder> {
    let region = majority_to_connectivity(&boolean_vector(n, n / 2 + 1));
    single_relation_instance("S", region.rename(vec![v("x"), v("y")]))
}

/// Three-hop chain with a trailing selection on the *last* join variable —
/// the shape selection placement moves to the fold position that binds it.
fn three_hop_bounded(bound: i64) -> Formula<DenseAtom> {
    Formula::exists(
        ["y", "z"],
        Formula::conj([
            Formula::rel("S", [Term::var("x"), Term::var("y")]),
            Formula::rel("S", [Term::var("y"), Term::var("z")]),
            Formula::rel("S", [Term::var("z"), Term::var("w")]),
            Formula::Atom(DenseAtom::le(Term::var("w"), Term::cst(bound))),
        ]),
    )
}

/// Compiles under `config` and re-optimizes against the instance statistics —
/// the exact pipeline the CLI's `run` statement executes.
fn prepare(
    query: &Formula<DenseAtom>,
    free: &[Var],
    config: &PlanConfig,
    inst: &Instance<DenseOrder>,
) -> CompiledQuery<DenseOrder> {
    compile_query_with::<DenseOrder>(query, free, config).optimized_for(&Statistics::collect(inst))
}

/// Benchmarks one query across instance sizes under the four configurations.
fn compare(
    c: &mut Criterion,
    group_name: &str,
    sizes: &[usize],
    make_instance: fn(usize) -> Instance<DenseOrder>,
    query: &Formula<DenseAtom>,
    free: &[Var],
) {
    let mut group = c.benchmark_group(group_name);
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let configs: [(&str, PlanConfig); 4] = [
        ("unopt", PlanConfig::baseline()),
        ("opt", PlanConfig::default()),
        (
            "opt-2threads",
            PlanConfig {
                threads: 2,
                ..PlanConfig::default()
            },
        ),
        (
            "opt-4threads",
            PlanConfig {
                threads: 4,
                ..PlanConfig::default()
            },
        ),
    ];
    for &n in sizes {
        let inst = make_instance(n);
        for (label, config) in &configs {
            let compiled = prepare(query, free, config, &inst);
            group.bench_with_input(BenchmarkId::new(*label, n), &n, |b, _| {
                b.iter(|| compiled.eval(&inst).unwrap())
            });
        }
    }
    group.finish();
}

fn bench_zigzag_chain(c: &mut Criterion) {
    compare(
        c,
        "PR5_optimizer_zigzag_chain",
        &[8, 16, 32],
        chain_instance,
        &zigzag_query(),
        &[v("x"), v("w")],
    );
}

fn bench_three_hop_bounded_chain(c: &mut Criterion) {
    compare(
        c,
        "PR5_optimizer_three_hop_bounded_chain",
        &[8, 16, 32],
        chain_instance,
        &three_hop_bounded(4),
        &[v("x"), v("w")],
    );
}

fn bench_zigzag_fig3_region(c: &mut Criterion) {
    compare(
        c,
        "PR5_optimizer_zigzag_fig3_region",
        &[2, 4, 6],
        fig3_region_as_s,
        &zigzag_query(),
        &[v("x"), v("w")],
    );
}

fn bench_zigzag_graph(c: &mut Criterion) {
    compare(
        c,
        "PR5_optimizer_zigzag_graph",
        &[6, 10, 14],
        graph_instance,
        &zigzag_query(),
        &[v("x"), v("w")],
    );
}

fn bench_two_hop_chain_regression(c: &mut Criterion) {
    compare(
        c,
        "PR5_optimizer_two_hop_chain_regression",
        &[16, 32],
        chain_instance,
        &two_hop_query(),
        &[v("x"), v("z")],
    );
}

fn bench_three_hop_chain_regression(c: &mut Criterion) {
    compare(
        c,
        "PR5_optimizer_three_hop_chain_regression",
        &[16, 32],
        chain_instance,
        &three_hop_query(),
        &[v("x"), v("w")],
    );
}

fn bench_iff_shadow_regression(c: &mut Criterion) {
    fn fig3_instance(n: usize) -> Instance<DenseOrder> {
        let region = majority_to_connectivity(&boolean_vector(n, n / 2 + 1));
        single_relation_instance("R", region.rename(vec![v("x"), v("y")]))
    }
    compare(
        c,
        "PR5_optimizer_iff_shadow_regression",
        &[2, 4],
        fig3_instance,
        &iff_shadow_query(),
        &[v("x")],
    );
}

criterion_group!(
    benches,
    bench_zigzag_chain,
    bench_three_hop_bounded_chain,
    bench_zigzag_fig3_region,
    bench_zigzag_graph,
    bench_two_hop_chain_regression,
    bench_three_hop_chain_regression,
    bench_iff_shadow_regression
);
criterion_main!(benches);
