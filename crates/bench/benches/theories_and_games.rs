//! Experiments E12, E7, E1 and E2:
//!
//! * **E12** (Section 7 table): the same satisfiability / elimination workload
//!   instantiated in the three constraint theories — dense order `FO(≤)`, linear
//!   `FO(≤,+)` and univariate polynomial constraints.  Expected shape: order is the
//!   cheapest, linear costs more (Fourier–Motzkin), polynomial constraints cost the
//!   most (Sturm sequences) — mirroring AC⁰ ⊆ NC¹ ⊆ NC.
//! * **E7** (Fig. 7): the Ehrenfeucht–Fraïssé game solver on the comb instances.
//! * **E1 / E2**: genericity checking and the convexity query.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use frdb_bench::region_relation;
use frdb_core::dense::{DenseAtom, DenseOrder};
use frdb_core::generic::Automorphism;
use frdb_core::logic::{Term, Var};
use frdb_core::theory::Theory;
use frdb_games::{comb_instance, duplicator_wins_value};
use frdb_linear::{LinAtom, LinExpr, LinearOrder};
use frdb_poly::{decompose, Poly, PolyConstraint, SignOp};
use frdb_queries::convexity::is_convex;
use frdb_queries::separation::{example_4_5_instance, line_separation};
use std::time::Duration;

/// A chain x₀ < x₁ < … < x_{n} with constant bounds, in the dense-order language.
fn order_chain(n: usize) -> Vec<DenseAtom> {
    let mut atoms = vec![DenseAtom::lt(Term::cst(0), Term::var("v0"))];
    for i in 0..n {
        atoms.push(DenseAtom::lt(
            Term::var(format!("v{i}")),
            Term::var(format!("v{}", i + 1)),
        ));
    }
    atoms.push(DenseAtom::lt(Term::var(format!("v{n}")), Term::cst(1)));
    atoms
}

/// The same chain in the linear language, with an extra additive constraint.
fn linear_chain(n: usize) -> Vec<LinAtom> {
    let mut atoms = vec![LinAtom::lt(
        LinExpr::constant(frdb_num::Rat::zero()),
        LinExpr::var("v0"),
    )];
    for i in 0..n {
        atoms.push(LinAtom::lt(
            LinExpr::var(format!("v{i}")),
            LinExpr::var(format!("v{}", i + 1)),
        ));
    }
    atoms.push(LinAtom::lt(
        LinExpr::var(format!("v{n}")).add(&LinExpr::var("v0")),
        LinExpr::constant(frdb_num::Rat::one()),
    ));
    atoms
}

fn bench_theories(c: &mut Criterion) {
    let mut group = c.benchmark_group("E12_theory_satisfiability_cost");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for n in [4usize, 8, 16] {
        let oc = order_chain(n);
        group.bench_with_input(BenchmarkId::new("dense_order", n), &n, |b, _| {
            b.iter(|| DenseOrder::satisfiable(&oc))
        });
        let lc = linear_chain(n);
        group.bench_with_input(BenchmarkId::new("linear_fm", n), &n, |b, _| {
            b.iter(|| LinearOrder::satisfiable(&lc))
        });
        // A polynomial workload of comparable size: decompose Π (x - i) ≥ 0.
        let mut poly = Poly::from_i64(&[1]);
        for i in 1..=n as i64 {
            poly = poly.mul(&Poly::new(vec![
                frdb_num::Rat::from_i64(-i),
                frdb_num::Rat::one(),
            ]));
        }
        let constraint = vec![PolyConstraint::new(poly, SignOp::Ge)];
        group.bench_with_input(BenchmarkId::new("polynomial_sturm", n), &n, |b, _| {
            b.iter(|| decompose(&constraint))
        });
    }
    group.finish();
}

fn bench_games(c: &mut Criterion) {
    let mut group = c.benchmark_group("E7_ef_games_on_combs");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for teeth in [2usize, 3] {
        let a = comb_instance(teeth, true);
        let b = comb_instance(teeth, false);
        group.bench_with_input(BenchmarkId::new("one_round", teeth), &teeth, |bch, _| {
            bch.iter(|| duplicator_wins_value(&a, &b, 1))
        });
    }
    group.finish();
}

fn bench_genericity_and_convexity(c: &mut Criterion) {
    let mut group = c.benchmark_group("E1_E2_genericity_and_convexity");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let fig1 = example_4_5_instance();
    let mu = Automorphism::example_4_5();
    group.bench_function("E1_line_separation_flip", |b| {
        b.iter(|| {
            let before = line_separation(&fig1).unwrap();
            let after = line_separation(&mu.apply_relation(&fig1)).unwrap();
            (before, after)
        })
    });
    for n in [1usize, 2, 3] {
        let region = region_relation(n);
        group.bench_with_input(BenchmarkId::new("E2_convexity", n), &n, |b, _| {
            b.iter(|| is_convex(&region).unwrap())
        });
    }
    let _ = Var::new("unused");
    group.finish();
}

criterion_group!(
    benches,
    bench_theories,
    bench_games,
    bench_genericity_and_convexity
);
criterion_main!(benches);
