//! Incremental-maintenance harness: maintain-vs-recompute commit latency for
//! a materialized view under first-class update streams, across update-batch
//! sizes and instance sizes, into `BENCH_PR10.json`.
//!
//! For each `(instance_parts, batch_parts)` cell, two databases hold the same
//! state — one committing under `MaintenanceMode::Incremental` (part-aligned
//! provenance maintenance), one under `MaintenanceMode::Recompute` (the
//! differential oracle: every refresh re-evaluates the view's plan from
//! scratch).  A writer then streams insert batches of fresh generalized
//! tuples; the measured latency is the whole commit — delta application plus
//! the refresh cascade — so the two modes differ exactly in how the view
//! refresh is computed.  The headline number is the speedup
//! `recompute_mean / incremental_mean`, which must exceed 1 on small-delta
//! workloads and grow with the instance size.
//!
//! The materialized view is a *selective* join — `watch(x, y) := base(x, y)
//! and aux(x)` with `aux` a fixed watch window at the low end of the line —
//! the workload incremental maintenance exists for: the answer stays small
//! while the stream lands outside the window, so recompute pays a full join
//! over all stored parts per commit while maintenance evaluates only the
//! delta parts.  (Correctness over *arbitrary* view shapes and update mixes
//! is pinned separately by `crates/db/tests/ivm_differential.rs`.)
//!
//! Configuration (environment):
//!
//! * `FRDB_IVM_SIZES` — comma-separated base-relation part counts
//!   (default `32,128,512`).
//! * `FRDB_IVM_BATCHES` — comma-separated parts-per-insert batch sizes
//!   (default `1,4,16`).
//! * `FRDB_IVM_ROUNDS` — measured insert rounds per cell (default 20).
//! * `FRDB_IVM_OUT` — output path (default `BENCH_PR10.json` in the
//!   workspace root).
//!
//! CI runs the smoke configuration `FRDB_IVM_SIZES=16,64 FRDB_IVM_BATCHES=1,4
//! FRDB_IVM_ROUNDS=5`.

use frdb_core::dense::{DenseAtom, DenseOrder};
use frdb_core::logic::{Formula, Term, Var};
use frdb_core::relation::{GenTuple, Relation};
use frdb_db::{Database, DbConfig, MaintenanceMode};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Instant;

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn env_list(name: &str, default: &str) -> Vec<usize> {
    std::env::var(name)
        .unwrap_or_else(|_| default.into())
        .split(',')
        .map(|s| {
            s.trim()
                .parse()
                .unwrap_or_else(|_| panic!("{name}: integers"))
        })
        .collect()
}

/// The `i`-th base part: the unit box at `(2i, 0)` — pairwise disjoint, never
/// absorbed, so the stored relation holds exactly as many parts as inserted.
fn part(i: usize) -> GenTuple<DenseAtom> {
    let x0 = 2 * i as i64;
    GenTuple::new(vec![
        DenseAtom::le(Term::cst(x0), Term::var("x")),
        DenseAtom::le(Term::var("x"), Term::cst(x0 + 1)),
        DenseAtom::le(Term::cst(0), Term::var("y")),
        DenseAtom::le(Term::var("y"), Term::cst(1)),
    ])
}

fn batch(range: std::ops::Range<usize>) -> Relation<DenseOrder> {
    Relation::new(
        vec![Var::new("x"), Var::new("y")],
        range.map(part).collect(),
    )
}

/// One database seeded with `size` base parts and — unless `baseline` — a
/// materialized watch-window join over `base`, its maintenance provenance
/// already warm.  The baseline variant measures the raw update path (delta
/// application, no dependent views), so the refresh cost is the difference.
fn setup(mode: MaintenanceMode, size: usize, baseline: bool) -> Database<DenseOrder> {
    let db: Database<DenseOrder> = Database::with_config(DbConfig {
        maintenance: mode,
        ..DbConfig::default()
    });
    db.declare("base", 2).expect("declare base");
    db.set_relation("base", batch(0..size)).expect("seed base");
    if !baseline {
        // The watch window: the first eight slots of the line.  The view is
        // linear in `base` (one occurrence), so incremental mode maintains it
        // part by part; `aux` itself never changes.
        db.declare("aux", 1).expect("declare aux");
        db.set_relation(
            "aux",
            Relation::new(
                vec![Var::new("x")],
                vec![GenTuple::new(vec![
                    DenseAtom::le(Term::cst(0), Term::var("x")),
                    DenseAtom::le(Term::var("x"), Term::cst(16)),
                ])],
            ),
        )
        .expect("seed aux");
        db.define_query(
            "watch",
            vec![Var::new("x"), Var::new("y")],
            Formula::and(
                Formula::rel("base", [Term::var("x"), Term::var("y")]),
                Formula::rel("aux", [Term::var("x")]),
            ),
        )
        .expect("define watch");
        db.run_query("watch").expect("materialize watch");
    }
    // One unmeasured insert so the incremental side's provenance record is
    // built before the clock starts (the first maintain pays the base eval).
    db.insert_relation("base", batch(size..size + 1))
        .expect("warm-up insert");
    db
}

/// Streams `rounds` insert batches of `batch_parts` fresh parts, returning
/// per-commit latencies in nanoseconds.
fn stream(db: &Database<DenseOrder>, size: usize, batch_parts: usize, rounds: usize) -> Vec<u64> {
    let mut next = size + 1;
    let mut lat = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let delta = batch(next..next + batch_parts);
        next += batch_parts;
        let op = Instant::now();
        db.insert_relation("base", delta).expect("insert batch");
        lat.push(op.elapsed().as_nanos() as u64);
    }
    lat
}

fn mean(ns: &[u64]) -> f64 {
    ns.iter().sum::<u64>() as f64 / ns.len().max(1) as f64
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

struct Cell {
    size: usize,
    batch_parts: usize,
    rounds: usize,
    baseline_mean_ns: f64,
    incremental_mean_ns: f64,
    incremental_p50_ns: u64,
    incremental_p99_ns: u64,
    recompute_mean_ns: f64,
    recompute_p50_ns: u64,
    recompute_p99_ns: u64,
    maintained: u64,
    recomputed: u64,
}

fn main() {
    let sizes = env_list("FRDB_IVM_SIZES", "32,128,512");
    let batches = env_list("FRDB_IVM_BATCHES", "1,4,16");
    let rounds = env_list("FRDB_IVM_ROUNDS", "20")[0];
    let out_path = std::env::var("FRDB_IVM_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| workspace_root().join("BENCH_PR10.json"));

    let mut cells = Vec::new();
    for &size in &sizes {
        for &batch_parts in &batches {
            let plain = setup(MaintenanceMode::Incremental, size, true);
            let ivm = setup(MaintenanceMode::Incremental, size, false);
            let oracle = setup(MaintenanceMode::Recompute, size, false);
            let base = stream(&plain, size, batch_parts, rounds);
            let mut inc = stream(&ivm, size, batch_parts, rounds);
            let mut rec = stream(&oracle, size, batch_parts, rounds);
            let snap = ivm.metrics();
            assert_eq!(
                oracle.metrics().views_maintained,
                0,
                "the oracle must never maintain"
            );
            let cell = Cell {
                size,
                batch_parts,
                rounds,
                baseline_mean_ns: mean(&base),
                incremental_mean_ns: mean(&inc),
                recompute_mean_ns: mean(&rec),
                incremental_p50_ns: {
                    inc.sort_unstable();
                    quantile(&inc, 0.50)
                },
                incremental_p99_ns: quantile(&inc, 0.99),
                recompute_p50_ns: {
                    rec.sort_unstable();
                    quantile(&rec, 0.50)
                },
                recompute_p99_ns: quantile(&rec, 0.99),
                maintained: snap.views_maintained,
                recomputed: snap.views_recomputed,
            };
            println!(
                "size {:>5} batch {:>3}: update-only {:>9.0} ns  maintain {:>9.0} ns  \
                 recompute {:>9.0} ns/commit  speedup {:>5.2}x",
                size,
                batch_parts,
                cell.baseline_mean_ns,
                cell.incremental_mean_ns,
                cell.recompute_mean_ns,
                cell.recompute_mean_ns / cell.incremental_mean_ns
            );
            cells.push(cell);
        }
    }

    let mut json = String::from("[\n");
    for (i, c) in cells.iter().enumerate() {
        let sep = if i + 1 == cells.len() { "" } else { "," };
        writeln!(
            json,
            "  {{\n    \"group\": \"PR10_maintain_vs_recompute\",\n    \
             \"id\": \"size{size}/batch{batch}\",\n    \"instance_parts\": {size},\n    \
             \"batch_parts\": {batch},\n    \"rounds\": {rounds},\n    \
             \"update_only_mean_ns\": {bm:.0},\n    \
             \"incremental_mean_ns\": {im:.0},\n    \"incremental_p50_ns\": {ip50},\n    \
             \"incremental_p99_ns\": {ip99},\n    \"recompute_mean_ns\": {rm:.0},\n    \
             \"recompute_p50_ns\": {rp50},\n    \"recompute_p99_ns\": {rp99},\n    \
             \"speedup\": {speedup:.3},\n    \"views_maintained\": {vm},\n    \
             \"views_recomputed\": {vr}\n  }}{sep}",
            size = c.size,
            batch = c.batch_parts,
            rounds = c.rounds,
            bm = c.baseline_mean_ns,
            im = c.incremental_mean_ns,
            ip50 = c.incremental_p50_ns,
            ip99 = c.incremental_p99_ns,
            rm = c.recompute_mean_ns,
            rp50 = c.recompute_p50_ns,
            rp99 = c.recompute_p99_ns,
            speedup = c.recompute_mean_ns / c.incremental_mean_ns,
            vm = c.maintained,
            vr = c.recomputed,
        )
        .expect("write to string");
    }
    json.push_str("]\n");
    std::fs::write(&out_path, json).unwrap_or_else(|e| panic!("cannot write {out_path:?}: {e}"));
    println!("wrote {}", out_path.display());
}
