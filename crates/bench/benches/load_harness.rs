//! Load harness: N client threads replaying the catalog and land-registry
//! workloads against **one** shared `frdb_db::Database`, mixed read/write,
//! reporting per-operation p50/p90/p99/p999 latency, aggregate queries/sec,
//! and a log-bucketed latency histogram per phase into `BENCH_PR9.json`.
//!
//! Phases:
//!
//! 1. **Catalog replay, read-only scaling** — the dense catalog scripts and
//!    the land-registry script are executed once into the shared database
//!    (their `schema`/`:=`/`query`/`run` statements are the write workload's
//!    replay); then, for each thread count, N reader threads round-robin over
//!    every defined query through `Snapshot::eval_query`.  All readers share
//!    the plan cache at one generation, so this measures snapshot read
//!    throughput, not planning.
//! 2. **Mixed read/write** — the same readers run against a writer that
//!    keeps committing a hot relation (bumping the schema generation, which
//!    invalidates statistics-reoptimized plans), so reads interleave with
//!    copy-on-write commits and periodic re-optimization.
//!
//! Configuration (environment):
//!
//! * `FRDB_LOAD_THREADS` — comma-separated reader thread counts
//!   (default `1,2,4`).
//! * `FRDB_LOAD_OPS` — operations per reader thread per phase (default 300).
//! * `FRDB_LOAD_OUT` — output path (default `BENCH_PR9.json` in the
//!   workspace root).
//!
//! CI runs the smoke configuration `FRDB_LOAD_THREADS=1,2 FRDB_LOAD_OPS=25`.
//! Note: aggregate-qps scaling across thread counts is only meaningful on a
//! multi-core host; the `cores` field records what the run actually had.

use frdb_core::dense::DenseOrder;
use frdb_core::logic::{Formula, Term, Var};
use frdb_core::metrics::LatencyHistogram;
use frdb_core::relation::Relation;
use frdb_db::Database;
use frdb_lang::{parse_script, script_theory, Stmt, TheoryKind};
use frdb_num::Rat;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

fn scripts_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../examples/scripts")
}

fn workspace_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// One measured phase: merged per-op latencies (exact quantiles from the
/// sorted samples), wall-clock throughput, and the engine's log-bucketed
/// histogram over the same samples (the compact `[lo, hi, count]` form the
/// JSON carries).
struct Measurement {
    id: String,
    threads: usize,
    total_ops: usize,
    elapsed_s: f64,
    p50_ns: u64,
    p90_ns: u64,
    p99_ns: u64,
    p999_ns: u64,
    qps: f64,
    histogram: Vec<(u64, u64, u64)>,
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn measure(id: &str, threads: usize, mut latencies: Vec<u64>, elapsed_s: f64) -> Measurement {
    let hist = LatencyHistogram::default();
    for &ns in &latencies {
        hist.record(std::time::Duration::from_nanos(ns));
    }
    latencies.sort_unstable();
    let total_ops = latencies.len();
    Measurement {
        id: id.to_string(),
        threads,
        total_ops,
        elapsed_s,
        p50_ns: quantile(&latencies, 0.50),
        p90_ns: quantile(&latencies, 0.90),
        p99_ns: quantile(&latencies, 0.99),
        p999_ns: quantile(&latencies, 0.999),
        qps: total_ops as f64 / elapsed_s,
        histogram: hist.snapshot().nonzero_buckets(),
    }
}

/// The hot relation the mixed-phase writer keeps re-committing: `{0, …, k}`.
fn hot_value(k: i64) -> Relation<DenseOrder> {
    Relation::from_points(vec![Var::new("x")], (0..=k).map(|v| vec![Rat::from_i64(v)]))
}

/// Executes the land-registry script and every dense catalog script into one
/// shared database (scripts whose schemas collide with an earlier script are
/// skipped), returning the names of all defined queries — the read workload.
fn replay_setup(db: &Database<DenseOrder>) -> Vec<String> {
    let dir = scripts_dir();
    let mut paths = vec![dir.join("land_registry.frdb")];
    let mut catalog: Vec<_> = std::fs::read_dir(dir.join("catalog"))
        .expect("catalog scripts directory")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "frdb"))
        .collect();
    catalog.sort();
    paths.extend(catalog);

    let mut queries = Vec::new();
    let mut skipped = 0usize;
    for path in &paths {
        let src =
            std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path:?}: {e}"));
        if script_theory(&src)
            .map(|k| k != TheoryKind::Dense)
            .unwrap_or(true)
        {
            continue;
        }
        let mut out = Vec::new();
        if db.execute_source(&src, &mut out).is_err() {
            // Catalog scripts are self-contained; two of them may declare the
            // same relation name at different arities.  First one wins.
            skipped += 1;
            continue;
        }
        let script = parse_script::<DenseOrder>(&src).expect("script executed, so it parses");
        for stmt in &script.stmts {
            if let Stmt::Query { name, .. } = &stmt.node {
                queries.push(name.clone());
            }
        }
    }
    println!(
        "setup: {} quer{} from {} scripts ({} skipped on schema collision)",
        queries.len(),
        if queries.len() == 1 { "y" } else { "ies" },
        paths.len() - skipped,
        skipped
    );
    assert!(!queries.is_empty(), "the replay defined no queries");
    queries
}

/// N reader threads, each performing `ops` round-robin `eval_query` reads
/// through fresh snapshots; returns merged latencies and the phase wall time.
fn run_readers(
    db: &Database<DenseOrder>,
    queries: &[String],
    threads: usize,
    ops: usize,
) -> (Vec<u64>, f64) {
    let start = Instant::now();
    let latencies = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    let mut lat = Vec::with_capacity(ops);
                    for i in 0..ops {
                        let name = &queries[(t + i) % queries.len()];
                        let op = Instant::now();
                        let answer = db.snapshot().eval_query(name).expect("query evaluates");
                        std::hint::black_box(answer.num_tuples());
                        lat.push(op.elapsed().as_nanos() as u64);
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("reader panicked"))
            .collect::<Vec<u64>>()
    });
    (latencies, start.elapsed().as_secs_f64())
}

/// Readers as in [`run_readers`], plus one writer thread committing the hot
/// relation as fast as it can until every reader finishes.  Returns reader
/// latencies, writer commit latencies, and the phase wall time.
fn run_mixed(
    db: &Database<DenseOrder>,
    queries: &[String],
    threads: usize,
    ops: usize,
) -> (Vec<u64>, Vec<u64>, f64) {
    let done = AtomicBool::new(false);
    let start = Instant::now();
    let (read_lat, write_lat) = std::thread::scope(|scope| {
        let writer = scope.spawn(|| {
            let mut lat = Vec::new();
            let mut k = 0i64;
            while !done.load(Ordering::Acquire) {
                k = (k + 1) % 16;
                let op = Instant::now();
                db.set_relation("hot", hot_value(k)).expect("hot commit");
                lat.push(op.elapsed().as_nanos() as u64);
            }
            lat
        });
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                scope.spawn(move || {
                    let mut lat = Vec::with_capacity(ops);
                    for i in 0..ops {
                        let name = &queries[(t + i) % queries.len()];
                        let op = Instant::now();
                        let answer = db.snapshot().eval_query(name).expect("query evaluates");
                        std::hint::black_box(answer.num_tuples());
                        lat.push(op.elapsed().as_nanos() as u64);
                    }
                    lat
                })
            })
            .collect();
        let read_lat: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().expect("reader panicked"))
            .collect();
        done.store(true, Ordering::Release);
        (read_lat, writer.join().expect("writer panicked"))
    });
    (read_lat, write_lat, start.elapsed().as_secs_f64())
}

fn main() {
    let thread_counts: Vec<usize> = std::env::var("FRDB_LOAD_THREADS")
        .unwrap_or_else(|_| "1,2,4".into())
        .split(',')
        .map(|s| s.trim().parse().expect("FRDB_LOAD_THREADS: integers"))
        .collect();
    let ops: usize = std::env::var("FRDB_LOAD_OPS")
        .unwrap_or_else(|_| "300".into())
        .parse()
        .expect("FRDB_LOAD_OPS: integer");
    let out_path = std::env::var("FRDB_LOAD_OUT")
        .map(PathBuf::from)
        .unwrap_or_else(|_| workspace_root().join("BENCH_PR9.json"));
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let db: Database<DenseOrder> = Database::new();
    let mut queries = replay_setup(&db);
    // The mixed phase's hot relation and a query over it, so writes actually
    // invalidate plans the readers use.
    db.declare("hot", 1).expect("declare hot");
    db.set_relation("hot", hot_value(0)).expect("seed hot");
    db.define_query(
        "hot_all",
        vec![Var::new("x")],
        Formula::rel("hot", [Term::var("x")]),
    )
    .expect("define hot_all");
    queries.push("hot_all".to_string());

    let mut results: Vec<(String, Measurement)> = Vec::new();

    // Phase 1: read-only catalog replay at each thread count.
    for &threads in &thread_counts {
        // One warm pass so the first measured op is not a cold plan compile.
        let (_, _) = run_readers(&db, &queries, 1, queries.len());
        let (lat, elapsed) = run_readers(&db, &queries, threads, ops);
        let m = measure(&format!("read/{threads}threads"), threads, lat, elapsed);
        println!(
            "catalog-read {:>2} thread(s): {:>8.0} qps  p50 {:>7} ns  p90 {:>7} ns  \
             p99 {:>8} ns  p999 {:>8} ns  ({} ops)",
            threads, m.qps, m.p50_ns, m.p90_ns, m.p99_ns, m.p999_ns, m.total_ops
        );
        results.push(("PR9_catalog_read_scaling".into(), m));
    }

    // Phase 2: the same readers against a continuously committing writer.
    for &threads in &thread_counts {
        let (read_lat, write_lat, elapsed) = run_mixed(&db, &queries, threads, ops);
        let commits = write_lat.len();
        let mr = measure(
            &format!("read/{threads}threads"),
            threads,
            read_lat,
            elapsed,
        );
        let mw = measure(&format!("commit/{threads}readers"), 1, write_lat, elapsed);
        println!(
            "mixed        {:>2} reader(s): {:>8.0} qps  p50 {:>7} ns  p90 {:>7} ns  \
             p99 {:>8} ns  p999 {:>8} ns  (+{commits} commits at {:>6.0}/s)",
            threads, mr.qps, mr.p50_ns, mr.p90_ns, mr.p99_ns, mr.p999_ns, mw.qps
        );
        results.push(("PR9_mixed_read_write".into(), mr));
        results.push(("PR9_mixed_read_write".into(), mw));
    }

    let mut json = String::from("[\n");
    for (i, (group, m)) in results.iter().enumerate() {
        let sep = if i + 1 == results.len() { "" } else { "," };
        let mut buckets = String::new();
        for (k, (lo, hi, n)) in m.histogram.iter().enumerate() {
            if k > 0 {
                buckets.push_str(", ");
            }
            write!(buckets, "[{lo}, {hi}, {n}]").expect("write to string");
        }
        writeln!(
            json,
            "  {{\n    \"group\": \"{group}\",\n    \"id\": \"{id}\",\n    \
             \"threads\": {threads},\n    \"total_ops\": {ops},\n    \
             \"elapsed_s\": {elapsed:.4},\n    \"qps\": {qps:.1},\n    \
             \"p50_ns\": {p50},\n    \"p90_ns\": {p90},\n    \"p99_ns\": {p99},\n    \
             \"p999_ns\": {p999},\n    \"histogram_ns\": [{buckets}],\n    \
             \"cores\": {cores}\n  }}{sep}",
            id = m.id,
            threads = m.threads,
            ops = m.total_ops,
            elapsed = m.elapsed_s,
            qps = m.qps,
            p50 = m.p50_ns,
            p90 = m.p90_ns,
            p99 = m.p99_ns,
            p999 = m.p999_ns,
        )
        .expect("write to string");
    }
    json.push_str("]\n");
    std::fs::write(&out_path, json).unwrap_or_else(|e| panic!("cannot write {out_path:?}: {e}"));
    println!("wrote {}", out_path.display());
}
