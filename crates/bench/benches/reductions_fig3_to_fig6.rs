//! Experiments E3–E6 (Figs. 3–6): the reduction workloads and the topological queries
//! they target.  Measured: generating the reduction instance plus answering the query
//! with the direct PTIME algorithms, as the Boolean input size grows.  The expected
//! shape is polynomial growth; the constructions themselves are linear-size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use frdb_queries::connectivity::{has_hole, is_connected};
use frdb_queries::euler::euler_traversal;
use frdb_queries::reductions::{
    boolean_vector, half_to_euler, half_to_homeomorphism, majority_to_connectivity,
    majority_to_holes, parity_to_connectivity_3d,
};
use frdb_queries::shape1d::homeomorphic_1d;
use std::time::Duration;

fn bench_majority_connectivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("E3_majority_to_connectivity");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for n in [4usize, 8, 16, 24] {
        let bits = boolean_vector(n, n / 2 + 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| is_connected(&majority_to_connectivity(&bits)))
        });
    }
    group.finish();
}

fn bench_majority_holes(c: &mut Criterion) {
    let mut group = c.benchmark_group("E4_majority_to_holes");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for n in [4usize, 6, 8] {
        let bits = boolean_vector(n, n / 2 + 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| has_hole(&majority_to_holes(&bits)))
        });
    }
    group.finish();
}

fn bench_parity_3d(c: &mut Criterion) {
    let mut group = c.benchmark_group("E5_parity_to_3d_connectivity");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for n in [4usize, 8, 12] {
        let bits = boolean_vector(n, n / 2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| is_connected(&parity_to_connectivity_3d(&bits)))
        });
    }
    group.finish();
}

fn bench_half_reductions(c: &mut Criterion) {
    let mut group = c.benchmark_group("E6_half_to_euler_and_homeomorphism");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for n in [8usize, 32, 128] {
        let bits = boolean_vector(n, n / 2);
        group.bench_with_input(BenchmarkId::new("euler", n), &n, |b, _| {
            b.iter(|| euler_traversal(&half_to_euler(&bits)))
        });
        group.bench_with_input(BenchmarkId::new("homeomorphism", n), &n, |b, _| {
            b.iter(|| {
                let (r1, r2) = half_to_homeomorphism(&bits);
                homeomorphic_1d(&r1, &r2)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_majority_connectivity,
    bench_majority_holes,
    bench_parity_3d,
    bench_half_reductions
);
criterion_main!(benches);
