//! Constraint-aware interval-index joins (PR 6): the sorted-endpoint sweep
//! against the pairwise candidate scan, at the `Relation` level, plus
//! regression guards for the stats-driven parallel gate.
//!
//! Join workloads use **fixed-width** random ranges in a domain that grows
//! with `n`, so the number of genuinely overlapping pairs stays O(n) while
//! the pairwise scan checks O(n²) candidates — the regime where an
//! output-proportional join shows up as a gap that widens with `n`:
//!
//! * `scan`    — [`Relation::join_scan`], the index-off pairwise baseline.
//! * `indexed` — [`Relation::join_with`] at 1 thread: pin hashing plus the
//!   sorted-endpoint interval sweep over the cached column index.
//! * `indexed-2threads` / `indexed-4threads` — the same join under the
//!   worker pool (engaged only when the estimated candidate work clears the
//!   cost gate; results are bit-identical to serial).
//!
//! The `parallel_gate` groups re-measure the two BENCH_PR5 workloads where
//! thread counts 2 and 4 used to run *slower* than serial on small
//! instances (iff-shadow, three-hop chain): with the tuple-count gate
//! replaced by the stats-driven work estimate, the threaded runs must sit
//! within noise of serial.
//!
//! Results are written as JSON to `target/frdb-bench/` and snapshotted in
//! `BENCH_PR6.json` (uploaded as a CI artifact).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use frdb_core::dense::{DenseAtom, DenseOrder};
use frdb_core::fo::{compile_query_with, PlanConfig, Statistics};
use frdb_core::logic::{Formula, Term, Var};
use frdb_core::relation::{GenTuple, Instance, Relation};
use frdb_num::Rat;
use frdb_queries::catalog::{iff_shadow_query, three_hop_query};
use frdb_queries::reductions::{boolean_vector, majority_to_connectivity};
use frdb_queries::workload::single_relation_instance;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn v(name: &str) -> Var {
    Var::new(name)
}

/// A closed interval of width at most `width` with endpoints in `[0, domain]`.
fn interval_atoms(rng: &mut StdRng, var: &str, width: i64, domain: i64) -> Vec<DenseAtom> {
    let lo = rng.gen_range(0..=(domain - width).max(0));
    let hi = lo + rng.gen_range(0..=width);
    vec![
        DenseAtom::le(Term::cst(lo), Term::var(var)),
        DenseAtom::le(Term::var(var), Term::cst(hi)),
    ]
}

/// Two monadic relations of `n` width-≤8 intervals each in `[0, 10n]`,
/// joining on the shared column `x`.
fn interval_pair(n: usize) -> (Relation<DenseOrder>, Relation<DenseOrder>) {
    let mut rng = StdRng::seed_from_u64(n as u64 + 11);
    let domain = 10 * n as i64;
    let mut make = |_: usize| {
        let tuples = (0..n)
            .map(|_| GenTuple::new(interval_atoms(&mut rng, "x", 8, domain)))
            .collect();
        Relation::new(vec![v("x")], tuples)
    };
    (make(0), make(1))
}

/// Two binary box relations `A(x, y)` and `B(y, z)` of `n` tuples each whose
/// shared column `y` carries a width-≤8 interval in `[0, 10n]`.
fn box_pair(n: usize) -> (Relation<DenseOrder>, Relation<DenseOrder>) {
    let mut rng = StdRng::seed_from_u64(n as u64 + 29);
    let domain = 10 * n as i64;
    let mut make = |vars: [&str; 2]| {
        let tuples = (0..n)
            .map(|_| {
                let mut atoms = interval_atoms(&mut rng, vars[0], 8, domain);
                atoms.extend(interval_atoms(&mut rng, vars[1], 8, domain));
                GenTuple::new(atoms)
            })
            .collect();
        Relation::new(vec![v(vars[0]), v(vars[1])], tuples)
    };
    (make(["x", "y"]), make(["y", "z"]))
}

/// Benchmarks one join workload across sizes, index off and on.
fn compare_join(
    c: &mut Criterion,
    group_name: &str,
    sizes: &[usize],
    make: fn(usize) -> (Relation<DenseOrder>, Relation<DenseOrder>),
) {
    let mut group = c.benchmark_group(group_name);
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for &n in sizes {
        let (a, b) = make(n);
        // Warm the per-tuple context caches and the column index once, so
        // every configuration measures the steady-state join.
        let _ = a.join_scan(&b);
        let _ = a.join_with(&b, 1);
        group.bench_with_input(BenchmarkId::new("scan", n), &n, |bch, _| {
            bch.iter(|| a.join_scan(&b))
        });
        group.bench_with_input(BenchmarkId::new("indexed", n), &n, |bch, _| {
            bch.iter(|| a.join_with(&b, 1))
        });
        for threads in [2usize, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("indexed-{threads}threads"), n),
                &n,
                |bch, _| bch.iter(|| a.join_with(&b, threads)),
            );
        }
    }
    group.finish();
}

fn bench_interval_join(c: &mut Criterion) {
    compare_join(c, "PR6_join_index_intervals", &[8, 32, 128], interval_pair);
}

fn bench_box_join(c: &mut Criterion) {
    compare_join(c, "PR6_join_index_boxes", &[8, 32, 128], box_pair);
}

/// Benchmarks one compiled query at 1/2/4 worker threads — the parallel-gate
/// regression guard (threaded runs must not lose to serial on small inputs).
fn guard(
    c: &mut Criterion,
    group_name: &str,
    sizes: &[usize],
    make_instance: fn(usize) -> Instance<DenseOrder>,
    query: &Formula<DenseAtom>,
    free: &[Var],
) {
    // Sub-millisecond workloads: more samples and a longer budget, so the
    // serial-vs-threaded comparison is not dominated by scheduler noise.
    let mut group = c.benchmark_group(group_name);
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    for &n in sizes {
        let inst = make_instance(n);
        for threads in [1usize, 2, 4] {
            let config = PlanConfig {
                threads,
                ..PlanConfig::default()
            };
            let compiled = compile_query_with::<DenseOrder>(query, free, &config)
                .optimized_for(&Statistics::collect(&inst));
            let label = if threads == 1 {
                "serial".to_string()
            } else {
                format!("{threads}threads")
            };
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| compiled.eval(&inst).unwrap())
            });
        }
    }
    group.finish();
}

fn bench_iff_shadow_gate(c: &mut Criterion) {
    fn fig3_instance(n: usize) -> Instance<DenseOrder> {
        let region = majority_to_connectivity(&boolean_vector(n, n / 2 + 1));
        single_relation_instance("R", region.rename(vec![v("x"), v("y")]))
    }
    guard(
        c,
        "PR6_parallel_gate_iff_shadow",
        &[2, 4],
        fig3_instance,
        &iff_shadow_query(),
        &[v("x")],
    );
}

fn bench_three_hop_gate(c: &mut Criterion) {
    fn chain_instance(n: usize) -> Instance<DenseOrder> {
        let points: Vec<Vec<Rat>> = (0..n as i64)
            .map(|i| vec![Rat::from_i64(i), Rat::from_i64(i + 1)])
            .collect();
        single_relation_instance("S", Relation::from_points(vec![v("x"), v("y")], points))
    }
    guard(
        c,
        "PR6_parallel_gate_three_hop",
        &[16, 32],
        chain_instance,
        &three_hop_query(),
        &[v("x"), v("w")],
    );
}

criterion_group!(
    benches,
    bench_interval_join,
    bench_box_join,
    bench_iff_shadow_gate,
    bench_three_hop_gate
);
criterion_main!(benches);
