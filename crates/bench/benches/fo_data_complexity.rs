//! Experiment E10 (Theorem 5.2): the data complexity of a *fixed* FO query over
//! dense-order constraint databases is low-degree polynomial in the size of the input
//! representation.  The series below measure a fixed quantifier-depth-2 query over
//! growing random monadic databases and a projection/selection pair over planar
//! databases; the expected shape is smooth polynomial growth (no exponential blow-up
//! in the data).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use frdb_bench::{gap_query, gap_query_free, interval_instance, region_instance};
use frdb_core::dense::DenseAtom;
use frdb_core::fo::{eval_query, eval_sentence};
use frdb_core::logic::{Formula, Term};
use std::time::Duration;

fn bench_fixed_query_growing_data(c: &mut Criterion) {
    let mut group = c.benchmark_group("E10_fo_gap_query_vs_database_size");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for n in [4usize, 8, 16, 32, 64] {
        let inst = interval_instance(n);
        let q = gap_query();
        let free = gap_query_free();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| eval_query(&q, &free, &inst).unwrap())
        });
    }
    group.finish();
}

fn bench_planar_projection(c: &mut Criterion) {
    let mut group = c.benchmark_group("E10_fo_planar_projection_vs_database_size");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    let q: Formula<DenseAtom> =
        Formula::exists(["y"], Formula::rel("R", [Term::var("x"), Term::var("y")]));
    let free = vec![frdb_core::logic::Var::new("x")];
    for n in [4usize, 8, 16, 32, 64] {
        let inst = region_instance(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| eval_query(&q, &free, &inst).unwrap())
        });
    }
    group.finish();
}

fn bench_boolean_sentence(c: &mut Criterion) {
    let mut group = c.benchmark_group("E10_fo_boolean_sentence_vs_database_size");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    // ∃x∃y. R(x) ∧ R(y) ∧ x < y  — a rank-2 sentence.
    let q: Formula<DenseAtom> = Formula::exists(
        ["x", "y"],
        Formula::rel("R", [Term::var("x")])
            .and(Formula::rel("R", [Term::var("y")]))
            .and(Formula::Atom(DenseAtom::lt(Term::var("x"), Term::var("y")))),
    );
    for n in [8usize, 32, 128] {
        let inst = interval_instance(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| eval_sentence(&q, &inst).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fixed_query_growing_data,
    bench_planar_projection,
    bench_boolean_sentence
);
criterion_main!(benches);
