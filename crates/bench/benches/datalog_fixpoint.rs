//! Experiment E11 (Theorems 6.2 / 6.6): DATALOG¬ fixpoints over constraint databases
//! have polynomial data complexity.  Measured: the transitive-closure program over
//! growing path graphs and the direct PTIME connectivity algorithm over growing
//! planar regions (the query the PTIME-capture theorem guarantees DATALOG¬ can also
//! express; the Example 6.3 program itself is exercised at small scale in the tests).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use frdb_bench::region_relation;
use frdb_core::logic::Var;
use frdb_core::relation::{Instance, Relation};
use frdb_core::schema::{RelName, Schema};
use frdb_datalog::transitive_closure_program;
use frdb_num::Rat;
use frdb_queries::connectivity::component_count;
use std::time::Duration;

fn path_instance(n: usize) -> Instance<frdb_core::dense::DenseOrder> {
    let mut inst = Instance::new(Schema::from_pairs([("edge", 2)]));
    inst.set(
        "edge",
        Relation::from_points(
            vec![Var::new("x"), Var::new("y")],
            (1..n as i64).map(|i| vec![Rat::from_i64(i), Rat::from_i64(i + 1)]),
        ),
    )
    .unwrap();
    inst
}

fn bench_transitive_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("E11_datalog_transitive_closure_vs_graph_size");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for n in [4usize, 6, 8, 10] {
        let inst = path_instance(n);
        let program = transitive_closure_program("edge", "tc");
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| program.run_for(&inst, &RelName::new("tc")).unwrap())
        });
    }
    group.finish();
}

fn bench_direct_connectivity(c: &mut Criterion) {
    let mut group = c.benchmark_group("E11_ptime_region_connectivity_vs_cells");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for n in [4usize, 8, 16, 32] {
        let region = region_relation(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| component_count(&region))
        });
    }
    group.finish();
}

fn bench_semi_naive_vs_naive(c: &mut Criterion) {
    // The acceptance benchmark for the semi-naive engine: the same
    // transitive-closure fixpoint computed by delta evaluation (`run`) and by
    // naive re-evaluation (`run_naive`).  The JSON results let each PR track
    // the ratio.
    let mut group = c.benchmark_group("E11_datalog_semi_naive_vs_naive");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for n in [6usize, 8, 10] {
        let inst = path_instance(n);
        let program = transitive_closure_program("edge", "tc");
        group.bench_with_input(BenchmarkId::new("semi_naive", n), &n, |b, _| {
            b.iter(|| program.run(&inst).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |b, _| {
            b.iter(|| program.run_naive(&inst).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_transitive_closure,
    bench_direct_connectivity,
    bench_semi_naive_vs_naive
);
criterion_main!(benches);
