//! Experiment E9 (Fig. 9, Example 6.8/6.11, Lemma 6.10): the cost of computing prime
//! tuple covers and the finite relational encoding grows polynomially with the number
//! of constraints, and the §4.2 standard encoding (database size) is computed as a
//! by-product.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use frdb_bench::{interval_instance, region_instance, region_relation};
use frdb_core::encode::{database_size, encode_relation_cover};
use frdb_core::normal::{cover, decompose_1d};
use frdb_core::schema::RelName;
use std::time::Duration;

fn bench_cover(c: &mut Criterion) {
    let mut group = c.benchmark_group("E9_prime_tuple_cover_vs_constraints");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for n in [2usize, 4, 8, 16] {
        let region = region_relation(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| cover(&region))
        });
    }
    group.finish();
}

fn bench_encoding(c: &mut Criterion) {
    let mut group = c.benchmark_group("E9_relational_encoding_vs_constraints");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for n in [2usize, 4, 8, 16] {
        let region = region_relation(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| encode_relation_cover(&region))
        });
    }
    group.finish();
}

fn bench_database_size_and_1d_decomposition(c: &mut Criterion) {
    let mut group = c.benchmark_group("E9_standard_encoding_and_1d_decomposition");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for n in [8usize, 32, 128, 512] {
        let inst = interval_instance(n);
        group.bench_with_input(BenchmarkId::new("database_size", n), &n, |b, _| {
            b.iter(|| database_size(&inst).unwrap())
        });
        let rel = inst.get(&RelName::new("R")).unwrap();
        group.bench_with_input(BenchmarkId::new("decompose_1d", n), &n, |b, _| {
            b.iter(|| decompose_1d(&rel))
        });
        let planar = region_instance(n.min(64));
        group.bench_with_input(BenchmarkId::new("database_size_planar", n), &n, |b, _| {
            b.iter(|| database_size(&planar).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_cover,
    bench_encoding,
    bench_database_size_and_1d_decomposition
);
criterion_main!(benches);
