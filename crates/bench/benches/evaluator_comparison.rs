//! Evaluator comparison: the relational-algebra evaluator (PR 2) against the
//! expand-then-eliminate baseline of Section 4.1, on the multi-relation-join
//! workloads the paper's reductions generate (Figs. 3–6) and on finite graph
//! joins.
//!
//! The expand baseline inlines every relation atom as a DNF sub-formula and
//! re-distributes conjunctions of those DNFs tuple by tuple; the algebraic
//! evaluator joins relation values directly, prunes candidate pairs through
//! cached contexts, and memoizes repeated sub-plans.  The expected shape is
//! the algebraic evaluator winning on every join workload with the margin
//! growing in the instance size.  Results are written as JSON to
//! `target/frdb-bench/` and snapshotted in `BENCH_PR2.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use frdb_core::dense::DenseOrder;
use frdb_core::fo::{eval_query, eval_query_expand};
use frdb_core::logic::Var;
use frdb_core::relation::{Instance, Relation};
use frdb_num::Rat;
use frdb_queries::catalog::{iff_shadow_query, three_hop_query, two_hop_query};
use frdb_queries::programs::sweep_body;
use frdb_queries::reductions::{boolean_vector, majority_to_connectivity};
use frdb_queries::workload::{random_graph, single_relation_instance};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

fn v(name: &str) -> Var {
    Var::new(name)
}

fn graph_instance(n: usize) -> Instance<DenseOrder> {
    let mut rng = StdRng::seed_from_u64(n as u64 + 3);
    single_relation_instance("S", random_graph(&mut rng, n, 2 * n))
}

fn fig3_instance(n: usize) -> Instance<DenseOrder> {
    let region = majority_to_connectivity(&boolean_vector(n, n / 2 + 1));
    single_relation_instance("R", region.rename(vec![v("x"), v("y")]))
}

/// The chain `0 → 1 → … → n` as a finite binary relation — the skeleton of the
/// Fig. 3 staircase, and the worst case for the expand baseline's pairwise
/// redistribution (n² candidate pairs, n of them satisfiable).
fn chain_instance(n: usize) -> Instance<DenseOrder> {
    let points: Vec<Vec<Rat>> = (0..n as i64)
        .map(|i| vec![Rat::from_i64(i), Rat::from_i64(i + 1)])
        .collect();
    single_relation_instance("S", Relation::from_points(vec![v("x"), v("y")], points))
}

/// Benchmarks one query under both evaluators across instance sizes.
fn compare(
    c: &mut Criterion,
    group_name: &str,
    sizes: &[usize],
    make_instance: fn(usize) -> Instance<DenseOrder>,
    query: &frdb_core::logic::Formula<frdb_core::dense::DenseAtom>,
    free: &[Var],
) {
    let mut group = c.benchmark_group(group_name);
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for &n in sizes {
        let inst = make_instance(n);
        group.bench_with_input(BenchmarkId::new("algebraic", n), &n, |b, _| {
            b.iter(|| eval_query(query, free, &inst).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("expand", n), &n, |b, _| {
            b.iter(|| eval_query_expand(query, free, &inst).unwrap())
        });
    }
    group.finish();
}

fn bench_two_hop(c: &mut Criterion) {
    compare(
        c,
        "PR2_evaluator_two_hop_join",
        &[6, 10, 14],
        graph_instance,
        &two_hop_query(),
        &[v("x"), v("z")],
    );
}

fn bench_three_hop(c: &mut Criterion) {
    compare(
        c,
        "PR2_evaluator_three_hop_join",
        &[6, 10],
        graph_instance,
        &three_hop_query(),
        &[v("x"), v("w")],
    );
}

/// The Fig. 3 region itself under the two-hop join's schema (`S` binary).
fn fig3_region_as_s(n: usize) -> Instance<DenseOrder> {
    let region = majority_to_connectivity(&boolean_vector(n, n / 2 + 1));
    single_relation_instance("S", region.rename(vec![v("x"), v("y")]))
}

fn bench_fig3_region_join(c: &mut Criterion) {
    compare(
        c,
        "PR2_evaluator_fig3_region_join",
        &[2, 4, 8],
        fig3_region_as_s,
        &two_hop_query(),
        &[v("x"), v("z")],
    );
}

fn bench_two_hop_chain(c: &mut Criterion) {
    compare(
        c,
        "PR2_evaluator_two_hop_chain",
        &[8, 16, 32, 64],
        chain_instance,
        &two_hop_query(),
        &[v("x"), v("z")],
    );
}

fn bench_three_hop_chain(c: &mut Criterion) {
    compare(
        c,
        "PR2_evaluator_three_hop_chain",
        &[8, 16, 32],
        chain_instance,
        &three_hop_query(),
        &[v("x"), v("w")],
    );
}

fn bench_iff_shadow_fig3(c: &mut Criterion) {
    compare(
        c,
        "PR2_evaluator_iff_shadow_fig3",
        &[2, 4, 6],
        fig3_instance,
        &iff_shadow_query(),
        &[v("x")],
    );
}

fn bench_sweep_fig3(c: &mut Criterion) {
    compare(
        c,
        "PR2_evaluator_sweep_fig3",
        &[1, 2],
        fig3_instance,
        &sweep_body("R"),
        &[v("x"), v("y"), v("u"), v("v")],
    );
}

criterion_group!(
    benches,
    bench_two_hop,
    bench_three_hop,
    bench_two_hop_chain,
    bench_three_hop_chain,
    bench_fig3_region_join,
    bench_iff_shadow_fig3,
    bench_sweep_fig3
);
criterion_main!(benches);
