//! Factorized intermediates (PR 8): plan nodes that keep unions as lazy
//! lists of parts — joined, projected, and complemented part-by-part — against
//! the eager baseline that materializes every intermediate to canonical DNF.
//!
//! The eager evaluator pays the canonical simplification (pairwise semantic
//! absorption) of the **whole union** before the join or projection can run;
//! the factorized evaluator defers it to the plan boundary, where the answer
//! is already small.  Workloads where that shows up:
//!
//! * `union_join`  — `∃y ((R₁ ∨ R₂ ∨ R₃ ∨ R₄)(x, y) ∧ S(y, z))` with a
//!   selective `S`: each part joins through its column index and only the
//!   small per-part outputs are merged.
//! * `projection`  — `∃y (R₁ ∨ R₂ ∨ R₃ ∨ R₄)(x, y)`: per-part projection,
//!   merge over one-column tuples.
//! * `box_join`    — `(P₁ ∨ P₂)(x, y) ∧ Z(x, y)`: two shared columns, so each
//!   part runs the box-sweep (envelope-index-refined) strategy.
//!
//! Both configurations produce **bit-identical** canonical answers (pinned by
//! the `factorized_matches_eager_*` property tests); only the evaluation
//! order differs.  Results are written as JSON to `target/frdb-bench/` and
//! snapshotted in `BENCH_PR8.json` (uploaded as a CI artifact).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use frdb_core::dense::{DenseAtom, DenseOrder};
use frdb_core::fo::{compile_query_with, PlanConfig};
use frdb_core::logic::{Formula, Term, Var};
use frdb_core::relation::{GenTuple, Instance, Relation};
use frdb_core::schema::Schema;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn v(name: &str) -> Var {
    Var::new(name)
}

/// A closed interval of width at most `width` with endpoints in `[0, domain]`.
fn interval_atoms(rng: &mut StdRng, var: &str, width: i64, domain: i64) -> Vec<DenseAtom> {
    let lo = rng.gen_range(0..=(domain - width).max(0));
    let hi = lo + rng.gen_range(0..=width);
    vec![
        DenseAtom::le(Term::cst(lo), Term::var(var)),
        DenseAtom::le(Term::var(var), Term::cst(hi)),
    ]
}

/// A binary relation of `n` random boxes over `(a, b)`, width ≤ 8 per column,
/// endpoints in `[0, 10n]` — overlapping enough that eager union
/// simplification has real absorption work to do.
fn box_relation(rng: &mut StdRng, a: &str, b: &str, n: usize) -> Relation<DenseOrder> {
    let domain = 10 * n as i64;
    let tuples = (0..n)
        .map(|_| {
            let mut atoms = interval_atoms(rng, a, 8, domain);
            atoms.extend(interval_atoms(rng, b, 8, domain));
            GenTuple::new(atoms)
        })
        .collect();
    Relation::new(vec![v(a), v(b)], tuples)
}

fn union_of(names: &[&str], vars: [&str; 2]) -> Formula<DenseAtom> {
    Formula::Or(
        names
            .iter()
            .map(|n| Formula::rel(*n, [Term::var(vars[0]), Term::var(vars[1])]))
            .collect(),
    )
}

/// Four union branches `R1..R4(x, y)` of `n` boxes each, plus a selective
/// 4-box `S(y, z)`.
fn union_instance(n: usize) -> Instance<DenseOrder> {
    let mut rng = StdRng::seed_from_u64(n as u64 + 71);
    let mut inst = Instance::new(Schema::from_pairs([
        ("R1", 2),
        ("R2", 2),
        ("R3", 2),
        ("R4", 2),
        ("S", 2),
    ]));
    for name in ["R1", "R2", "R3", "R4"] {
        inst.set(name, box_relation(&mut rng, "x", "y", n)).unwrap();
    }
    inst.set("S", box_relation(&mut rng, "y", "z", 4)).unwrap();
    inst
}

/// Two union branches `P1, P2(x, y)` of `n` boxes each, plus a 4-box zoning
/// overlay `Z(x, y)` sharing **both** columns.
fn box_join_instance(n: usize) -> Instance<DenseOrder> {
    let mut rng = StdRng::seed_from_u64(n as u64 + 113);
    let mut inst = Instance::new(Schema::from_pairs([("P1", 2), ("P2", 2), ("Z", 2)]));
    for name in ["P1", "P2"] {
        inst.set(name, box_relation(&mut rng, "x", "y", n)).unwrap();
    }
    inst.set("Z", box_relation(&mut rng, "x", "y", 4)).unwrap();
    inst
}

/// Benchmarks one query under the factorized and the eager configuration, at
/// 1, 2 and 4 worker threads.
fn compare_factorized(
    c: &mut Criterion,
    group_name: &str,
    sizes: &[usize],
    make_instance: fn(usize) -> Instance<DenseOrder>,
    query: &Formula<DenseAtom>,
    free: &[Var],
) {
    let mut group = c.benchmark_group(group_name);
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2));
    for &n in sizes {
        let inst = make_instance(n);
        for threads in [1usize, 2, 4] {
            let config = PlanConfig {
                threads,
                ..PlanConfig::default()
            };
            let factorized = compile_query_with::<DenseOrder>(query, free, &config);
            let eager = compile_query_with::<DenseOrder>(query, free, &config.eager());
            // Warm the per-tuple context caches and the column indexes once,
            // so both configurations measure the steady state.
            let _ = factorized.eval(&inst).unwrap();
            let _ = eager.eval(&inst).unwrap();
            let suffix = if threads == 1 {
                String::new()
            } else {
                format!("-{threads}threads")
            };
            group.bench_with_input(
                BenchmarkId::new(format!("factorized{suffix}"), n),
                &n,
                |b, _| b.iter(|| factorized.eval(&inst).unwrap()),
            );
            group.bench_with_input(BenchmarkId::new(format!("eager{suffix}"), n), &n, |b, _| {
                b.iter(|| eager.eval(&inst).unwrap())
            });
        }
    }
    group.finish();
}

fn bench_union_join(c: &mut Criterion) {
    let query = Formula::exists(
        ["y"],
        Formula::And(vec![
            union_of(&["R1", "R2", "R3", "R4"], ["x", "y"]),
            Formula::rel("S", [Term::var("y"), Term::var("z")]),
        ]),
    );
    compare_factorized(
        c,
        "PR8_factorized_union_join",
        &[8, 32, 128],
        union_instance,
        &query,
        &[v("x"), v("z")],
    );
}

fn bench_projection(c: &mut Criterion) {
    let query = Formula::exists(["y"], union_of(&["R1", "R2", "R3", "R4"], ["x", "y"]));
    compare_factorized(
        c,
        "PR8_factorized_projection",
        &[8, 32, 128],
        union_instance,
        &query,
        &[v("x")],
    );
}

fn bench_box_join(c: &mut Criterion) {
    let query = Formula::And(vec![
        union_of(&["P1", "P2"], ["x", "y"]),
        Formula::rel("Z", [Term::var("x"), Term::var("y")]),
    ]);
    compare_factorized(
        c,
        "PR8_factorized_box_join",
        &[8, 32, 128],
        box_join_instance,
        &query,
        &[v("x"), v("y")],
    );
}

criterion_group!(benches, bench_union_join, bench_projection, bench_box_join);
criterion_main!(benches);
