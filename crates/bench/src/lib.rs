//! Shared helpers for the benchmark harness.
//!
//! Every bench target corresponds to one or more experiments of `DESIGN.md`
//! (E3–E12); `EXPERIMENTS.md` maps the measured series back to the paper's claims.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use frdb_core::dense::{DenseAtom, DenseOrder};
use frdb_core::logic::{Formula, Var};
use frdb_core::relation::{Instance, Relation};
use frdb_core::schema::Schema;
use frdb_queries::workload::{random_intervals, random_region2};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic monadic instance with `n` random intervals, named `R`.
#[must_use]
pub fn interval_instance(n: usize) -> Instance<DenseOrder> {
    let mut rng = StdRng::seed_from_u64(n as u64 + 1);
    let rel = random_intervals(&mut rng, n, 10 * n as i64 + 10);
    let mut inst = Instance::new(Schema::from_pairs([("R", 1)]));
    inst.set("R", rel).expect("schema declares R");
    inst
}

/// A deterministic planar instance with `n` random rectangles, named `R`.
#[must_use]
pub fn region_instance(n: usize) -> Instance<DenseOrder> {
    let mut rng = StdRng::seed_from_u64(n as u64 + 7);
    let rel = random_region2(&mut rng, n, 8 * n as i64 + 8);
    let mut inst = Instance::new(Schema::from_pairs([("R", 2)]));
    inst.set("R", rel).expect("schema declares R");
    inst
}

/// The planar relation of [`region_instance`].
#[must_use]
pub fn region_relation(n: usize) -> Relation<DenseOrder> {
    region_instance(n).get(&"R".into()).expect("R is declared")
}

/// A fixed FO query of quantifier depth 2 over the monadic schema: the "gap" query
/// `{x | ¬R(x) ∧ ∃y (R(y) ∧ y < x) ∧ ∃z (R(z) ∧ x < z)}` (re-exported from the
/// shared catalog so the test and bench workloads stay in sync).
#[must_use]
pub fn gap_query() -> Formula<DenseAtom> {
    frdb_queries::catalog::gap_query()
}

/// The free variable of [`gap_query`].
#[must_use]
pub fn gap_query_free() -> Vec<Var> {
    vec![Var::new("x")]
}
