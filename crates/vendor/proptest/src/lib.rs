//! A tiny, dependency-free, in-workspace stand-in for the parts of the
//! `proptest` API this workspace uses: the `proptest!` macro with `x in
//! strategy` bindings, `any::<T>()`, integer-range and tuple strategies,
//! `prop_map`, `prop_oneof!`, `proptest::collection::vec`, `prop_assert*!` and
//! `prop_assume!`.
//!
//! The build environment is fully offline, so the real `proptest` cannot be
//! fetched.  This shim keeps the same tests compiling and running with
//! deterministic pseudo-random inputs.  It does **not** implement shrinking:
//! a failing case panics with the ordinary assertion message.

#![forbid(unsafe_code)]

/// Deterministic test-input generator (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded deterministically.
    pub fn seeded(seed: u64) -> Self {
        TestRng {
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xA076_1D64_78BD_642F,
        }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// Runner configuration.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

/// Strategies: composable generators of test inputs.
pub mod strategy {
    use super::TestRng;

    /// A generator of values of an associated type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps the generated value through a function.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Boxes the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A boxed strategy with a fixed value type.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice among boxed alternatives (built by `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// A union of alternatives; panics if empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    let off = (rng.next_u64() as i128).rem_euclid(span);
                    (self.start as i128 + off) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (s, e) = (*self.start(), *self.end());
                    assert!(s <= e, "empty range strategy");
                    let span = (e as i128) - (s as i128) + 1;
                    let off = (rng.next_u64() as i128).rem_euclid(span);
                    (s as i128 + off) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($( self.$idx.generate(rng), )+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
    }

    /// Types with a canonical arbitrary-value strategy.
    pub trait Arbitrary: Sized {
        /// Draws an arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    // Mix small values (common edge cases) with full-width ones.
                    match rng.below(4) {
                        0 => (rng.below(7) as i64 - 3) as $t,
                        _ => rng.next_u64() as $t,
                    }
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.below(2) == 1
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for a type.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: std::marker::PhantomData,
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// A strategy for `Vec`s whose length is drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max_exclusive: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max_exclusive - self.min).max(1) as u64;
            let len = self.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors of `element` values with length in `len` (half-open range).
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy {
            element,
            min: len.start,
            max_exclusive: len.end,
        }
    }
}

/// The glob-import surface, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::TestRng;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a property (panics on failure; no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when the assumption fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            continue;
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $( $crate::strategy::Strategy::boxed($strategy) ),+
        ])
    };
}

/// Declares property tests with `pattern in strategy` bindings.
///
/// Each case draws inputs from a deterministic generator seeded from the test
/// name, so failures are reproducible run to run.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg ($config) $($rest)* }
    };
    (@cfg ($config:expr) $( $(#[$meta:meta])* fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let seed = {
                    // Stable per-test seed from the test name.
                    let mut h = 0xcbf2_9ce4_8422_2325u64;
                    for b in stringify!($name).bytes() {
                        h ^= u64::from(b);
                        h = h.wrapping_mul(0x0000_0100_0000_01B3);
                    }
                    h
                };
                for case in 0..u64::from(config.cases) {
                    let mut rng = $crate::TestRng::seeded(seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&$strategy, &mut rng);
                    )+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @cfg ($crate::test_runner::Config::default()) $($rest)* }
    };
}
