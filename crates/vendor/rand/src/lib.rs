//! A tiny, dependency-free, in-workspace stand-in for the parts of the `rand`
//! crate this workspace uses (`Rng::gen_range`, `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`).
//!
//! The build environment is fully offline, so the real `rand` cannot be
//! fetched; this shim keeps the same call sites compiling with a deterministic
//! SplitMix64 generator.  It is **not** cryptographically secure and makes no
//! attempt at distribution-perfect range sampling — workloads here only need
//! reproducible pseudo-random test instances.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// The next 64 raw pseudo-random bits.
    fn next_u64(&mut self) -> u64;
}

/// Range types that can be sampled to produce a `T`.
pub trait SampleRange<T> {
    /// Draws one value of `T` from the range.
    fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128) - (self.start as i128);
                let offset = (rng.next_u64() as i128).rem_euclid(span);
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<G: RngCore + ?Sized>(self, rng: &mut G) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128) - (start as i128) + 1;
                let offset = (rng.next_u64() as i128).rem_euclid(span);
                (start as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// The user-facing generator interface (blanket-implemented for every
/// [`RngCore`], mirroring `rand`).
pub trait Rng: RngCore {
    /// Samples a value uniformly from the given range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// A pseudo-random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<G: RngCore + ?Sized> Rng for G {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014): tiny, full-period, and good
            // enough for reproducible test-instance generation.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let x: i64 = a.gen_range(-5..=5);
            let y: i64 = b.gen_range(-5..=5);
            assert_eq!(x, y);
            assert!((-5..=5).contains(&x));
        }
        let mut c = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let v: usize = c.gen_range(0..3);
            assert!(v < 3);
        }
    }
}
