//! A tiny, dependency-free, in-workspace stand-in for the parts of the
//! `criterion` benchmarking API this workspace uses, with one deliberate
//! extension: every benchmark group writes **machine-readable JSON** results so
//! the repository can track performance trajectories across PRs.
//!
//! The build environment is fully offline, so the real `criterion` cannot be
//! fetched.  The measurement model is intentionally simple — wall-clock timing
//! of batched iterations with a warm-up pass — but the reported statistics
//! (mean / min / max nanoseconds per iteration over `sample_size` samples) are
//! sufficient for regression tracking.
//!
//! ## JSON output
//!
//! Results land in `$FRDB_BENCH_JSON_DIR` (default `target/frdb-bench`,
//! resolved against `$CARGO_TARGET_DIR`'s parent when set, else the current
//! directory), one file per benchmark group, as an array of objects:
//!
//! ```json
//! [{"group":"E11_...","id":"4","mean_ns":123,"min_ns":100,"max_ns":150,
//!   "samples":10,"iters_per_sample":8}]
//! ```

#![forbid(unsafe_code)]

use std::fs;
use std::hint;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier of one measurement inside a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Passed to measurement closures; runs and times the workload.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Sample>,
    sample_size: usize,
    measurement_time: Duration,
}

#[derive(Clone, Copy, Debug)]
struct Sample {
    nanos_per_iter: f64,
}

impl Bencher<'_> {
    /// Measures the closure: a warm-up pass sizes the per-sample batch, then
    /// `sample_size` timed batches are recorded (subject to the group's
    /// measurement-time budget).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up & calibration: time a single call.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        // Aim for each sample to take roughly budget / sample_size.
        let per_sample = self.measurement_time.as_nanos() / (self.sample_size.max(1) as u128);
        let iters = ((per_sample / once.as_nanos().max(1)).max(1) as u64).min(1_000_000);
        let budget = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t.elapsed();
            self.samples.push(Sample {
                nanos_per_iter: elapsed.as_nanos() as f64 / iters as f64,
            });
            if budget.elapsed() > self.measurement_time {
                break;
            }
        }
    }
}

/// One finished measurement, as serialised to JSON.
#[derive(Clone, Debug)]
struct Record {
    group: String,
    id: String,
    mean_ns: f64,
    min_ns: f64,
    max_ns: f64,
    samples: usize,
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn output_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("FRDB_BENCH_JSON_DIR") {
        return PathBuf::from(dir);
    }
    if let Ok(target) = std::env::var("CARGO_TARGET_DIR") {
        return PathBuf::from(target).join("frdb-bench");
    }
    // `cargo bench` runs with the package directory as cwd; the shared target
    // directory lives at the workspace root, so walk up to the first existing
    // `target` before falling back to `./target`.
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir = cwd.as_path();
    loop {
        let candidate = dir.join("target");
        if candidate.is_dir() {
            return candidate.join("frdb-bench");
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => return cwd.join("target").join("frdb-bench"),
        }
    }
}

/// A group of related measurements sharing configuration, à la criterion.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    records: Vec<Record>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Wall-clock budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    fn run_one(&mut self, id: String, f: impl FnOnce(&mut Bencher<'_>)) {
        let mut samples = Vec::new();
        {
            let mut bencher = Bencher {
                samples: &mut samples,
                sample_size: self.sample_size,
                measurement_time: self.measurement_time,
            };
            f(&mut bencher);
        }
        if samples.is_empty() {
            return;
        }
        let mean = samples.iter().map(|s| s.nanos_per_iter).sum::<f64>() / samples.len() as f64;
        let min = samples
            .iter()
            .map(|s| s.nanos_per_iter)
            .fold(f64::INFINITY, f64::min);
        let max = samples
            .iter()
            .map(|s| s.nanos_per_iter)
            .fold(0.0f64, f64::max);
        println!(
            "{:<60} time: [{:>12.1} ns {:>12.1} ns {:>12.1} ns]",
            format!("{}/{}", self.name, id),
            min,
            mean,
            max
        );
        self.records.push(Record {
            group: self.name.clone(),
            id,
            mean_ns: mean,
            min_ns: min,
            max_ns: max,
            samples: samples.len(),
        });
    }

    /// Benchmarks a closure that receives an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher<'_>, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run_one(id.id.clone(), |b| f(b, input));
        self
    }

    /// Benchmarks a plain closure.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl Into<String>,
        mut f: F,
    ) -> &mut Self {
        self.run_one(id.into(), |b| f(b));
        self
    }

    /// Finishes the group, writing its JSON result file.
    pub fn finish(self) {
        let dir = output_dir();
        if fs::create_dir_all(&dir).is_err() {
            return;
        }
        let mut body = String::from("[");
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                body.push(',');
            }
            body.push_str(&format!(
                "\n  {{\"group\":\"{}\",\"id\":\"{}\",\"mean_ns\":{:.1},\"min_ns\":{:.1},\"max_ns\":{:.1},\"samples\":{}}}",
                json_escape(&r.group),
                json_escape(&r.id),
                r.mean_ns,
                r.min_ns,
                r.max_ns,
                r.samples,
            ));
        }
        body.push_str("\n]\n");
        let file = dir.join(format!("{}.json", self.name.replace(['/', ' '], "_")));
        let _ = fs::write(file, body);
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(1),
            records: Vec::new(),
            _criterion: self,
        }
    }

    /// Benchmarks a plain closure outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl Into<String> + Clone,
        mut f: F,
    ) -> &mut Self {
        let mut group = self.benchmark_group("ungrouped");
        group.bench_function(id, &mut f);
        group.finish();
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
