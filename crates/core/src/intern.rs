//! Global symbol interning.
//!
//! Every variable and relation name in the engine is an interned [`Sym`]: a
//! small integer handle into a process-wide, append-only string pool.  This is
//! the canonical-representation substrate of the workspace (in the spirit of
//! the succinct-representation literature): equality and hashing of symbols —
//! the innermost operations of the dense-order closure, DNF deduplication and
//! the Datalog engine — are single integer comparisons instead of string
//! walks, and every occurrence of a name shares one allocation.
//!
//! Interned strings are leaked deliberately: a database engine's vocabulary of
//! variable and relation names is tiny and lives for the whole process.  Each
//! symbol carries its `&'static str` inline, so the entire read path — string
//! access, comparison, ordering — touches no lock; the pool lock is only taken
//! while interning a new name.
//!
//! Ordering of [`Sym`] is **lexicographic on the underlying string** (with an
//! identity fast path), not on the numeric id.  This keeps every `BTreeSet` /
//! `BTreeMap` over variables deterministic and independent of interning order,
//! which the canonicalization machinery relies on for stable output.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// An interned string symbol: a numeric id plus the leaked string itself.
///
/// Cheap to copy; equality and hashing are single integer comparisons on the
/// id, and the string is read **without any lock** (the pool lock is touched
/// only while interning a new name).
#[derive(Clone, Copy)]
pub struct Sym {
    id: u32,
    text: &'static str,
}

struct Pool {
    map: HashMap<&'static str, Sym>,
}

fn pool() -> &'static RwLock<Pool> {
    static POOL: OnceLock<RwLock<Pool>> = OnceLock::new();
    POOL.get_or_init(|| {
        RwLock::new(Pool {
            map: HashMap::new(),
        })
    })
}

impl Sym {
    /// Interns a string, returning its symbol (idempotent).
    #[must_use]
    pub fn new(name: &str) -> Sym {
        let lock = pool();
        if let Some(&sym) = lock.read().expect("interner poisoned").map.get(name) {
            return sym;
        }
        let mut pool = lock.write().expect("interner poisoned");
        if let Some(&sym) = pool.map.get(name) {
            return sym;
        }
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let id = u32::try_from(pool.map.len()).expect("interner overflow");
        let sym = Sym { id, text: leaked };
        pool.map.insert(leaked, sym);
        sym
    }

    /// The interned string (lock-free).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        self.text
    }

    /// The numeric id (useful as a dense array index).
    #[must_use]
    pub fn id(self) -> u32 {
        self.id
    }
}

impl PartialEq for Sym {
    fn eq(&self, other: &Sym) -> bool {
        self.id == other.id
    }
}

impl Eq for Sym {}

impl std::hash::Hash for Sym {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

impl PartialOrd for Sym {
    fn partial_cmp(&self, other: &Sym) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Sym {
    fn cmp(&self, other: &Sym) -> std::cmp::Ordering {
        if self.id == other.id {
            return std::cmp::Ordering::Equal;
        }
        self.text.cmp(other.text)
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({})", self.as_str())
    }
}

impl From<&str> for Sym {
    fn from(s: &str) -> Sym {
        Sym::new(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_fast_to_compare() {
        let a = Sym::new("x");
        let b = Sym::new("x");
        let c = Sym::new("y");
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "x");
    }

    #[test]
    fn ordering_is_lexicographic() {
        // Intern out of lexicographic order on purpose.
        let z = Sym::new("zzz");
        let a = Sym::new("aaa");
        let m = Sym::new("mmm");
        let mut v = [z, a, m];
        v.sort();
        let names: Vec<&str> = v.iter().map(|s| s.as_str()).collect();
        assert_eq!(names, ["aaa", "mmm", "zzz"]);
    }

    #[test]
    fn symbols_are_sendable_between_threads() {
        let s = Sym::new("shared");
        let handle = std::thread::spawn(move || s.as_str().len());
        assert_eq!(handle.join().unwrap(), 6);
    }
}
