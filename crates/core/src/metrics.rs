//! Engine-wide metrics: atomic counters and log-bucketed latency histograms.
//!
//! A [`MetricsRegistry`] is the accumulation side — lock-free atomic counters
//! for operation counts (queries, commits, snapshots, fixpoints), per-strategy
//! join tallies, column-index build/reuse totals, and three latency
//! [`LatencyHistogram`]s (query evaluation, commit, fixpoint).  Every recording
//! path is a handful of relaxed atomic adds, so a registry can sit on the hot
//! path of a concurrent database handle without serializing readers.
//!
//! The observation side is [`MetricsRegistry::snapshot`]: a plain-data
//! [`MetricsSnapshot`] with resolved quantiles (p50/p90/p99/p999) per
//! histogram, renderable as a deterministic counter report
//! ([`MetricsSnapshot::render_counters`], timing-free so script transcripts
//! stay golden-testable) and exportable as JSON ([`MetricsSnapshot::to_json`],
//! hand-rolled — the workspace carries no serde).
//!
//! Histograms bucket by the position of the value's highest set bit: bucket
//! `i` holds durations `v` (in nanoseconds) with `2^i ≤ v < 2^(i+1)` (bucket 0
//! also takes `v = 0`).  Sixty-four buckets cover the full `u64` range, and a
//! quantile resolves to the *upper bound* of the bucket holding it — a
//! deterministic over-estimate within a factor of two, which is plenty for
//! latency monitoring and keeps the accumulation path allocation-free.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Number of power-of-two buckets: one per possible highest-bit position of a
/// `u64` nanosecond count.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A lock-free latency histogram with power-of-two buckets over nanoseconds.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: [(); HISTOGRAM_BUCKETS].map(|()| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }
}

/// The bucket index for a nanosecond value: the position of its highest set
/// bit (0 for values 0 and 1).
fn bucket_index(ns: u64) -> usize {
    (63 - ns.max(1).leading_zeros()) as usize
}

/// The inclusive `[lo, hi]` nanosecond range of bucket `i`.
#[must_use]
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    let lo = if i == 0 { 0 } else { 1u64 << i };
    let hi = if i >= 63 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    };
    (lo, hi)
}

impl LatencyHistogram {
    /// Records one observation.  Relaxed atomics: totals are exact, but a
    /// concurrent [`LatencyHistogram::snapshot`] may observe a count without
    /// its bucket (or vice versa) — quantiles are monitoring data, not an
    /// audit log.
    pub fn record(&self, elapsed: Duration) {
        self.record_value(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Records one raw `u64` observation — the histogram buckets by magnitude,
    /// so the same structure serves nanosecond latencies and size
    /// distributions (e.g. generalized-tuple counts of update deltas).
    pub fn record_value(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(value, Ordering::Relaxed);
    }

    /// The number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the histogram.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`LatencyHistogram`], with quantile resolution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (`buckets[i]` counts `2^i ≤ ns < 2^(i+1)`).
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed nanoseconds.
    pub sum_ns: u64,
}

impl HistogramSnapshot {
    /// The `q`-quantile (`0 < q ≤ 1`) in nanoseconds: the upper bound of the
    /// bucket containing the `⌈q·count⌉`-th smallest observation, or 0 when
    /// the histogram is empty.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
        #[allow(clippy::cast_sign_loss)]
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_bounds(i).1;
            }
        }
        bucket_bounds(HISTOGRAM_BUCKETS - 1).1
    }

    /// The mean observation in nanoseconds (0 when empty).
    #[must_use]
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count).unwrap_or(0)
    }

    /// The non-empty buckets as `(lo_ns, hi_ns, count)` triples — the compact
    /// form the JSON export and the load harness write out.
    #[must_use]
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| {
                let (lo, hi) = bucket_bounds(i);
                (lo, hi, n)
            })
            .collect()
    }

    /// Serializes the snapshot as a JSON object with count, sum, resolved
    /// p50/p90/p99/p999, and the non-empty buckets.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\"count\": {}, \"sum_ns\": {}, \"p50_ns\": {}, \"p90_ns\": {}, \"p99_ns\": {}, \"p999_ns\": {}, \"buckets\": [",
            self.count,
            self.sum_ns,
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99),
            self.quantile(0.999),
        ));
        for (k, (lo, hi, n)) in self.nonzero_buckets().into_iter().enumerate() {
            if k > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("[{lo}, {hi}, {n}]"));
        }
        out.push_str("]}");
        out
    }
}

/// Per-strategy join counts — one field per [`JoinStrategy`] variant.
///
/// [`JoinStrategy`]: crate::relation::JoinStrategy
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JoinStrategyCounts {
    /// Joins resolved purely by hash buckets on a pinned column.
    pub pin_hash: u64,
    /// Joins resolved purely by the sorted-endpoint interval sweep.
    pub index_sweep: u64,
    /// Joins refined by a second column's envelope index.
    pub box_sweep: u64,
    /// Full pairwise scans (no constant information or no shared column).
    pub scan: u64,
    /// Joins whose left tuples took different routes.
    pub mixed: u64,
}

impl JoinStrategyCounts {
    /// The element-wise difference `self - earlier` (saturating), for callers
    /// bracketing an operation with two snapshots.
    #[must_use]
    pub fn since(&self, earlier: &JoinStrategyCounts) -> JoinStrategyCounts {
        JoinStrategyCounts {
            pin_hash: self.pin_hash.saturating_sub(earlier.pin_hash),
            index_sweep: self.index_sweep.saturating_sub(earlier.index_sweep),
            box_sweep: self.box_sweep.saturating_sub(earlier.box_sweep),
            scan: self.scan.saturating_sub(earlier.scan),
            mixed: self.mixed.saturating_sub(earlier.mixed),
        }
    }

    /// Total joins across all strategies.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.pin_hash + self.index_sweep + self.box_sweep + self.scan + self.mixed
    }
}

/// How many recent generations the per-generation read tally remembers.
const READ_GENERATIONS: usize = 16;

/// Engine-wide metrics: operation counters, join-strategy and column-index
/// tallies, and latency histograms.  One registry per database handle; all
/// methods take `&self` and are safe under concurrent recording.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    queries: AtomicU64,
    checks: AtomicU64,
    commits: AtomicU64,
    snapshots: AtomicU64,
    fixpoints: AtomicU64,
    inserts: AtomicU64,
    deletes: AtomicU64,
    views_maintained: AtomicU64,
    views_recomputed: AtomicU64,
    index_builds: AtomicU64,
    index_reuses: AtomicU64,
    joins_pin_hash: AtomicU64,
    joins_index_sweep: AtomicU64,
    joins_box_sweep: AtomicU64,
    joins_scan: AtomicU64,
    joins_mixed: AtomicU64,
    query_latency: LatencyHistogram,
    commit_latency: LatencyHistogram,
    fixpoint_latency: LatencyHistogram,
    /// Size distribution (generalized-tuple counts) of the semantic deltas
    /// applied by `insert`/`delete` commits.
    update_delta_parts: LatencyHistogram,
    /// Ring of `(generation, reads)` tallies for the most recent generations
    /// a read was served against.
    reads_by_generation: Mutex<Vec<(u64, u64)>>,
}

impl MetricsRegistry {
    /// Records one evaluated query (or explain/trace — anything that ran a
    /// compiled plan against a snapshot): its latency, the snapshot generation
    /// it read, and the column-index / join-strategy work it performed.
    pub fn record_query(
        &self,
        generation: u64,
        elapsed: Duration,
        index_delta: (u64, u64),
        strategy_delta: &JoinStrategyCounts,
    ) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.query_latency.record(elapsed);
        self.record_read_generation(generation);
        self.record_eval_work(index_delta, strategy_delta);
    }

    /// Records one sentence check (also counted as a read of `generation`).
    pub fn record_check(
        &self,
        generation: u64,
        elapsed: Duration,
        index_delta: (u64, u64),
        strategy_delta: &JoinStrategyCounts,
    ) {
        self.checks.fetch_add(1, Ordering::Relaxed);
        self.query_latency.record(elapsed);
        self.record_read_generation(generation);
        self.record_eval_work(index_delta, strategy_delta);
    }

    /// Records one committed write and its end-to-end latency.
    pub fn record_commit(&self, elapsed: Duration) {
        self.commits.fetch_add(1, Ordering::Relaxed);
        self.commit_latency.record(elapsed);
    }

    /// Records one snapshot acquisition.
    pub fn record_snapshot(&self) {
        self.snapshots.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one fixpoint run: its latency and the evaluation work of all
    /// its rounds.
    pub fn record_fixpoint(
        &self,
        elapsed: Duration,
        index_delta: (u64, u64),
        strategy_delta: &JoinStrategyCounts,
    ) {
        self.fixpoints.fetch_add(1, Ordering::Relaxed);
        self.fixpoint_latency.record(elapsed);
        self.record_eval_work(index_delta, strategy_delta);
    }

    /// Records one `insert` update commit and the size (generalized-tuple
    /// count) of the semantic delta it applied — 0 when every inserted tuple
    /// was unsatisfiable or already absorbed by the stored value.
    pub fn record_insert(&self, delta_parts: u64) {
        self.inserts.fetch_add(1, Ordering::Relaxed);
        self.update_delta_parts.record_value(delta_parts);
    }

    /// Records one `delete` update commit and the size of the region it
    /// actually removed — 0 for deletes of never-inserted tuples.
    pub fn record_delete(&self, delta_parts: u64) {
        self.deletes.fetch_add(1, Ordering::Relaxed);
        self.update_delta_parts.record_value(delta_parts);
    }

    /// Records one materialized answer refreshed **incrementally** (its
    /// maintenance plan consumed the update delta).
    pub fn record_view_maintained(&self) {
        self.views_maintained.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one materialized answer (or fixpoint) refreshed by **full
    /// recomputation** — the fallback when no maintenance plan applies.
    pub fn record_view_recomputed(&self) {
        self.views_recomputed.fetch_add(1, Ordering::Relaxed);
    }

    fn record_eval_work(&self, index_delta: (u64, u64), strategy_delta: &JoinStrategyCounts) {
        self.index_builds
            .fetch_add(index_delta.0, Ordering::Relaxed);
        self.index_reuses
            .fetch_add(index_delta.1, Ordering::Relaxed);
        self.joins_pin_hash
            .fetch_add(strategy_delta.pin_hash, Ordering::Relaxed);
        self.joins_index_sweep
            .fetch_add(strategy_delta.index_sweep, Ordering::Relaxed);
        self.joins_box_sweep
            .fetch_add(strategy_delta.box_sweep, Ordering::Relaxed);
        self.joins_scan
            .fetch_add(strategy_delta.scan, Ordering::Relaxed);
        self.joins_mixed
            .fetch_add(strategy_delta.mixed, Ordering::Relaxed);
    }

    fn record_read_generation(&self, generation: u64) {
        let mut tallies = self
            .reads_by_generation
            .lock()
            .expect("metrics generation tally poisoned");
        if let Some(entry) = tallies.iter_mut().find(|(g, _)| *g == generation) {
            entry.1 += 1;
            return;
        }
        tallies.push((generation, 1));
        if tallies.len() > READ_GENERATIONS {
            // Evict the oldest generation (smallest stamp).
            if let Some(pos) = tallies
                .iter()
                .enumerate()
                .min_by_key(|(_, (g, _))| *g)
                .map(|(i, _)| i)
            {
                tallies.remove(pos);
            }
        }
    }

    /// A point-in-time copy of every counter and histogram.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut reads_by_generation = self
            .reads_by_generation
            .lock()
            .expect("metrics generation tally poisoned")
            .clone();
        reads_by_generation.sort_unstable();
        MetricsSnapshot {
            queries: self.queries.load(Ordering::Relaxed),
            checks: self.checks.load(Ordering::Relaxed),
            commits: self.commits.load(Ordering::Relaxed),
            snapshots: self.snapshots.load(Ordering::Relaxed),
            fixpoints: self.fixpoints.load(Ordering::Relaxed),
            inserts: self.inserts.load(Ordering::Relaxed),
            deletes: self.deletes.load(Ordering::Relaxed),
            views_maintained: self.views_maintained.load(Ordering::Relaxed),
            views_recomputed: self.views_recomputed.load(Ordering::Relaxed),
            index_builds: self.index_builds.load(Ordering::Relaxed),
            index_reuses: self.index_reuses.load(Ordering::Relaxed),
            join_strategies: JoinStrategyCounts {
                pin_hash: self.joins_pin_hash.load(Ordering::Relaxed),
                index_sweep: self.joins_index_sweep.load(Ordering::Relaxed),
                box_sweep: self.joins_box_sweep.load(Ordering::Relaxed),
                scan: self.joins_scan.load(Ordering::Relaxed),
                mixed: self.joins_mixed.load(Ordering::Relaxed),
            },
            query_latency: self.query_latency.snapshot(),
            commit_latency: self.commit_latency.snapshot(),
            fixpoint_latency: self.fixpoint_latency.snapshot(),
            update_delta_parts: self.update_delta_parts.snapshot(),
            reads_by_generation,
            plan_cache: None,
        }
    }
}

/// A point-in-time copy of a [`MetricsRegistry`] (plain data, no atomics).
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Queries (and explains/traces) evaluated against snapshots.
    pub queries: u64,
    /// Sentence checks evaluated.
    pub checks: u64,
    /// Committed writes.
    pub commits: u64,
    /// Snapshots taken.
    pub snapshots: u64,
    /// Fixpoint runs.
    pub fixpoints: u64,
    /// `insert` update commits.
    pub inserts: u64,
    /// `delete` update commits.
    pub deletes: u64,
    /// Materialized answers refreshed incrementally by a maintenance plan.
    pub views_maintained: u64,
    /// Materialized answers (and fixpoints) refreshed by full recomputation.
    pub views_recomputed: u64,
    /// Column indexes built (cache misses) during recorded operations.
    pub index_builds: u64,
    /// Column index cache hits during recorded operations.
    pub index_reuses: u64,
    /// Per-strategy join counts during recorded operations.
    pub join_strategies: JoinStrategyCounts,
    /// Query-evaluation latency (queries and checks).
    pub query_latency: HistogramSnapshot,
    /// Commit latency.
    pub commit_latency: HistogramSnapshot,
    /// Fixpoint-run latency.
    pub fixpoint_latency: HistogramSnapshot,
    /// Size distribution (generalized-tuple counts) of the semantic deltas
    /// applied by `insert`/`delete` commits.
    pub update_delta_parts: HistogramSnapshot,
    /// Reads served per snapshot generation, ascending by generation
    /// (the most recent [`READ_GENERATIONS`] generations... capped ring).
    pub reads_by_generation: Vec<(u64, u64)>,
    /// Plan-cache counters, when the owner attached them: `(compile_hits,
    /// compile_misses, reoptimize_hits, reoptimize_misses)`.
    pub plan_cache: Option<(u64, u64, u64, u64)>,
}

impl MetricsSnapshot {
    /// The deterministic (timing-free) counter report behind the `metrics;`
    /// script statement: operation counts, join strategies, index counters,
    /// and histogram sample counts — never latency values, so transcripts are
    /// byte-stable across machines and thread counts.
    #[must_use]
    pub fn render_counters(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "metrics: {q} query eval(s), {c} check(s), {w} commit(s), {s} snapshot(s), {f} fixpoint run(s)\n",
            q = self.queries,
            c = self.checks,
            w = self.commits,
            s = self.snapshots,
            f = self.fixpoints,
        ));
        let j = &self.join_strategies;
        out.push_str(&format!(
            "join strategies: {ph} pin-hash, {is} index-sweep, {bs} box-sweep, {sc} scan, {mx} mixed\n",
            ph = j.pin_hash,
            is = j.index_sweep,
            bs = j.box_sweep,
            sc = j.scan,
            mx = j.mixed,
        ));
        out.push_str(&format!(
            "column indexes: {b} built, {r} reused\n",
            b = self.index_builds,
            r = self.index_reuses,
        ));
        out.push_str(&format!(
            "updates: {i} insert(s), {d} delete(s); views: {m} maintained, {r} recomputed\n",
            i = self.inserts,
            d = self.deletes,
            m = self.views_maintained,
            r = self.views_recomputed,
        ));
        if let Some((ch, cm, rh, rm)) = self.plan_cache {
            out.push_str(&format!(
                "plan cache: compile {ch} hit(s) / {cm} miss(es); reoptimize {rh} hit(s) / {rm} miss(es)\n",
            ));
        }
        out.push_str(&format!(
            "latency samples: {q} query, {c} commit, {f} fixpoint\n",
            q = self.query_latency.count,
            c = self.commit_latency.count,
            f = self.fixpoint_latency.count,
        ));
        out
    }

    /// Serializes the full snapshot — counters, per-generation reads, and all
    /// three histograms with resolved quantiles — as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"counters\": {{\"queries\": {}, \"checks\": {}, \"commits\": {}, \"snapshots\": {}, \"fixpoints\": {}, \"inserts\": {}, \"deletes\": {}, \"views_maintained\": {}, \"views_recomputed\": {}}},\n",
            self.queries, self.checks, self.commits, self.snapshots, self.fixpoints,
            self.inserts, self.deletes, self.views_maintained, self.views_recomputed
        ));
        let j = &self.join_strategies;
        out.push_str(&format!(
            "  \"join_strategies\": {{\"pin_hash\": {}, \"index_sweep\": {}, \"box_sweep\": {}, \"scan\": {}, \"mixed\": {}}},\n",
            j.pin_hash, j.index_sweep, j.box_sweep, j.scan, j.mixed
        ));
        out.push_str(&format!(
            "  \"column_indexes\": {{\"built\": {}, \"reused\": {}}},\n",
            self.index_builds, self.index_reuses
        ));
        if let Some((ch, cm, rh, rm)) = self.plan_cache {
            out.push_str(&format!(
                "  \"plan_cache\": {{\"compile_hits\": {ch}, \"compile_misses\": {cm}, \"reoptimize_hits\": {rh}, \"reoptimize_misses\": {rm}}},\n",
            ));
        }
        out.push_str("  \"reads_by_generation\": [");
        for (k, (g, n)) in self.reads_by_generation.iter().enumerate() {
            if k > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!("[{g}, {n}]"));
        }
        out.push_str("],\n");
        out.push_str(&format!(
            "  \"query_latency_ns\": {},\n",
            self.query_latency.to_json()
        ));
        out.push_str(&format!(
            "  \"commit_latency_ns\": {},\n",
            self.commit_latency.to_json()
        ));
        out.push_str(&format!(
            "  \"fixpoint_latency_ns\": {},\n",
            self.fixpoint_latency.to_json()
        ));
        out.push_str(&format!(
            "  \"update_delta_parts\": {}\n",
            self.update_delta_parts.to_json()
        ));
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_matches_bounds() {
        for ns in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
            let i = bucket_index(ns);
            let (lo, hi) = bucket_bounds(i);
            assert!(lo <= ns && ns <= hi, "ns={ns} bucket={i} range=[{lo},{hi}]");
        }
    }

    #[test]
    fn quantiles_resolve_to_bucket_upper_bounds() {
        let h = LatencyHistogram::default();
        // 90 fast observations (~1µs bucket) and 10 slow ones (~1ms bucket).
        for _ in 0..90 {
            h.record(Duration::from_nanos(1_100));
        }
        for _ in 0..10 {
            h.record(Duration::from_nanos(1_100_000));
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        let fast = bucket_bounds(bucket_index(1_100)).1;
        let slow = bucket_bounds(bucket_index(1_100_000)).1;
        assert_eq!(snap.quantile(0.50), fast);
        assert_eq!(snap.quantile(0.90), fast);
        assert_eq!(snap.quantile(0.99), slow);
        assert_eq!(snap.quantile(0.999), slow);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let snap = LatencyHistogram::default().snapshot();
        assert_eq!(snap.quantile(0.5), 0);
        assert_eq!(snap.mean_ns(), 0);
        assert!(snap.nonzero_buckets().is_empty());
    }

    #[test]
    fn registry_snapshot_accumulates() {
        let reg = MetricsRegistry::default();
        reg.record_snapshot();
        reg.record_query(
            3,
            Duration::from_micros(10),
            (2, 4),
            &JoinStrategyCounts {
                pin_hash: 1,
                ..JoinStrategyCounts::default()
            },
        );
        reg.record_commit(Duration::from_micros(50));
        let snap = reg.snapshot();
        assert_eq!(snap.snapshots, 1);
        assert_eq!(snap.queries, 1);
        assert_eq!(snap.commits, 1);
        assert_eq!(snap.index_builds, 2);
        assert_eq!(snap.index_reuses, 4);
        assert_eq!(snap.join_strategies.pin_hash, 1);
        assert_eq!(snap.reads_by_generation, vec![(3, 1)]);
        assert_eq!(snap.query_latency.count, 1);
        assert_eq!(snap.commit_latency.count, 1);
    }

    #[test]
    fn generation_ring_keeps_most_recent() {
        let reg = MetricsRegistry::default();
        for g in 0..40u64 {
            reg.record_query(
                g,
                Duration::from_nanos(1),
                (0, 0),
                &JoinStrategyCounts::default(),
            );
        }
        let snap = reg.snapshot();
        assert_eq!(snap.reads_by_generation.len(), READ_GENERATIONS);
        // The oldest generations were evicted; the newest survive.
        assert!(snap.reads_by_generation.iter().all(|&(g, _)| g >= 24));
    }

    #[test]
    fn update_counters_and_delta_histogram_accumulate() {
        let reg = MetricsRegistry::default();
        reg.record_insert(3);
        reg.record_insert(0);
        reg.record_delete(1);
        reg.record_view_maintained();
        reg.record_view_recomputed();
        reg.record_view_recomputed();
        let snap = reg.snapshot();
        assert_eq!(snap.inserts, 2);
        assert_eq!(snap.deletes, 1);
        assert_eq!(snap.views_maintained, 1);
        assert_eq!(snap.views_recomputed, 2);
        assert_eq!(snap.update_delta_parts.count, 3);
        assert_eq!(snap.update_delta_parts.sum_ns, 4);
        assert!(snap
            .render_counters()
            .contains("updates: 2 insert(s), 1 delete(s); views: 1 maintained, 2 recomputed"));
    }

    #[test]
    fn json_export_names_every_section() {
        let reg = MetricsRegistry::default();
        reg.record_query(
            1,
            Duration::from_micros(3),
            (1, 0),
            &JoinStrategyCounts::default(),
        );
        reg.record_commit(Duration::from_micros(7));
        let mut snap = reg.snapshot();
        snap.plan_cache = Some((4, 2, 2, 2));
        let json = snap.to_json();
        for key in [
            "\"counters\"",
            "\"join_strategies\"",
            "\"column_indexes\"",
            "\"plan_cache\"",
            "\"reads_by_generation\"",
            "\"query_latency_ns\"",
            "\"commit_latency_ns\"",
            "\"fixpoint_latency_ns\"",
            "\"update_delta_parts\"",
            "\"inserts\"",
            "\"deletes\"",
            "\"views_maintained\"",
            "\"views_recomputed\"",
            "\"p50_ns\"",
            "\"p90_ns\"",
            "\"p99_ns\"",
            "\"p999_ns\"",
            "\"buckets\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
