//! Normal forms for dense-order constraint relations (Section 6 of the paper).
//!
//! * [`PrimeTuple`] — the *tabular form* of Example 6.8: per-variable lower/upper
//!   bounds plus the matrix `µ` of pairwise variable relations drawn from
//!   `{<, =, >, ?}`.  Primitive tuples involve only `=` and `<` (Definition 6.7); a
//!   conjunction using `≤` is decomposed into primitive tuples exactly as in the proof
//!   of Lemma 6.10.
//! * [`cover`] — a non-redundant set of prime tuples equivalent to a relation
//!   (Definition 6.9), the object the DATALOG¬ PTIME-capture proof encodes on the
//!   Turing tape (Lemma 6.12).
//! * [`Shape2`] — the atomic shapes of Fig. 9 (points, segments, rectangles,
//!   triangles and their unbounded variants) that classify 2-dimensional prime tuples.
//! * [`decompose_1d`] — the canonical decomposition of a monadic relation into maximal
//!   points and intervals, used throughout the query catalog (1-D connectivity,
//!   homeomorphism, parity, …) and witnessing Proposition 2.9's "finite union of
//!   intervals" shape.

use crate::dense::{DenseAtom, DenseOrder, OrderClosure};
use crate::logic::{Term, Var};
use crate::relation::Relation;
use crate::theory::{Conj, Theory};
use frdb_num::Rat;
use std::fmt;

/// A bound of a variable in a prime tuple.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Bound {
    /// Unbounded (`-∞` as a lower bound, `+∞` as an upper bound).
    Infinite,
    /// A finite rational bound.  In a *primitive* tuple the bound is always strict
    /// unless the variable is pinned (`lower = upper`, the "degenerated case" of
    /// Example 6.8).
    Finite(Rat),
}

impl Bound {
    /// The finite value, if any.
    #[must_use]
    pub fn value(&self) -> Option<&Rat> {
        match self {
            Bound::Infinite => None,
            Bound::Finite(v) => Some(v),
        }
    }
}

/// Entry of the `µ` matrix: the relation between two variables of a prime tuple.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PairRel {
    /// `xᵢ < xⱼ`.
    Lt,
    /// `xᵢ = xⱼ`.
    Eq,
    /// `xᵢ > xⱼ`.
    Gt,
    /// No relation (`?` in Example 6.8).
    Unrelated,
}

impl fmt::Display for PairRel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PairRel::Lt => write!(f, "<"),
            PairRel::Eq => write!(f, "="),
            PairRel::Gt => write!(f, ">"),
            PairRel::Unrelated => write!(f, "?"),
        }
    }
}

/// A prime primitive tuple in tabular form (Example 6.8): for each variable `xᵢ`
/// either `lowerᵢ < xᵢ < upperᵢ` (with the tightest entailed bounds) or the pinned
/// case `xᵢ = lowerᵢ = upperᵢ`, plus the matrix of pairwise relations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PrimeTuple {
    vars: Vec<Var>,
    lower: Vec<Bound>,
    upper: Vec<Bound>,
    pinned: Vec<bool>,
    pairs: Vec<Vec<PairRel>>,
}

impl PrimeTuple {
    /// The variables (columns) of the tuple.
    #[must_use]
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// The arity of the tuple.
    #[must_use]
    pub fn arity(&self) -> usize {
        self.vars.len()
    }

    /// The lower bound of column `i`.
    #[must_use]
    pub fn lower(&self, i: usize) -> &Bound {
        &self.lower[i]
    }

    /// The upper bound of column `i`.
    #[must_use]
    pub fn upper(&self, i: usize) -> &Bound {
        &self.upper[i]
    }

    /// Whether column `i` is pinned to a single value (`lower = upper`).
    #[must_use]
    pub fn is_pinned(&self, i: usize) -> bool {
        self.pinned[i]
    }

    /// The `µ` matrix entry for columns `(i, j)`.
    #[must_use]
    pub fn pair(&self, i: usize, j: usize) -> PairRel {
        self.pairs[i][j]
    }

    /// Converts back to a conjunction of dense-order atoms.
    #[must_use]
    pub fn to_conj(&self) -> Conj<DenseAtom> {
        let mut out = Vec::new();
        for (i, v) in self.vars.iter().enumerate() {
            let x = Term::Var(v.clone());
            if self.pinned[i] {
                if let Bound::Finite(c) = &self.lower[i] {
                    out.push(DenseAtom::eq(x.clone(), Term::Const(c.clone())));
                }
                continue;
            }
            if let Bound::Finite(l) = &self.lower[i] {
                out.push(DenseAtom::lt(Term::Const(l.clone()), x.clone()));
            }
            if let Bound::Finite(u) = &self.upper[i] {
                out.push(DenseAtom::lt(x.clone(), Term::Const(u.clone())));
            }
        }
        for i in 0..self.vars.len() {
            for j in (i + 1)..self.vars.len() {
                let xi = Term::Var(self.vars[i].clone());
                let xj = Term::Var(self.vars[j].clone());
                match self.pairs[i][j] {
                    PairRel::Lt => out.push(DenseAtom::lt(xi, xj)),
                    PairRel::Gt => out.push(DenseAtom::lt(xj, xi)),
                    PairRel::Eq => out.push(DenseAtom::eq(xi, xj)),
                    PairRel::Unrelated => {}
                }
            }
        }
        out
    }

    /// Builds a prime tuple from a *primitive* conjunction (only `<` and `=` entailed
    /// between every pair of terms) over the given columns.  Returns `None` if the
    /// conjunction is unsatisfiable or not primitive (some pair is related only by a
    /// non-strict `≤`).
    #[must_use]
    pub fn from_primitive(vars: &[Var], conj: &[DenseAtom]) -> Option<PrimeTuple> {
        let extra: Vec<Term> = vars.iter().map(|v| Term::Var(v.clone())).collect();
        let closure = OrderClosure::new(conj, &extra);
        if !closure.satisfiable() {
            return None;
        }
        let constants: Vec<Rat> = closure
            .nodes()
            .iter()
            .filter_map(|t| t.as_const().cloned())
            .collect();
        let mut lower = Vec::with_capacity(vars.len());
        let mut upper = Vec::with_capacity(vars.len());
        let mut pinned = Vec::with_capacity(vars.len());
        for v in vars {
            let x = Term::Var(v.clone());
            let mut lo = Bound::Infinite;
            let mut hi = Bound::Infinite;
            let mut pin: Option<Rat> = None;
            for c in &constants {
                let ct = Term::Const(c.clone());
                if closure.entails(&DenseAtom::eq(x.clone(), ct.clone())) {
                    pin = Some(c.clone());
                } else if closure.entails(&DenseAtom::lt(ct.clone(), x.clone())) {
                    if lo.value().is_none_or(|cur| c > cur) {
                        lo = Bound::Finite(c.clone());
                    }
                } else if closure.entails(&DenseAtom::lt(x.clone(), ct.clone())) {
                    if hi.value().is_none_or(|cur| c < cur) {
                        hi = Bound::Finite(c.clone());
                    }
                } else if closure.entails(&DenseAtom::le(ct.clone(), x.clone()))
                    || closure.entails(&DenseAtom::le(x.clone(), ct.clone()))
                {
                    // A non-strict bound that is neither an equality nor strict: the
                    // conjunction is not primitive.
                    return None;
                }
            }
            match pin {
                Some(c) => {
                    lower.push(Bound::Finite(c.clone()));
                    upper.push(Bound::Finite(c));
                    pinned.push(true);
                }
                None => {
                    lower.push(lo);
                    upper.push(hi);
                    pinned.push(false);
                }
            }
        }
        let mut pairs = vec![vec![PairRel::Unrelated; vars.len()]; vars.len()];
        for i in 0..vars.len() {
            pairs[i][i] = PairRel::Eq;
            for j in 0..vars.len() {
                if i == j {
                    continue;
                }
                let xi = Term::Var(vars[i].clone());
                let xj = Term::Var(vars[j].clone());
                if closure.entails(&DenseAtom::eq(xi.clone(), xj.clone())) {
                    pairs[i][j] = PairRel::Eq;
                } else if closure.entails(&DenseAtom::lt(xi.clone(), xj.clone())) {
                    pairs[i][j] = PairRel::Lt;
                } else if closure.entails(&DenseAtom::lt(xj.clone(), xi.clone())) {
                    pairs[i][j] = PairRel::Gt;
                } else if closure.entails(&DenseAtom::le(xi.clone(), xj.clone()))
                    || closure.entails(&DenseAtom::le(xj, xi))
                {
                    return None;
                }
            }
        }
        Some(PrimeTuple {
            vars: vars.to_vec(),
            lower,
            upper,
            pinned,
            pairs,
        })
    }
}

impl fmt::Display for PrimeTuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, v) in self.vars.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            if self.pinned[i] {
                match &self.lower[i] {
                    Bound::Finite(c) => write!(f, "{v} = {c}")?,
                    Bound::Infinite => write!(f, "{v} = ?")?,
                }
            } else {
                match &self.lower[i] {
                    Bound::Finite(c) => write!(f, "{c} < {v}")?,
                    Bound::Infinite => write!(f, "-∞ < {v}")?,
                }
                match &self.upper[i] {
                    Bound::Finite(c) => write!(f, " < {c}")?,
                    Bound::Infinite => write!(f, " < +∞")?,
                }
            }
        }
        for i in 0..self.vars.len() {
            for j in (i + 1)..self.vars.len() {
                if self.pairs[i][j] != PairRel::Unrelated {
                    write!(
                        f,
                        " ∧ {} {} {}",
                        self.vars[i], self.pairs[i][j], self.vars[j]
                    )?;
                }
            }
        }
        Ok(())
    }
}

/// Decomposes a conjunction into *primitive* conjunctions (only `<` and `=`),
/// following the proof of Lemma 6.10: every entailed non-strict `≤` between a pair of
/// terms branches into the strict and the equal case.
#[must_use]
pub fn primitive_decomposition(vars: &[Var], conj: &[DenseAtom]) -> Vec<Conj<DenseAtom>> {
    fn find_nonprimitive(vars: &[Var], conj: &[DenseAtom]) -> Option<(Term, Term)> {
        let extra: Vec<Term> = vars.iter().map(|v| Term::Var(v.clone())).collect();
        let closure = OrderClosure::new(conj, &extra);
        if !closure.satisfiable() {
            return None;
        }
        let nodes = closure.nodes().to_vec();
        for (i, s) in nodes.iter().enumerate() {
            for t in nodes.iter().skip(i + 1) {
                if s.as_const().is_some() && t.as_const().is_some() {
                    continue;
                }
                for (a, b) in [(s, t), (t, s)] {
                    let le = DenseAtom::le(a.clone(), b.clone());
                    let lt = DenseAtom::lt(a.clone(), b.clone());
                    let eq = DenseAtom::eq(a.clone(), b.clone());
                    if closure.entails(&le) && !closure.entails(&lt) && !closure.entails(&eq) {
                        return Some((a.clone(), b.clone()));
                    }
                }
            }
        }
        None
    }

    if !DenseOrder::satisfiable(conj) {
        return Vec::new();
    }
    match find_nonprimitive(vars, conj) {
        None => vec![conj.to_vec()],
        Some((s, t)) => {
            let mut with_lt = conj.to_vec();
            with_lt.push(DenseAtom::lt(s.clone(), t.clone()));
            let mut with_eq = conj.to_vec();
            with_eq.push(DenseAtom::eq(s, t));
            let mut out = primitive_decomposition(vars, &with_lt);
            out.extend(primitive_decomposition(vars, &with_eq));
            out
        }
    }
}

/// Computes a cover of a relation (Definition 6.9): a set of prime primitive tuples
/// whose union is equivalent to the relation, with tuples contained in another tuple
/// removed.
#[must_use]
pub fn cover(relation: &Relation<DenseOrder>) -> Vec<PrimeTuple> {
    let vars = relation.vars().to_vec();
    let mut primes: Vec<PrimeTuple> = Vec::new();
    for conj in relation.tuples() {
        for prim in primitive_decomposition(&vars, conj.atoms()) {
            if let Some(pt) = PrimeTuple::from_primitive(&vars, &prim) {
                primes.push(pt);
            }
        }
    }
    // Drop exact duplicates and tuples contained in another tuple.
    let mut keep = vec![true; primes.len()];
    for i in 0..primes.len() {
        if !keep[i] {
            continue;
        }
        for j in 0..primes.len() {
            if i == j || !keep[j] {
                continue;
            }
            if DenseOrder::implies(&primes[i].to_conj(), &primes[j].to_conj())
                && (i > j || !DenseOrder::implies(&primes[j].to_conj(), &primes[i].to_conj()))
            {
                keep[i] = false;
                break;
            }
        }
    }
    primes
        .into_iter()
        .zip(keep)
        .filter_map(|(p, k)| if k { Some(p) } else { None })
        .collect()
}

/// Computes a *non-redundant* cover: like [`cover`], and additionally removes tuples
/// whose region is already covered by the union of the others (the non-redundancy
/// requirement of Definition 6.9).
#[must_use]
pub fn nonredundant_cover(relation: &Relation<DenseOrder>) -> Vec<PrimeTuple> {
    let vars = relation.vars().to_vec();
    let mut tuples = cover(relation);
    let mut i = 0;
    while i < tuples.len() {
        let mut rest: Vec<Conj<DenseAtom>> = Vec::new();
        for (j, t) in tuples.iter().enumerate() {
            if j != i {
                rest.push(t.to_conj());
            }
        }
        let without = Relation::<DenseOrder>::from_dnf(vars.clone(), rest);
        let this = Relation::<DenseOrder>::from_dnf(vars.clone(), vec![tuples[i].to_conj()]);
        if this.subset_of(&without) {
            tuples.remove(i);
        } else {
            i += 1;
        }
    }
    tuples
}

/// The atomic shapes of two-dimensional dense-order prime tuples (Fig. 9).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Shape2 {
    /// An isolated point.
    Point,
    /// A segment of a vertical line (`x` pinned).
    VerticalSegment,
    /// A segment of a horizontal line (`y` pinned).
    HorizontalSegment,
    /// A segment of the diagonal `x = y`.
    DiagonalSegment,
    /// An (open) axis-parallel rectangle.
    Rectangle,
    /// An (open) triangle cut from a rectangle by the diagonal `x = y`.
    Triangle,
    /// A region with at least one unbounded side (half-plane, band, quadrant, …).
    Unbounded,
}

/// Classifies a 2-dimensional prime tuple into one of the atomic shapes of Fig. 9.
///
/// # Panics
/// Panics if the tuple's arity is not 2.
#[must_use]
pub fn classify_shape2(tuple: &PrimeTuple) -> Shape2 {
    assert_eq!(tuple.arity(), 2, "shape classification requires arity 2");
    let bounded = |i: usize| {
        tuple.is_pinned(i)
            || (matches!(tuple.lower(i), Bound::Finite(_))
                && matches!(tuple.upper(i), Bound::Finite(_)))
    };
    let diagonal = tuple.pair(0, 1) == PairRel::Eq;
    match (tuple.is_pinned(0), tuple.is_pinned(1)) {
        (true, true) => Shape2::Point,
        (true, false) => {
            if bounded(1) {
                Shape2::VerticalSegment
            } else {
                Shape2::Unbounded
            }
        }
        (false, true) => {
            if bounded(0) {
                Shape2::HorizontalSegment
            } else {
                Shape2::Unbounded
            }
        }
        (false, false) => {
            if diagonal {
                if bounded(0) && bounded(1) {
                    Shape2::DiagonalSegment
                } else {
                    Shape2::Unbounded
                }
            } else if !bounded(0) || !bounded(1) {
                Shape2::Unbounded
            } else if tuple.pair(0, 1) == PairRel::Unrelated {
                Shape2::Rectangle
            } else {
                Shape2::Triangle
            }
        }
    }
}

/// A maximal piece of a monadic dense-order relation: an isolated point or an interval
/// with optional (and possibly open) endpoints.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Piece1 {
    /// An isolated point.
    Point(Rat),
    /// A maximal interval.
    Interval {
        /// Lower endpoint (`None` = `-∞`) and whether it is included.
        lo: Option<(Rat, bool)>,
        /// Upper endpoint (`None` = `+∞`) and whether it is included.
        hi: Option<(Rat, bool)>,
    },
}

impl Piece1 {
    /// Returns `true` iff the piece is a single point.
    #[must_use]
    pub fn is_point(&self) -> bool {
        matches!(self, Piece1::Point(_))
    }
}

/// Decomposes a monadic relation into its maximal pieces (points and intervals) in
/// increasing order — the executable form of "a finite union of points and intervals"
/// (Sections 2.2 and 6; Proposition 2.9 gives the same shape for polynomial
/// constraints).
///
/// # Panics
/// Panics if the relation is not monadic.
#[must_use]
pub fn decompose_1d(relation: &Relation<DenseOrder>) -> Vec<Piece1> {
    assert_eq!(
        relation.arity(),
        1,
        "decompose_1d requires a monadic relation"
    );
    let mut constants: Vec<Rat> = relation.constants().into_iter().collect();
    constants.sort();
    constants.dedup();
    // Elementary sample points: one per constant, one per open region between
    // consecutive constants, plus one beyond each end.
    #[derive(Clone)]
    enum Region {
        Below,
        At(usize),
        Between(usize, usize),
        Above,
    }
    let mut regions: Vec<(Region, Rat)> = Vec::new();
    if constants.is_empty() {
        // No constants: the relation is ∅ or Q.
        return if relation.contains(&[Rat::zero()]) {
            vec![Piece1::Interval { lo: None, hi: None }]
        } else {
            Vec::new()
        };
    }
    regions.push((Region::Below, &constants[0] - &Rat::one()));
    for i in 0..constants.len() {
        regions.push((Region::At(i), constants[i].clone()));
        if i + 1 < constants.len() {
            regions.push((
                Region::Between(i, i + 1),
                constants[i].midpoint(&constants[i + 1]),
            ));
        }
    }
    regions.push((Region::Above, constants.last().unwrap() + &Rat::one()));

    let membership: Vec<bool> = regions
        .iter()
        .map(|(_, s)| relation.contains(std::slice::from_ref(s)))
        .collect();

    // Merge consecutive member regions into maximal pieces.
    let mut pieces: Vec<Piece1> = Vec::new();
    let mut i = 0;
    while i < regions.len() {
        if !membership[i] {
            i += 1;
            continue;
        }
        let start = i;
        let mut end = i;
        while end + 1 < regions.len() && membership[end + 1] {
            end += 1;
        }
        // Determine the piece spanned by regions[start..=end].
        let lo = match &regions[start].0 {
            Region::Below => None,
            Region::At(k) => Some((constants[*k].clone(), true)),
            Region::Between(k, _) => Some((constants[*k].clone(), false)),
            Region::Above => Some((constants[constants.len() - 1].clone(), false)),
        };
        let hi = match &regions[end].0 {
            Region::Above => None,
            Region::At(k) => Some((constants[*k].clone(), true)),
            Region::Between(_, k) => Some((constants[*k].clone(), false)),
            Region::Below => Some((constants[0].clone(), false)),
        };
        if start == end {
            if let Region::At(k) = &regions[start].0 {
                pieces.push(Piece1::Point(constants[*k].clone()));
                i = end + 1;
                continue;
            }
        }
        pieces.push(Piece1::Interval { lo, hi });
        i = end + 1;
    }
    pieces
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relation::GenTuple;

    fn x() -> Term {
        Term::var("x")
    }
    fn y() -> Term {
        Term::var("y")
    }
    fn vx() -> Var {
        Var::new("x")
    }
    fn vy() -> Var {
        Var::new("y")
    }
    fn r(v: i64) -> Rat {
        Rat::from_i64(v)
    }

    #[test]
    fn example_6_8_prime_tuple() {
        // 0 < x1 < 5 ∧ 0 < x2 < x1 ∧ x3 < 3: the prime equivalent adds x2 < 5.
        let vars = vec![Var::new("x1"), Var::new("x2"), Var::new("x3")];
        let conj = vec![
            DenseAtom::lt(Term::cst(0), Term::var("x1")),
            DenseAtom::lt(Term::var("x1"), Term::cst(5)),
            DenseAtom::lt(Term::cst(0), Term::var("x2")),
            DenseAtom::lt(Term::var("x2"), Term::var("x1")),
            DenseAtom::lt(Term::var("x3"), Term::cst(3)),
        ];
        let pt = PrimeTuple::from_primitive(&vars, &conj).expect("primitive");
        // x2's tightest upper bound is 5 (through x1), exactly as computed in §6.
        assert_eq!(pt.upper(1), &Bound::Finite(r(5)));
        assert_eq!(pt.lower(1), &Bound::Finite(r(0)));
        assert_eq!(pt.upper(2), &Bound::Finite(r(3)));
        assert_eq!(pt.lower(2), &Bound::Infinite);
        assert_eq!(pt.pair(1, 0), PairRel::Lt);
        assert_eq!(pt.pair(0, 1), PairRel::Gt);
        assert_eq!(pt.pair(0, 2), PairRel::Unrelated);
        // Round-trip: the regenerated conjunction is equivalent to the original.
        assert!(DenseOrder::implies(&pt.to_conj(), &conj));
        assert!(DenseOrder::implies(&conj, &pt.to_conj()));
    }

    #[test]
    fn nonstrict_conjunction_is_not_primitive_and_decomposes() {
        let vars = vec![vx()];
        let conj = vec![
            DenseAtom::le(Term::cst(0), x()),
            DenseAtom::le(x(), Term::cst(1)),
        ];
        assert!(PrimeTuple::from_primitive(&vars, &conj).is_none());
        let prims = primitive_decomposition(&vars, &conj);
        // [0,1] splits into {0}, (0,1), {1}, possibly with overlaps removed later.
        assert!(prims.len() >= 3);
        let rel = Relation::<DenseOrder>::from_dnf(vars.clone(), prims);
        let orig = Relation::<DenseOrder>::from_dnf(vars, vec![conj]);
        assert!(rel.equivalent(&orig));
    }

    #[test]
    fn cover_of_interval_union() {
        let seg = |lo: i64, hi: i64| {
            GenTuple::new(vec![
                DenseAtom::le(Term::cst(lo), x()),
                DenseAtom::le(x(), Term::cst(hi)),
            ])
        };
        let rel = Relation::<DenseOrder>::new(vec![vx()], vec![seg(0, 2), seg(1, 3)]);
        let c = nonredundant_cover(&rel);
        // The cover is equivalent to the relation.
        let rebuilt = Relation::<DenseOrder>::from_dnf(
            vec![vx()],
            c.iter().map(PrimeTuple::to_conj).collect(),
        );
        assert!(rebuilt.equivalent(&rel));
        // And it is non-redundant: removing any tuple loses points.
        for i in 0..c.len() {
            let mut rest = c.clone();
            rest.remove(i);
            let partial = Relation::<DenseOrder>::from_dnf(
                vec![vx()],
                rest.iter().map(PrimeTuple::to_conj).collect(),
            );
            assert!(!partial.equivalent(&rel));
        }
    }

    #[test]
    fn shape_classification_matches_fig9() {
        let vars = vec![vx(), vy()];
        let point = PrimeTuple::from_primitive(
            &vars,
            &[
                DenseAtom::eq(x(), Term::cst(1)),
                DenseAtom::eq(y(), Term::cst(2)),
            ],
        )
        .unwrap();
        assert_eq!(classify_shape2(&point), Shape2::Point);

        let vseg = PrimeTuple::from_primitive(
            &vars,
            &[
                DenseAtom::eq(x(), Term::cst(1)),
                DenseAtom::lt(Term::cst(0), y()),
                DenseAtom::lt(y(), Term::cst(5)),
            ],
        )
        .unwrap();
        assert_eq!(classify_shape2(&vseg), Shape2::VerticalSegment);

        let rect = PrimeTuple::from_primitive(
            &vars,
            &[
                DenseAtom::lt(Term::cst(0), x()),
                DenseAtom::lt(x(), Term::cst(1)),
                DenseAtom::lt(Term::cst(0), y()),
                DenseAtom::lt(y(), Term::cst(1)),
            ],
        )
        .unwrap();
        assert_eq!(classify_shape2(&rect), Shape2::Rectangle);

        let tri = PrimeTuple::from_primitive(
            &vars,
            &[
                DenseAtom::lt(Term::cst(0), x()),
                DenseAtom::lt(x(), y()),
                DenseAtom::lt(y(), Term::cst(5)),
            ],
        )
        .unwrap();
        assert_eq!(classify_shape2(&tri), Shape2::Triangle);

        let diag = PrimeTuple::from_primitive(
            &vars,
            &[
                DenseAtom::eq(x(), y()),
                DenseAtom::lt(Term::cst(0), x()),
                DenseAtom::lt(x(), Term::cst(5)),
                DenseAtom::lt(Term::cst(0), y()),
                DenseAtom::lt(y(), Term::cst(5)),
            ],
        )
        .unwrap();
        assert_eq!(classify_shape2(&diag), Shape2::DiagonalSegment);

        let half = PrimeTuple::from_primitive(&vars, &[DenseAtom::lt(Term::cst(0), x())]).unwrap();
        assert_eq!(classify_shape2(&half), Shape2::Unbounded);
    }

    #[test]
    fn decompose_1d_finds_maximal_pieces() {
        // [0, 2] ∪ (2, 3) ∪ {5}  should merge into [0, 3) and {5}.
        let rel = Relation::<DenseOrder>::from_dnf(
            vec![vx()],
            vec![
                vec![
                    DenseAtom::le(Term::cst(0), x()),
                    DenseAtom::le(x(), Term::cst(2)),
                ],
                vec![
                    DenseAtom::lt(Term::cst(2), x()),
                    DenseAtom::lt(x(), Term::cst(3)),
                ],
                vec![DenseAtom::eq(x(), Term::cst(5))],
            ],
        );
        let pieces = decompose_1d(&rel);
        assert_eq!(pieces.len(), 2);
        assert_eq!(
            pieces[0],
            Piece1::Interval {
                lo: Some((r(0), true)),
                hi: Some((r(3), false))
            }
        );
        assert_eq!(pieces[1], Piece1::Point(r(5)));
    }

    #[test]
    fn decompose_1d_trivial_cases() {
        let empty = Relation::<DenseOrder>::empty(vec![vx()]);
        assert!(decompose_1d(&empty).is_empty());
        let all = Relation::<DenseOrder>::universal(vec![vx()]);
        assert_eq!(
            decompose_1d(&all),
            vec![Piece1::Interval { lo: None, hi: None }]
        );
        let cofinite = Relation::<DenseOrder>::from_dnf(
            vec![vx()],
            vec![
                vec![DenseAtom::lt(x(), Term::cst(0))],
                vec![DenseAtom::lt(Term::cst(0), x())],
            ],
        );
        let pieces = decompose_1d(&cofinite);
        assert_eq!(pieces.len(), 2);
    }
}
