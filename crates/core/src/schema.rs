//! Database schemas.
//!
//! A (database) schema `σ` is a finite set of relation symbols with arities, disjoint
//! from the logical language `L` (Section 2.2).  The engine keeps the distinction:
//! logical predicates (`=`, `≤`, …) live in constraint atoms, relation symbols live in
//! [`RelName`]s.

use crate::intern::Sym;
use std::collections::BTreeMap;
use std::fmt;

/// Typed errors for schema-level mistakes in instance and relation
/// construction.
///
/// These were originally panics deep inside the engine; a file loader (the
/// `frdb-lang` parser and the `frdb-cli` script runner) must be able to reject
/// bad input without aborting the process, so the construction APIs surface
/// them as values instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// A relation name is not declared by the schema.
    UndeclaredRelation(String),
    /// A relation value's arity disagrees with the schema's declaration.
    ArityMismatch {
        /// The relation name.
        relation: String,
        /// The arity declared by the schema.
        declared: usize,
        /// The arity of the relation value.
        found: usize,
    },
    /// A generalized tuple mentions a variable that is not one of the
    /// relation's columns (such a tuple has no point semantics over the
    /// declared columns).
    TupleVariableOutsideColumns {
        /// The offending variable.
        variable: String,
        /// The relation's column variables.
        columns: Vec<String>,
    },
    /// A relation's column list repeats a variable; point substitution would
    /// silently bind only the last occurrence, so membership answers would be
    /// wrong.
    DuplicateColumn {
        /// The repeated variable.
        variable: String,
    },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::UndeclaredRelation(r) => {
                write!(f, "relation {r} not declared in the schema")
            }
            SchemaError::ArityMismatch {
                relation,
                declared,
                found,
            } => write!(
                f,
                "relation {relation} has arity {found} but the schema declares {declared}"
            ),
            SchemaError::TupleVariableOutsideColumns { variable, columns } => write!(
                f,
                "tuple mentions variable {variable} outside the relation's columns ({})",
                columns.join(", ")
            ),
            SchemaError::DuplicateColumn { variable } => write!(
                f,
                "column variable {variable} is repeated in the relation's column list"
            ),
        }
    }
}

impl std::error::Error for SchemaError {}

/// The name of a schema relation symbol, interned for O(1) comparison and
/// hashing (ordering stays lexicographic on the name).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelName(Sym);

impl RelName {
    /// Creates a relation name (interning it).
    #[must_use]
    pub fn new(name: impl AsRef<str>) -> Self {
        RelName(Sym::new(name.as_ref()))
    }

    /// The underlying string.
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        self.0.as_str()
    }

    /// The interned symbol behind the name.
    #[must_use]
    pub fn sym(&self) -> Sym {
        self.0
    }
}

impl fmt::Display for RelName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for RelName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RelName({})", self.0)
    }
}

impl From<&str> for RelName {
    fn from(s: &str) -> Self {
        RelName::new(s)
    }
}

impl From<String> for RelName {
    fn from(s: String) -> Self {
        RelName::new(s)
    }
}

/// A database schema: a finite map from relation names to arities.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Schema {
    relations: BTreeMap<RelName, usize>,
}

impl Schema {
    /// The empty schema.
    #[must_use]
    pub fn new() -> Self {
        Schema::default()
    }

    /// Builds a schema from `(name, arity)` pairs.
    #[must_use]
    pub fn from_pairs(pairs: impl IntoIterator<Item = (impl Into<RelName>, usize)>) -> Self {
        let mut s = Schema::new();
        for (name, arity) in pairs {
            s.add(name, arity);
        }
        s
    }

    /// Adds (or overwrites) a relation symbol.
    pub fn add(&mut self, name: impl Into<RelName>, arity: usize) -> &mut Self {
        self.relations.insert(name.into(), arity);
        self
    }

    /// Removes a relation symbol, returning its arity when it was declared.
    pub fn remove(&mut self, name: &RelName) -> Option<usize> {
        self.relations.remove(name)
    }

    /// The arity of a relation symbol, if declared.
    #[must_use]
    pub fn arity(&self, name: &RelName) -> Option<usize> {
        self.relations.get(name).copied()
    }

    /// Returns `true` iff the schema declares the relation.
    #[must_use]
    pub fn contains(&self, name: &RelName) -> bool {
        self.relations.contains_key(name)
    }

    /// Iterates over `(name, arity)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&RelName, usize)> {
        self.relations.iter().map(|(n, a)| (n, *a))
    }

    /// The number of relation symbols.
    #[must_use]
    pub fn len(&self) -> usize {
        self.relations.len()
    }

    /// Returns `true` iff the schema is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.relations.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_basics() {
        let mut s = Schema::new();
        s.add("R", 2).add("S", 1);
        assert_eq!(s.arity(&RelName::new("R")), Some(2));
        assert_eq!(s.arity(&RelName::new("S")), Some(1));
        assert_eq!(s.arity(&RelName::new("T")), None);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        let s2 = Schema::from_pairs([("R", 2), ("S", 1)]);
        assert_eq!(s, s2);
    }
}
