//! Variables, terms and the first-order formula AST.
//!
//! Following Section 2.1 of the paper, a first-order language `L` (here abstracted by
//! an atom type `A`) is kept disjoint from the database schema `σ`: [`Formula`]
//! distinguishes constraint atoms ([`Formula::Atom`]) from relation atoms
//! ([`Formula::Rel`]) over schema symbols.  A quantifier-free formula whose relation
//! atoms have been expanded is what finitely *represents* an infinite relation
//! (Definition 2.3).

use crate::intern::Sym;
use crate::schema::RelName;
use frdb_num::Rat;
use std::collections::BTreeSet;
use std::fmt;

/// A first-order variable, identified by an interned name.
///
/// Equality and hashing are single integer comparisons on the interned
/// [`Sym`]; ordering is lexicographic on the name, so variable sets iterate
/// deterministically regardless of interning order.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(Sym);

impl Var {
    /// Creates a variable with the given name (interning it).
    ///
    /// # Panics
    /// Panics if the name starts with `#`: that namespace is reserved for the
    /// internally generated fresh variables of [`Var::fresh`].  Accepting such
    /// names would let a user variable shadow a fresh one, and the relation
    /// expansion of the FO evaluator could then capture it silently — the
    /// reservation turns that latent capture into an immediate, loud error.
    #[must_use]
    pub fn new(name: impl AsRef<str>) -> Self {
        let name = name.as_ref();
        assert!(
            !name.starts_with('#'),
            "variable name {name:?} is reserved: the '#' prefix belongs to \
             internally generated fresh variables"
        );
        Var(Sym::new(name))
    }

    /// The variable's name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.0.as_str()
    }

    /// The interned symbol behind the variable.
    #[must_use]
    pub fn sym(&self) -> Sym {
        self.0
    }

    /// A fresh variable guaranteed not to clash with any user-written
    /// variable, given a monotone counter: fresh names live in the `#k`
    /// namespace, which [`Var::new`] rejects for user code.
    #[must_use]
    pub fn fresh(counter: &mut usize) -> Var {
        let v = Var(Sym::new(&format!("#{counter}")));
        *counter += 1;
        v
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Var({})", self.0)
    }
}

impl From<&str> for Var {
    fn from(s: &str) -> Self {
        Var::new(s)
    }
}

impl From<String> for Var {
    fn from(s: String) -> Self {
        Var::new(s)
    }
}

impl From<Sym> for Var {
    /// Wraps an already interned symbol **without** the reserved-namespace
    /// check of [`Var::new`] — the internal escape hatch for machinery that
    /// round-trips existing variables through their symbols.
    fn from(s: Sym) -> Self {
        Var(s)
    }
}

/// A term of the dense-order language: a variable or a rational constant.
///
/// The paper assumes a constant symbol for every rational number (Section 2.1); terms
/// with function symbols only appear in richer languages handled by other crates.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// A variable.
    Var(Var),
    /// A rational constant.
    Const(Rat),
}

impl Term {
    /// A variable term.
    #[must_use]
    pub fn var(name: impl AsRef<str>) -> Term {
        Term::Var(Var::new(name))
    }

    /// An integer constant term.
    #[must_use]
    pub fn cst(v: i64) -> Term {
        Term::Const(Rat::from_i64(v))
    }

    /// A rational constant term.
    #[must_use]
    pub fn rat(v: Rat) -> Term {
        Term::Const(v)
    }

    /// The variable, if this term is one.
    #[must_use]
    pub fn as_var(&self) -> Option<&Var> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// The constant, if this term is one.
    #[must_use]
    pub fn as_const(&self) -> Option<&Rat> {
        match self {
            Term::Var(_) => None,
            Term::Const(c) => Some(c),
        }
    }

    /// Substitutes `replacement` for the variable `var` (no effect on other terms).
    #[must_use]
    pub fn subst(&self, var: &Var, replacement: &Term) -> Term {
        match self {
            Term::Var(v) if v == var => replacement.clone(),
            other => other.clone(),
        }
    }

    /// Applies a simultaneous substitution: if this term is a variable with an
    /// image in `map`, returns the image; otherwise returns the term unchanged.
    #[must_use]
    pub fn subst_simultaneous(&self, map: &std::collections::HashMap<Var, Term>) -> Term {
        match self {
            Term::Var(v) => map.get(v).cloned().unwrap_or_else(|| self.clone()),
            Term::Const(_) => self.clone(),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Const(c) => write!(f, "{c}"),
        }
    }
}

impl fmt::Debug for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl From<Var> for Term {
    fn from(v: Var) -> Self {
        Term::Var(v)
    }
}

impl From<i64> for Term {
    fn from(v: i64) -> Self {
        Term::cst(v)
    }
}

impl From<Rat> for Term {
    fn from(v: Rat) -> Self {
        Term::Const(v)
    }
}

/// A first-order formula over constraint atoms of type `A` and schema relation atoms.
///
/// `Formula` is the query language of Section 4.1: each formula `φ` with free variables
/// `x₁,…,xₙ` defines the query `{(x₁,…,xₙ) | φ}`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Formula<A> {
    /// The true formula.
    True,
    /// The false formula.
    False,
    /// A constraint atom of the underlying language `L`.
    Atom(A),
    /// A relation atom `R(t₁,…,tₖ)` over a schema symbol.
    Rel {
        /// The relation name.
        name: RelName,
        /// Argument terms (variables or constants).
        args: Vec<Term>,
    },
    /// Negation.
    Not(Box<Formula<A>>),
    /// Conjunction (empty conjunction is `True`).
    And(Vec<Formula<A>>),
    /// Disjunction (empty disjunction is `False`).
    Or(Vec<Formula<A>>),
    /// Existential quantification over the listed variables.
    Exists(Vec<Var>, Box<Formula<A>>),
    /// Universal quantification over the listed variables.
    Forall(Vec<Var>, Box<Formula<A>>),
}

impl<A> Formula<A> {
    /// Conjunction of two formulas.
    #[must_use]
    pub fn and(self, other: Formula<A>) -> Formula<A> {
        Formula::And(vec![self, other])
    }

    /// Disjunction of two formulas.
    #[must_use]
    pub fn or(self, other: Formula<A>) -> Formula<A> {
        Formula::Or(vec![self, other])
    }

    /// Negation.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Formula<A> {
        Formula::Not(Box::new(self))
    }

    /// Implication `self → other`.
    #[must_use]
    pub fn implies(self, other: Formula<A>) -> Formula<A> {
        self.not().or(other)
    }

    /// Bi-implication `self ↔ other`.
    #[must_use]
    pub fn iff(self, other: Formula<A>) -> Formula<A>
    where
        A: Clone,
    {
        self.clone().implies(other.clone()).and(other.implies(self))
    }

    /// Existential quantification.
    #[must_use]
    pub fn exists(vars: impl IntoIterator<Item = impl Into<Var>>, body: Formula<A>) -> Formula<A> {
        Formula::Exists(vars.into_iter().map(Into::into).collect(), Box::new(body))
    }

    /// Universal quantification.
    #[must_use]
    pub fn forall(vars: impl IntoIterator<Item = impl Into<Var>>, body: Formula<A>) -> Formula<A> {
        Formula::Forall(vars.into_iter().map(Into::into).collect(), Box::new(body))
    }

    /// A relation atom `R(args…)`.
    #[must_use]
    pub fn rel(
        name: impl Into<RelName>,
        args: impl IntoIterator<Item = impl Into<Term>>,
    ) -> Formula<A> {
        Formula::Rel {
            name: name.into(),
            args: args.into_iter().map(Into::into).collect(),
        }
    }

    /// Conjunction of an arbitrary number of formulas.
    #[must_use]
    pub fn conj(parts: impl IntoIterator<Item = Formula<A>>) -> Formula<A> {
        Formula::And(parts.into_iter().collect())
    }

    /// Disjunction of an arbitrary number of formulas.
    #[must_use]
    pub fn disj(parts: impl IntoIterator<Item = Formula<A>>) -> Formula<A> {
        Formula::Or(parts.into_iter().collect())
    }

    /// Quantifier depth (maximum nesting of quantifier blocks, each block counting its
    /// width), matching the quantifier-rank parameter `r` of the Ehrenfeucht–Fraïssé
    /// correspondence (Theorem 5.8).
    #[must_use]
    pub fn quantifier_rank(&self) -> usize {
        match self {
            Formula::True | Formula::False | Formula::Atom(_) | Formula::Rel { .. } => 0,
            Formula::Not(f) => f.quantifier_rank(),
            Formula::And(fs) | Formula::Or(fs) => {
                fs.iter().map(Formula::quantifier_rank).max().unwrap_or(0)
            }
            Formula::Exists(vs, f) | Formula::Forall(vs, f) => vs.len() + f.quantifier_rank(),
        }
    }

    /// Names of the schema relations mentioned by the formula.
    #[must_use]
    pub fn relation_names(&self) -> BTreeSet<RelName> {
        let mut out = BTreeSet::new();
        self.collect_relation_names(&mut out);
        out
    }

    fn collect_relation_names(&self, out: &mut BTreeSet<RelName>) {
        match self {
            Formula::True | Formula::False | Formula::Atom(_) => {}
            Formula::Rel { name, .. } => {
                out.insert(name.clone());
            }
            Formula::Not(f) => f.collect_relation_names(out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_relation_names(out);
                }
            }
            Formula::Exists(_, f) | Formula::Forall(_, f) => f.collect_relation_names(out),
        }
    }
}

impl<A: crate::theory::Atom> Formula<A> {
    /// The set of free variables of the formula.
    #[must_use]
    pub fn free_vars(&self) -> BTreeSet<Var> {
        match self {
            Formula::True | Formula::False => BTreeSet::new(),
            Formula::Atom(a) => a.vars(),
            Formula::Rel { args, .. } => args.iter().filter_map(Term::as_var).cloned().collect(),
            Formula::Not(f) => f.free_vars(),
            Formula::And(fs) | Formula::Or(fs) => fs.iter().flat_map(Formula::free_vars).collect(),
            Formula::Exists(vs, f) | Formula::Forall(vs, f) => {
                let mut set = f.free_vars();
                for v in vs {
                    set.remove(v);
                }
                set
            }
        }
    }

    /// Returns `true` iff the formula is a sentence (has no free variables).
    #[must_use]
    pub fn is_sentence(&self) -> bool {
        self.free_vars().is_empty()
    }

    /// Returns `true` iff the formula is quantifier free.
    #[must_use]
    pub fn is_quantifier_free(&self) -> bool {
        match self {
            Formula::True | Formula::False | Formula::Atom(_) | Formula::Rel { .. } => true,
            Formula::Not(f) => f.is_quantifier_free(),
            Formula::And(fs) | Formula::Or(fs) => fs.iter().all(Formula::is_quantifier_free),
            Formula::Exists(..) | Formula::Forall(..) => false,
        }
    }

    /// Applies a mapping to all constants of the formula (Definition 4.3: the image of
    /// a formula under a morphism `µ` replaces every constant `c` by `µ(c)`).
    #[must_use]
    pub fn map_constants(&self, f: &impl Fn(&Rat) -> Rat) -> Formula<A> {
        match self {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            Formula::Atom(a) => Formula::Atom(a.map_constants(f)),
            Formula::Rel { name, args } => Formula::Rel {
                name: name.clone(),
                args: args
                    .iter()
                    .map(|t| match t {
                        Term::Var(v) => Term::Var(v.clone()),
                        Term::Const(c) => Term::Const(f(c)),
                    })
                    .collect(),
            },
            Formula::Not(g) => Formula::Not(Box::new(g.map_constants(f))),
            Formula::And(fs) => Formula::And(fs.iter().map(|g| g.map_constants(f)).collect()),
            Formula::Or(fs) => Formula::Or(fs.iter().map(|g| g.map_constants(f)).collect()),
            Formula::Exists(vs, g) => Formula::Exists(vs.clone(), Box::new(g.map_constants(f))),
            Formula::Forall(vs, g) => Formula::Forall(vs.clone(), Box::new(g.map_constants(f))),
        }
    }

    /// All constants occurring in the formula (constraint atoms and relation-atom
    /// arguments).
    #[must_use]
    pub fn constants(&self) -> BTreeSet<Rat> {
        match self {
            Formula::True | Formula::False => BTreeSet::new(),
            Formula::Atom(a) => a.constants(),
            Formula::Rel { args, .. } => args.iter().filter_map(Term::as_const).cloned().collect(),
            Formula::Not(f) => f.constants(),
            Formula::And(fs) | Formula::Or(fs) => fs.iter().flat_map(Formula::constants).collect(),
            Formula::Exists(_, f) | Formula::Forall(_, f) => f.constants(),
        }
    }
}

impl<A: fmt::Display> fmt::Display for Formula<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "true"),
            Formula::False => write!(f, "false"),
            Formula::Atom(a) => write!(f, "{a}"),
            Formula::Rel { name, args } => {
                write!(f, "{name}(")?;
                for (i, t) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            Formula::Not(g) => write!(f, "¬({g})"),
            Formula::And(fs) => {
                if fs.is_empty() {
                    return write!(f, "true");
                }
                write!(f, "(")?;
                for (i, g) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
            Formula::Or(fs) => {
                if fs.is_empty() {
                    return write!(f, "false");
                }
                write!(f, "(")?;
                for (i, g) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
            Formula::Exists(vs, g) => {
                write!(f, "∃")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ".({g})")
            }
            Formula::Forall(vs, g) => {
                write!(f, "∀")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ".({g})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseAtom;

    #[test]
    fn free_vars_and_rank() {
        let f: Formula<DenseAtom> = Formula::exists(
            ["x"],
            Formula::Atom(DenseAtom::lt(Term::var("x"), Term::var("y")))
                .and(Formula::rel("R", [Term::var("x"), Term::var("z")])),
        );
        let fv = f.free_vars();
        assert!(fv.contains(&Var::new("y")));
        assert!(fv.contains(&Var::new("z")));
        assert!(!fv.contains(&Var::new("x")));
        assert_eq!(f.quantifier_rank(), 1);
        assert!(!f.is_quantifier_free());
        assert!(!f.is_sentence());
        assert_eq!(f.relation_names().len(), 1);
    }

    #[test]
    fn display_is_readable() {
        let f: Formula<DenseAtom> = Formula::forall(
            ["x"],
            Formula::rel("R", [Term::var("x")])
                .implies(Formula::Atom(DenseAtom::le(Term::cst(0), Term::var("x")))),
        );
        let s = f.to_string();
        assert!(s.contains('∀'));
        assert!(s.contains("R(x)"));
    }

    #[test]
    fn fresh_variables_are_distinct() {
        let mut c = 0;
        let a = Var::fresh(&mut c);
        let b = Var::fresh(&mut c);
        assert_ne!(a, b);
        assert!(a.name().starts_with('#'));
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn user_variables_cannot_shadow_fresh_names() {
        // A user variable literally named `#0` would shadow the first fresh
        // variable of relation expansion and could be captured silently; the
        // constructor rejects the whole `#` namespace instead.
        let _ = Var::new("#0");
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn reserved_namespace_is_rejected_through_conversions_too() {
        let _: Var = String::from("#17").into();
    }
}
