//! # frdb-core
//!
//! The core of the **finitely representable database** engine, implementing the data
//! model and query languages of Grumbach & Su, *Finitely Representable Databases*
//! (PODS 1994 / JCSS 55(2), 1997).
//!
//! A finitely representable (or *generalized*, or *constraint*) relation is an infinite
//! set of tuples over an interpreted structure — here the ordered rationals
//! `Q = (Q, =, ≤)` — represented by a quantifier-free formula: a finite disjunction of
//! *generalized tuples*, each a conjunction of constraint atoms (Definition 2.6 of the
//! paper).  A database instance maps schema relation names to such relations
//! (Definition 2.7), and the relational calculus becomes a constraint query language:
//! a first-order formula is evaluated by substituting the stored formulas for the
//! relation symbols and eliminating quantifiers (Section 4.1).
//!
//! This crate provides:
//!
//! * [`intern`] — process-wide interned symbols ([`intern::Sym`]) behind every
//!   variable and relation name: O(1) equality and hashing with deterministic
//!   lexicographic ordering.
//! * [`logic`] — variables, terms, and the generic first-order [`logic::Formula`] AST
//!   over an abstract constraint-atom type.
//! * [`theory`] — the [`theory::Atom`] and [`theory::Theory`] abstractions.  A theory
//!   names a *canonical context* type ([`theory::Theory::Ctx`], e.g. the dense-order
//!   transitive closure), builds it **once** per conjunction
//!   ([`theory::Theory::context`]), and answers satisfiability, canonicalization,
//!   single-variable quantifier elimination and implication from it (the `ctx_*`
//!   methods) — which is all the evaluator needs, and what generalized tuples cache.
//! * [`dense`] — the paper's case study: dense-order constraints over `(Q, ≤)`
//!   (language `L≤`), with a transitive-closure based decision procedure and exact
//!   quantifier elimination.
//! * [`relation`] — cache-carrying generalized tuples ([`relation::GenTuple`]:
//!   canonical form, satisfiability verdict and closure computed lazily, shared
//!   across clones) and generalized relations in disjunctive normal form with the
//!   full relation algebra (union, intersection, complement, containment,
//!   equivalence, membership), mirroring the closure properties of Section 2.2.
//! * [`fo`] — the generic FO evaluator (natural / unrestricted semantics via QE).
//! * [`normal`] — prime primitive tuples, the tabular form of Example 6.8, covers
//!   (Definition 6.9) and the atomic-shape classification of Fig. 9.
//! * [`encode`] — the standard string encoding and database size of Section 4.2, and
//!   the finite relational encoding of Section 6 (Example 6.11, Lemmas 6.12–6.13).
//! * [`generic`] — automorphisms of `(Q, ≤)` and order-genericity checking
//!   (Definitions 4.2/4.3, Proposition 4.10).
//! * [`pointctx`] — the value-based vs point-based contexts (`FO` vs `FO_p`,
//!   Section 5 and Theorem 5.9).
//!
//! ```
//! use frdb_core::prelude::*;
//!
//! // The filled rectangle of Example 2.5: a ≤ x ≤ c ∧ b ≤ y ≤ d.
//! let rect = GenTuple::new(vec![
//!     DenseAtom::le(Term::cst(1), Term::var("x")),
//!     DenseAtom::le(Term::var("x"), Term::cst(4)),
//!     DenseAtom::le(Term::cst(2), Term::var("y")),
//!     DenseAtom::le(Term::var("y"), Term::cst(3)),
//! ]);
//! let rel: Relation<DenseOrder> = Relation::new(vec![Var::new("x"), Var::new("y")], vec![rect]);
//! assert!(rel.contains(&[Rat::from_i64(2), Rat::from_i64(3)]));
//! assert!(!rel.contains(&[Rat::from_i64(0), Rat::from_i64(3)]));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod dense;
pub mod encode;
pub mod fo;
pub mod generic;
pub mod intern;
pub mod logic;
pub mod metrics;
pub mod normal;
pub mod pointctx;
pub mod relation;
pub mod schema;
pub mod theory;

pub use frdb_num::{BigInt, Rat, Sign};

/// Convenient glob-import of the most frequently used types.
pub mod prelude {
    pub use crate::dense::{CmpOp, DenseAtom, DenseOrder};
    pub use crate::fo::{eval_query, eval_sentence};
    pub use crate::generic::Automorphism;
    pub use crate::intern::Sym;
    pub use crate::logic::{Formula, Term, Var};
    pub use crate::relation::{GenTuple, Instance, JoinReport, JoinStrategy, Relation};
    pub use crate::schema::{RelName, Schema, SchemaError};
    pub use crate::theory::{Atom, Theory};
    pub use frdb_num::{BigInt, Rat};
}
