//! The point-based context `FO_p` (Section 5).
//!
//! Besides the value-based context — variables range over `Q` and a spatial object of
//! dimension `k` is a `2k`-ary relation — the paper works with a *point-based* context
//! `P = (Q², ≤₁, ≤₂, ≤_P)` whose elements are points of the rational plane, with the
//! coordinate orders `≤₁`, `≤₂` and the cross order `≤_P` (`x₁y₁ ≤_P x₂y₂` iff
//! `x₁ ≤ y₂`).  The two contexts express exactly the same queries (Section 5 uses a
//! direct translation; Theorem 5.9 relates their Ehrenfeucht–Fraïssé games), and the
//! automorphisms of `Q` and of `P` coincide (Lemma 5.1).
//!
//! This module makes the translation executable: point variables are pairs of value
//! variables, the point predicates compile to dense-order atoms on coordinates, and a
//! `k`-ary point relation is stored as the corresponding `2k`-ary value relation.

use crate::dense::{DenseAtom, DenseOrder};
use crate::logic::{Formula, Var};
use crate::relation::Relation;
use frdb_num::Rat;

/// A point variable of the point-based context: a pair of value variables naming its
/// two coordinates.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct PointVar {
    /// First coordinate.
    pub x: Var,
    /// Second coordinate.
    pub y: Var,
}

impl PointVar {
    /// Creates the point variable `name`, with coordinates `name.x` and `name.y`.
    #[must_use]
    pub fn new(name: &str) -> Self {
        PointVar {
            x: Var::new(format!("{name}.x")),
            y: Var::new(format!("{name}.y")),
        }
    }

    /// The two coordinate variables, in order.
    #[must_use]
    pub fn coords(&self) -> [Var; 2] {
        [self.x.clone(), self.y.clone()]
    }
}

/// The predicate `p ≤₁ q` (order on first coordinates), compiled to the value context.
#[must_use]
pub fn le1(p: &PointVar, q: &PointVar) -> Formula<DenseAtom> {
    Formula::Atom(DenseAtom::le(p.x.clone(), q.x.clone()))
}

/// The predicate `p ≤₂ q` (order on second coordinates).
#[must_use]
pub fn le2(p: &PointVar, q: &PointVar) -> Formula<DenseAtom> {
    Formula::Atom(DenseAtom::le(p.y.clone(), q.y.clone()))
}

/// The cross predicate `p ≤_P q` (`x₁ ≤ y₂`), as defined for the structure `P`.
#[must_use]
pub fn le_p(p: &PointVar, q: &PointVar) -> Formula<DenseAtom> {
    Formula::Atom(DenseAtom::le(p.x.clone(), q.y.clone()))
}

/// Point equality `p = q`, compiled coordinatewise.
#[must_use]
pub fn point_eq(p: &PointVar, q: &PointVar) -> Formula<DenseAtom> {
    Formula::Atom(DenseAtom::eq(p.x.clone(), q.x.clone()))
        .and(Formula::Atom(DenseAtom::eq(p.y.clone(), q.y.clone())))
}

/// A relation atom `R(p₁,…,pₖ)` of the point schema `σ_p`, compiled to the `2k`-ary
/// value relation `ρ(R)(p₁.x, p₁.y, …, pₖ.x, pₖ.y)`.
#[must_use]
pub fn point_rel(name: &str, points: &[PointVar]) -> Formula<DenseAtom> {
    let args: Vec<Var> = points.iter().flat_map(PointVar::coords).collect();
    Formula::rel(name, args)
}

/// Existential quantification over point variables (each expands to its two
/// coordinates, matching the "each point move simulates two value moves" accounting of
/// Theorem 5.9).
#[must_use]
pub fn exists_points(points: &[PointVar], body: Formula<DenseAtom>) -> Formula<DenseAtom> {
    let vars: Vec<Var> = points.iter().flat_map(PointVar::coords).collect();
    Formula::Exists(vars, Box::new(body))
}

/// Universal quantification over point variables.
#[must_use]
pub fn forall_points(points: &[PointVar], body: Formula<DenseAtom>) -> Formula<DenseAtom> {
    let vars: Vec<Var> = points.iter().flat_map(PointVar::coords).collect();
    Formula::Forall(vars, Box::new(body))
}

/// A `k`-ary point relation viewed as the `2k`-ary value relation that stores it; the
/// paper's convention "we view each `(Q, σ)`-instance also as a `(P, σ_p)`-instance".
#[derive(Clone, Debug)]
pub struct PointRelation {
    relation: Relation<DenseOrder>,
}

impl PointRelation {
    /// Wraps a value relation of even arity as a point relation.
    ///
    /// # Panics
    /// Panics if the arity is odd.
    #[must_use]
    pub fn from_value(relation: Relation<DenseOrder>) -> Self {
        assert!(
            relation.arity().is_multiple_of(2),
            "a point relation needs an even value arity"
        );
        PointRelation { relation }
    }

    /// The point arity (`k`, half the value arity).
    #[must_use]
    pub fn point_arity(&self) -> usize {
        self.relation.arity() / 2
    }

    /// The underlying value relation.
    #[must_use]
    pub fn as_value(&self) -> &Relation<DenseOrder> {
        &self.relation
    }

    /// Membership of a tuple of points.
    #[must_use]
    pub fn contains_points(&self, points: &[(Rat, Rat)]) -> bool {
        let flat: Vec<Rat> = points
            .iter()
            .flat_map(|(a, b)| [a.clone(), b.clone()])
            .collect();
        self.relation.contains(&flat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fo::eval_sentence;
    use crate::logic::Term;
    use crate::relation::{GenTuple, Instance};
    use crate::schema::Schema;

    fn r(v: i64) -> Rat {
        Rat::from_i64(v)
    }

    fn box_instance() -> Instance<DenseOrder> {
        // R = the unit square [0,1] × [0,1], as a binary (one-point) relation.
        let schema = Schema::from_pairs([("R", 2)]);
        let mut inst = Instance::new(schema);
        inst.set(
            "R",
            Relation::new(
                vec![Var::new("u"), Var::new("v")],
                vec![GenTuple::new(vec![
                    DenseAtom::le(Term::cst(0), Term::var("u")),
                    DenseAtom::le(Term::var("u"), Term::cst(1)),
                    DenseAtom::le(Term::cst(0), Term::var("v")),
                    DenseAtom::le(Term::var("v"), Term::cst(1)),
                ])],
            ),
        )
        .unwrap();
        inst
    }

    #[test]
    fn point_queries_translate_to_value_queries() {
        // "Every point of R lies (coordinatewise) below some other point of R with the
        //  same first coordinate" — trivially true on a square because each point is
        //  ≤₂-below the top edge.
        let inst = box_instance();
        let p = PointVar::new("p");
        let q = PointVar::new("q");
        let sentence = forall_points(
            std::slice::from_ref(&p),
            point_rel("R", std::slice::from_ref(&p)).implies(exists_points(
                std::slice::from_ref(&q),
                point_rel("R", std::slice::from_ref(&q))
                    .and(le2(&p, &q))
                    .and(Formula::Atom(DenseAtom::eq(p.x.clone(), q.x.clone()))),
            )),
        );
        assert!(eval_sentence(&sentence, &inst).unwrap());
    }

    #[test]
    fn cross_order_is_the_paper_definition() {
        // x₁y₁ ≤_P x₂y₂ iff x₁ ≤ y₂: on the square, the point (1, 0) is ≤_P (0, 1).
        let inst = box_instance();
        let p = PointVar::new("p");
        let q = PointVar::new("q");
        let sentence = exists_points(
            &[p.clone(), q.clone()],
            point_rel("R", std::slice::from_ref(&p))
                .and(point_rel("R", std::slice::from_ref(&q)))
                .and(Formula::Atom(DenseAtom::eq(p.x.clone(), Term::cst(1))))
                .and(Formula::Atom(DenseAtom::eq(q.y.clone(), Term::cst(1))))
                .and(le_p(&p, &q)),
        );
        assert!(eval_sentence(&sentence, &inst).unwrap());
    }

    #[test]
    fn point_relation_membership() {
        let inst = box_instance();
        let rel = PointRelation::from_value(inst.get(&"R".into()).unwrap());
        assert_eq!(rel.point_arity(), 1);
        assert!(rel.contains_points(&[(r(0), r(1))]));
        assert!(!rel.contains_points(&[(r(2), r(0))]));
    }

    #[test]
    fn point_equality_is_coordinatewise() {
        let inst = box_instance();
        let p = PointVar::new("p");
        let q = PointVar::new("q");
        // ∃p ∃q. R(p) ∧ R(q) ∧ p = q  — true (take any point twice).
        let sentence = exists_points(
            &[p.clone(), q.clone()],
            point_rel("R", std::slice::from_ref(&p))
                .and(point_rel("R", std::slice::from_ref(&q)))
                .and(point_eq(&p, &q)),
        );
        assert!(eval_sentence(&sentence, &inst).unwrap());
    }
}
