//! The first-order constraint query evaluator.
//!
//! Section 4.1 of the paper: a formula `φ` in `L ∪ σ` with free variables `x₁,…,xₙ`
//! defines the query `{(x₁,…,xₙ) | φ}`.  Evaluation proceeds exactly as described
//! there — every occurrence of a schema relation symbol `R` is replaced by a
//! quantifier-free formula representing `I(R)`, and the resulting `L`-formula is turned
//! into an equivalent quantifier-free formula by quantifier elimination (question Q1),
//! which exists for the dense-order and linear theories used in this workspace.
//!
//! The evaluator is *bottom-up and closed-form*: the result is again a finitely
//! representable relation, so queries compose.  Data complexity is polynomial for a
//! fixed query (Theorem 5.2 states the sharper AC⁰ bound; the benchmark harness
//! measures the polynomial scaling, see `DESIGN.md` experiment E10).

use crate::logic::{Formula, Var};
use crate::relation::{
    eliminate_tuple, negate_tuples, simplify_tuples, GenTuple, Instance, Relation,
};
use crate::theory::{Atom, Dnf, Theory};

/// Errors raised during query evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The formula mentions a relation symbol not declared by the instance's schema.
    UnknownRelation(String),
    /// A relation atom's argument count disagrees with the relation's arity.
    ArityMismatch {
        /// Relation name.
        relation: String,
        /// Arity expected by the stored relation.
        expected: usize,
        /// Number of arguments in the atom.
        found: usize,
    },
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::UnknownRelation(r) => write!(f, "unknown relation symbol {r}"),
            EvalError::ArityMismatch {
                relation,
                expected,
                found,
            } => write!(
                f,
                "relation {relation} expects {expected} arguments but the atom has {found}"
            ),
        }
    }
}

impl std::error::Error for EvalError {}

/// Replaces every relation atom `R(t̅)` by a quantifier-free formula representing
/// `I(R)(t̅)` (the first step of Section 4.1's evaluation).
///
/// The stored relation's column variables are renamed apart before substituting the
/// atom's argument terms, so variable capture cannot occur.
pub fn expand_relations<T: Theory>(
    formula: &Formula<T::A>,
    instance: &Instance<T>,
    counter: &mut usize,
) -> Result<Formula<T::A>, EvalError> {
    Ok(match formula {
        Formula::True => Formula::True,
        Formula::False => Formula::False,
        Formula::Atom(a) => Formula::Atom(a.clone()),
        Formula::Rel { name, args } => {
            let rel = instance
                .get(name)
                .ok_or_else(|| EvalError::UnknownRelation(name.to_string()))?;
            if rel.arity() != args.len() {
                return Err(EvalError::ArityMismatch {
                    relation: name.to_string(),
                    expected: rel.arity(),
                    found: args.len(),
                });
            }
            // Rename the relation's columns to fresh variables, then substitute the
            // atom's arguments for them (one simultaneous pass per step).
            let fresh: Vec<Var> = rel.vars().iter().map(|_| Var::fresh(counter)).collect();
            let renamed = rel.rename(fresh.clone());
            let subst: std::collections::HashMap<Var, crate::logic::Term> =
                fresh.iter().cloned().zip(args.iter().cloned()).collect();
            let dnf: Dnf<T::A> = renamed
                .tuples()
                .iter()
                .map(|tuple| {
                    tuple
                        .atoms()
                        .iter()
                        .map(|a| a.subst_simultaneous(&subst))
                        .collect()
                })
                .collect();
            Formula::Or(
                dnf.into_iter()
                    .map(|conj| Formula::And(conj.into_iter().map(Formula::Atom).collect()))
                    .collect(),
            )
        }
        Formula::Not(g) => Formula::Not(Box::new(expand_relations(g, instance, counter)?)),
        Formula::And(fs) => Formula::And(
            fs.iter()
                .map(|g| expand_relations(g, instance, counter))
                .collect::<Result<_, _>>()?,
        ),
        Formula::Or(fs) => Formula::Or(
            fs.iter()
                .map(|g| expand_relations(g, instance, counter))
                .collect::<Result<_, _>>()?,
        ),
        Formula::Exists(vs, g) => Formula::Exists(
            vs.clone(),
            Box::new(expand_relations(g, instance, counter)?),
        ),
        Formula::Forall(vs, g) => Formula::Forall(
            vs.clone(),
            Box::new(expand_relations(g, instance, counter)?),
        ),
    })
}

/// Evaluates a relation-free formula to an equivalent quantifier-free
/// disjunction of cache-carrying generalized tuples via quantifier
/// elimination.  Every tuple created here carries its canonical context, so
/// the satisfiability pruning, the per-step simplification and the final
/// relation construction share one closure per conjunction.
fn eval_formula<T: Theory>(formula: &Formula<T::A>) -> Vec<GenTuple<T::A>> {
    match formula {
        Formula::True => vec![GenTuple::universal()],
        Formula::False => Vec::new(),
        Formula::Atom(a) => vec![GenTuple::new(vec![a.clone()])],
        Formula::Rel { .. } => {
            unreachable!("relation atoms must be expanded before evaluation")
        }
        Formula::Not(g) => {
            let inner = eval_formula::<T>(g);
            negate_tuples::<T>(&inner)
        }
        Formula::And(fs) => {
            let mut acc: Vec<GenTuple<T::A>> = vec![GenTuple::universal()];
            for g in fs {
                let rhs = eval_formula::<T>(g);
                let mut next: Vec<GenTuple<T::A>> = Vec::new();
                for a in &acc {
                    for b in &rhs {
                        let mut atoms = a.atoms().to_vec();
                        atoms.extend(b.atoms().iter().cloned());
                        let candidate = GenTuple::new(atoms);
                        if candidate.is_satisfiable::<T>() {
                            next.push(candidate);
                        }
                    }
                }
                acc = simplify_tuples::<T>(next);
                if acc.is_empty() {
                    return Vec::new();
                }
            }
            acc
        }
        Formula::Or(fs) => {
            let mut acc: Vec<GenTuple<T::A>> = Vec::new();
            for g in fs {
                acc.extend(eval_formula::<T>(g));
            }
            simplify_tuples::<T>(acc)
        }
        Formula::Exists(vs, g) => {
            let inner = eval_formula::<T>(g);
            let mut out: Vec<GenTuple<T::A>> = Vec::new();
            for tuple in &inner {
                out.extend(eliminate_tuple::<T>(vs, tuple));
            }
            simplify_tuples::<T>(out)
        }
        Formula::Forall(vs, g) => {
            // ∀x̅.φ  ≡  ¬∃x̅.¬φ
            let inner = eval_formula::<T>(g);
            let negated = negate_tuples::<T>(&inner);
            let mut exists: Vec<GenTuple<T::A>> = Vec::new();
            for tuple in &negated {
                exists.extend(eliminate_tuple::<T>(vs, tuple));
            }
            let exists = simplify_tuples::<T>(exists);
            negate_tuples::<T>(&exists)
        }
    }
}

/// Evaluates a (possibly non-Boolean) query `{free | formula}` on an instance,
/// producing the answer relation over the listed free variables.
///
/// # Errors
/// Returns an error if the formula mentions undeclared relations or uses them with the
/// wrong arity.
pub fn eval_query<T: Theory>(
    formula: &Formula<T::A>,
    free: &[Var],
    instance: &Instance<T>,
) -> Result<Relation<T>, EvalError> {
    let mut counter = 0usize;
    let expanded = expand_relations(formula, instance, &mut counter)?;
    let tuples = eval_formula::<T>(&expanded);
    Ok(Relation::new(free.to_vec(), tuples))
}

/// Evaluates a Boolean query (sentence) on an instance.
///
/// # Errors
/// Returns an error if the formula mentions undeclared relations or uses them with the
/// wrong arity.
pub fn eval_sentence<T: Theory>(
    formula: &Formula<T::A>,
    instance: &Instance<T>,
) -> Result<bool, EvalError> {
    let answer = eval_query(formula, &[], instance)?;
    Ok(!answer.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::{DenseAtom, DenseOrder};
    use crate::logic::Term;
    use crate::relation::GenTuple;
    use crate::schema::Schema;
    use frdb_num::Rat;

    type F = Formula<DenseAtom>;

    fn r(v: i64) -> Rat {
        Rat::from_i64(v)
    }

    fn interval_instance() -> Instance<DenseOrder> {
        // R = [0, 10] ∪ [20, 30]   (monadic), S = {(1,2), (2,3), (3,4)} (binary, finite)
        let schema = Schema::from_pairs([("R", 1), ("S", 2)]);
        let mut inst = Instance::new(schema);
        let seg = |lo: i64, hi: i64| {
            GenTuple::new(vec![
                DenseAtom::le(Term::cst(lo), Term::var("x")),
                DenseAtom::le(Term::var("x"), Term::cst(hi)),
            ])
        };
        inst.set(
            "R",
            Relation::new(vec![Var::new("x")], vec![seg(0, 10), seg(20, 30)]),
        );
        inst.set(
            "S",
            Relation::from_points(
                vec![Var::new("x"), Var::new("y")],
                vec![vec![r(1), r(2)], vec![r(2), r(3)], vec![r(3), r(4)]],
            ),
        );
        inst
    }

    #[test]
    fn selection_query() {
        // {x | R(x) ∧ x < 5}
        let inst = interval_instance();
        let q: F = Formula::rel("R", [Term::var("x")])
            .and(Formula::Atom(DenseAtom::lt(Term::var("x"), Term::cst(5))));
        let ans = eval_query(&q, &[Var::new("x")], &inst).unwrap();
        assert!(ans.contains(&[r(3)]));
        assert!(!ans.contains(&[r(7)]));
        assert!(!ans.contains(&[r(25)]));
    }

    #[test]
    fn projection_query() {
        // {x | ∃y. S(x, y)} = {1, 2, 3}
        let inst = interval_instance();
        let q: F = Formula::exists(["y"], Formula::rel("S", [Term::var("x"), Term::var("y")]));
        let ans = eval_query(&q, &[Var::new("x")], &inst).unwrap();
        assert!(ans.contains(&[r(1)]) && ans.contains(&[r(2)]) && ans.contains(&[r(3)]));
        assert!(!ans.contains(&[r(4)]));
    }

    #[test]
    fn join_query() {
        // {(x, z) | ∃y. S(x, y) ∧ S(y, z)} = {(1,3), (2,4)}
        let inst = interval_instance();
        let q: F = Formula::exists(
            ["y"],
            Formula::rel("S", [Term::var("x"), Term::var("y")])
                .and(Formula::rel("S", [Term::var("y"), Term::var("z")])),
        );
        let ans = eval_query(&q, &[Var::new("x"), Var::new("z")], &inst).unwrap();
        assert!(ans.contains(&[r(1), r(3)]));
        assert!(ans.contains(&[r(2), r(4)]));
        assert!(!ans.contains(&[r(1), r(2)]));
        assert!(!ans.contains(&[r(3), r(1)]));
    }

    #[test]
    fn universal_quantifier() {
        // ∀x. R(x) → x ≤ 30   holds;   ∀x. R(x) → x ≤ 10   fails.
        let inst = interval_instance();
        let holds: F = Formula::forall(
            ["x"],
            Formula::rel("R", [Term::var("x")])
                .implies(Formula::Atom(DenseAtom::le(Term::var("x"), Term::cst(30)))),
        );
        let fails: F = Formula::forall(
            ["x"],
            Formula::rel("R", [Term::var("x")])
                .implies(Formula::Atom(DenseAtom::le(Term::var("x"), Term::cst(10)))),
        );
        assert!(eval_sentence(&holds, &inst).unwrap());
        assert!(!eval_sentence(&fails, &inst).unwrap());
    }

    #[test]
    fn negation_and_between() {
        // {x | ¬R(x) ∧ 0 ≤ x ∧ x ≤ 30}: the gap (10, 20).
        let inst = interval_instance();
        let q: F = Formula::rel("R", [Term::var("x")])
            .not()
            .and(Formula::Atom(DenseAtom::le(Term::cst(0), Term::var("x"))))
            .and(Formula::Atom(DenseAtom::le(Term::var("x"), Term::cst(30))));
        let ans = eval_query(&q, &[Var::new("x")], &inst).unwrap();
        assert!(ans.contains(&[r(15)]));
        assert!(!ans.contains(&[r(5)]));
        assert!(!ans.contains(&[r(25)]));
        assert!(!ans.contains(&[r(31)]));
    }

    #[test]
    fn density_is_visible_to_queries() {
        // ∀x ∀y. x < y → ∃z. x < z ∧ z < y  — density of the order, a valid sentence.
        let inst = Instance::new(Schema::new());
        let q: F = Formula::forall(
            ["x", "y"],
            Formula::Atom(DenseAtom::lt(Term::var("x"), Term::var("y"))).implies(Formula::exists(
                ["z"],
                Formula::Atom(DenseAtom::lt(Term::var("x"), Term::var("z")))
                    .and(Formula::Atom(DenseAtom::lt(Term::var("z"), Term::var("y")))),
            )),
        );
        assert!(eval_sentence::<DenseOrder>(&q, &inst).unwrap());
        // No endpoints: ∃x ∀y. x ≤ y  is false.
        let q2: F = Formula::exists(
            ["x"],
            Formula::forall(
                ["y"],
                Formula::Atom(DenseAtom::le(Term::var("x"), Term::var("y"))),
            ),
        );
        assert!(!eval_sentence::<DenseOrder>(&q2, &inst).unwrap());
    }

    #[test]
    fn constant_argument_in_relation_atom() {
        // R(25) is true, R(15) is false.
        let inst = interval_instance();
        let q_true: F = Formula::rel("R", [Term::cst(25)]);
        let q_false: F = Formula::rel("R", [Term::cst(15)]);
        assert!(eval_sentence(&q_true, &inst).unwrap());
        assert!(!eval_sentence(&q_false, &inst).unwrap());
    }

    #[test]
    fn repeated_variable_in_relation_atom() {
        // {x | S(x, x)} is empty for our S.
        let inst = interval_instance();
        let q: F = Formula::rel("S", [Term::var("x"), Term::var("x")]);
        let ans = eval_query(&q, &[Var::new("x")], &inst).unwrap();
        assert!(ans.is_empty());
    }

    #[test]
    fn errors_are_reported() {
        let inst = interval_instance();
        let unknown: F = Formula::rel("T", [Term::var("x")]);
        assert!(matches!(
            eval_query(&unknown, &[Var::new("x")], &inst),
            Err(EvalError::UnknownRelation(_))
        ));
        let wrong_arity: F = Formula::rel("S", [Term::var("x")]);
        assert!(matches!(
            eval_query(&wrong_arity, &[Var::new("x")], &inst),
            Err(EvalError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn answers_are_finitely_representable_and_composable() {
        // Compose: the answer of one query is stored and queried again.
        let inst = interval_instance();
        let q: F = Formula::rel("R", [Term::var("x")])
            .and(Formula::Atom(DenseAtom::lt(Term::var("x"), Term::cst(5))));
        let ans = eval_query(&q, &[Var::new("x")], &inst).unwrap();
        let schema = Schema::from_pairs([("A", 1)]);
        let mut inst2 = Instance::new(schema);
        inst2.set("A", ans);
        let q2: F = Formula::exists(["x"], Formula::rel("A", [Term::var("x")]));
        assert!(eval_sentence(&q2, &inst2).unwrap());
    }
}
