//! The constraint-theory abstraction.
//!
//! The paper's framework is parametric in the *context structure* and its first-order
//! language: the case study is `(Q, ≤)` (dense order, crate [`crate::dense`]), with
//! `(Q, ≤, +)` (linear constraints, crate `frdb-linear`) and the real field surveyed in
//! Section 7.  What the generic query evaluator actually needs from a context is
//! exactly the quantifier-elimination interface identified in Section 4.1 (question
//! Q1): decide satisfiability of a conjunction of atoms, tighten it to a canonical
//! form, eliminate one existentially quantified variable from it, and decide
//! implication between conjunctions.  [`Theory`] packages that interface.

use crate::logic::{Term, Var};
use frdb_num::Rat;
use std::collections::{BTreeSet, HashMap};
use std::fmt::{Debug, Display};
use std::hash::Hash;

/// A constraint atom of some first-order language interpreted over the rationals.
///
/// The `Send + Sync + 'static` bounds let conjunctions over any atom type carry
/// shared, lazily computed canonical caches (see
/// [`crate::relation::GenTuple`]).
pub trait Atom: Clone + Eq + Hash + Debug + Display + Send + Sync + 'static {
    /// The variables occurring in the atom.
    fn vars(&self) -> BTreeSet<Var>;

    /// The constants occurring in the atom.
    fn constants(&self) -> BTreeSet<Rat>;

    /// Evaluates the atom under a total assignment of rationals to variables.
    ///
    /// The assignment must cover every variable of the atom; this is the semantic
    /// satisfaction relation `A ⊨ φ(a̅)` of Definition 2.3.
    fn eval(&self, assignment: &dyn Fn(&Var) -> Rat) -> bool;

    /// The negation of the atom as a *disjunction* of atoms.
    ///
    /// Over a total dense order every negated atom is again expressible positively
    /// (`¬(s < t)` is `t ≤ s`, `¬(s = t)` is `s < t ∨ t < s`), which keeps generalized
    /// tuples negation-free as in the paper's primitive tuples (Definition 6.7).
    fn negate(&self) -> Vec<Self>;

    /// Substitutes a term (variable or constant) for a variable.
    fn subst(&self, var: &Var, replacement: &Term) -> Self;

    /// Applies a **simultaneous** substitution: every variable in `map` is
    /// replaced by its image in one pass, so permutations need no temporary
    /// variables (unlike chained [`Atom::subst`] calls).
    fn subst_simultaneous(&self, map: &HashMap<Var, Term>) -> Self;

    /// Applies a mapping to every constant of the atom (Definition 4.3).
    fn map_constants(&self, f: &impl Fn(&Rat) -> Rat) -> Self;
}

/// A conjunction of atoms: the paper's *generalized tuple* (Section 2.2).
pub type Conj<A> = Vec<A>;

/// A disjunction of conjunctions of atoms: a quantifier-free formula in disjunctive
/// normal form, i.e. a finite representation of a relation.
pub type Dnf<A> = Vec<Conj<A>>;

/// A first-order theory with quantifier elimination, sufficient to drive the
/// constraint query evaluator.
///
/// ## The canonical context
///
/// Every decision the evaluator needs — satisfiability, canonicalization,
/// quantifier elimination, implication — is a view of one saturated object per
/// conjunction (for dense order: the transitive order closure).  The
/// associated type [`Theory::Ctx`] names that object, [`Theory::context`]
/// builds it **once**, and the `ctx_*` methods answer every question from it
/// without re-saturating.  Generalized tuples cache their context (see
/// [`crate::relation::GenTuple`]), so repeated queries against the same
/// conjunction — the inner loops of DNF simplification and of the Datalog
/// fixpoint — cost closure lookups, not closure constructions.
///
/// The conjunction-level conveniences (`satisfiable`, `canonicalize`,
/// `eliminate`, `implies`) have default implementations that build a throwaway
/// context; callers holding a [`crate::relation::GenTuple`] should prefer the
/// `ctx_*` forms through the tuple's cache.
pub trait Theory: Sized + 'static {
    /// The atom type of the theory's language.
    type A: Atom;

    /// The saturated canonical context of a conjunction (e.g. the dense-order
    /// transitive closure), from which all decisions are read off.
    type Ctx: Clone + Send + Sync + 'static;

    /// Human-readable name of the theory (used in reports and benchmarks).
    fn name() -> &'static str;

    /// Builds the canonical context of a conjunction.  This is the only
    /// saturating (potentially super-linear) operation of the theory.
    fn context(conj: &[Self::A]) -> Self::Ctx;

    /// Whether the context's conjunction is satisfiable over the structure.
    fn ctx_satisfiable(ctx: &Self::Ctx) -> bool;

    /// The canonical (tightest) form of the context's conjunction, or `None`
    /// if unsatisfiable.
    ///
    /// Canonical means: two equivalent satisfiable conjunctions over the same
    /// variables and constants produce equal atom lists, so the result can be
    /// used for hash-based duplicate elimination.
    fn ctx_canonical(ctx: &Self::Ctx) -> Option<Conj<Self::A>>;

    /// Eliminates an existentially quantified variable, returning an
    /// equivalent quantifier-free DNF over the remaining variables.  The
    /// context is assumed satisfiable.
    ///
    /// For dense order and linear constraints the result is a single
    /// conjunction; the DNF return type leaves room for theories where
    /// elimination genuinely branches.
    fn ctx_eliminate(ctx: &Self::Ctx, var: &Var) -> Dnf<Self::A>;

    /// Whether the context's conjunction implies every atom of `conclusion`
    /// (with all variables implicitly universally quantified).  Must be exact
    /// even for constants of `conclusion` that do not occur in the premise.
    fn ctx_entails(ctx: &Self::Ctx, conclusion: &[Self::A]) -> bool;

    /// A cheap **sound pre-filter** for joint satisfiability of two contexts:
    /// returning `false` guarantees that the conjunction of the two underlying
    /// conjunctions is unsatisfiable; returning `true` decides nothing.
    ///
    /// This is the pruning hook of the relational-algebra evaluator's natural
    /// join ([`crate::relation::Relation::join`]): candidate tuple pairs are
    /// screened against both cached contexts *without* building the merged
    /// context, and only surviving pairs pay for a full saturation (which is
    /// then cached on the joined tuple).  The default accepts every pair;
    /// theories override it with whatever conflict test their context answers
    /// in sub-saturation time (dense order: pairwise strict-cycle detection
    /// across the two closures).
    fn ctx_compatible(_a: &Self::Ctx, _b: &Self::Ctx) -> bool {
        true
    }

    /// The constant the context **pins** a variable to — `Some(c)` only when
    /// the conjunction entails `var = c`.  Must be exact when returned:
    /// `Some(c)` with the conjunction satisfiable by any other value of `var`
    /// would let the join's hash partitioning drop valid pairs.  `None` is
    /// always safe (the tuple is treated as a wildcard).
    ///
    /// [`crate::relation::Relation::join`] buckets tuples by the pinned value
    /// of a shared column, so finite (point-like) relations join in near-linear
    /// time instead of enumerating the quadratic pair space.  The default pins
    /// nothing, which degrades joins to the filtered nested loop.
    fn ctx_pinned(_ctx: &Self::Ctx, _var: &Var) -> Option<Rat> {
        None
    }

    /// The constant **envelope** the context entails for a variable: `Some((lo,
    /// up))` only when the conjunction entails `lo ⋈ var` and/or `var ⋈ up`
    /// for constants `lo`, `up` (with [`std::ops::Bound::Excluded`] marking a
    /// strict comparison and [`std::ops::Bound::Unbounded`] an unconstrained
    /// side).  The envelope must be *sound* — every satisfying assignment
    /// places `var` inside it — but need not be tight; `None` (or a fully
    /// unbounded pair) is always safe and degrades the interval index to a
    /// wildcard.
    ///
    /// This is the hook behind [`crate::relation::Relation::join`]'s
    /// sorted-endpoint interval index: tuples whose envelopes on a shared
    /// column are disjoint are provably jointly unsatisfiable and never reach
    /// [`Theory::ctx_compatible`].  A pinned column ([`Theory::ctx_pinned`])
    /// is the degenerate zero-width envelope.  The default derives nothing.
    fn ctx_bounds(
        _ctx: &Self::Ctx,
        _var: &Var,
    ) -> Option<(std::ops::Bound<Rat>, std::ops::Bound<Rat>)> {
        None
    }

    /// Decides whether a conjunction of atoms is satisfiable over the context
    /// structure.
    fn satisfiable(conj: &[Self::A]) -> bool {
        Self::ctx_satisfiable(&Self::context(conj))
    }

    /// Tightens a conjunction to an equivalent canonical conjunction, or `None` if it
    /// is unsatisfiable.
    fn canonicalize(conj: &[Self::A]) -> Option<Conj<Self::A>> {
        Self::ctx_canonical(&Self::context(conj))
    }

    /// Eliminates an existentially quantified variable from a conjunction,
    /// returning an equivalent quantifier-free DNF over the remaining variables
    /// (empty if the conjunction is unsatisfiable).
    fn eliminate(var: &Var, conj: &[Self::A]) -> Dnf<Self::A> {
        let ctx = Self::context(conj);
        if !Self::ctx_satisfiable(&ctx) {
            return Vec::new();
        }
        Self::ctx_eliminate(&ctx, var)
    }

    /// Decides whether conjunction `premise` implies conjunction `conclusion` over the
    /// context structure (with all variables implicitly universally quantified).
    fn implies(premise: &[Self::A], conclusion: &[Self::A]) -> bool {
        Self::ctx_entails(&Self::context(premise), conclusion)
    }
}

/// Eliminates a list of variables from a conjunction by repeated single-variable
/// elimination, producing a DNF (a thin wrapper over
/// [`crate::relation::eliminate_tuple`], which carries the context cache).
#[must_use]
pub fn eliminate_all<T: Theory>(vars: &[Var], conj: &[T::A]) -> Dnf<T::A> {
    let tuple = crate::relation::GenTuple::new(conj.to_vec());
    crate::relation::eliminate_tuple::<T>(vars, &tuple)
        .into_iter()
        .map(crate::relation::GenTuple::into_atoms)
        .collect()
}

/// Evaluates a conjunction of atoms under a total assignment.
#[must_use]
pub fn eval_conj<A: Atom>(conj: &[A], assignment: &dyn Fn(&Var) -> Rat) -> bool {
    conj.iter().all(|a| a.eval(assignment))
}

/// Evaluates a DNF under a total assignment.
#[must_use]
pub fn eval_dnf<A: Atom>(dnf: &[Conj<A>], assignment: &dyn Fn(&Var) -> Rat) -> bool {
    dnf.iter().any(|c| eval_conj(c, assignment))
}
