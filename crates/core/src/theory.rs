//! The constraint-theory abstraction.
//!
//! The paper's framework is parametric in the *context structure* and its first-order
//! language: the case study is `(Q, ≤)` (dense order, crate [`crate::dense`]), with
//! `(Q, ≤, +)` (linear constraints, crate `frdb-linear`) and the real field surveyed in
//! Section 7.  What the generic query evaluator actually needs from a context is
//! exactly the quantifier-elimination interface identified in Section 4.1 (question
//! Q1): decide satisfiability of a conjunction of atoms, tighten it to a canonical
//! form, eliminate one existentially quantified variable from it, and decide
//! implication between conjunctions.  [`Theory`] packages that interface.

use crate::logic::{Term, Var};
use frdb_num::Rat;
use std::collections::BTreeSet;
use std::fmt::{Debug, Display};
use std::hash::Hash;

/// A constraint atom of some first-order language interpreted over the rationals.
pub trait Atom: Clone + Eq + Hash + Debug + Display {
    /// The variables occurring in the atom.
    fn vars(&self) -> BTreeSet<Var>;

    /// The constants occurring in the atom.
    fn constants(&self) -> BTreeSet<Rat>;

    /// Evaluates the atom under a total assignment of rationals to variables.
    ///
    /// The assignment must cover every variable of the atom; this is the semantic
    /// satisfaction relation `A ⊨ φ(a̅)` of Definition 2.3.
    fn eval(&self, assignment: &dyn Fn(&Var) -> Rat) -> bool;

    /// The negation of the atom as a *disjunction* of atoms.
    ///
    /// Over a total dense order every negated atom is again expressible positively
    /// (`¬(s < t)` is `t ≤ s`, `¬(s = t)` is `s < t ∨ t < s`), which keeps generalized
    /// tuples negation-free as in the paper's primitive tuples (Definition 6.7).
    fn negate(&self) -> Vec<Self>;

    /// Substitutes a term (variable or constant) for a variable.
    fn subst(&self, var: &Var, replacement: &Term) -> Self;

    /// Applies a mapping to every constant of the atom (Definition 4.3).
    fn map_constants(&self, f: &impl Fn(&Rat) -> Rat) -> Self;
}

/// A conjunction of atoms: the paper's *generalized tuple* (Section 2.2).
pub type Conj<A> = Vec<A>;

/// A disjunction of conjunctions of atoms: a quantifier-free formula in disjunctive
/// normal form, i.e. a finite representation of a relation.
pub type Dnf<A> = Vec<Conj<A>>;

/// A first-order theory with quantifier elimination, sufficient to drive the
/// constraint query evaluator.
pub trait Theory {
    /// The atom type of the theory's language.
    type A: Atom;

    /// Human-readable name of the theory (used in reports and benchmarks).
    fn name() -> &'static str;

    /// Decides whether a conjunction of atoms is satisfiable over the context
    /// structure.
    fn satisfiable(conj: &[Self::A]) -> bool;

    /// Tightens a conjunction to an equivalent canonical conjunction, or `None` if it
    /// is unsatisfiable.
    ///
    /// Canonical means: two equivalent satisfiable conjunctions over the same variables
    /// and constants tighten to equal atom sets, so the result can be used for
    /// duplicate elimination.
    fn canonicalize(conj: &[Self::A]) -> Option<Conj<Self::A>>;

    /// Eliminates an existentially quantified variable from a satisfiable conjunction,
    /// returning an equivalent quantifier-free DNF over the remaining variables.
    ///
    /// For dense order and linear constraints the result is a single conjunction; the
    /// DNF return type leaves room for theories where elimination genuinely branches.
    fn eliminate(var: &Var, conj: &[Self::A]) -> Dnf<Self::A>;

    /// Decides whether conjunction `premise` implies conjunction `conclusion` over the
    /// context structure (with all variables implicitly universally quantified).
    fn implies(premise: &[Self::A], conclusion: &[Self::A]) -> bool;
}

/// Eliminates a list of variables from a conjunction by repeated single-variable
/// elimination, producing a DNF.
#[must_use]
pub fn eliminate_all<T: Theory>(vars: &[Var], conj: &[T::A]) -> Dnf<T::A> {
    let mut dnf: Dnf<T::A> = vec![conj.to_vec()];
    for v in vars {
        let mut next: Dnf<T::A> = Vec::new();
        for c in &dnf {
            if !T::satisfiable(c) {
                continue;
            }
            next.extend(T::eliminate(v, c));
        }
        dnf = next;
    }
    dnf.retain(|c| T::satisfiable(c));
    dnf
}

/// Evaluates a conjunction of atoms under a total assignment.
#[must_use]
pub fn eval_conj<A: Atom>(conj: &[A], assignment: &dyn Fn(&Var) -> Rat) -> bool {
    conj.iter().all(|a| a.eval(assignment))
}

/// Evaluates a DNF under a total assignment.
#[must_use]
pub fn eval_dnf<A: Atom>(dnf: &[Conj<A>], assignment: &dyn Fn(&Var) -> Rat) -> bool {
    dnf.iter().any(|c| eval_conj(c, assignment))
}
