//! Dense-order constraints over `(Q, ≤)` — the language `L≤` of the paper.
//!
//! Atoms are comparisons `s ⋈ t` between terms (variables or rational constants) with
//! `⋈ ∈ {<, ≤, =}`; the other comparisons are normalized away (`s > t` becomes
//! `t < s`, `s ≠ t` is not an atom but the disjunction `s < t ∨ t < s`, exactly as in
//! the paper's primitive tuples, Definition 6.7).
//!
//! The decision procedure is the classic *order closure*: view a conjunction as a
//! directed graph whose nodes are the terms occurring in it (plus the implicit facts
//! between constants) and whose edges are `≤` (non-strict) or `<` (strict); compute the
//! transitive closure in the semiring `none < ≤ < <`.  Over a dense order without
//! endpoints (the theory of `Q`, complete and admitting quantifier elimination,
//! Theorem 2.1):
//!
//! * the conjunction is satisfiable iff no node reaches itself strictly;
//! * the strongest entailed relation between two terms is their closure entry;
//! * eliminating `∃x` is exactly restricting the closure to the remaining nodes
//!   (density supplies witnesses between strict bounds, the absence of endpoints
//!   supplies witnesses beyond one-sided bounds).
//!
//! This gives exact, polynomial-time quantifier elimination for conjunctions, which is
//! what the FO evaluator and the DATALOG¬ engine are built on.

use crate::logic::{Term, Var};
use crate::theory::{Atom, Conj, Dnf, Theory};
use frdb_num::Rat;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::ops::Bound;

/// Comparison operators of the dense-order language (after normalization).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum CmpOp {
    /// Strict inequality `<`.
    Lt,
    /// Non-strict inequality `≤`.
    Le,
    /// Equality `=`.
    Eq,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CmpOp::Lt => write!(f, "<"),
            CmpOp::Le => write!(f, "≤"),
            CmpOp::Eq => write!(f, "="),
        }
    }
}

/// A dense-order constraint atom `lhs ⋈ rhs`.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DenseAtom {
    /// Left-hand term.
    pub lhs: Term,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand term.
    pub rhs: Term,
}

impl DenseAtom {
    /// The atom `lhs < rhs`.
    #[must_use]
    pub fn lt(lhs: impl Into<Term>, rhs: impl Into<Term>) -> Self {
        DenseAtom {
            lhs: lhs.into(),
            op: CmpOp::Lt,
            rhs: rhs.into(),
        }
    }

    /// The atom `lhs ≤ rhs`.
    #[must_use]
    pub fn le(lhs: impl Into<Term>, rhs: impl Into<Term>) -> Self {
        DenseAtom {
            lhs: lhs.into(),
            op: CmpOp::Le,
            rhs: rhs.into(),
        }
    }

    /// The atom `lhs = rhs`.
    #[must_use]
    pub fn eq(lhs: impl Into<Term>, rhs: impl Into<Term>) -> Self {
        DenseAtom {
            lhs: lhs.into(),
            op: CmpOp::Eq,
            rhs: rhs.into(),
        }
    }

    /// The atom `lhs > rhs`, normalized to `rhs < lhs`.
    #[must_use]
    pub fn gt(lhs: impl Into<Term>, rhs: impl Into<Term>) -> Self {
        DenseAtom::lt(rhs, lhs)
    }

    /// The atom `lhs ≥ rhs`, normalized to `rhs ≤ lhs`.
    #[must_use]
    pub fn ge(lhs: impl Into<Term>, rhs: impl Into<Term>) -> Self {
        DenseAtom::le(rhs, lhs)
    }

    fn term_value(t: &Term, assignment: &dyn Fn(&Var) -> Rat) -> Rat {
        match t {
            Term::Var(v) => assignment(v),
            Term::Const(c) => c.clone(),
        }
    }
}

impl fmt::Display for DenseAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.lhs, self.op, self.rhs)
    }
}

impl Atom for DenseAtom {
    fn vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        if let Term::Var(v) = &self.lhs {
            out.insert(v.clone());
        }
        if let Term::Var(v) = &self.rhs {
            out.insert(v.clone());
        }
        out
    }

    fn constants(&self) -> BTreeSet<Rat> {
        let mut out = BTreeSet::new();
        if let Term::Const(c) = &self.lhs {
            out.insert(c.clone());
        }
        if let Term::Const(c) = &self.rhs {
            out.insert(c.clone());
        }
        out
    }

    fn eval(&self, assignment: &dyn Fn(&Var) -> Rat) -> bool {
        let l = Self::term_value(&self.lhs, assignment);
        let r = Self::term_value(&self.rhs, assignment);
        match self.op {
            CmpOp::Lt => l < r,
            CmpOp::Le => l <= r,
            CmpOp::Eq => l == r,
        }
    }

    fn negate(&self) -> Vec<Self> {
        match self.op {
            // ¬(l < r)  ≡  r ≤ l
            CmpOp::Lt => vec![DenseAtom::le(self.rhs.clone(), self.lhs.clone())],
            // ¬(l ≤ r)  ≡  r < l
            CmpOp::Le => vec![DenseAtom::lt(self.rhs.clone(), self.lhs.clone())],
            // ¬(l = r)  ≡  l < r  ∨  r < l
            CmpOp::Eq => vec![
                DenseAtom::lt(self.lhs.clone(), self.rhs.clone()),
                DenseAtom::lt(self.rhs.clone(), self.lhs.clone()),
            ],
        }
    }

    fn subst(&self, var: &Var, replacement: &Term) -> Self {
        DenseAtom {
            lhs: self.lhs.subst(var, replacement),
            op: self.op,
            rhs: self.rhs.subst(var, replacement),
        }
    }

    fn subst_simultaneous(&self, map: &HashMap<Var, Term>) -> Self {
        DenseAtom {
            lhs: self.lhs.subst_simultaneous(map),
            op: self.op,
            rhs: self.rhs.subst_simultaneous(map),
        }
    }

    fn map_constants(&self, f: &impl Fn(&Rat) -> Rat) -> Self {
        let map = |t: &Term| match t {
            Term::Var(v) => Term::Var(v.clone()),
            Term::Const(c) => Term::Const(f(c)),
        };
        DenseAtom {
            lhs: map(&self.lhs),
            op: self.op,
            rhs: map(&self.rhs),
        }
    }
}

/// Strength of a derived order relation between two terms.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
enum Rel {
    /// No entailed relation.
    None,
    /// Entailed `≤`.
    Le,
    /// Entailed `<`.
    Lt,
}

impl Rel {
    fn compose(self, other: Rel) -> Rel {
        match (self, other) {
            (Rel::None, _) | (_, Rel::None) => Rel::None,
            (Rel::Lt, _) | (_, Rel::Lt) => Rel::Lt,
            _ => Rel::Le,
        }
    }
}

/// The transitive order closure of a conjunction of dense-order atoms.
///
/// This is the workhorse of the dense-order theory: it decides satisfiability, yields
/// the canonical (tightest) conjunction, implements quantifier elimination by node
/// restriction, and exposes per-pair entailed relations for the normal-form machinery
/// in [`crate::normal`].
#[derive(Clone, Debug)]
pub struct OrderClosure {
    nodes: Vec<Term>,
    index: HashMap<Term, usize>,
    rel: Vec<Vec<Rel>>,
    satisfiable: bool,
}

impl OrderClosure {
    /// Builds the closure of a conjunction, additionally registering `extra_terms` as
    /// nodes (useful when callers want closure entries for terms of their own;
    /// entailment of atoms over foreign constants is exact even without them).
    #[must_use]
    pub fn new(conj: &[DenseAtom], extra_terms: &[Term]) -> Self {
        let mut index: HashMap<Term, usize> = HashMap::new();
        let mut nodes: Vec<Term> = Vec::new();
        let intern = |t: &Term, nodes: &mut Vec<Term>, index: &mut HashMap<Term, usize>| {
            if let Some(&i) = index.get(t) {
                i
            } else {
                let i = nodes.len();
                nodes.push(t.clone());
                index.insert(t.clone(), i);
                i
            }
        };
        for a in conj {
            intern(&a.lhs, &mut nodes, &mut index);
            intern(&a.rhs, &mut nodes, &mut index);
        }
        for t in extra_terms {
            intern(t, &mut nodes, &mut index);
        }
        let n = nodes.len();
        let mut rel = vec![vec![Rel::None; n]; n];
        for (i, row) in rel.iter_mut().enumerate() {
            row[i] = Rel::Le;
        }
        // Implicit facts between distinct constants.
        for i in 0..n {
            for j in 0..n {
                if let (Term::Const(a), Term::Const(b)) = (&nodes[i], &nodes[j]) {
                    if a < b {
                        rel[i][j] = Rel::Lt;
                    }
                }
            }
        }
        // Edges from the atoms.
        for a in conj {
            let i = index[&a.lhs];
            let j = index[&a.rhs];
            match a.op {
                CmpOp::Lt => rel[i][j] = rel[i][j].max(Rel::Lt),
                CmpOp::Le => rel[i][j] = rel[i][j].max(Rel::Le),
                CmpOp::Eq => {
                    rel[i][j] = rel[i][j].max(Rel::Le);
                    rel[j][i] = rel[j][i].max(Rel::Le);
                }
            }
        }
        // Floyd–Warshall over the {None, ≤, <} semiring.
        for k in 0..n {
            for i in 0..n {
                if rel[i][k] == Rel::None {
                    continue;
                }
                for j in 0..n {
                    let through = rel[i][k].compose(rel[k][j]);
                    if through > rel[i][j] {
                        rel[i][j] = through;
                    }
                }
            }
        }
        let satisfiable = (0..n).all(|i| rel[i][i] != Rel::Lt);
        OrderClosure {
            nodes,
            index,
            rel,
            satisfiable,
        }
    }

    /// Whether the underlying conjunction is satisfiable over `(Q, ≤)`.
    #[must_use]
    pub fn satisfiable(&self) -> bool {
        self.satisfiable
    }

    /// The interned nodes (terms) of the closure.
    #[must_use]
    pub fn nodes(&self) -> &[Term] {
        &self.nodes
    }

    fn idx(&self, t: &Term) -> Option<usize> {
        self.index.get(t).copied()
    }

    /// The strongest relation `node_i ⋈ c` entailed for a constant `c` that is
    /// not itself a node: every such entailment must factor through some
    /// constant node `d` with `node_i ⋈ d` in the closure (a quantifier-free
    /// premise can only bound a term through its own constants).
    fn rel_to_foreign_const(&self, i: usize, c: &Rat) -> Rel {
        let mut best = Rel::None;
        for (j, node) in self.nodes.iter().enumerate() {
            if let Term::Const(d) = node {
                let via = match d.cmp(c) {
                    std::cmp::Ordering::Less => self.rel[i][j].compose(Rel::Lt),
                    std::cmp::Ordering::Equal => self.rel[i][j],
                    std::cmp::Ordering::Greater => Rel::None,
                };
                best = best.max(via);
            }
        }
        best
    }

    /// The strongest relation `c ⋈ node_i` entailed for a foreign constant `c`.
    fn rel_from_foreign_const(&self, c: &Rat, i: usize) -> Rel {
        let mut best = Rel::None;
        for (j, node) in self.nodes.iter().enumerate() {
            if let Term::Const(d) = node {
                let via = match c.cmp(d) {
                    std::cmp::Ordering::Less => Rel::Lt.compose(self.rel[j][i]),
                    std::cmp::Ordering::Equal => self.rel[j][i],
                    std::cmp::Ordering::Greater => Rel::None,
                };
                best = best.max(via);
            }
        }
        best
    }

    /// The strongest entailed relation from `s` to `t`, covering terms that are
    /// not nodes of the closure: foreign constants are bounded exactly through
    /// the closure's own constants; foreign variables are unconstrained.
    fn directed_rel(&self, s: &Term, t: &Term) -> Rel {
        match (self.idx(s), self.idx(t)) {
            (Some(i), Some(j)) => self.rel[i][j],
            (Some(i), None) => match t {
                Term::Const(c) => self.rel_to_foreign_const(i, c),
                Term::Var(_) => Rel::None,
            },
            (None, Some(j)) => match s {
                Term::Const(c) => self.rel_from_foreign_const(c, j),
                Term::Var(_) => Rel::None,
            },
            (None, None) => Rel::None,
        }
    }

    /// Does the closure entail `lhs ⋈ rhs`?
    ///
    /// Exact for arbitrary terms: interned pairs read the closure table;
    /// constant–constant atoms are decided numerically; atoms against foreign
    /// constants are decided through the closure's constant bounds (complete
    /// over a dense order, where any entailed comparison with a constant
    /// outside the premise factors through a constant of the premise); foreign
    /// variables entail only reflexive facts.
    #[must_use]
    pub fn entails(&self, atom: &DenseAtom) -> bool {
        if !self.satisfiable {
            return true;
        }
        // Constant-constant atoms are decided numerically.
        if let (Term::Const(a), Term::Const(b)) = (&atom.lhs, &atom.rhs) {
            return match atom.op {
                CmpOp::Lt => a < b,
                CmpOp::Le => a <= b,
                CmpOp::Eq => a == b,
            };
        }
        if atom.lhs == atom.rhs {
            return matches!(atom.op, CmpOp::Le | CmpOp::Eq);
        }
        match atom.op {
            CmpOp::Lt => self.directed_rel(&atom.lhs, &atom.rhs) == Rel::Lt,
            CmpOp::Le => self.directed_rel(&atom.lhs, &atom.rhs) >= Rel::Le,
            CmpOp::Eq => {
                self.directed_rel(&atom.lhs, &atom.rhs) >= Rel::Le
                    && self.directed_rel(&atom.rhs, &atom.lhs) >= Rel::Le
            }
        }
    }

    /// The strongest entailed atom between two interned terms, if any.
    #[must_use]
    pub fn strongest(&self, s: &Term, t: &Term) -> Option<DenseAtom> {
        let (i, j) = (self.idx(s)?, self.idx(t)?);
        if self.rel[i][j] >= Rel::Le && self.rel[j][i] >= Rel::Le {
            Some(DenseAtom::eq(s.clone(), t.clone()))
        } else if self.rel[i][j] == Rel::Lt {
            Some(DenseAtom::lt(s.clone(), t.clone()))
        } else if self.rel[i][j] == Rel::Le {
            Some(DenseAtom::le(s.clone(), t.clone()))
        } else {
            None
        }
    }

    /// Emits the closure as a sorted, duplicate-free conjunction of atoms among the
    /// nodes satisfying `keep`, skipping trivial facts between constants and reflexive
    /// facts.  Used for canonicalization and for quantifier elimination (with `keep`
    /// excluding the eliminated variable).
    #[must_use]
    pub fn atoms_among(&self, keep: &dyn Fn(&Term) -> bool) -> Vec<DenseAtom> {
        let n = self.nodes.len();
        let mut out: BTreeSet<DenseAtom> = BTreeSet::new();
        for i in 0..n {
            if !keep(&self.nodes[i]) {
                continue;
            }
            for j in 0..n {
                if i == j || !keep(&self.nodes[j]) {
                    continue;
                }
                // Skip facts about two constants: they carry no information.
                if matches!(
                    (&self.nodes[i], &self.nodes[j]),
                    (Term::Const(_), Term::Const(_))
                ) {
                    continue;
                }
                let forward = self.rel[i][j];
                let backward = self.rel[j][i];
                if forward >= Rel::Le && backward >= Rel::Le {
                    // Emit equality once, with the smaller term first for determinism.
                    if self.nodes[i] < self.nodes[j] {
                        out.insert(DenseAtom::eq(self.nodes[i].clone(), self.nodes[j].clone()));
                    }
                } else if forward == Rel::Lt {
                    out.insert(DenseAtom::lt(self.nodes[i].clone(), self.nodes[j].clone()));
                } else if forward == Rel::Le {
                    out.insert(DenseAtom::le(self.nodes[i].clone(), self.nodes[j].clone()));
                }
            }
        }
        out.into_iter().collect()
    }

    /// A sound pairwise filter for joint satisfiability with another closure,
    /// answered **without building the merged closure**.
    ///
    /// For every pair of terms that both closures can relate (shared nodes,
    /// and each side's constant nodes, which [`OrderClosure::entails`]-style
    /// foreign-constant reasoning bounds exactly), the strongest directed
    /// relations of the two closures are combined; a pair whose combined
    /// forward and backward relations compose to a *strict* cycle proves the
    /// merged conjunction unsatisfiable.  Cycles alternating through three or
    /// more terms are left to the full merged closure, so `true` decides
    /// nothing — this is the dense-order implementation of
    /// [`crate::theory::Theory::ctx_compatible`], the join pre-filter.
    #[must_use]
    pub fn compatible_with(&self, other: &OrderClosure) -> bool {
        if !self.satisfiable || !other.satisfiable {
            return false;
        }
        // Terms both sides can bound: nodes of one closure that the other
        // either interns too or can reach through its constants.
        let mut terms: Vec<&Term> = Vec::new();
        for t in &self.nodes {
            if other.idx(t).is_some() || matches!(t, Term::Const(_)) {
                terms.push(t);
            }
        }
        for t in &other.nodes {
            if self.idx(t).is_none() && matches!(t, Term::Const(_)) {
                terms.push(t);
            }
        }
        for (i, s) in terms.iter().enumerate() {
            for t in terms.iter().skip(i + 1) {
                let forward = self.directed_rel(s, t).max(other.directed_rel(s, t));
                if forward == Rel::None {
                    continue;
                }
                let backward = self.directed_rel(t, s).max(other.directed_rel(t, s));
                if forward.compose(backward) == Rel::Lt {
                    return false;
                }
            }
        }
        true
    }

    /// The constant the closure pins a variable to: `Some(c)` iff the
    /// conjunction entails `var = c` (the variable's node is mutually `≤` with
    /// a constant node).  Exactness matters — the join hash-partitioning
    /// relies on `Some` meaning *forced* — and holds because the closure is
    /// transitively complete: any entailed equality with a constant appears as
    /// a two-way `≤` in the table.
    #[must_use]
    pub fn pinned_const(&self, var: &Var) -> Option<Rat> {
        if !self.satisfiable {
            return None;
        }
        let i = self.idx(&Term::Var(var.clone()))?;
        for (j, node) in self.nodes.iter().enumerate() {
            if let Term::Const(c) = node {
                if self.rel[i][j] >= Rel::Le && self.rel[j][i] >= Rel::Le {
                    return Some(c.clone());
                }
            }
        }
        None
    }

    /// The constant envelope the closure entails for a variable: the tightest
    /// lower and upper bounds by *constant nodes* of the closure, with
    /// strictness read off the entailed relation (`c < var` vs `c ≤ var`).
    /// `None` when neither side is bounded by a constant (or the variable is
    /// not interned, or the closure is unsatisfiable).
    ///
    /// Soundness mirrors [`OrderClosure::pinned_const`]: the closure is
    /// transitively complete, so every entailed comparison between the
    /// variable and a constant of the premise appears directly in the table —
    /// the envelope therefore contains every satisfying value.  (Bounds
    /// through constants *outside* the premise cannot be entailed over a
    /// dense order, so scanning the constant nodes is exhaustive.)
    #[must_use]
    pub fn const_bounds(&self, var: &Var) -> Option<(Bound<Rat>, Bound<Rat>)> {
        if !self.satisfiable {
            return None;
        }
        let i = self.idx(&Term::Var(var.clone()))?;
        let mut lower: Option<(Rat, bool)> = None; // (value, strict)
        let mut upper: Option<(Rat, bool)> = None;
        for (j, node) in self.nodes.iter().enumerate() {
            if let Term::Const(c) = node {
                // c ⋈ var: a lower bound.
                match self.rel[j][i] {
                    Rel::None => {}
                    r => {
                        let strict = r == Rel::Lt;
                        if lower
                            .as_ref()
                            .is_none_or(|(lv, ls)| c > lv || (c == lv && strict && !*ls))
                        {
                            lower = Some((c.clone(), strict));
                        }
                    }
                }
                // var ⋈ c: an upper bound.
                match self.rel[i][j] {
                    Rel::None => {}
                    r => {
                        let strict = r == Rel::Lt;
                        if upper
                            .as_ref()
                            .is_none_or(|(uv, us)| c < uv || (c == uv && strict && !*us))
                        {
                            upper = Some((c.clone(), strict));
                        }
                    }
                }
            }
        }
        if lower.is_none() && upper.is_none() {
            return None;
        }
        let to_bound = |side: Option<(Rat, bool)>| match side {
            None => Bound::Unbounded,
            Some((v, true)) => Bound::Excluded(v),
            Some((v, false)) => Bound::Included(v),
        };
        Some((to_bound(lower), to_bound(upper)))
    }

    /// Produces a satisfying assignment for the variables of the conjunction, if
    /// satisfiable: a concrete witness of density and of the absence of endpoints.
    ///
    /// Terms are grouped into equivalence classes (mutual `≤`); classes containing a
    /// constant are pinned to that constant; the remaining classes are assigned in a
    /// topological order of the entailed `≤` DAG, each placed strictly between the
    /// strongest bounds induced by the classes assigned so far.  Because the closure
    /// is transitively complete, every constant bound — even one reachable only
    /// through a not-yet-assigned variable class — is already visible when a class is
    /// placed, so the construction never backtracks.
    #[must_use]
    #[allow(clippy::needless_range_loop)] // index-parallel sweeps over `class`/`rel`
    pub fn witness(&self) -> Option<BTreeMap<Var, Rat>> {
        if !self.satisfiable {
            return None;
        }
        let n = self.nodes.len();
        // Group nodes into equivalence classes (mutual ≤).
        let mut class = vec![usize::MAX; n];
        let mut reps: Vec<usize> = Vec::new();
        for i in 0..n {
            if class[i] != usize::MAX {
                continue;
            }
            let c = reps.len();
            class[i] = c;
            reps.push(i);
            for j in (i + 1)..n {
                if class[j] == usize::MAX && self.rel[i][j] >= Rel::Le && self.rel[j][i] >= Rel::Le
                {
                    class[j] = c;
                }
            }
        }
        let m = reps.len();
        let mut value: Vec<Option<Rat>> = vec![None; m];
        // Classes containing a constant are pinned to that value.
        for i in 0..n {
            if let Term::Const(v) = &self.nodes[i] {
                value[class[i]] = Some(v.clone());
            }
        }
        // Kahn-style assignment of the remaining classes: repeatedly pick a class all
        // of whose strict-partial-order predecessors are assigned.
        while let Some(c) = (0..m).find(|&c| {
            value[c].is_none()
                && (0..m).all(|d| {
                    d == c || value[d].is_some() || self.rel[reps[d]][reps[c]] == Rel::None
                })
        }) {
            let rc = reps[c];
            let mut lower: Option<(Rat, bool)> = None; // (value, strict)
            let mut upper: Option<(Rat, bool)> = None;
            for d in 0..m {
                if d == c {
                    continue;
                }
                let Some(v) = &value[d] else { continue };
                let rd = reps[d];
                if self.rel[rd][rc] != Rel::None {
                    let strict = self.rel[rd][rc] == Rel::Lt;
                    if lower.as_ref().is_none_or(|(lv, _)| v > lv) {
                        lower = Some((v.clone(), strict));
                    }
                }
                if self.rel[rc][rd] != Rel::None {
                    let strict = self.rel[rc][rd] == Rel::Lt;
                    if upper.as_ref().is_none_or(|(uv, _)| v < uv) {
                        upper = Some((v.clone(), strict));
                    }
                }
            }
            let v = match (&lower, &upper) {
                (None, None) => Rat::zero(),
                (Some((l, strict)), None) => {
                    if *strict {
                        l + &Rat::one()
                    } else {
                        l.clone()
                    }
                }
                (None, Some((u, strict))) => {
                    if *strict {
                        u - &Rat::one()
                    } else {
                        u.clone()
                    }
                }
                (Some((l, ls)), Some((u, us))) => {
                    if l == u {
                        // Bounds meet; a strict bound here would contradict
                        // satisfiability.  Enforced unconditionally: emitting a
                        // point on a strict bound would fabricate a witness
                        // that violates the constraints.
                        assert!(
                            !*ls && !*us,
                            "witness: strict bounds meet at {l} in a closure reported satisfiable"
                        );
                        l.clone()
                    } else if *ls || *us {
                        l.midpoint(u)
                    } else {
                        l.clone()
                    }
                }
            };
            value[c] = Some(v);
        }
        // Any class still unassigned has no path to an assigned class and no
        // unassigned predecessor — which cannot happen after the loop above unless
        // the DAG were cyclic (ruled out by satisfiability).  A release-mode
        // fallback value here could silently emit a point violating the
        // constraints, so the invariant is a hard error instead.
        let mut out = BTreeMap::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if let Term::Var(v) = node {
                let val = value[class[i]].clone().unwrap_or_else(|| {
                    panic!("witness: class of {v} left unassigned in a satisfiable closure")
                });
                out.insert(v.clone(), val);
            }
        }
        Some(out)
    }
}

/// The dense-order theory `Th(Q, =, ≤, (q)_{q∈Q})`: complete, decidable, with
/// quantifier elimination (Theorem 2.1 of the paper, after \[CK73\]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DenseOrder;

impl Theory for DenseOrder {
    type A = DenseAtom;
    type Ctx = OrderClosure;

    fn name() -> &'static str {
        "dense order (Q, ≤)"
    }

    fn context(conj: &[DenseAtom]) -> OrderClosure {
        OrderClosure::new(conj, &[])
    }

    fn ctx_satisfiable(ctx: &OrderClosure) -> bool {
        ctx.satisfiable()
    }

    fn ctx_canonical(ctx: &OrderClosure) -> Option<Conj<DenseAtom>> {
        if !ctx.satisfiable() {
            return None;
        }
        Some(ctx.atoms_among(&|_| true))
    }

    fn ctx_eliminate(ctx: &OrderClosure, var: &Var) -> Dnf<DenseAtom> {
        if !ctx.satisfiable() {
            return Vec::new();
        }
        let target = Term::Var(var.clone());
        vec![ctx.atoms_among(&|t| *t != target)]
    }

    fn ctx_entails(ctx: &OrderClosure, conclusion: &[DenseAtom]) -> bool {
        if !ctx.satisfiable() {
            return true;
        }
        conclusion.iter().all(|a| ctx.entails(a))
    }

    fn ctx_compatible(a: &OrderClosure, b: &OrderClosure) -> bool {
        a.compatible_with(b)
    }

    fn ctx_pinned(ctx: &OrderClosure, var: &Var) -> Option<Rat> {
        ctx.pinned_const(var)
    }

    fn ctx_bounds(ctx: &OrderClosure, var: &Var) -> Option<(Bound<Rat>, Bound<Rat>)> {
        ctx.const_bounds(var)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Term {
        Term::var("x")
    }
    fn y() -> Term {
        Term::var("y")
    }
    fn z() -> Term {
        Term::var("z")
    }
    fn c(v: i64) -> Term {
        Term::cst(v)
    }

    #[test]
    fn satisfiability_basic() {
        assert!(DenseOrder::satisfiable(&[
            DenseAtom::lt(x(), y()),
            DenseAtom::lt(y(), z())
        ]));
        assert!(!DenseOrder::satisfiable(&[
            DenseAtom::lt(x(), y()),
            DenseAtom::lt(y(), x())
        ]));
        assert!(DenseOrder::satisfiable(&[
            DenseAtom::le(x(), y()),
            DenseAtom::le(y(), x())
        ]));
        assert!(!DenseOrder::satisfiable(&[
            DenseAtom::le(x(), y()),
            DenseAtom::le(y(), x()),
            DenseAtom::lt(x(), y())
        ]));
    }

    #[test]
    fn satisfiability_with_constants() {
        assert!(DenseOrder::satisfiable(&[
            DenseAtom::lt(c(0), x()),
            DenseAtom::lt(x(), c(1))
        ]));
        assert!(!DenseOrder::satisfiable(&[
            DenseAtom::lt(c(1), x()),
            DenseAtom::lt(x(), c(0))
        ]));
        assert!(!DenseOrder::satisfiable(&[
            DenseAtom::le(c(1), x()),
            DenseAtom::le(x(), c(0))
        ]));
        assert!(DenseOrder::satisfiable(&[
            DenseAtom::le(c(1), x()),
            DenseAtom::le(x(), c(1))
        ]));
        assert!(!DenseOrder::satisfiable(&[
            DenseAtom::eq(x(), c(3)),
            DenseAtom::eq(x(), c(4))
        ]));
    }

    #[test]
    fn elimination_transfers_bounds() {
        // ∃y. x < y ∧ y < z  ≡  x < z  over a dense order.
        let dnf = DenseOrder::eliminate(
            &Var::new("y"),
            &[DenseAtom::lt(x(), y()), DenseAtom::lt(y(), z())],
        );
        assert_eq!(dnf.len(), 1);
        assert!(DenseOrder::implies(&dnf[0], &[DenseAtom::lt(x(), z())]));
        assert!(DenseOrder::implies(&[DenseAtom::lt(x(), z())], &dnf[0]));
    }

    #[test]
    fn elimination_drops_one_sided_bounds() {
        // ∃y. y < x  ≡  true (no endpoints).
        let dnf = DenseOrder::eliminate(&Var::new("y"), &[DenseAtom::lt(y(), x())]);
        assert_eq!(dnf.len(), 1);
        assert!(dnf[0].iter().all(|a| !a.vars().contains(&Var::new("y"))));
        assert!(DenseOrder::implies(&[], &dnf[0]));
    }

    #[test]
    fn elimination_of_equality_substitutes() {
        // ∃y. x = y ∧ y < 3  ≡  x < 3.
        let dnf = DenseOrder::eliminate(
            &Var::new("y"),
            &[DenseAtom::eq(x(), y()), DenseAtom::lt(y(), c(3))],
        );
        assert_eq!(dnf.len(), 1);
        assert!(DenseOrder::implies(&dnf[0], &[DenseAtom::lt(x(), c(3))]));
        assert!(DenseOrder::implies(&[DenseAtom::lt(x(), c(3))], &dnf[0]));
    }

    #[test]
    fn implication() {
        assert!(DenseOrder::implies(
            &[DenseAtom::lt(x(), c(3))],
            &[DenseAtom::lt(x(), c(7))]
        ));
        assert!(!DenseOrder::implies(
            &[DenseAtom::lt(x(), c(7))],
            &[DenseAtom::lt(x(), c(3))]
        ));
        assert!(DenseOrder::implies(
            &[DenseAtom::lt(x(), y()), DenseAtom::lt(y(), z())],
            &[DenseAtom::lt(x(), z())]
        ));
        // An unsatisfiable premise implies anything.
        assert!(DenseOrder::implies(
            &[DenseAtom::lt(x(), x())],
            &[DenseAtom::eq(x(), c(42))]
        ));
        // Nothing implies a constraint on a fresh variable.
        assert!(!DenseOrder::implies(&[], &[DenseAtom::lt(x(), c(0))]));
        // But reflexive facts are free.
        assert!(DenseOrder::implies(&[], &[DenseAtom::le(x(), x())]));
    }

    #[test]
    fn canonicalize_detects_equalities() {
        let conj = [DenseAtom::le(x(), y()), DenseAtom::le(y(), x())];
        let canon = DenseOrder::canonicalize(&conj).unwrap();
        assert!(canon.contains(&DenseAtom::eq(x(), y())));
        assert!(DenseOrder::canonicalize(&[DenseAtom::lt(x(), x())]).is_none());
    }

    #[test]
    fn negation_covers_complement() {
        let a = DenseAtom::le(x(), c(2));
        let neg = a.negate();
        let assign_lo = |_: &Var| Rat::from_i64(1);
        let assign_hi = |_: &Var| Rat::from_i64(5);
        assert!(a.eval(&assign_lo) && !a.eval(&assign_hi));
        assert!(!neg.iter().any(|n| n.eval(&assign_lo)));
        assert!(neg.iter().any(|n| n.eval(&assign_hi)));
        let e = DenseAtom::eq(x(), c(2));
        assert_eq!(e.negate().len(), 2);
    }

    #[test]
    fn witness_satisfies_conjunction() {
        let conj = vec![
            DenseAtom::lt(c(0), x()),
            DenseAtom::lt(x(), y()),
            DenseAtom::lt(y(), c(1)),
            DenseAtom::eq(z(), c(5)),
        ];
        let closure = OrderClosure::new(&conj, &[]);
        let w = closure.witness().expect("satisfiable");
        let assign = |v: &Var| w[v].clone();
        assert!(conj.iter().all(|a| a.eval(&assign)));
        assert_eq!(w[&Var::new("z")], Rat::from_i64(5));
    }

    /// A small pool of atoms over {x, y, z} and the constants {0, 1, 5}, used
    /// to enumerate conjunctions exhaustively.
    fn atom_pool() -> Vec<DenseAtom> {
        vec![
            DenseAtom::lt(c(0), x()),
            DenseAtom::lt(x(), c(1)),
            DenseAtom::le(x(), c(0)),
            DenseAtom::eq(x(), c(5)),
            DenseAtom::lt(x(), y()),
            DenseAtom::le(y(), x()),
            DenseAtom::eq(x(), y()),
            DenseAtom::lt(y(), z()),
            DenseAtom::le(z(), c(1)),
            DenseAtom::eq(z(), c(0)),
        ]
    }

    #[test]
    fn every_witness_satisfies_its_conjunction() {
        // Exhaustively over all conjunctions of up to three pool atoms: whenever the
        // closure reports satisfiable, the constructed witness must satisfy every
        // atom — the regression for the former silent `Rat::zero()` fallback.
        let pool = atom_pool();
        let n = pool.len();
        for i in 0..n {
            for j in i..n {
                for k in j..n {
                    let conj = vec![pool[i].clone(), pool[j].clone(), pool[k].clone()];
                    let closure = OrderClosure::new(&conj, &[]);
                    let Some(w) = closure.witness() else {
                        assert!(!closure.satisfiable(), "witness lost for satisfiable conj");
                        continue;
                    };
                    let assign = |v: &Var| w[v].clone();
                    assert!(
                        conj.iter().all(|a| a.eval(&assign)),
                        "witness {w:?} violates {conj:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn compatibility_filter_is_sound_and_catches_pair_conflicts() {
        let pool = atom_pool();
        // Soundness: whenever the filter rejects a pair, the merged conjunction is
        // genuinely unsatisfiable.  Checked exhaustively over pairs of two-atom
        // conjunctions from the pool.
        let n = pool.len();
        for i in 0..n {
            for j in 0..n {
                let left = vec![pool[i].clone()];
                let right = vec![pool[j].clone()];
                let a = OrderClosure::new(&left, &[]);
                let b = OrderClosure::new(&right, &[]);
                let mut merged = left.clone();
                merged.extend(right.clone());
                if !a.compatible_with(&b) {
                    assert!(
                        !DenseOrder::satisfiable(&merged),
                        "filter rejected the satisfiable pair {left:?} / {right:?}"
                    );
                }
            }
        }
        // Effectiveness on the join-shaped conflicts the evaluator meets: points
        // pinned to different constants, and bound/pin contradictions.
        let pin2 = OrderClosure::new(&[DenseAtom::eq(y(), c(2))], &[]);
        let pin3 = OrderClosure::new(&[DenseAtom::eq(y(), c(3))], &[]);
        assert!(!pin2.compatible_with(&pin3));
        let below = OrderClosure::new(&[DenseAtom::lt(y(), c(2))], &[]);
        assert!(!pin3.compatible_with(&below));
        assert!(!pin2.compatible_with(&below));
        let pin1 = OrderClosure::new(&[DenseAtom::eq(y(), c(1))], &[]);
        assert!(pin1.compatible_with(&below));
    }

    #[test]
    fn entails_handles_foreign_constants() {
        let closure = OrderClosure::new(&[DenseAtom::lt(x(), c(3))], &[c(7)]);
        assert!(closure.entails(&DenseAtom::lt(x(), c(7))));
        assert!(!closure.entails(&DenseAtom::lt(x(), c(2))));
    }

    #[test]
    fn entails_foreign_constants_without_registration() {
        // The cached closure answers atoms over constants it has never seen:
        // entailment factors through the premise's own constants.
        let upper = OrderClosure::new(&[DenseAtom::lt(x(), c(3))], &[]);
        assert!(upper.entails(&DenseAtom::lt(x(), c(7))));
        assert!(upper.entails(&DenseAtom::le(x(), c(3))));
        assert!(!upper.entails(&DenseAtom::lt(x(), c(2))));
        assert!(!upper.entails(&DenseAtom::eq(x(), c(3))));

        let lower = OrderClosure::new(&[DenseAtom::lt(c(5), x())], &[]);
        assert!(lower.entails(&DenseAtom::lt(c(2), x())));
        assert!(!lower.entails(&DenseAtom::lt(c(6), x())));

        // Equality pins propagate through chains: y = x ∧ x = 4 entails y = 4.
        let pinned = OrderClosure::new(&[DenseAtom::eq(y(), x()), DenseAtom::eq(x(), c(4))], &[]);
        assert!(pinned.entails(&DenseAtom::eq(y(), c(4))));
        assert!(pinned.entails(&DenseAtom::lt(y(), c(9))));
        assert!(!pinned.entails(&DenseAtom::lt(y(), c(4))));
    }
}
