//! Automorphisms of `(Q, ≤)` and genericity of queries.
//!
//! Section 4 of the paper generalizes Chandra–Harel genericity to constraint
//! databases: a query is `L`-generic if it commutes with every automorphism of the
//! context structure (Definition 4.2), and *order-generic* when the context is
//! `(Q, ≤)`.  Proposition 4.4 shows that an automorphism acts on a finitely
//! representable relation by replacing each constant `c` of its representation by
//! `µ(c)`; Proposition 4.10 shows every constant-free FO query is generic, while
//! Example 4.5 exhibits natural queries (line separation, grids, …) that are not.
//!
//! This module provides executable automorphisms — piecewise-linear order-preserving
//! bijections of `Q` — and the commutation check `q(µ(I)) = µ(q(I))`.

use crate::dense::DenseOrder;
use crate::relation::{Instance, Relation};
use frdb_num::Rat;
use rand::Rng;

/// A piecewise-linear order-preserving bijection of `Q`.
///
/// The map is defined by a strictly increasing list of breakpoints `(xᵢ, yᵢ)`; between
/// consecutive breakpoints it interpolates linearly, and beyond the extremes it
/// continues with slope 1.  With no breakpoints it is the identity.  Every such map is
/// an automorphism of `(Q, ≤)` (an order-preserving bijection fixing nothing else),
/// exactly the morphisms with respect to which order-genericity is defined.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Automorphism {
    breakpoints: Vec<(Rat, Rat)>,
}

impl Automorphism {
    /// The identity automorphism.
    #[must_use]
    pub fn identity() -> Self {
        Automorphism {
            breakpoints: Vec::new(),
        }
    }

    /// Builds an automorphism from breakpoints.
    ///
    /// # Errors
    /// Returns an error message if the breakpoints are not strictly increasing in both
    /// coordinates (which would break bijectivity or order preservation).
    pub fn from_breakpoints(mut breakpoints: Vec<(Rat, Rat)>) -> Result<Self, String> {
        breakpoints.sort_by(|a, b| a.0.cmp(&b.0));
        for w in breakpoints.windows(2) {
            if w[0].0 >= w[1].0 || w[0].1 >= w[1].1 {
                return Err(format!(
                    "breakpoints must be strictly increasing in both coordinates: {:?} then {:?}",
                    w[0], w[1]
                ));
            }
        }
        Ok(Automorphism { breakpoints })
    }

    /// The exact automorphism of Example 4.5 / Fig. 1: identity below 0 and above 40,
    /// mapping `[0, 10]` linearly onto `[0, 30]` and `[10, 40]` linearly onto
    /// `[30, 40]` (so `µ(x) = 3x` on `[0,10]` and `µ(x) = (x + 80) / 3` on `[10,40]`).
    #[must_use]
    pub fn example_4_5() -> Self {
        Automorphism::from_breakpoints(vec![
            (Rat::from_i64(0), Rat::from_i64(0)),
            (Rat::from_i64(10), Rat::from_i64(30)),
            (Rat::from_i64(40), Rat::from_i64(40)),
        ])
        .expect("static breakpoints are valid")
    }

    /// A random automorphism with `n` breakpoints drawn in `[-range, range]`.
    #[must_use]
    pub fn random(rng: &mut impl Rng, n: usize, range: i64) -> Self {
        let mut xs: Vec<i64> = Vec::new();
        let mut ys: Vec<i64> = Vec::new();
        while xs.len() < n {
            let x = rng.gen_range(-range..=range);
            if !xs.contains(&x) {
                xs.push(x);
            }
        }
        while ys.len() < n {
            let y = rng.gen_range(-range..=range);
            if !ys.contains(&y) {
                ys.push(y);
            }
        }
        xs.sort_unstable();
        ys.sort_unstable();
        let breakpoints = xs
            .into_iter()
            .zip(ys)
            .map(|(x, y)| (Rat::from_i64(x), Rat::from_i64(y)))
            .collect();
        Automorphism::from_breakpoints(breakpoints).expect("sorted distinct breakpoints are valid")
    }

    /// Applies the automorphism to a rational.
    #[must_use]
    pub fn apply(&self, x: &Rat) -> Rat {
        if self.breakpoints.is_empty() {
            return x.clone();
        }
        let first = &self.breakpoints[0];
        if *x <= first.0 {
            return &first.1 + &(x - &first.0);
        }
        let last = self.breakpoints.last().unwrap();
        if *x >= last.0 {
            return &last.1 + &(x - &last.0);
        }
        for w in self.breakpoints.windows(2) {
            let (x0, y0) = &w[0];
            let (x1, y1) = &w[1];
            if x >= x0 && x <= x1 {
                let slope = &(y1 - y0) / &(x1 - x0);
                return y0 + &(&slope * &(x - x0));
            }
        }
        unreachable!("breakpoints cover the interior")
    }

    /// The inverse automorphism.
    #[must_use]
    pub fn inverse(&self) -> Automorphism {
        Automorphism {
            breakpoints: self
                .breakpoints
                .iter()
                .map(|(x, y)| (y.clone(), x.clone()))
                .collect(),
        }
    }

    /// The image `µ(R)` of a relation: every constant of the representation is mapped
    /// (Proposition 4.4).
    #[must_use]
    pub fn apply_relation(&self, relation: &Relation<DenseOrder>) -> Relation<DenseOrder> {
        relation.map_constants(&|c| self.apply(c))
    }

    /// The image `µ(I)` of an instance.
    #[must_use]
    pub fn apply_instance(&self, instance: &Instance<DenseOrder>) -> Instance<DenseOrder> {
        instance.map_constants(&|c| self.apply(c))
    }
}

impl Default for Automorphism {
    fn default() -> Self {
        Automorphism::identity()
    }
}

/// Checks the order-genericity equation `q(µ(I)) = µ(q(I))` for one query, one
/// instance and one automorphism (Definition 4.2).
///
/// `query` is any closed-form query evaluator (an FO query, a DATALOG¬ program, or a
/// hand-written algorithm producing a constraint relation).
#[must_use]
pub fn commutes_with(
    query: &dyn Fn(&Instance<DenseOrder>) -> Relation<DenseOrder>,
    instance: &Instance<DenseOrder>,
    automorphism: &Automorphism,
) -> bool {
    let lhs = query(&automorphism.apply_instance(instance));
    let rhs = automorphism.apply_relation(&query(instance));
    let rhs = rhs.rename(lhs.vars().to_vec());
    lhs.equivalent(&rhs)
}

/// Checks the order-genericity equation for a Boolean query: `q(µ(I)) = q(I)`.
#[must_use]
pub fn boolean_commutes_with(
    query: &dyn Fn(&Instance<DenseOrder>) -> bool,
    instance: &Instance<DenseOrder>,
    automorphism: &Automorphism,
) -> bool {
    query(&automorphism.apply_instance(instance)) == query(instance)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseAtom;
    use crate::fo::eval_query;
    use crate::logic::{Formula, Term, Var};
    use crate::relation::GenTuple;
    use crate::schema::Schema;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn r(v: i64) -> Rat {
        Rat::from_i64(v)
    }

    #[test]
    fn example_4_5_matches_the_paper() {
        let mu = Automorphism::example_4_5();
        // µ(x) = x for x ≤ 0 and x ≥ 40.
        assert_eq!(mu.apply(&r(-3)), r(-3));
        assert_eq!(mu.apply(&r(40)), r(40));
        assert_eq!(mu.apply(&r(100)), r(100));
        // µ(x) = 3x on [0, 10].
        assert_eq!(mu.apply(&r(5)), r(15));
        assert_eq!(mu.apply(&r(10)), r(30));
        // µ(x) = (x + 80)/3 on [10, 40].
        assert_eq!(mu.apply(&r(25)), r(35));
        // The isolated point x = 5 of Example 4.5 moves to 15.
        assert_eq!(mu.apply(&r(5)), r(15));
    }

    #[test]
    fn automorphisms_preserve_order_and_compose_with_inverse() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..20 {
            let mu = Automorphism::random(&mut rng, 4, 50);
            let inv = mu.inverse();
            for a in -60..=60 {
                let x = r(a);
                assert_eq!(inv.apply(&mu.apply(&x)), x);
                let y = r(a + 1);
                assert!(mu.apply(&x) < mu.apply(&y), "order must be preserved");
            }
        }
    }

    #[test]
    fn invalid_breakpoints_are_rejected() {
        assert!(Automorphism::from_breakpoints(vec![(r(0), r(0)), (r(1), r(0))]).is_err());
        assert!(Automorphism::from_breakpoints(vec![(r(0), r(5)), (r(0), r(6))]).is_err());
    }

    #[test]
    fn constant_free_fo_queries_are_order_generic() {
        // Proposition 4.10 on a concrete query: {x | ∃y. R(x,y) ∧ x < y}.
        let schema = Schema::from_pairs([("R", 2)]);
        let mut inst = Instance::new(schema);
        inst.set(
            "R",
            Relation::new(
                vec![Var::new("x"), Var::new("y")],
                vec![GenTuple::new(vec![
                    DenseAtom::le(Term::cst(0), Term::var("x")),
                    DenseAtom::le(Term::var("x"), Term::cst(10)),
                    DenseAtom::le(Term::cst(3), Term::var("y")),
                    DenseAtom::le(Term::var("y"), Term::cst(20)),
                ])],
            ),
        )
        .unwrap();
        let q = |i: &Instance<DenseOrder>| {
            let f: Formula<DenseAtom> = Formula::exists(
                ["y"],
                Formula::rel("R", [Term::var("x"), Term::var("y")])
                    .and(Formula::Atom(DenseAtom::lt(Term::var("x"), Term::var("y")))),
            );
            eval_query(&f, &[Var::new("x")], i).unwrap()
        };
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..5 {
            let mu = Automorphism::random(&mut rng, 3, 30);
            assert!(commutes_with(&q, &inst, &mu));
        }
        assert!(commutes_with(&q, &inst, &Automorphism::example_4_5()));
    }

    #[test]
    fn queries_with_constants_need_not_be_generic() {
        // {x | R(x) ∧ x < 5} mentions the constant 5 and fails to commute with an
        // automorphism moving 5 (the paper's caveat after Proposition 4.10).
        let schema = Schema::from_pairs([("R", 1)]);
        let mut inst = Instance::new(schema);
        inst.set(
            "R",
            Relation::new(
                vec![Var::new("x")],
                vec![GenTuple::new(vec![
                    DenseAtom::le(Term::cst(0), Term::var("x")),
                    DenseAtom::le(Term::var("x"), Term::cst(10)),
                ])],
            ),
        )
        .unwrap();
        let q = |i: &Instance<DenseOrder>| {
            let f: Formula<DenseAtom> = Formula::rel("R", [Term::var("x")])
                .and(Formula::Atom(DenseAtom::lt(Term::var("x"), Term::cst(5))));
            eval_query(&f, &[Var::new("x")], i).unwrap()
        };
        let mu = Automorphism::example_4_5();
        assert!(!commutes_with(&q, &inst, &mu));
    }
}
