//! Generalized relations and database instances.
//!
//! A *generalized tuple* is a conjunction of constraint atoms and a *generalized
//! (finitely representable) relation* is a finite set — semantically a disjunction — of
//! generalized tuples over a fixed list of free variables (Section 2.2, after
//! [KKR95]).  A database instance maps the schema's relation symbols to such relations
//! (Definition 2.7).
//!
//! The module implements the closure properties stated in Section 2.2: finitely
//! representable relations are closed under finite union, intersection and
//! **complement** (unlike finite relations), and membership of a point is decidable by
//! direct formula evaluation (Proposition 2.4).

use crate::logic::{Formula, Term, Var};
use crate::schema::{RelName, Schema};
use crate::theory::{eval_conj, Atom, Conj, Dnf, Theory};
use frdb_num::Rat;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::marker::PhantomData;

/// A generalized tuple: a conjunction of constraint atoms (a "k-ary generalized tuple"
/// in the sense of [KKR95] when it has k free variables).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct GenTuple<A> {
    atoms: Vec<A>,
}

impl<A: Atom> GenTuple<A> {
    /// Creates a generalized tuple from its atoms.
    #[must_use]
    pub fn new(atoms: Vec<A>) -> Self {
        GenTuple { atoms }
    }

    /// The empty conjunction (the universal tuple).
    #[must_use]
    pub fn universal() -> Self {
        GenTuple { atoms: Vec::new() }
    }

    /// The atoms of the conjunction.
    #[must_use]
    pub fn atoms(&self) -> &[A] {
        &self.atoms
    }

    /// Consumes the tuple, returning its atoms.
    #[must_use]
    pub fn into_atoms(self) -> Vec<A> {
        self.atoms
    }

    /// Variables occurring in the tuple.
    #[must_use]
    pub fn vars(&self) -> BTreeSet<Var> {
        self.atoms.iter().flat_map(Atom::vars).collect()
    }

    /// Constants occurring in the tuple.
    #[must_use]
    pub fn constants(&self) -> BTreeSet<Rat> {
        self.atoms.iter().flat_map(Atom::constants).collect()
    }

    /// Evaluates the conjunction at a point.
    #[must_use]
    pub fn eval(&self, assignment: &dyn Fn(&Var) -> Rat) -> bool {
        eval_conj(&self.atoms, assignment)
    }
}

impl<A: Atom> fmt::Display for GenTuple<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.is_empty() {
            return write!(f, "true");
        }
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

/// Simplifies a DNF: canonicalizes every conjunction, drops unsatisfiable ones,
/// removes duplicates and conjunctions absorbed (implied) by another disjunct.
#[must_use]
pub fn simplify_dnf<T: Theory>(dnf: Dnf<T::A>) -> Dnf<T::A> {
    let mut canon: Vec<Conj<T::A>> = Vec::with_capacity(dnf.len());
    let mut seen: BTreeSet<Vec<String>> = BTreeSet::new();
    for conj in dnf {
        if let Some(c) = T::canonicalize(&conj) {
            // Cheap structural dedup on the canonical printing.
            let key: Vec<String> = c.iter().map(|a| format!("{a:?}")).collect();
            if seen.insert(key) {
                canon.push(c);
            }
        }
    }
    // Absorption: drop any disjunct implied by another (it contributes nothing).
    let mut keep = vec![true; canon.len()];
    for i in 0..canon.len() {
        if !keep[i] {
            continue;
        }
        for j in 0..canon.len() {
            if i == j || !keep[j] {
                continue;
            }
            // If disjunct i implies disjunct j, then i ⊆ j and i can be dropped.
            if T::implies(&canon[i], &canon[j]) {
                keep[i] = false;
                break;
            }
        }
    }
    canon
        .into_iter()
        .zip(keep)
        .filter_map(|(c, k)| if k { Some(c) } else { None })
        .collect()
}

/// Negates a DNF, returning a DNF of the complement.
///
/// `¬(C₁ ∨ … ∨ Cₘ) = ¬C₁ ∧ … ∧ ¬Cₘ`, where each `¬Cᵢ` is the disjunction of the
/// (atomic) negations of its atoms; the conjunction of disjunctions is redistributed
/// into DNF with unsatisfiable branches pruned eagerly.
#[must_use]
pub fn negate_dnf<T: Theory>(dnf: &[Conj<T::A>]) -> Dnf<T::A> {
    let mut acc: Dnf<T::A> = vec![Vec::new()];
    for conj in dnf {
        let mut next: Dnf<T::A> = Vec::new();
        for prefix in &acc {
            for atom in conj {
                for neg in atom.negate() {
                    let mut candidate = prefix.clone();
                    candidate.push(neg);
                    if T::satisfiable(&candidate) {
                        next.push(candidate);
                    }
                }
            }
        }
        acc = simplify_dnf::<T>(next);
        if acc.is_empty() {
            return Vec::new();
        }
    }
    acc
}

/// A finitely representable relation: a list of free variables (the relation's
/// columns) and a disjunction of generalized tuples over them.
#[derive(Debug)]
pub struct Relation<T: Theory> {
    vars: Vec<Var>,
    tuples: Dnf<T::A>,
    _theory: PhantomData<T>,
}

impl<T: Theory> Clone for Relation<T> {
    fn clone(&self) -> Self {
        Relation { vars: self.vars.clone(), tuples: self.tuples.clone(), _theory: PhantomData }
    }
}

impl<T: Theory> Relation<T> {
    /// Builds a relation from generalized tuples, canonicalizing and pruning
    /// unsatisfiable tuples.
    #[must_use]
    pub fn new(vars: Vec<Var>, tuples: Vec<GenTuple<T::A>>) -> Self {
        let dnf = tuples.into_iter().map(GenTuple::into_atoms).collect();
        Relation { vars, tuples: simplify_dnf::<T>(dnf), _theory: PhantomData }
    }

    /// Builds a relation directly from a DNF of conjunctions.
    #[must_use]
    pub fn from_dnf(vars: Vec<Var>, dnf: Dnf<T::A>) -> Self {
        Relation { vars, tuples: simplify_dnf::<T>(dnf), _theory: PhantomData }
    }

    /// The empty relation of the given column variables.
    #[must_use]
    pub fn empty(vars: Vec<Var>) -> Self {
        Relation { vars, tuples: Vec::new(), _theory: PhantomData }
    }

    /// The universal relation (all of `Qᵏ`) over the given column variables.
    #[must_use]
    pub fn universal(vars: Vec<Var>) -> Self {
        Relation { vars, tuples: vec![Vec::new()], _theory: PhantomData }
    }

    /// The column variables.
    #[must_use]
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// The arity (number of columns).
    #[must_use]
    pub fn arity(&self) -> usize {
        self.vars.len()
    }

    /// The generalized tuples (canonical DNF).
    #[must_use]
    pub fn tuples(&self) -> &[Conj<T::A>] {
        &self.tuples
    }

    /// Number of generalized tuples in the representation.
    #[must_use]
    pub fn num_tuples(&self) -> usize {
        self.tuples.len()
    }

    /// Total number of constraint atoms in the representation — the `n` of
    /// Lemma 6.10 ("counting multiple occurrences of a constraint in distinct
    /// tuples").
    #[must_use]
    pub fn num_atoms(&self) -> usize {
        self.tuples.iter().map(Vec::len).sum()
    }

    /// Returns `true` iff the relation is (semantically) empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// All constants occurring in the representation (the active domain used by the
    /// encoding of Section 6).
    #[must_use]
    pub fn constants(&self) -> BTreeSet<Rat> {
        self.tuples.iter().flatten().flat_map(Atom::constants).collect()
    }

    /// Membership of a point (Proposition 2.4: decidable by evaluating the
    /// quantifier-free representation).
    ///
    /// # Panics
    /// Panics if the point's length differs from the arity.
    #[must_use]
    pub fn contains(&self, point: &[Rat]) -> bool {
        assert_eq!(point.len(), self.arity(), "point arity mismatch");
        let map: BTreeMap<&Var, &Rat> = self.vars.iter().zip(point.iter()).collect();
        let assignment = |v: &Var| {
            map.get(v).map(|r| (*r).clone()).unwrap_or_else(|| {
                panic!("tuple mentions variable {v} outside the relation's columns")
            })
        };
        self.tuples.iter().any(|c| eval_conj(c, &assignment))
    }

    /// Union with another relation over the same columns.
    ///
    /// # Panics
    /// Panics if the column variables differ.
    #[must_use]
    pub fn union(&self, other: &Relation<T>) -> Relation<T> {
        assert_eq!(self.vars, other.vars, "union of relations over different columns");
        let mut dnf = self.tuples.clone();
        dnf.extend(other.tuples.clone());
        Relation::from_dnf(self.vars.clone(), dnf)
    }

    /// Intersection with another relation over the same columns.
    ///
    /// # Panics
    /// Panics if the column variables differ.
    #[must_use]
    pub fn intersect(&self, other: &Relation<T>) -> Relation<T> {
        assert_eq!(self.vars, other.vars, "intersection of relations over different columns");
        let mut dnf = Vec::new();
        for a in &self.tuples {
            for b in &other.tuples {
                let mut c = a.clone();
                c.extend(b.iter().cloned());
                dnf.push(c);
            }
        }
        Relation::from_dnf(self.vars.clone(), dnf)
    }

    /// Complement within `Qᵏ` (finitely representable relations are closed under
    /// complement, Section 2.2).
    #[must_use]
    pub fn complement(&self) -> Relation<T> {
        Relation::from_dnf(self.vars.clone(), negate_dnf::<T>(&self.tuples))
    }

    /// The part of a single conjunction not covered by this relation, as a DNF:
    /// `conj ∧ ¬self`.  The negation is distributed tuple by tuple with the
    /// conjunction as a seed, which prunes far more aggressively than computing the
    /// full complement first.
    fn residual_of_conj(&self, conj: &Conj<T::A>) -> Dnf<T::A> {
        let mut acc: Dnf<T::A> = vec![conj.clone()];
        if !T::satisfiable(conj) {
            return Vec::new();
        }
        for tuple in &self.tuples {
            let mut next: Dnf<T::A> = Vec::new();
            for prefix in &acc {
                for atom in tuple {
                    for neg in atom.negate() {
                        let mut candidate = prefix.clone();
                        candidate.push(neg);
                        if T::satisfiable(&candidate) {
                            next.push(candidate);
                        }
                    }
                }
            }
            acc = simplify_dnf::<T>(next);
            if acc.is_empty() {
                return Vec::new();
            }
        }
        acc
    }

    /// Set difference `self \ other`.
    #[must_use]
    pub fn difference(&self, other: &Relation<T>) -> Relation<T> {
        assert_eq!(self.vars, other.vars, "difference of relations over different columns");
        let mut dnf: Dnf<T::A> = Vec::new();
        for conj in &self.tuples {
            dnf.extend(other.residual_of_conj(conj));
        }
        Relation::from_dnf(self.vars.clone(), dnf)
    }

    /// Containment `self ⊆ other` (both over the same columns), decided by checking
    /// that `self ∧ ¬other` is unsatisfiable, one generalized tuple at a time.
    ///
    /// # Panics
    /// Panics if the column variables differ.
    #[must_use]
    pub fn subset_of(&self, other: &Relation<T>) -> bool {
        assert_eq!(self.vars, other.vars, "containment of relations over different columns");
        self.tuples.iter().all(|conj| other.residual_of_conj(conj).is_empty())
    }

    /// Semantic equivalence of two representations (query equivalence of §4.3 at the
    /// instance level).
    #[must_use]
    pub fn equivalent(&self, other: &Relation<T>) -> bool {
        self.subset_of(other) && other.subset_of(self)
    }

    /// Renames the column variables (the tuples are rewritten accordingly).
    ///
    /// # Panics
    /// Panics if the number of new variables differs from the arity.
    #[must_use]
    pub fn rename(&self, new_vars: Vec<Var>) -> Relation<T> {
        assert_eq!(new_vars.len(), self.arity(), "rename with wrong number of columns");
        // Two-phase rename through fresh intermediates to allow permutations.
        let mut counter = 0usize;
        let temps: Vec<Var> = self.vars.iter().map(|_| Var::fresh(&mut counter)).collect();
        let dnf = self
            .tuples
            .iter()
            .map(|conj| {
                let mut c: Vec<T::A> = conj.clone();
                for (old, tmp) in self.vars.iter().zip(&temps) {
                    c = c.iter().map(|a| a.subst(old, &Term::Var(tmp.clone()))).collect();
                }
                for (tmp, new) in temps.iter().zip(&new_vars) {
                    c = c.iter().map(|a| a.subst(tmp, &Term::Var(new.clone()))).collect();
                }
                c
            })
            .collect();
        Relation { vars: new_vars, tuples: dnf, _theory: PhantomData }
    }

    /// Applies a mapping to every constant in the representation (the image of the
    /// relation under a morphism, Definition 4.3 / Proposition 4.4).
    #[must_use]
    pub fn map_constants(&self, f: &impl Fn(&Rat) -> Rat) -> Relation<T> {
        let dnf = self
            .tuples
            .iter()
            .map(|conj| conj.iter().map(|a| a.map_constants(f)).collect())
            .collect();
        Relation::from_dnf(self.vars.clone(), dnf)
    }

    /// The quantifier-free formula representing the relation.
    #[must_use]
    pub fn to_formula(&self) -> Formula<T::A> {
        Formula::Or(
            self.tuples
                .iter()
                .map(|conj| Formula::And(conj.iter().cloned().map(Formula::Atom).collect()))
                .collect(),
        )
    }

    /// Builds a *finite* relation from explicit points — the classical relational
    /// model embedded into the constraint model (a tuple `[a, b]` abbreviates
    /// `x = a ∧ y = b`, Section 2.2).
    #[must_use]
    pub fn from_points(vars: Vec<Var>, points: impl IntoIterator<Item = Vec<Rat>>) -> Relation<T>
    where
        T::A: FromEquality,
    {
        let dnf: Dnf<T::A> = points
            .into_iter()
            .map(|p| {
                assert_eq!(p.len(), vars.len(), "point arity mismatch");
                vars.iter()
                    .zip(p)
                    .map(|(v, c)| T::A::equality(Term::Var(v.clone()), Term::Const(c)))
                    .collect()
            })
            .collect();
        Relation::from_dnf(vars, dnf)
    }
}

impl<T: Theory> fmt::Display for Relation<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{(")?;
        for (i, v) in self.vars.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ") | ")?;
        if self.tuples.is_empty() {
            write!(f, "false")?;
        }
        for (i, conj) in self.tuples.iter().enumerate() {
            if i > 0 {
                write!(f, " ∨ ")?;
            }
            if conj.is_empty() {
                write!(f, "true")?;
            } else {
                write!(f, "(")?;
                for (j, a) in conj.iter().enumerate() {
                    if j > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")?;
            }
        }
        write!(f, "}}")
    }
}

/// Atom types that can express equality between a variable and a constant; needed to
/// embed classical finite relations (`Relation::from_points`).
pub trait FromEquality: Sized {
    /// The atom `lhs = rhs`.
    fn equality(lhs: Term, rhs: Term) -> Self;
}

impl FromEquality for crate::dense::DenseAtom {
    fn equality(lhs: Term, rhs: Term) -> Self {
        crate::dense::DenseAtom::eq(lhs, rhs)
    }
}

/// A finitely representable database instance: a mapping from schema relation names to
/// finitely representable relations (Definition 2.7).
#[derive(Debug)]
pub struct Instance<T: Theory> {
    schema: Schema,
    relations: BTreeMap<RelName, Relation<T>>,
}

impl<T: Theory> Clone for Instance<T> {
    fn clone(&self) -> Self {
        Instance { schema: self.schema.clone(), relations: self.relations.clone() }
    }
}

impl<T: Theory> Instance<T> {
    /// An empty instance of the given schema (every relation empty).
    #[must_use]
    pub fn new(schema: Schema) -> Self {
        Instance { schema, relations: BTreeMap::new() }
    }

    /// The schema.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Sets a relation.
    ///
    /// # Panics
    /// Panics if the relation name is not in the schema or its arity disagrees.
    pub fn set(&mut self, name: impl Into<RelName>, relation: Relation<T>) -> &mut Self {
        let name = name.into();
        let declared = self
            .schema
            .arity(&name)
            .unwrap_or_else(|| panic!("relation {name} not declared in the schema"));
        assert_eq!(
            declared,
            relation.arity(),
            "relation {name} has arity {} but schema declares {declared}",
            relation.arity()
        );
        self.relations.insert(name, relation);
        self
    }

    /// Looks up a relation; undeclared names return `None`, declared-but-unset names
    /// return the empty relation.
    #[must_use]
    pub fn get(&self, name: &RelName) -> Option<Relation<T>> {
        let arity = self.schema.arity(name)?;
        Some(self.relations.get(name).cloned().unwrap_or_else(|| {
            Relation::empty((0..arity).map(|i| Var::new(format!("x{i}"))).collect())
        }))
    }

    /// Iterates over the stored relations.
    pub fn iter(&self) -> impl Iterator<Item = (&RelName, &Relation<T>)> {
        self.relations.iter()
    }

    /// All constants occurring in the instance (the active domain `adom(I)` of
    /// Lemma 6.13).
    #[must_use]
    pub fn active_domain(&self) -> BTreeSet<Rat> {
        self.relations.values().flat_map(Relation::constants).collect()
    }

    /// Applies a mapping to every constant of every relation (the image `µ(I)` of the
    /// instance under a morphism).
    #[must_use]
    pub fn map_constants(&self, f: &impl Fn(&Rat) -> Rat) -> Instance<T> {
        Instance {
            schema: self.schema.clone(),
            relations: self
                .relations
                .iter()
                .map(|(n, r)| (n.clone(), r.map_constants(f)))
                .collect(),
        }
    }

    /// Semantic equivalence of two instances over the same schema.
    #[must_use]
    pub fn equivalent(&self, other: &Instance<T>) -> bool {
        if self.schema != other.schema {
            return false;
        }
        self.schema.iter().all(|(name, _)| match (self.get(name), other.get(name)) {
            (Some(a), Some(b)) => {
                let b = b.rename(a.vars().to_vec());
                a.equivalent(&b)
            }
            _ => false,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::{DenseAtom, DenseOrder};

    type Rel = Relation<DenseOrder>;

    fn x() -> Var {
        Var::new("x")
    }
    fn y() -> Var {
        Var::new("y")
    }
    fn r(v: i64) -> Rat {
        Rat::from_i64(v)
    }

    fn interval(lo: i64, hi: i64) -> GenTuple<DenseAtom> {
        GenTuple::new(vec![
            DenseAtom::le(Term::cst(lo), Term::var("x")),
            DenseAtom::le(Term::var("x"), Term::cst(hi)),
        ])
    }

    #[test]
    fn membership_of_intervals() {
        let rel = Rel::new(vec![x()], vec![interval(0, 2), interval(5, 7)]);
        assert!(rel.contains(&[r(1)]));
        assert!(rel.contains(&[r(0)]));
        assert!(rel.contains(&[r(6)]));
        assert!(!rel.contains(&[r(3)]));
        assert!(!rel.contains(&[r(-1)]));
    }

    #[test]
    fn union_intersection_complement() {
        let a = Rel::new(vec![x()], vec![interval(0, 4)]);
        let b = Rel::new(vec![x()], vec![interval(2, 6)]);
        let u = a.union(&b);
        let i = a.intersect(&b);
        assert!(u.contains(&[r(5)]) && u.contains(&[r(1)]));
        assert!(i.contains(&[r(3)]));
        assert!(!i.contains(&[r(1)]) && !i.contains(&[r(5)]));
        let c = a.complement();
        assert!(c.contains(&[r(5)]));
        assert!(!c.contains(&[r(2)]));
        // a ∪ ¬a is the whole line.
        assert!(a.union(&c).equivalent(&Rel::universal(vec![x()])));
        // a ∩ ¬a is empty.
        assert!(a.intersect(&c).is_empty());
    }

    #[test]
    fn containment_and_equivalence() {
        let small = Rel::new(vec![x()], vec![interval(1, 2)]);
        let big = Rel::new(vec![x()], vec![interval(0, 4)]);
        assert!(small.subset_of(&big));
        assert!(!big.subset_of(&small));
        // Splitting an interval in two gives an equivalent relation.
        let split = Rel::new(vec![x()], vec![interval(0, 2), interval(2, 4)]);
        assert!(split.equivalent(&big));
        assert!(!split.equivalent(&small));
    }

    #[test]
    fn simplify_absorbs_redundant_tuples() {
        let rel = Rel::new(vec![x()], vec![interval(0, 10), interval(2, 3)]);
        // The inner interval is absorbed by the outer one.
        assert_eq!(rel.num_tuples(), 1);
    }

    #[test]
    fn unsatisfiable_tuples_are_dropped() {
        let rel = Rel::new(
            vec![x()],
            vec![GenTuple::new(vec![
                DenseAtom::lt(Term::var("x"), Term::cst(0)),
                DenseAtom::lt(Term::cst(1), Term::var("x")),
            ])],
        );
        assert!(rel.is_empty());
    }

    #[test]
    fn from_points_builds_finite_relation() {
        let rel = Rel::from_points(vec![x(), y()], vec![vec![r(1), r(2)], vec![r(3), r(4)]]);
        assert!(rel.contains(&[r(1), r(2)]));
        assert!(rel.contains(&[r(3), r(4)]));
        assert!(!rel.contains(&[r(1), r(4)]));
        assert_eq!(rel.num_tuples(), 2);
    }

    #[test]
    fn rename_permutes_columns() {
        let rel = Rel::from_points(vec![x(), y()], vec![vec![r(1), r(2)]]);
        let swapped = rel.rename(vec![y(), x()]);
        // Same semantics, columns relabelled: the point (1,2) on columns (y,x) means
        // y=1 ∧ x=2.
        assert!(swapped.contains(&[r(1), r(2)]));
        let back = swapped.rename(vec![x(), y()]);
        assert!(back.contains(&[r(1), r(2)]));
    }

    #[test]
    fn complement_of_cofinite_set() {
        // The set Q \ {0} of Section 2.2 is finitely representable; its complement is
        // the single point 0.
        let nonzero = Rel::from_dnf(
            vec![x()],
            vec![
                vec![DenseAtom::lt(Term::var("x"), Term::cst(0))],
                vec![DenseAtom::lt(Term::cst(0), Term::var("x"))],
            ],
        );
        let comp = nonzero.complement();
        assert!(comp.contains(&[r(0)]));
        assert!(!comp.contains(&[r(1)]));
        assert!(comp.equivalent(&Rel::from_points(vec![x()], vec![vec![r(0)]])));
    }

    #[test]
    fn instance_roundtrip() {
        let schema = Schema::from_pairs([("R", 1), ("S", 2)]);
        let mut inst: Instance<DenseOrder> = Instance::new(schema);
        inst.set("R", Rel::new(vec![x()], vec![interval(0, 1)]));
        assert!(inst.get(&RelName::new("R")).unwrap().contains(&[r(0)]));
        // Unset but declared relation is empty.
        assert!(inst.get(&RelName::new("S")).unwrap().is_empty());
        // Undeclared relation is None.
        assert!(inst.get(&RelName::new("T")).is_none());
        assert_eq!(inst.active_domain().len(), 2);
    }
}
