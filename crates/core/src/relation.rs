//! Generalized relations and database instances.
//!
//! A *generalized tuple* is a conjunction of constraint atoms and a *generalized
//! (finitely representable) relation* is a finite set — semantically a disjunction — of
//! generalized tuples over a fixed list of free variables (Section 2.2, after
//! \[KKR95\]).  A database instance maps the schema's relation symbols to such relations
//! (Definition 2.7).
//!
//! The module implements the closure properties stated in Section 2.2: finitely
//! representable relations are closed under finite union, intersection and
//! **complement** (unlike finite relations), and membership of a point is decidable by
//! direct formula evaluation (Proposition 2.4).

use crate::logic::{Formula, Term, Var};
use crate::metrics::JoinStrategyCounts;
use crate::schema::{RelName, Schema, SchemaError};
use crate::theory::{eval_conj, Atom, Conj, Dnf, Theory};
use frdb_num::Rat;
use std::any::Any;
use std::cell::Cell;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::marker::PhantomData;
use std::ops::Bound;
use std::sync::{Arc, Mutex, OnceLock};

/// The lazily computed canonical state of one generalized tuple under one
/// theory: the saturated context (for dense order, the transitive closure),
/// the satisfiability verdict read off it, and — on demand — the canonical
/// atom list.
struct TupleCache<T: Theory> {
    ctx: T::Ctx,
    satisfiable: bool,
    canonical: OnceLock<Option<Vec<T::A>>>,
}

/// A generalized tuple: a conjunction of constraint atoms (a "k-ary generalized tuple"
/// in the sense of \[KKR95\] when it has k free variables).
///
/// The tuple lazily computes and **caches** its canonical context (see
/// [`Theory::Ctx`]), its satisfiability verdict and its canonical form.  The
/// cache is shared through an [`Arc`], so cloning a tuple — which the relation
/// algebra and the Datalog fixpoint do constantly — shares the work already
/// done instead of repeating it.  Equality, hashing and ordering look only at
/// the atoms; the cache is invisible.
pub struct GenTuple<A> {
    atoms: Vec<A>,
    cache: OnceLock<Arc<dyn Any + Send + Sync>>,
}

impl<A: fmt::Debug> fmt::Debug for GenTuple<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("GenTuple").field(&self.atoms).finish()
    }
}

impl<A: Clone> Clone for GenTuple<A> {
    fn clone(&self) -> Self {
        GenTuple {
            atoms: self.atoms.clone(),
            cache: self.cache.clone(),
        }
    }
}

impl<A: PartialEq> PartialEq for GenTuple<A> {
    fn eq(&self, other: &Self) -> bool {
        self.atoms == other.atoms
    }
}

impl<A: Eq> Eq for GenTuple<A> {}

impl<A: std::hash::Hash> std::hash::Hash for GenTuple<A> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.atoms.hash(state);
    }
}

impl<A: Atom> GenTuple<A> {
    /// Creates a generalized tuple from its atoms.
    #[must_use]
    pub fn new(atoms: Vec<A>) -> Self {
        GenTuple {
            atoms,
            cache: OnceLock::new(),
        }
    }

    /// The empty conjunction (the universal tuple).
    #[must_use]
    pub fn universal() -> Self {
        GenTuple::new(Vec::new())
    }

    /// The atoms of the conjunction.
    #[must_use]
    pub fn atoms(&self) -> &[A] {
        &self.atoms
    }

    /// Consumes the tuple, returning its atoms.
    #[must_use]
    pub fn into_atoms(self) -> Vec<A> {
        self.atoms
    }

    /// Variables occurring in the tuple.
    #[must_use]
    pub fn vars(&self) -> BTreeSet<Var> {
        self.atoms.iter().flat_map(Atom::vars).collect()
    }

    /// Constants occurring in the tuple.
    #[must_use]
    pub fn constants(&self) -> BTreeSet<Rat> {
        self.atoms.iter().flat_map(Atom::constants).collect()
    }

    /// Evaluates the conjunction at a point.
    #[must_use]
    pub fn eval(&self, assignment: &dyn Fn(&Var) -> Rat) -> bool {
        eval_conj(&self.atoms, assignment)
    }

    fn build_cache<T: Theory<A = A>>(atoms: &[A]) -> TupleCache<T> {
        let ctx = T::context(atoms);
        let satisfiable = T::ctx_satisfiable(&ctx);
        TupleCache::<T> {
            ctx,
            satisfiable,
            canonical: OnceLock::new(),
        }
    }

    fn cache_for<T: Theory<A = A>>(&self) -> Arc<TupleCache<T>> {
        let entry = self
            .cache
            .get_or_init(|| Arc::new(Self::build_cache::<T>(&self.atoms)));
        match entry.clone().downcast::<TupleCache<T>>() {
            Ok(cache) => cache,
            // The cache slot is occupied by a *different* theory over the same
            // atom type (possible for downstream theories sharing an atom
            // language).  Stay correct: build a fresh context for this call
            // instead of panicking.  Note this path re-saturates the context
            // on every query — a tuple population queried under two theories
            // should be cloned per theory (fresh `GenTuple::new` per side) so
            // each copy caches its own context.
            Err(_) => Arc::new(Self::build_cache::<T>(&self.atoms)),
        }
    }

    /// The cached satisfiability verdict of the conjunction under theory `T`.
    #[must_use]
    pub fn is_satisfiable<T: Theory<A = A>>(&self) -> bool {
        self.cache_for::<T>().satisfiable
    }

    /// Runs `f` against the cached canonical context of the conjunction under
    /// theory `T`, building it on first use.
    pub fn with_ctx<T: Theory<A = A>, R>(&self, f: impl FnOnce(&T::Ctx) -> R) -> R {
        let cache = self.cache_for::<T>();
        f(&cache.ctx)
    }

    /// The cached canonical form of the conjunction under theory `T`
    /// (`None` when unsatisfiable), computing it on first use.
    #[must_use]
    pub fn canonical<T: Theory<A = A>>(&self) -> Option<Vec<A>> {
        let cache = self.cache_for::<T>();
        cache
            .canonical
            .get_or_init(|| T::ctx_canonical(&cache.ctx))
            .clone()
    }

    /// Whether the conjunction entails every atom of `conclusion`, answered
    /// from the cached context.
    #[must_use]
    pub fn entails<T: Theory<A = A>>(&self, conclusion: &[A]) -> bool {
        let cache = self.cache_for::<T>();
        T::ctx_entails(&cache.ctx, conclusion)
    }

    /// The tuple rewritten to its canonical atom list, **sharing** the already
    /// computed cache (canonicalization is idempotent, and the canonical form
    /// represents the same conjunction, so the context stays valid).  `None`
    /// when unsatisfiable.
    #[must_use]
    fn to_canonical<T: Theory<A = A>>(&self) -> Option<GenTuple<A>> {
        let cache = self.cache_for::<T>();
        let atoms = cache
            .canonical
            .get_or_init(|| T::ctx_canonical(&cache.ctx))
            .clone()?;
        let slot = OnceLock::new();
        let _ = slot.set(cache as Arc<dyn Any + Send + Sync>);
        Some(GenTuple { atoms, cache: slot })
    }
}

impl<A: Atom> fmt::Display for GenTuple<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.is_empty() {
            return write!(f, "true");
        }
        for (i, a) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{a}")?;
        }
        Ok(())
    }
}

/// Simplifies a disjunction of generalized tuples: canonicalizes every tuple
/// (via its cached context), drops unsatisfiable ones, removes structural
/// duplicates by **hashing** the canonical atom lists, and drops disjuncts
/// absorbed (implied) by another disjunct.
///
/// The absorption loop performs no closure construction: each premise uses the
/// tuple's cached context and each conclusion is the other tuple's cached
/// canonical form, so the quadratic pass costs only table lookups.
#[must_use]
pub fn simplify_tuples<T: Theory>(tuples: Vec<GenTuple<T::A>>) -> Vec<GenTuple<T::A>> {
    let mut canon: Vec<GenTuple<T::A>> = Vec::with_capacity(tuples.len());
    let mut seen: HashSet<Vec<T::A>> = HashSet::with_capacity(tuples.len());
    for tuple in tuples {
        let Some(canonical) = tuple.to_canonical::<T>() else {
            continue; // unsatisfiable
        };
        if seen.insert(canonical.atoms().to_vec()) {
            canon.push(canonical);
        }
    }
    // Absorption: drop any disjunct implied by another (it contributes nothing).
    let mut keep = vec![true; canon.len()];
    for i in 0..canon.len() {
        if !keep[i] {
            continue;
        }
        for j in 0..canon.len() {
            if i == j || !keep[j] {
                continue;
            }
            // If disjunct i implies disjunct j, then i ⊆ j and i can be dropped.
            if canon[i].entails::<T>(canon[j].atoms()) {
                keep[i] = false;
                break;
            }
        }
    }
    canon
        .into_iter()
        .zip(keep)
        .filter_map(|(c, k)| if k { Some(c) } else { None })
        .collect()
}

/// Simplifies a bare DNF (compatibility wrapper over [`simplify_tuples`]).
#[must_use]
pub fn simplify_dnf<T: Theory>(dnf: Dnf<T::A>) -> Dnf<T::A> {
    simplify_tuples::<T>(dnf.into_iter().map(GenTuple::new).collect())
        .into_iter()
        .map(GenTuple::into_atoms)
        .collect()
}

/// Negates a disjunction of generalized tuples, returning the complement.
///
/// `¬(C₁ ∨ … ∨ Cₘ) = ¬C₁ ∧ … ∧ ¬Cₘ`, where each `¬Cᵢ` is the disjunction of the
/// (atomic) negations of its atoms; the conjunction of disjunctions is redistributed
/// into DNF with unsatisfiable branches pruned eagerly.  Each candidate's
/// satisfiability check seeds the context cache that the per-round
/// simplification then reuses for canonicalization and absorption.
#[must_use]
pub fn negate_tuples<T: Theory>(tuples: &[GenTuple<T::A>]) -> Vec<GenTuple<T::A>> {
    conjoin_negation::<T>(vec![GenTuple::universal()], tuples)
}

/// Conjoins `¬(t₁ ∨ … ∨ tₘ)` onto a seed DNF: for each negated tuple the
/// accumulated disjuncts are extended by one negated atom at a time, with
/// unsatisfiable branches pruned eagerly and each round simplified.  Shared by
/// [`negate_tuples`] (seed = the universal tuple) and the residual computation
/// behind difference/containment (seed = the tuple being covered), so the
/// pruning and simplification policy cannot drift between them.
fn conjoin_negation<T: Theory>(
    seed: Vec<GenTuple<T::A>>,
    negated: &[GenTuple<T::A>],
) -> Vec<GenTuple<T::A>> {
    let mut acc = seed;
    for tuple in negated {
        let mut next: Vec<GenTuple<T::A>> = Vec::new();
        for prefix in &acc {
            for atom in tuple.atoms() {
                for neg in atom.negate() {
                    let mut atoms = prefix.atoms().to_vec();
                    atoms.push(neg);
                    let candidate = GenTuple::new(atoms);
                    if candidate.is_satisfiable::<T>() {
                        next.push(candidate);
                    }
                }
            }
        }
        acc = simplify_tuples::<T>(next);
        if acc.is_empty() {
            return Vec::new();
        }
    }
    acc
}

/// Negates a bare DNF (compatibility wrapper over [`negate_tuples`]).
#[must_use]
pub fn negate_dnf<T: Theory>(dnf: &[Conj<T::A>]) -> Dnf<T::A> {
    let tuples: Vec<GenTuple<T::A>> = dnf.iter().map(|c| GenTuple::new(c.clone())).collect();
    negate_tuples::<T>(&tuples)
        .into_iter()
        .map(GenTuple::into_atoms)
        .collect()
}

/// Eliminates a list of variables from a generalized tuple by repeated
/// single-variable elimination; the first round reuses the tuple's cached
/// context.
#[must_use]
pub fn eliminate_tuple<T: Theory>(vars: &[Var], tuple: &GenTuple<T::A>) -> Vec<GenTuple<T::A>> {
    let mut tuples: Vec<GenTuple<T::A>> = vec![tuple.clone()];
    for v in vars {
        let mut next: Vec<GenTuple<T::A>> = Vec::new();
        for t in &tuples {
            if !t.is_satisfiable::<T>() {
                continue;
            }
            next.extend(
                t.with_ctx::<T, _>(|ctx| T::ctx_eliminate(ctx, v))
                    .into_iter()
                    .map(GenTuple::new),
            );
        }
        tuples = next;
    }
    tuples.retain(|t| t.is_satisfiable::<T>());
    tuples
}

/// Minimum estimated **candidate pairs** per worker before the parallel join
/// path engages — below this, thread spawn overhead dominates and the serial
/// path is used regardless of the configured thread count.  Unlike the old
/// `16 tuples/worker` gate, the threshold is stats-driven: the join estimates
/// its candidate-pair count per pruning strategy (bucket sizes for pin-hash,
/// index population for the sweep, `n·m` for the scan), so small instances
/// whose pruned pair space is tiny stay serial even at high thread budgets.
const JOIN_WORK_PER_WORKER: usize = 1024;

/// Minimum estimated **atom·variable eliminations** per worker before the
/// parallel projection path engages.  Calibrated against the `join_index`
/// bench's parallel-gate guards: intermediate relations of a few dozen
/// tuples must stay serial (their eliminations finish before a worker pool
/// amortizes), so the floor corresponds to a ≳128-tuple, several-atom
/// relation per worker.
const PROJ_WORK_PER_WORKER: usize = 1024;

/// Effective worker count for `items` independent units carrying an estimated
/// `work` basic operations, gated at `work_per_worker` operations per worker.
fn worker_count(threads: usize, items: usize, work: usize, work_per_worker: usize) -> usize {
    threads.min(work / work_per_worker.max(1)).min(items).max(1)
}

/// Whether two constant envelopes are provably disjoint on one side: `hi` the
/// upper bound of one envelope, `lo` the lower bound of the other.  `true`
/// guarantees no rational satisfies both; exact on strictness (touching
/// endpoints separate only when at least one side is strict).
fn separated(hi: &Bound<Rat>, lo: &Bound<Rat>) -> bool {
    match (hi, lo) {
        (Bound::Unbounded, _) | (_, Bound::Unbounded) => false,
        (Bound::Included(h), Bound::Included(l)) => h < l,
        (Bound::Included(h) | Bound::Excluded(h), Bound::Included(l) | Bound::Excluded(l)) => {
            h <= l
        }
    }
}

/// A constant envelope on one column: `None` on a side means unbounded.
type Envelope = (Bound<Rat>, Bound<Rat>);

/// The endpoint value of a finite bound as `f64`, for the parallel gate's
/// work estimates (never used for correctness decisions).
fn bound_f64(b: &Bound<Rat>) -> Option<f64> {
    match b {
        Bound::Unbounded => None,
        Bound::Included(v) | Bound::Excluded(v) => Some(v.to_f64()),
    }
}

/// Discards envelopes that constrain nothing (both sides unbounded).
fn nontrivial(env: Envelope) -> Option<Envelope> {
    match env {
        (Bound::Unbounded, Bound::Unbounded) => None,
        e => Some(e),
    }
}

/// The lower-endpoint sort key of an envelope: `None` (sorting first) for an
/// unbounded lower side, otherwise the endpoint value.  Strictness is ignored
/// here — the sweep's prefix cut is value-level and the exact [`separated`]
/// test runs per candidate.
fn lower_key(env: &Envelope) -> Option<&Rat> {
    match &env.0 {
        Bound::Unbounded => None,
        Bound::Included(v) | Bound::Excluded(v) => Some(v),
    }
}

/// A per-column sorted-endpoint interval index over one relation's tuples,
/// built from the constant envelopes ([`Theory::ctx_bounds`]) the cached
/// canonical contexts entail for the column.
///
/// The index answers *interval stabbing* queries: given a query envelope, it
/// returns exactly the tuples whose envelope on the column overlaps it (plus
/// the envelope-free wildcards), in ascending tuple order.  Tuples it prunes
/// have provably disjoint envelopes, hence jointly unsatisfiable conjunctions
/// — they would be dropped by canonicalization anyway, so pruning them never
/// changes the join result, only the work.
#[derive(Debug)]
struct ColumnIndex {
    /// Per-tuple envelope (`None` = no usable bounds; tuple is a wildcard).
    bounds: Vec<Option<Envelope>>,
    /// Indices of enveloped tuples, sorted by lower endpoint ascending
    /// (unbounded-below first), ties by tuple index.
    by_lower: Vec<usize>,
    /// Lower-endpoint values parallel to `by_lower` (`None` = unbounded),
    /// kept flat so the prefix cut is one cache-friendly binary search.
    lower_keys: Vec<Option<Rat>>,
    /// Tuples without a usable envelope — always candidates.
    unbounded: Vec<usize>,
    /// Average width of the two-sided envelopes, as `f64` (0 when none) —
    /// feeds the parallel gate's expected-candidate estimate only.
    avg_width: f64,
    /// Width of the span covered by the two-sided envelopes (0 when none).
    span: f64,
}

impl ColumnIndex {
    fn build<T: Theory>(tuples: &[GenTuple<T::A>], var: &Var) -> ColumnIndex {
        let mut bounds: Vec<Option<Envelope>> = Vec::with_capacity(tuples.len());
        let mut by_lower: Vec<usize> = Vec::new();
        let mut unbounded: Vec<usize> = Vec::new();
        for (j, t) in tuples.iter().enumerate() {
            let env = t
                .with_ctx::<T, _>(|ctx| T::ctx_bounds(ctx, var))
                .and_then(nontrivial);
            match env {
                Some(e) => {
                    by_lower.push(j);
                    bounds.push(Some(e));
                }
                None => {
                    unbounded.push(j);
                    bounds.push(None);
                }
            }
        }
        by_lower.sort_by(|&a, &b| {
            let (ka, kb) = (
                bounds[a].as_ref().and_then(lower_key),
                bounds[b].as_ref().and_then(lower_key),
            );
            ka.cmp(&kb).then(a.cmp(&b))
        });
        let lower_keys = by_lower
            .iter()
            .map(|&j| bounds[j].as_ref().and_then(lower_key).cloned())
            .collect();
        let (mut lo_min, mut hi_max) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut width_sum, mut widths) = (0.0f64, 0usize);
        for env in bounds.iter().flatten() {
            if let (Some(lo), Some(hi)) = (bound_f64(&env.0), bound_f64(&env.1)) {
                lo_min = lo_min.min(lo);
                hi_max = hi_max.max(hi);
                width_sum += (hi - lo).max(0.0);
                widths += 1;
            }
        }
        ColumnIndex {
            bounds,
            by_lower,
            lower_keys,
            unbounded,
            avg_width: if widths == 0 {
                0.0
            } else {
                width_sum / widths as f64
            },
            span: if hi_max > lo_min {
                hi_max - lo_min
            } else {
                0.0
            },
        }
    }

    /// Expected number of candidates a sweep with `query` returns, assuming
    /// envelopes spread uniformly over the indexed span — the parallel
    /// gate's work estimate.  Half-open queries (or a degenerate span) fall
    /// back to the whole enveloped population.
    fn expected_candidates(&self, query: &Envelope) -> usize {
        let hits = match (bound_f64(&query.0), bound_f64(&query.1)) {
            (Some(lo), Some(hi)) if self.span > 0.0 => {
                let frac = (((hi - lo).max(0.0) + self.avg_width) / self.span).min(1.0);
                (self.enveloped() as f64 * frac).ceil() as usize
            }
            _ => self.enveloped(),
        };
        hits + self.unbounded.len()
    }

    /// Collects into `out` the indices of all tuples whose envelope overlaps
    /// the query envelope, plus the wildcards, in **ascending** index order —
    /// so every candidate-enumeration path of the join yields the same order
    /// and the result is bit-identical across strategies and thread counts.
    fn sweep_into(&self, query: &Envelope, out: &mut Vec<usize>) {
        let (qlo, qhi) = query;
        // Prefix cut: entries whose lower endpoint *value* exceeds the query's
        // upper value are disjoint regardless of strictness; the survivors get
        // the exact per-candidate separation test below.
        let prefix = match qhi {
            Bound::Unbounded => self.by_lower.len(),
            Bound::Included(v) | Bound::Excluded(v) => self
                .lower_keys
                .partition_point(|k| k.as_ref().is_none_or(|lk| lk <= v)),
        };
        for &j in &self.by_lower[..prefix] {
            let (tlo, thi) = self.bounds[j]
                .as_ref()
                .expect("enveloped tuple listed in by_lower");
            if separated(thi, qlo) || separated(qhi, tlo) {
                continue;
            }
            out.push(j);
        }
        out.extend_from_slice(&self.unbounded);
        out.sort_unstable();
    }

    /// Number of enveloped tuples (the population the sweep can prune).
    fn enveloped(&self) -> usize {
        self.by_lower.len()
    }
}

/// Lazily built per-column interval indexes of one relation, cached beside the
/// tuples.  Relations are immutable, so invalidation is construction-only:
/// constructors that produce a fresh tuple list start with an empty cache,
/// while `clone`/`with_columns`/`rename` — which preserve the tuple list
/// positionally — share the already built indexes too.  A [`ColumnIndex`]
/// stores only positional rational data (envelopes, endpoint orders), never
/// variable names, so a renamed alias reads and populates the same cache
/// through its stable *index names* (see [`Relation`]).
#[derive(Debug, Default)]
struct IndexCache {
    columns: Mutex<HashMap<Var, Arc<ColumnIndex>>>,
}

thread_local! {
    /// Column indexes built (cache misses) on this thread.
    static INDEX_BUILDS: Cell<u64> = const { Cell::new(0) };
    /// Column index cache hits on this thread.
    static INDEX_REUSES: Cell<u64> = const { Cell::new(0) };
    /// Joins resolved per strategy on this thread, indexed as pin-hash /
    /// index-sweep / box-sweep / scan / mixed.  The strategy is decided on
    /// the coordinating thread after worker counters merge, so the tallies
    /// are complete (and thread-count invariant) however wide the join ran.
    static JOIN_STRATEGIES: Cell<[u64; 5]> = const { Cell::new([0; 5]) };
}

/// This thread's cumulative `(built, reused)` column-index counters.
///
/// A *build* is a cache miss in a relation's lazy per-column index cache (the
/// sorted-endpoint construction actually ran); a *reuse* is a hit — including
/// hits through renamed or re-columned aliases of the same tuple list, and
/// across Datalog fixpoint rounds re-joining an unchanged stored relation.
/// Counters are thread-local so tests and single-threaded sessions observe
/// exactly their own joins; callers wanting a window take two snapshots and
/// subtract.
#[must_use]
pub fn column_index_counters() -> (u64, u64) {
    (INDEX_BUILDS.with(Cell::get), INDEX_REUSES.with(Cell::get))
}

/// This thread's cumulative per-strategy join tallies: one count per
/// [`JoinStrategy`] a [`Relation::join_with_report`] run resolved to.
///
/// Like [`column_index_counters`], the tallies are thread-local (the strategy
/// is recorded on the coordinating thread, so parallel joins count exactly
/// once) and cumulative — callers wanting a window take two snapshots and
/// diff with [`JoinStrategyCounts::since`].
#[must_use]
pub fn join_strategy_counters() -> JoinStrategyCounts {
    let [pin_hash, index_sweep, box_sweep, scan, mixed] = JOIN_STRATEGIES.with(Cell::get);
    JoinStrategyCounts {
        pin_hash,
        index_sweep,
        box_sweep,
        scan,
        mixed,
    }
}

/// Bumps this thread's tally for one resolved join strategy.
fn record_join_strategy(strategy: JoinStrategy) {
    let slot = match strategy {
        JoinStrategy::PinHash => 0,
        JoinStrategy::IndexSweep => 1,
        JoinStrategy::BoxSweep => 2,
        JoinStrategy::Scan => 3,
        JoinStrategy::Mixed => 4,
    };
    JOIN_STRATEGIES.with(|c| {
        let mut counts = c.get();
        counts[slot] += 1;
        c.set(counts);
    });
}

/// How the join treats one left tuple on the shared bucket column.
enum LeftKind {
    /// Pinned to a constant: meets only the matching hash bucket + wildcards.
    Pinned(Rat),
    /// Carries a constant envelope: meets only the overlap-feasible tuples
    /// found by the right side's sorted-endpoint interval index.
    Bounded(Envelope),
    /// No constant information: meets every right tuple.
    Wild,
}

/// Join outputs tagged with their originating left-tuple index, so parallel
/// partitions can be merged back into the serial (left-order) sequence.
type TaggedTuples<A> = Vec<(usize, GenTuple<A>)>;

/// Per-strategy tallies of one join run (left tuples classified, candidate
/// pairs that reached [`Theory::ctx_compatible`]).
#[derive(Clone, Copy, Debug, Default)]
struct JoinCounters {
    pinned: usize,
    bounded: usize,
    wild: usize,
    /// Left tuples whose candidates were additionally pruned by the
    /// second-column (bounding-box) envelope filter.
    boxed: usize,
    candidate_pairs: usize,
}

impl JoinCounters {
    fn absorb(&mut self, other: &JoinCounters) {
        self.pinned += other.pinned;
        self.bounded += other.bounded;
        self.wild += other.wild;
        self.boxed += other.boxed;
        self.candidate_pairs += other.candidate_pairs;
    }
}

/// The candidate-pruning strategy a join ran with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinStrategy {
    /// Every left tuple carried a constant envelope: candidates came from the
    /// sorted-endpoint interval sweep.
    IndexSweep,
    /// Every left tuple was pinned to a constant: candidates came from hash
    /// buckets (the degenerate zero-width envelope case).
    PinHash,
    /// The sweep (or hash probe) on the first shared column was refined by a
    /// second shared column's envelope index — the two-column bounding-box
    /// case of spatial workloads.
    BoxSweep,
    /// No constant information (or no shared column): full pairwise scan.
    Scan,
    /// Left tuples of different kinds (or several folded joins disagreeing).
    Mixed,
}

impl fmt::Display for JoinStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            JoinStrategy::IndexSweep => "index-sweep",
            JoinStrategy::PinHash => "pin-hash",
            JoinStrategy::BoxSweep => "box-sweep",
            JoinStrategy::Scan => "scan",
            JoinStrategy::Mixed => "mixed",
        })
    }
}

/// What one join did: the strategy and how much of the quadratic pair space
/// actually reached the compatibility filter.  [`JoinReport::absorb`] folds
/// reports of successive joins (a multi-way join folds pairwise), so `EXPLAIN`
/// can annotate one plan node with the aggregate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JoinReport {
    /// The pruning strategy (uniform kind, or [`JoinStrategy::Mixed`]).
    pub strategy: JoinStrategy,
    /// Candidate pairs that reached [`Theory::ctx_compatible`].
    pub candidate_pairs: usize,
    /// The full pair space `n·m` the pruning was up against.
    pub total_pairs: usize,
}

impl JoinReport {
    /// Folds another join's report into this one (summed pair counts; the
    /// strategy stays when both agree and degrades to `Mixed` otherwise).
    pub fn absorb(&mut self, other: &JoinReport) {
        if self.strategy != other.strategy {
            self.strategy = JoinStrategy::Mixed;
        }
        self.candidate_pairs += other.candidate_pairs;
        self.total_pairs += other.total_pairs;
    }
}

impl fmt::Display for JoinReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}/{} pairs",
            self.strategy, self.candidate_pairs, self.total_pairs
        )
    }
}

/// Produces the join candidates of one partition of left tuples against the
/// (bucketed and index-carrying) right side; shared by the serial and parallel
/// join paths so the pruning policy cannot drift between them.  `order` lists
/// the *original* left indices to process, in processing order; each output
/// tuple is tagged with its left index so the parallel path can restore the
/// serial output order exactly.  All three candidate sources (hash bucket,
/// index sweep, full scan) yield right indices in ascending order, so the
/// output is the nested-loop order minus provably unsatisfiable pairs —
/// bit-identical across strategies and thread counts after simplification.
/// With `warm`, every candidate's canonical context and form are computed
/// here — in the parallel path this is the worker's real job, leaving the
/// caller's sequential simplification pass nothing but cache lookups.
///
/// When the relations share a **second** column, `box_ix` carries the right
/// side's envelope index on it and `box_envs` the left tuples' envelopes:
/// candidates whose second-column envelopes are provably disjoint from the
/// left's are dropped before the compatibility filter (the bounding-box
/// refinement).  The filter preserves ascending candidate order and only
/// removes pairs whose merged conjunction is unsatisfiable — which the final
/// simplification would prune anyway — so output stays bit-identical.
#[allow(clippy::too_many_arguments)]
fn join_partition<T: Theory>(
    left: &[GenTuple<T::A>],
    order: &[usize],
    classes: &[LeftKind],
    right: &[GenTuple<T::A>],
    buckets: &BTreeMap<Rat, Vec<usize>>,
    wild: &[usize],
    all: &[usize],
    index: Option<&ColumnIndex>,
    box_ix: Option<&ColumnIndex>,
    box_envs: &[Option<Envelope>],
    warm: bool,
    out: &mut Vec<(usize, GenTuple<T::A>)>,
    counters: &mut JoinCounters,
) {
    // One scratch buffer for the whole partition, pre-sized from the bucket
    // stats: the largest hash bucket plus the wildcards bounds the pin-hash
    // candidate count, the index population bounds the sweep's.
    let cap = buckets
        .values()
        .map(Vec::len)
        .max()
        .unwrap_or(0)
        .max(index.map_or(0, |ix| ix.enveloped()))
        + wild.len()
        + index.map_or(0, |ix| ix.unbounded.len());
    let mut candidates: Vec<usize> = Vec::with_capacity(cap.min(right.len()));
    let mut boxed: Vec<usize> = Vec::new();
    let first = out.len();
    for &i in order {
        let a = &left[i];
        let rhs: &[usize] = if classes.is_empty() {
            counters.wild += 1;
            all
        } else {
            match &classes[i] {
                // Pinned left tuple: only the matching bucket and the
                // wildcards can be jointly satisfiable (a tuple pinning
                // the shared column to a different constant conflicts).
                LeftKind::Pinned(c) => {
                    counters.pinned += 1;
                    candidates.clear();
                    if let Some(bucket) = buckets.get(c) {
                        candidates.extend_from_slice(bucket);
                    }
                    candidates.extend_from_slice(wild);
                    candidates.sort_unstable();
                    &candidates
                }
                // Enveloped left tuple: sweep the right side's interval index.
                LeftKind::Bounded(env) => {
                    counters.bounded += 1;
                    let ix = index.expect("bounded left tuple without a right index");
                    candidates.clear();
                    ix.sweep_into(env, &mut candidates);
                    &candidates
                }
                LeftKind::Wild => {
                    counters.wild += 1;
                    all
                }
            }
        };
        // Bounding-box refinement: when this left tuple carries an envelope
        // on the second shared column, drop candidates whose envelope there
        // is provably disjoint (ascending order is preserved).
        let rhs: &[usize] = match (box_ix, box_envs.get(i).and_then(Option::as_ref)) {
            (Some(ix2), Some((llo, lhi))) => {
                counters.boxed += 1;
                boxed.clear();
                boxed.extend(rhs.iter().copied().filter(|&j| {
                    ix2.bounds[j]
                        .as_ref()
                        .is_none_or(|(rlo, rhi)| !separated(rhi, llo) && !separated(lhi, rlo))
                }));
                &boxed
            }
            _ => rhs,
        };
        counters.candidate_pairs += rhs.len();
        a.with_ctx::<T, _>(|ca| {
            for &j in rhs {
                let b = &right[j];
                if !b.with_ctx::<T, _>(|cb| T::ctx_compatible(ca, cb)) {
                    continue;
                }
                let mut atoms = a.atoms().to_vec();
                atoms.extend(b.atoms().iter().cloned());
                out.push((i, GenTuple::new(atoms)));
            }
        });
    }
    if warm {
        for (_, t) in &out[first..] {
            if t.is_satisfiable::<T>() {
                let _ = t.canonical::<T>();
            }
        }
    }
}

/// A finitely representable relation: a list of free variables (the relation's
/// columns) and a disjunction of generalized tuples over them.
///
/// The stored tuples are canonical and carry their cached contexts (see
/// [`GenTuple`]); cloning a relation shares every cache.
#[derive(Debug)]
pub struct Relation<T: Theory> {
    vars: Vec<Var>,
    tuples: Vec<GenTuple<T::A>>,
    /// Lazily built per-column interval indexes (see [`ColumnIndex`]); shared
    /// whenever the tuple list is preserved positionally (clone, column
    /// reinterpretation, **rename**), fresh otherwise.
    indexes: Arc<IndexCache>,
    /// The stable names the shared index cache is keyed by, positionally
    /// aligned with `vars` — `None` when they coincide with `vars` (the
    /// common case).  A [`ColumnIndex`] holds only positional rational data,
    /// so a renamed alias keeps serving (and populating) the original cache:
    /// column `i` of the alias looks up `index_names[i]`, not `vars[i]`.
    /// This is what makes index persistence real across Datalog fixpoint
    /// rounds and database commits: re-deriving `R(x, y)` from a stored
    /// relation over `(c0, c1)` every round reuses the index built once.
    index_names: Option<Vec<Var>>,
    // `fn() -> T` (not `T`) so relations are `Send + Sync` whenever the atom
    // type is, independent of the marker theory type — the parallel join and
    // projection paths share relations across `std::thread::scope` workers.
    _theory: PhantomData<fn() -> T>,
}

impl<T: Theory> Clone for Relation<T> {
    fn clone(&self) -> Self {
        Relation {
            vars: self.vars.clone(),
            tuples: self.tuples.clone(),
            indexes: self.indexes.clone(),
            index_names: self.index_names.clone(),
            _theory: PhantomData,
        }
    }
}

impl<T: Theory> Relation<T> {
    /// Builds a relation from generalized tuples, canonicalizing and pruning
    /// unsatisfiable tuples.
    ///
    /// # Panics
    /// Panics if a tuple mentions a variable outside `vars` — the invariant
    /// every later operation (membership, joins, quantifier elimination)
    /// relies on.  Checking here turns what used to be a panic deep inside
    /// point substitution into an immediate construction-time failure; callers
    /// handling untrusted input (file loaders, parsers) should use
    /// [`Relation::try_new`], which reports the same violation as a typed
    /// [`SchemaError`] instead.
    #[must_use]
    pub fn new(vars: Vec<Var>, tuples: Vec<GenTuple<T::A>>) -> Self {
        match Relation::try_new(vars, tuples) {
            Ok(rel) => rel,
            Err(e) => panic!("{e}"),
        }
    }

    /// Builds a relation from generalized tuples, validating that the column
    /// list is duplicate-free and that every tuple mentions only column
    /// variables, then canonicalizing and pruning unsatisfiable tuples.
    ///
    /// # Errors
    /// Returns [`SchemaError::DuplicateColumn`] if `vars` repeats a variable
    /// (point substitution would silently bind only the last occurrence) and
    /// [`SchemaError::TupleVariableOutsideColumns`] if a tuple mentions a
    /// variable that is not one of `vars`.
    pub fn try_new(vars: Vec<Var>, tuples: Vec<GenTuple<T::A>>) -> Result<Self, SchemaError> {
        for (i, v) in vars.iter().enumerate() {
            if vars[..i].contains(v) {
                return Err(SchemaError::DuplicateColumn {
                    variable: v.to_string(),
                });
            }
        }
        for tuple in &tuples {
            for atom in tuple.atoms() {
                if let Some(loose) = atom.vars().into_iter().find(|v| !vars.contains(v)) {
                    return Err(SchemaError::TupleVariableOutsideColumns {
                        variable: loose.to_string(),
                        columns: vars.iter().map(ToString::to_string).collect(),
                    });
                }
            }
        }
        Ok(Relation::simplified_unchecked(vars, tuples))
    }

    /// Canonicalizes and stores tuples **without** the loose-variable check —
    /// the constructor for the relation algebra's internal operations (join,
    /// projection, complement, …), which maintain the columns-cover-tuples
    /// invariant by construction and sit on the evaluator's hot path.  Debug
    /// builds still assert the invariant, so the test suite would catch an
    /// operation violating it.
    pub(crate) fn simplified_unchecked(vars: Vec<Var>, tuples: Vec<GenTuple<T::A>>) -> Self {
        debug_assert!(
            tuples
                .iter()
                .flat_map(GenTuple::atoms)
                .all(|a| a.vars().iter().all(|v| vars.contains(v))),
            "internal relation construction violated the column invariant"
        );
        Relation {
            vars,
            tuples: simplify_tuples::<T>(tuples),
            indexes: Arc::new(IndexCache::default()),
            index_names: None,
            _theory: PhantomData,
        }
    }

    /// Builds a relation directly from a DNF of conjunctions.
    ///
    /// # Panics
    /// As for [`Relation::new`] when a conjunction mentions a variable outside
    /// `vars`.
    #[must_use]
    pub fn from_dnf(vars: Vec<Var>, dnf: Dnf<T::A>) -> Self {
        Relation::new(vars, dnf.into_iter().map(GenTuple::new).collect())
    }

    /// The empty relation of the given column variables.
    #[must_use]
    pub fn empty(vars: Vec<Var>) -> Self {
        Relation {
            vars,
            tuples: Vec::new(),
            indexes: Arc::new(IndexCache::default()),
            index_names: None,
            _theory: PhantomData,
        }
    }

    /// The universal relation (all of `Qᵏ`) over the given column variables.
    #[must_use]
    pub fn universal(vars: Vec<Var>) -> Self {
        Relation {
            vars,
            tuples: vec![GenTuple::universal()],
            indexes: Arc::new(IndexCache::default()),
            index_names: None,
            _theory: PhantomData,
        }
    }

    /// The column variables.
    #[must_use]
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// The arity (number of columns).
    #[must_use]
    pub fn arity(&self) -> usize {
        self.vars.len()
    }

    /// The generalized tuples (canonical, cache-carrying DNF).
    #[must_use]
    pub fn tuples(&self) -> &[GenTuple<T::A>] {
        &self.tuples
    }

    /// The representation as a bare DNF of atom lists (cloned; prefer
    /// [`Relation::tuples`] where the caches matter).
    #[must_use]
    pub fn to_dnf(&self) -> Dnf<T::A> {
        self.tuples.iter().map(|t| t.atoms().to_vec()).collect()
    }

    /// Number of generalized tuples in the representation.
    #[must_use]
    pub fn num_tuples(&self) -> usize {
        self.tuples.len()
    }

    /// Total number of constraint atoms in the representation — the `n` of
    /// Lemma 6.10 ("counting multiple occurrences of a constraint in distinct
    /// tuples").
    #[must_use]
    pub fn num_atoms(&self) -> usize {
        self.tuples.iter().map(|t| t.atoms().len()).sum()
    }

    /// Returns `true` iff the relation is (semantically) empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// All constants occurring in the representation (the active domain used by the
    /// encoding of Section 6).
    #[must_use]
    pub fn constants(&self) -> BTreeSet<Rat> {
        self.tuples.iter().flat_map(GenTuple::constants).collect()
    }

    /// Membership of a point (Proposition 2.4: decidable by evaluating the
    /// quantifier-free representation).
    ///
    /// # Panics
    /// Panics if the point's length differs from the arity.
    #[must_use]
    pub fn contains(&self, point: &[Rat]) -> bool {
        assert_eq!(point.len(), self.arity(), "point arity mismatch");
        let map: BTreeMap<&Var, &Rat> = self.vars.iter().zip(point.iter()).collect();
        let assignment = |v: &Var| {
            map.get(v).map(|r| (*r).clone()).unwrap_or_else(|| {
                panic!("tuple mentions variable {v} outside the relation's columns")
            })
        };
        self.tuples.iter().any(|c| c.eval(&assignment))
    }

    /// Union with another relation over the same columns.
    ///
    /// # Panics
    /// Panics if the column variables differ.
    #[must_use]
    pub fn union(&self, other: &Relation<T>) -> Relation<T> {
        assert_eq!(
            self.vars, other.vars,
            "union of relations over different columns"
        );
        // Union with the empty relation is the identity — return the alias
        // so its tuple caches *and* built column indexes survive (a Datalog
        // round deriving nothing new keeps the stored relation's indexes).
        if other.tuples.is_empty() {
            return self.clone();
        }
        if self.tuples.is_empty() {
            return other.clone();
        }
        let mut tuples = self.tuples.clone();
        tuples.extend(other.tuples.iter().cloned());
        Relation::simplified_unchecked(self.vars.clone(), tuples)
    }

    /// Intersection with another relation over the same columns.
    ///
    /// # Panics
    /// Panics if the column variables differ.
    #[must_use]
    pub fn intersect(&self, other: &Relation<T>) -> Relation<T> {
        assert_eq!(
            self.vars, other.vars,
            "intersection of relations over different columns"
        );
        self.join(other)
    }

    /// The lazily built sorted-endpoint interval index of one column, shared
    /// through the relation's construction-scoped cache (relations are
    /// immutable, so a built index stays valid for the relation's lifetime
    /// and for every [`Relation::clone`]/[`Relation::with_columns`]/
    /// [`Relation::rename`] alias).  Lookups go through the column's stable
    /// *index name* (see the `index_names` field), so a renamed alias and the
    /// original relation hit the same entries: whoever builds first, everyone
    /// reuses.  The thread-local build/reuse tallies feed
    /// [`column_index_counters`].
    fn column_index(&self, var: &Var) -> Arc<ColumnIndex> {
        let key: &Var = match &self.index_names {
            None => var,
            Some(names) => {
                let pos = self
                    .vars
                    .iter()
                    .position(|v| v == var)
                    .expect("column_index of a non-column variable");
                &names[pos]
            }
        };
        let mut columns = self
            .indexes
            .columns
            .lock()
            .expect("column index cache poisoned");
        if let Some(ix) = columns.get(key) {
            INDEX_REUSES.with(|c| c.set(c.get() + 1));
            return ix.clone();
        }
        // Built from *this* alias's tuples and variable name — positionally
        // identical envelope data to what any other alias would build, since
        // renaming is a bijective variable substitution.
        let ix = Arc::new(ColumnIndex::build::<T>(&self.tuples, var));
        columns.insert(key.clone(), ix.clone());
        INDEX_BUILDS.with(|c| c.set(c.get() + 1));
        ix
    }

    /// Natural join with another relation: the columns are the union of the
    /// two column lists (`self`'s order first), and a tuple pair contributes
    /// the conjunction of its atoms.
    ///
    /// Three layers of pruning run off the **cached** tuple contexts, with no
    /// context construction in the inner loop:
    ///
    /// 1. **Hash partitioning** — when the relations share a column, right
    ///    tuples are bucketed by the constant that column is pinned to
    ///    ([`Theory::ctx_pinned`]); a pinned left tuple meets only the
    ///    matching bucket plus the unpinned wildcards, so finite (point-like)
    ///    relations join in near-linear time instead of the quadratic pair
    ///    space.
    /// 2. **Interval sweeping** — a left tuple whose context entails a
    ///    constant *envelope* on the shared column ([`Theory::ctx_bounds`])
    ///    queries the right side's lazily built sorted-endpoint column
    ///    index: only overlap-feasible pairs survive, so
    ///    range-constrained (dense-order) workloads do output-proportional
    ///    work.  Pin-hash is the degenerate zero-width case of this.
    /// 3. **Compatibility filtering** — every surviving pair is screened by
    ///    [`Theory::ctx_compatible`] (for dense order: strict-cycle detection
    ///    across the two closures), dropping visibly conflicting pairs before
    ///    the merged conjunction is built.
    ///
    /// Pairs passing the filters are canonicalized once by the final
    /// simplification, which also seeds the joined tuples' caches for
    /// downstream operators.
    #[must_use]
    pub fn join(&self, other: &Relation<T>) -> Relation<T> {
        self.join_with(other, 1)
    }

    /// [`Relation::join`] with an explicit worker-thread budget (see
    /// [`Relation::join_with_report`], discarding the report).
    #[must_use]
    pub fn join_with(&self, other: &Relation<T>, threads: usize) -> Relation<T> {
        self.join_with_report(other, threads).0
    }

    /// [`Relation::join`] with an explicit worker-thread budget, also
    /// returning a [`JoinReport`] of the pruning strategy that ran and the
    /// candidate-pair count it left for the compatibility filter.
    ///
    /// When the estimated candidate work is large enough to amortize thread
    /// spawns, the left tuples are split across a `std::thread::scope` pool.
    /// The parallel processing order sorts left tuples by their envelope's
    /// lower endpoint, so each worker's index sweeps land on a contiguous
    /// range of the right index (locality) — outputs are tagged with their
    /// left index and re-sorted, so the result is **bit-identical** to the
    /// serial join at any thread count.  Workers also **pre-saturate** their
    /// candidates' canonical contexts — the expensive part of the join — so
    /// the final sequential simplification pass costs only cache lookups.
    #[must_use]
    pub fn join_with_report(
        &self,
        other: &Relation<T>,
        threads: usize,
    ) -> (Relation<T>, JoinReport) {
        let mut vars = self.vars.clone();
        for v in other.vars() {
            if !vars.contains(v) {
                vars.push(v.clone());
            }
        }
        let (n, m) = (self.tuples.len(), other.tuples.len());
        // Partition the right side by the pinned value of the first shared
        // column (if any): `wild` holds the tuples that do not pin it.  Left
        // tuples are classified once: pinned, enveloped, or wildcard.
        let bucket_var = self.vars.iter().find(|v| other.vars.contains(v));
        let mut buckets: BTreeMap<Rat, Vec<usize>> = BTreeMap::new();
        let mut wild: Vec<usize> = Vec::new();
        let mut classes: Vec<LeftKind> = Vec::new();
        if let Some(bv) = bucket_var {
            for (j, b) in other.tuples.iter().enumerate() {
                match b.with_ctx::<T, _>(|cb| T::ctx_pinned(cb, bv)) {
                    Some(c) => buckets.entry(c).or_default().push(j),
                    None => wild.push(j),
                }
            }
            classes = self
                .tuples
                .iter()
                .map(|a| {
                    a.with_ctx::<T, _>(|ca| {
                        if let Some(c) = T::ctx_pinned(ca, bv) {
                            return LeftKind::Pinned(c);
                        }
                        match T::ctx_bounds(ca, bv).and_then(nontrivial) {
                            Some(env) => LeftKind::Bounded(env),
                            None => LeftKind::Wild,
                        }
                    })
                })
                .collect();
        }
        // The right-side interval index is built (or fetched from the cache)
        // only when some left tuple can actually use it.
        let index: Option<Arc<ColumnIndex>> = match bucket_var {
            Some(bv) if classes.iter().any(|k| matches!(k, LeftKind::Bounded(_))) => {
                Some(other.column_index(bv))
            }
            _ => None,
        };
        // Second shared column (the bounding-box case of spatial workloads):
        // left envelopes on it refine the first column's candidates through
        // the right side's envelope index there.  Engaged only when a left
        // tuple actually carries a second-column envelope.
        let box_var = bucket_var.and_then(|bv| {
            self.vars
                .iter()
                .find(|v| *v != bv && other.vars.contains(v))
        });
        let box_envs: Vec<Option<Envelope>> = match box_var {
            Some(bv2) if !classes.is_empty() => self
                .tuples
                .iter()
                .map(|a| a.with_ctx::<T, _>(|ca| T::ctx_bounds(ca, bv2).and_then(nontrivial)))
                .collect(),
            _ => Vec::new(),
        };
        let box_index: Option<Arc<ColumnIndex>> = match box_var {
            Some(bv2) if box_envs.iter().any(Option::is_some) => Some(other.column_index(bv2)),
            _ => None,
        };
        // A pinned left is the zero-width case of a bounded one.  Its bucket
        // path forwards the matching bucket plus *every* non-pinned right as
        // a candidate, while a zero-width sweep forwards only the rights
        // whose envelope contains the constant plus the envelope-free
        // leftovers — always a subset.  So once the index exists, pinned
        // lefts sweep too whenever the sweep prunes strictly more (there are
        // non-pinned rights that do carry envelopes); in point-only
        // workloads (`wild == unbounded`) the hash probe stays, as the sweep
        // would return the same set for a prefix-scan price.
        if let Some(ix) = &index {
            if wild.len() > ix.unbounded.len() {
                for k in &mut classes {
                    if let LeftKind::Pinned(c) = k {
                        let env = (Bound::Included(c.clone()), Bound::Included(c.clone()));
                        *k = LeftKind::Bounded(env);
                    }
                }
            }
        }
        let all: Vec<usize> = (0..m).collect();
        // Estimated candidate pairs per strategy — the stats-driven parallel
        // gate (replacing the old fixed tuples-per-worker threshold).
        let work: usize = if bucket_var.is_none() {
            n.saturating_mul(m)
        } else {
            classes
                .iter()
                .map(|k| match k {
                    LeftKind::Pinned(c) => buckets.get(c).map_or(0, Vec::len) + wild.len(),
                    LeftKind::Bounded(env) => {
                        index.as_ref().map_or(m, |ix| ix.expected_candidates(env))
                    }
                    LeftKind::Wild => m,
                })
                .sum()
        };
        let workers = worker_count(threads, n, work, JOIN_WORK_PER_WORKER);
        let mut counters = JoinCounters::default();
        let tuples: Vec<GenTuple<T::A>> = if workers <= 1 {
            let order: Vec<usize> = (0..n).collect();
            let mut out = Vec::new();
            join_partition::<T>(
                &self.tuples,
                &order,
                &classes,
                &other.tuples,
                &buckets,
                &wild,
                &all,
                index.as_deref(),
                box_index.as_deref(),
                &box_envs,
                false,
                &mut out,
                &mut counters,
            );
            out.into_iter().map(|(_, t)| t).collect()
        } else {
            // Sorted-endpoint range partitioning: workers take contiguous
            // slices of the lefts ordered by envelope lower endpoint (pinned
            // constants are zero-width envelopes, wildcards go last), so each
            // worker's sweeps touch a contiguous prefix region of the index.
            let mut order: Vec<usize> = (0..n).collect();
            if !classes.is_empty() {
                fn endpoint(k: &LeftKind) -> (u8, Option<&Rat>) {
                    match k {
                        LeftKind::Pinned(c) => (0, Some(c)),
                        LeftKind::Bounded(env) => (0, lower_key(env)),
                        LeftKind::Wild => (1, None),
                    }
                }
                order.sort_by(|&a, &b| {
                    endpoint(&classes[a])
                        .cmp(&endpoint(&classes[b]))
                        .then(a.cmp(&b))
                });
            }
            let chunk = n.div_ceil(workers);
            let parts: Vec<(TaggedTuples<T::A>, JoinCounters)> = std::thread::scope(|s| {
                let handles: Vec<_> = order
                    .chunks(chunk)
                    .map(|slice| {
                        let (classes, buckets, wild, all) = (&classes, &buckets, &wild, &all);
                        let (lhs, rhs) = (&self.tuples, &other.tuples);
                        let index = index.as_deref();
                        let box_index = box_index.as_deref();
                        let box_envs = &box_envs;
                        s.spawn(move || {
                            let mut out = Vec::new();
                            let mut counters = JoinCounters::default();
                            join_partition::<T>(
                                lhs,
                                slice,
                                classes,
                                rhs,
                                buckets,
                                wild,
                                all,
                                index,
                                box_index,
                                box_envs,
                                true,
                                &mut out,
                                &mut counters,
                            );
                            (out, counters)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("join worker panicked"))
                    .collect()
            });
            let mut out: Vec<(usize, GenTuple<T::A>)> = Vec::new();
            for (part, part_counters) in parts {
                counters.absorb(&part_counters);
                out.extend(part);
            }
            // Stable sort by left index restores the serial output order
            // (each left's candidates were already emitted ascending).
            out.sort_by_key(|(i, _)| *i);
            out.into_iter().map(|(_, t)| t).collect()
        };
        let strategy = match (counters.pinned > 0, counters.bounded > 0, counters.wild > 0) {
            (true, false, false) => JoinStrategy::PinHash,
            (false, true, false) => JoinStrategy::IndexSweep,
            (false, false, _) => JoinStrategy::Scan,
            _ => JoinStrategy::Mixed,
        };
        // The bounding-box refinement upgrades a uniform constant-driven
        // strategy; mixed and scan stay what they are.
        let strategy = if counters.boxed > 0
            && matches!(strategy, JoinStrategy::IndexSweep | JoinStrategy::PinHash)
        {
            JoinStrategy::BoxSweep
        } else {
            strategy
        };
        record_join_strategy(strategy);
        let report = JoinReport {
            strategy,
            candidate_pairs: counters.candidate_pairs,
            total_pairs: n.saturating_mul(m),
        };
        (Relation::simplified_unchecked(vars, tuples), report)
    }

    /// The reference pairwise-scan join: every `n·m` pair reaches the
    /// compatibility filter, with no hash or index pruning.  Serves as the
    /// correctness oracle for the indexed join (exact same output, including
    /// tuple order) and as the index-off baseline in the join benchmarks.
    #[must_use]
    pub fn join_scan(&self, other: &Relation<T>) -> Relation<T> {
        let mut vars = self.vars.clone();
        for v in other.vars() {
            if !vars.contains(v) {
                vars.push(v.clone());
            }
        }
        let order: Vec<usize> = (0..self.tuples.len()).collect();
        let all: Vec<usize> = (0..other.tuples.len()).collect();
        let buckets = BTreeMap::new();
        let mut out = Vec::new();
        let mut counters = JoinCounters::default();
        join_partition::<T>(
            &self.tuples,
            &order,
            &[],
            &other.tuples,
            &buckets,
            &[],
            &all,
            None,
            None,
            &[],
            false,
            &mut out,
            &mut counters,
        );
        Relation::simplified_unchecked(vars, out.into_iter().map(|(_, t)| t).collect())
    }

    /// Projects the listed columns *out* of the relation by quantifier
    /// elimination (`∃ drop . self`), keeping the remaining columns in order.
    /// Variables in `drop` that are not columns are eliminated from the tuples
    /// all the same (a no-op for tuples that do not mention them), so plans
    /// may project away variables contributed only by pruned sub-plans.
    #[must_use]
    pub fn project_out(&self, drop: &[Var]) -> Relation<T> {
        self.project_out_with(drop, 1)
    }

    /// [`Relation::project_out`] with an explicit worker-thread budget: each
    /// tuple's quantifier elimination is independent, so large relations split
    /// their tuples across a `std::thread::scope` pool (merged in order —
    /// results are bit-identical to the serial path at any thread count).
    #[must_use]
    pub fn project_out_with(&self, drop: &[Var], threads: usize) -> Relation<T> {
        if drop.is_empty() {
            return self.clone();
        }
        let keep: Vec<Var> = self
            .vars
            .iter()
            .filter(|v| !drop.contains(v))
            .cloned()
            .collect();
        // Work estimate: each dropped variable revisits every atom of every
        // tuple, so atoms × dropped variables is the unit count the parallel
        // gate weighs against the spawn overhead.
        let work = self.num_atoms().saturating_mul(drop.len());
        let workers = worker_count(threads, self.tuples.len(), work, PROJ_WORK_PER_WORKER);
        let tuples = if workers <= 1 {
            let mut tuples = Vec::new();
            for t in &self.tuples {
                tuples.extend(eliminate_tuple::<T>(drop, t));
            }
            tuples
        } else {
            let chunk = self.tuples.len().div_ceil(workers);
            let parts: Vec<Vec<GenTuple<T::A>>> = std::thread::scope(|s| {
                let handles: Vec<_> = self
                    .tuples
                    .chunks(chunk)
                    .map(|part| {
                        s.spawn(move || {
                            let mut out = Vec::new();
                            for t in part {
                                out.extend(eliminate_tuple::<T>(drop, t));
                            }
                            // Pre-warm the canonical forms the sequential
                            // simplification pass will read.
                            for t in &out {
                                let _ = t.canonical::<T>();
                            }
                            out
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("projection worker panicked"))
                    .collect()
            });
            parts.concat()
        };
        Relation::simplified_unchecked(keep, tuples)
    }

    /// Reinterprets the relation over a superset (or reordering) of its
    /// columns without touching the tuples: the relation is universal in the
    /// added columns.  Used by the algebra evaluator to align union branches
    /// and join results onto a node's declared column list.
    ///
    /// # Panics
    /// Panics if a current column is missing from `vars`.
    #[must_use]
    pub fn with_columns(&self, vars: Vec<Var>) -> Relation<T> {
        assert!(
            self.vars.iter().all(|v| vars.contains(v)),
            "with_columns must keep every existing column"
        );
        // Same tuple list in the same order — the indexes stay valid, but the
        // stable index names must follow each kept column to its new
        // position; added columns key under their own name.  A fresh column
        // whose name collides with a kept column's hidden index name would
        // alias someone else's entries, so that (rare) case starts clean.
        let names: Vec<Var> = vars
            .iter()
            .map(|v| match self.vars.iter().position(|w| w == v) {
                Some(pos) => match &self.index_names {
                    None => v.clone(),
                    Some(names) => names[pos].clone(),
                },
                None => v.clone(),
            })
            .collect();
        let distinct = names.iter().collect::<HashSet<_>>().len().eq(&names.len());
        let (indexes, index_names) = if distinct {
            let index_names = if names == vars { None } else { Some(names) };
            (self.indexes.clone(), index_names)
        } else {
            (Arc::new(IndexCache::default()), None)
        };
        Relation {
            vars,
            tuples: self.tuples.clone(),
            indexes,
            index_names,
            _theory: PhantomData,
        }
    }

    /// Complement within `Qᵏ` (finitely representable relations are closed under
    /// complement, Section 2.2).
    #[must_use]
    pub fn complement(&self) -> Relation<T> {
        Relation::simplified_unchecked(self.vars.clone(), negate_tuples::<T>(&self.tuples))
    }

    /// The part of a single generalized tuple not covered by this relation:
    /// `tuple ∧ ¬self`.  The negation is distributed tuple by tuple with the
    /// conjunction as a seed, which prunes far more aggressively than computing the
    /// full complement first.
    fn residual_of_tuple(&self, tuple: &GenTuple<T::A>) -> Vec<GenTuple<T::A>> {
        if !tuple.is_satisfiable::<T>() {
            return Vec::new();
        }
        conjoin_negation::<T>(vec![tuple.clone()], &self.tuples)
    }

    /// Set difference `self \ other`.
    #[must_use]
    pub fn difference(&self, other: &Relation<T>) -> Relation<T> {
        assert_eq!(
            self.vars, other.vars,
            "difference of relations over different columns"
        );
        let mut tuples: Vec<GenTuple<T::A>> = Vec::new();
        for tuple in &self.tuples {
            tuples.extend(other.residual_of_tuple(tuple));
        }
        Relation::simplified_unchecked(self.vars.clone(), tuples)
    }

    /// Union with a small update delta, doing work proportional to the delta:
    /// only the incoming tuples are canonicalized, and absorption is checked
    /// across the boundary (and within the delta) instead of over all pairs —
    /// `O(|self|·|delta|)` entailment checks, against `O((|self|+|delta|)²)`
    /// for [`Relation::union`].
    ///
    /// Assumes `self` is **simplified**: its tuples canonical, deduplicated,
    /// and mutually non-absorbing — the invariant every relation built by
    /// this crate's constructors and operators satisfies ([`Relation::new`],
    /// `union`, `difference`, join, …; [`Relation::rename`] aliases preserve
    /// it semantically).  Under that assumption the result is simplified and
    /// equals `self.union(delta)` as a generalized-tuple set; existing tuples
    /// are carried over verbatim, so their cached contexts and positions
    /// survive.  This is the commit path for first-class `insert` updates.
    ///
    /// # Panics
    /// Panics if the column variables differ.
    #[must_use]
    pub fn union_delta(&self, delta: &Relation<T>) -> Relation<T> {
        self.union_delta_report(delta).0
    }

    /// [`Relation::union_delta`] plus the exact part-level effect: which
    /// parts the result gained and which parts of `self` disappeared (an
    /// incoming tuple can *absorb* stored parts).  Consumers use the report
    /// to maintain part-aligned caches without re-diffing the two values.
    #[must_use]
    pub fn union_delta_report(&self, delta: &Relation<T>) -> (Relation<T>, PartDelta<T::A>) {
        assert_eq!(
            self.vars, delta.vars,
            "union of relations over different columns"
        );
        if delta.tuples.is_empty() {
            return (self.clone(), PartDelta::default());
        }
        // Dedup by direct comparison rather than a hash set of the stored
        // atoms: non-equal tuples diverge at their first atom, so the scan is
        // near-free, while hashing every stored tuple would cost `O(|self|)`
        // full-tuple traversals per commit.
        let mut fresh: Vec<GenTuple<T::A>> = Vec::new();
        for tuple in &delta.tuples {
            let Some(canonical) = tuple.to_canonical::<T>() else {
                continue; // unsatisfiable
            };
            let dup = self.tuples.iter().any(|t| t.atoms() == canonical.atoms())
                || fresh.iter().any(|f| f.atoms() == canonical.atoms());
            if !dup {
                fresh.push(canonical);
            }
        }
        if fresh.is_empty() {
            return (self.clone(), PartDelta::default());
        }
        // Absorption across the boundary: an old tuple implied by a fresh one
        // is dropped, and vice versa; fresh tuples also absorb each other.
        // Old-vs-old pairs need no check — `self` is absorption-free.
        let mut tuples: Vec<GenTuple<T::A>> = Vec::with_capacity(self.tuples.len() + fresh.len());
        let mut removed: Vec<GenTuple<T::A>> = Vec::new();
        for old in &self.tuples {
            if fresh.iter().any(|new| old.entails::<T>(new.atoms())) {
                removed.push(old.clone());
            } else {
                tuples.push(old.clone());
            }
        }
        let mut added: Vec<GenTuple<T::A>> = Vec::new();
        for (k, new) in fresh.iter().enumerate() {
            let absorbed = self.tuples.iter().any(|old| new.entails::<T>(old.atoms()))
                || fresh
                    .iter()
                    .enumerate()
                    .any(|(j, other)| j != k && new.entails::<T>(other.atoms()));
            if !absorbed {
                tuples.push(new.clone());
                added.push(new.clone());
            }
        }
        (
            Relation::assembled(self.vars.clone(), tuples),
            PartDelta { added, removed },
        )
    }

    /// Difference with a small update delta, doing work proportional to the
    /// parts the delta actually touches: stored tuples whose cached contexts
    /// are provably incompatible with every delta tuple
    /// ([`Theory::ctx_compatible`]) are carried over **verbatim** — no
    /// re-canonicalization, no residual computation — and only the touched
    /// tuples are split, canonicalized, and absorption-checked against the
    /// result.  This is the commit path for first-class `delete` updates.
    ///
    /// Assumes `self` is simplified (see [`Relation::union_delta`]).  The
    /// result is simplified and denotes exactly `self \ delta`; because
    /// untouched tuples are not re-split, its generalized-tuple shape can be
    /// *coarser* than what [`Relation::difference`] produces — never finer.
    ///
    /// # Panics
    /// Panics if the column variables differ.
    #[must_use]
    pub fn difference_delta(&self, delta: &Relation<T>) -> Relation<T> {
        self.difference_delta_report(delta).0
    }

    /// [`Relation::difference_delta`] plus the exact part-level effect:
    /// origins that were split or fully deleted show up in `removed`, their
    /// surviving residual pieces in `added`.  Untouched parts — including
    /// origins whose residual turned out to be themselves — appear in
    /// neither list.
    #[must_use]
    pub fn difference_delta_report(&self, delta: &Relation<T>) -> (Relation<T>, PartDelta<T::A>) {
        assert_eq!(
            self.vars, delta.vars,
            "difference of relations over different columns"
        );
        if delta.tuples.is_empty() || self.tuples.is_empty() {
            return (self.clone(), PartDelta::default());
        }
        // First pass: split the stored tuples into untouched survivors and
        // residual pieces of touched tuples, preserving the stored order.
        // Untouched survivors need no dedup — `self` is deduplicated, and a
        // piece can never equal an untouched tuple (that would make the
        // untouched tuple a subset of a touched one, which absorption
        // freeness of `self` rules out) — so only piece-vs-piece collisions
        // across different origins are checked.
        let mut removed: Vec<GenTuple<T::A>> = Vec::new();
        let mut kept: Vec<(bool, GenTuple<T::A>)> = Vec::new(); // (is_piece, tuple)
        for part in &self.tuples {
            let touching: Vec<GenTuple<T::A>> = delta
                .tuples
                .iter()
                .filter(|d| {
                    part.with_ctx::<T, _>(|cp| d.with_ctx::<T, _>(|cd| T::ctx_compatible(cp, cd)))
                })
                .cloned()
                .collect();
            if touching.is_empty() {
                kept.push((false, part.clone()));
                continue;
            }
            let pieces: Vec<GenTuple<T::A>> = conjoin_negation::<T>(vec![part.clone()], &touching)
                .into_iter()
                .filter_map(|piece| piece.to_canonical::<T>())
                .collect();
            // A compatibility false positive: the delta only *looked* like it
            // touched this part.  Carry the original through unchanged.
            if pieces.len() == 1 && pieces[0].atoms() == part.atoms() {
                kept.push((false, part.clone()));
                continue;
            }
            removed.push(part.clone());
            for canonical in pieces {
                let dup = kept
                    .iter()
                    .any(|(is_piece, t)| *is_piece && t.atoms() == canonical.atoms());
                if !dup {
                    kept.push((true, canonical));
                }
            }
        }
        // Second pass: absorption.  Untouched tuples never absorb each other
        // (`self` is absorption-free) and are never implied by a piece's
        // superset chain, so only pieces can be dropped: a piece contained in
        // any other surviving tuple contributes nothing.
        let survives = |i: usize, is_piece: bool, tuple: &GenTuple<T::A>| {
            !is_piece
                || !kept
                    .iter()
                    .enumerate()
                    .any(|(j, (_, other))| j != i && tuple.entails::<T>(other.atoms()))
        };
        let mut tuples: Vec<GenTuple<T::A>> = Vec::with_capacity(kept.len());
        let mut added: Vec<GenTuple<T::A>> = Vec::new();
        for (i, (is_piece, tuple)) in kept.iter().enumerate() {
            if survives(i, *is_piece, tuple) {
                tuples.push(tuple.clone());
                if *is_piece {
                    added.push(tuple.clone());
                }
            }
        }
        (
            Relation::assembled(self.vars.clone(), tuples),
            PartDelta { added, removed },
        )
    }

    /// Assembles a relation from tuples that are already simplified as a set
    /// (canonical, deduplicated, mutually non-absorbing) — the delta
    /// operations' constructor.  Debug builds verify canonicality.
    fn assembled(vars: Vec<Var>, tuples: Vec<GenTuple<T::A>>) -> Relation<T> {
        debug_assert!(
            tuples.iter().all(|t| t
                .to_canonical::<T>()
                .is_some_and(|c| c.atoms() == t.atoms())),
            "assembled relation holds a non-canonical tuple"
        );
        Relation {
            vars,
            tuples,
            indexes: Arc::new(IndexCache::default()),
            index_names: None,
            _theory: PhantomData,
        }
    }

    /// The generalized-tuple delta of this relation against an earlier value
    /// over the same columns: `(added, removed)` where `added = self \ earlier`
    /// and `removed = earlier \ self`.  Both sides are DNF differences under
    /// the theory's entailment, so tuples of the update that were already
    /// absorbed (or were unsatisfiable to begin with) contribute nothing —
    /// the delta an incremental view-maintenance plan consumes is exactly the
    /// semantic change.
    ///
    /// # Panics
    /// Panics if the column variables differ.
    #[must_use]
    pub fn delta_from(&self, earlier: &Relation<T>) -> (Relation<T>, Relation<T>) {
        (self.difference(earlier), earlier.difference(self))
    }

    /// Containment `self ⊆ other` (both over the same columns), decided by checking
    /// that `self ∧ ¬other` is unsatisfiable, one generalized tuple at a time.
    ///
    /// # Panics
    /// Panics if the column variables differ.
    #[must_use]
    pub fn subset_of(&self, other: &Relation<T>) -> bool {
        assert_eq!(
            self.vars, other.vars,
            "containment of relations over different columns"
        );
        self.tuples
            .iter()
            .all(|tuple| other.residual_of_tuple(tuple).is_empty())
    }

    /// Whether a single generalized tuple is entirely contained in this
    /// relation (used by the semi-naive Datalog engine to compute deltas
    /// without a full relation difference).
    #[must_use]
    pub fn covers_tuple(&self, tuple: &GenTuple<T::A>) -> bool {
        self.residual_of_tuple(tuple).is_empty()
    }

    /// Semantic equivalence of two representations (query equivalence of §4.3 at the
    /// instance level).
    #[must_use]
    pub fn equivalent(&self, other: &Relation<T>) -> bool {
        self.subset_of(other) && other.subset_of(self)
    }

    /// Renames the column variables (the tuples are rewritten accordingly) in a
    /// **single simultaneous substitution pass** — permutations need no
    /// temporary variables, so each atom is rewritten exactly once.
    ///
    /// The per-column interval indexes survive the rename: a [`ColumnIndex`]
    /// stores only positional envelope data, invariant under the bijective
    /// variable substitution, so the renamed relation shares the original's
    /// index cache keyed by the columns' stable index names.  This is the
    /// Datalog fixpoint's and the database commit path's index persistence:
    /// every round (or snapshot read) that renames the same stored relation
    /// rebuilds **zero** indexes.
    ///
    /// # Panics
    /// Panics if the number of new variables differs from the arity.
    #[must_use]
    pub fn rename(&self, new_vars: Vec<Var>) -> Relation<T> {
        assert_eq!(
            new_vars.len(),
            self.arity(),
            "rename with wrong number of columns"
        );
        if new_vars == self.vars {
            return self.clone();
        }
        let map: HashMap<Var, Term> = self
            .vars
            .iter()
            .zip(&new_vars)
            .filter(|(old, new)| old != new)
            .map(|(old, new)| (old.clone(), Term::Var(new.clone())))
            .collect();
        let tuples = self
            .tuples
            .iter()
            .map(|tuple| {
                GenTuple::new(
                    tuple
                        .atoms()
                        .iter()
                        .map(|a| a.subst_simultaneous(&map))
                        .collect(),
                )
            })
            .collect();
        // Positions are untouched, so the stable index names carry over
        // verbatim (defaulting to the pre-rename column names).
        let index_names = Some(match &self.index_names {
            Some(names) => names.clone(),
            None => self.vars.clone(),
        });
        Relation {
            vars: new_vars,
            tuples,
            indexes: self.indexes.clone(),
            index_names,
            _theory: PhantomData,
        }
    }

    /// The same relation with its generalized tuples in **canonical display
    /// order** (lexicographic by rendered atoms, ties kept stable).
    ///
    /// Operator pipelines order their output by evaluation history — which
    /// tuple was derived first — so two equivalent pipelines (the factorized
    /// and the eagerly materialized evaluator, say) can produce the same
    /// canonical tuple *set* in different orders.  Plan boundaries (query
    /// answers) normalize through this method, making answers reproducible
    /// across evaluation modes and pinnable by golden transcripts.
    #[must_use]
    pub fn canonically_sorted(&self) -> Relation<T> {
        let keys: Vec<String> = self
            .tuples
            .iter()
            .map(|t| {
                let mut key = String::new();
                for a in t.atoms() {
                    key.push_str(&a.to_string());
                    key.push('\u{1}');
                }
                key
            })
            .collect();
        let mut order: Vec<usize> = (0..self.tuples.len()).collect();
        order.sort_by(|&a, &b| keys[a].cmp(&keys[b]).then(a.cmp(&b)));
        if order.iter().enumerate().all(|(i, &j)| i == j) {
            return self.clone();
        }
        let tuples = order.iter().map(|&j| self.tuples[j].clone()).collect();
        Relation {
            vars: self.vars.clone(),
            tuples,
            indexes: Arc::new(IndexCache::default()),
            index_names: None,
            _theory: PhantomData,
        }
    }

    /// Applies a mapping to every constant in the representation (the image of the
    /// relation under a morphism, Definition 4.3 / Proposition 4.4).
    #[must_use]
    pub fn map_constants(&self, f: &impl Fn(&Rat) -> Rat) -> Relation<T> {
        let tuples = self
            .tuples
            .iter()
            .map(|tuple| GenTuple::new(tuple.atoms().iter().map(|a| a.map_constants(f)).collect()))
            .collect();
        Relation::simplified_unchecked(self.vars.clone(), tuples)
    }

    /// The quantifier-free formula representing the relation.
    #[must_use]
    pub fn to_formula(&self) -> Formula<T::A> {
        Formula::Or(
            self.tuples
                .iter()
                .map(|tuple| {
                    Formula::And(tuple.atoms().iter().cloned().map(Formula::Atom).collect())
                })
                .collect(),
        )
    }

    /// Builds a *finite* relation from explicit points — the classical relational
    /// model embedded into the constraint model (a tuple `[a, b]` abbreviates
    /// `x = a ∧ y = b`, Section 2.2).
    #[must_use]
    pub fn from_points(vars: Vec<Var>, points: impl IntoIterator<Item = Vec<Rat>>) -> Relation<T>
    where
        T::A: FromEquality,
    {
        let tuples: Vec<GenTuple<T::A>> = points
            .into_iter()
            .map(|p| {
                assert_eq!(p.len(), vars.len(), "point arity mismatch");
                GenTuple::new(
                    vars.iter()
                        .zip(p)
                        .map(|(v, c)| T::A::equality(Term::Var(v.clone()), Term::Const(c)))
                        .collect(),
                )
            })
            .collect();
        Relation::new(vars, tuples)
    }
}

impl<T: Theory> fmt::Display for Relation<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{(")?;
        for (i, v) in self.vars.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ") | ")?;
        if self.tuples.is_empty() {
            write!(f, "false")?;
        }
        for (i, tuple) in self.tuples.iter().enumerate() {
            if i > 0 {
                write!(f, " ∨ ")?;
            }
            if tuple.atoms().is_empty() {
                write!(f, "true")?;
            } else {
                write!(f, "(")?;
                for (j, a) in tuple.atoms().iter().enumerate() {
                    if j > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")?;
            }
        }
        write!(f, "}}")
    }
}

/// The exact part-level effect of a delta operation on a relation's DNF:
/// `added` holds parts present in the result but not the receiver, `removed`
/// parts of the receiver that are gone.  Emptiness of both means the update
/// was a no-op (every incoming tuple absorbed, or nothing deleted), so
/// consumers can use the report both to skip work and to maintain
/// part-aligned caches without re-diffing the two values.
#[derive(Debug, Clone)]
pub struct PartDelta<A> {
    /// Parts the result gained.
    pub added: Vec<GenTuple<A>>,
    /// Parts of the receiver no longer present in the result.
    pub removed: Vec<GenTuple<A>>,
}

impl<A> Default for PartDelta<A> {
    fn default() -> Self {
        PartDelta {
            added: Vec::new(),
            removed: Vec::new(),
        }
    }
}

impl<A> PartDelta<A> {
    /// True when the operation changed nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

/// Atom types that can express equality between a variable and a constant; needed to
/// embed classical finite relations (`Relation::from_points`).
pub trait FromEquality: Sized {
    /// The atom `lhs = rhs`.
    fn equality(lhs: Term, rhs: Term) -> Self;
}

impl FromEquality for crate::dense::DenseAtom {
    fn equality(lhs: Term, rhs: Term) -> Self {
        crate::dense::DenseAtom::eq(lhs, rhs)
    }
}

/// A finitely representable database instance: a mapping from schema relation names to
/// finitely representable relations (Definition 2.7).
#[derive(Debug)]
pub struct Instance<T: Theory> {
    schema: Schema,
    /// Stored values are `Arc`-shared so cloning an instance — the
    /// copy-on-write snapshot step of every engine commit — costs a map of
    /// pointer bumps, never a part-table copy.  Relations are immutable, so
    /// sharing is invisible; `set` replaces the whole pointer.
    relations: BTreeMap<RelName, Arc<Relation<T>>>,
}

impl<T: Theory> Clone for Instance<T> {
    fn clone(&self) -> Self {
        Instance {
            schema: self.schema.clone(),
            relations: self.relations.clone(),
        }
    }
}

impl<T: Theory> Instance<T> {
    /// An empty instance of the given schema (every relation empty).
    #[must_use]
    pub fn new(schema: Schema) -> Self {
        Instance {
            schema,
            relations: BTreeMap::new(),
        }
    }

    /// The schema.
    #[must_use]
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Declares a relation symbol in place, extending the schema (a no-op when
    /// already declared at the same arity).  Stored relations are untouched.
    ///
    /// # Errors
    /// Returns [`SchemaError::ArityMismatch`] if the name is already declared
    /// with a different arity.
    pub fn declare(
        &mut self,
        name: impl Into<RelName>,
        arity: usize,
    ) -> Result<&mut Self, SchemaError> {
        let name = name.into();
        if let Some(declared) = self.schema.arity(&name) {
            if declared != arity {
                return Err(SchemaError::ArityMismatch {
                    relation: name.to_string(),
                    declared,
                    found: arity,
                });
            }
            return Ok(self);
        }
        self.schema.add(name, arity);
        Ok(self)
    }

    /// Removes a relation symbol (and any stored value) from the instance;
    /// returns the removed relation when one was stored.  Undeclared names are
    /// a no-op returning `None`.
    pub fn remove(&mut self, name: &RelName) -> Option<Relation<T>> {
        let stored = self.relations.remove(name);
        self.schema.remove(name);
        stored.map(|rel| Arc::try_unwrap(rel).unwrap_or_else(|shared| (*shared).clone()))
    }

    /// Sets a relation.
    ///
    /// # Errors
    /// Returns [`SchemaError::UndeclaredRelation`] if the relation name is not
    /// in the schema, and [`SchemaError::ArityMismatch`] if the relation's
    /// arity disagrees with the declaration.  (These used to be panics; a file
    /// loader cannot panic on bad input.)
    pub fn set(
        &mut self,
        name: impl Into<RelName>,
        relation: Relation<T>,
    ) -> Result<&mut Self, SchemaError> {
        let name = name.into();
        let declared = self
            .schema
            .arity(&name)
            .ok_or_else(|| SchemaError::UndeclaredRelation(name.to_string()))?;
        if declared != relation.arity() {
            return Err(SchemaError::ArityMismatch {
                relation: name.to_string(),
                declared,
                found: relation.arity(),
            });
        }
        self.relations.insert(name, Arc::new(relation));
        Ok(self)
    }

    /// Looks up a relation; undeclared names return `None`, declared-but-unset names
    /// return the empty relation.  The returned value is an owned copy; hot
    /// paths that only read should prefer [`Instance::get_shared`].
    #[must_use]
    pub fn get(&self, name: &RelName) -> Option<Relation<T>> {
        self.get_shared(name)
            .map(|rel| Arc::try_unwrap(rel).unwrap_or_else(|shared| (*shared).clone()))
    }

    /// Looks up a relation without copying its part table: the stored value
    /// is handed out `Arc`-shared, so the call is `O(1)` however large the
    /// relation.  Undeclared names return `None`, declared-but-unset names a
    /// freshly allocated empty relation.
    #[must_use]
    pub fn get_shared(&self, name: &RelName) -> Option<Arc<Relation<T>>> {
        let arity = self.schema.arity(name)?;
        Some(self.relations.get(name).cloned().unwrap_or_else(|| {
            Arc::new(Relation::empty(
                (0..arity).map(|i| Var::new(format!("x{i}"))).collect(),
            ))
        }))
    }

    /// Iterates over the stored relations.
    pub fn iter(&self) -> impl Iterator<Item = (&RelName, &Relation<T>)> {
        self.relations
            .iter()
            .map(|(name, rel)| (name, rel.as_ref()))
    }

    /// All constants occurring in the instance (the active domain `adom(I)` of
    /// Lemma 6.13).
    #[must_use]
    pub fn active_domain(&self) -> BTreeSet<Rat> {
        self.relations
            .values()
            .flat_map(|rel| rel.constants())
            .collect()
    }

    /// Applies a mapping to every constant of every relation (the image `µ(I)` of the
    /// instance under a morphism).
    #[must_use]
    pub fn map_constants(&self, f: &impl Fn(&Rat) -> Rat) -> Instance<T> {
        Instance {
            schema: self.schema.clone(),
            relations: self
                .relations
                .iter()
                .map(|(n, r)| (n.clone(), Arc::new(r.map_constants(f))))
                .collect(),
        }
    }

    /// Semantic equivalence of two instances over the same schema.
    #[must_use]
    pub fn equivalent(&self, other: &Instance<T>) -> bool {
        if self.schema != other.schema {
            return false;
        }
        self.schema
            .iter()
            .all(|(name, _)| match (self.get(name), other.get(name)) {
                (Some(a), Some(b)) => {
                    let b = b.rename(a.vars().to_vec());
                    a.equivalent(&b)
                }
                _ => false,
            })
    }
}

impl<T: Theory> fmt::Display for Instance<T>
where
    T::A: fmt::Display,
{
    /// Prints the instance as a surface-language script fragment: one `schema`
    /// statement listing every declared relation with its arity, followed by
    /// one assignment per stored relation.  The output is parseable by the
    /// `frdb-lang` script parser, so an instance can be dumped and reloaded —
    /// provided every relation and column name lexes as an identifier (a
    /// Unicode letter or `_` followed by letters, digits and `_`, and not one
    /// of the word operators `and`, `or`, `not`, `exists`, `forall`, `true`,
    /// `false`); names the Rust API permits beyond that have no textual
    /// spelling.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.schema.is_empty() {
            write!(f, "schema ")?;
            for (i, (name, arity)) in self.schema.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{name}/{arity}")?;
            }
            writeln!(f, ";")?;
        }
        for (name, rel) in &self.relations {
            writeln!(f, "{name} := {rel};")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::{DenseAtom, DenseOrder};

    type Rel = Relation<DenseOrder>;

    fn x() -> Var {
        Var::new("x")
    }
    fn y() -> Var {
        Var::new("y")
    }
    fn r(v: i64) -> Rat {
        Rat::from_i64(v)
    }

    fn interval(lo: i64, hi: i64) -> GenTuple<DenseAtom> {
        GenTuple::new(vec![
            DenseAtom::le(Term::cst(lo), Term::var("x")),
            DenseAtom::le(Term::var("x"), Term::cst(hi)),
        ])
    }

    #[test]
    fn membership_of_intervals() {
        let rel = Rel::new(vec![x()], vec![interval(0, 2), interval(5, 7)]);
        assert!(rel.contains(&[r(1)]));
        assert!(rel.contains(&[r(0)]));
        assert!(rel.contains(&[r(6)]));
        assert!(!rel.contains(&[r(3)]));
        assert!(!rel.contains(&[r(-1)]));
    }

    #[test]
    fn union_intersection_complement() {
        let a = Rel::new(vec![x()], vec![interval(0, 4)]);
        let b = Rel::new(vec![x()], vec![interval(2, 6)]);
        let u = a.union(&b);
        let i = a.intersect(&b);
        assert!(u.contains(&[r(5)]) && u.contains(&[r(1)]));
        assert!(i.contains(&[r(3)]));
        assert!(!i.contains(&[r(1)]) && !i.contains(&[r(5)]));
        let c = a.complement();
        assert!(c.contains(&[r(5)]));
        assert!(!c.contains(&[r(2)]));
        // a ∪ ¬a is the whole line.
        assert!(a.union(&c).equivalent(&Rel::universal(vec![x()])));
        // a ∩ ¬a is empty.
        assert!(a.intersect(&c).is_empty());
    }

    #[test]
    fn containment_and_equivalence() {
        let small = Rel::new(vec![x()], vec![interval(1, 2)]);
        let big = Rel::new(vec![x()], vec![interval(0, 4)]);
        assert!(small.subset_of(&big));
        assert!(!big.subset_of(&small));
        // Splitting an interval in two gives an equivalent relation.
        let split = Rel::new(vec![x()], vec![interval(0, 2), interval(2, 4)]);
        assert!(split.equivalent(&big));
        assert!(!split.equivalent(&small));
    }

    #[test]
    fn simplify_absorbs_redundant_tuples() {
        let rel = Rel::new(vec![x()], vec![interval(0, 10), interval(2, 3)]);
        // The inner interval is absorbed by the outer one.
        assert_eq!(rel.num_tuples(), 1);
    }

    #[test]
    fn unsatisfiable_tuples_are_dropped() {
        let rel = Rel::new(
            vec![x()],
            vec![GenTuple::new(vec![
                DenseAtom::lt(Term::var("x"), Term::cst(0)),
                DenseAtom::lt(Term::cst(1), Term::var("x")),
            ])],
        );
        assert!(rel.is_empty());
    }

    #[test]
    fn from_points_builds_finite_relation() {
        let rel = Rel::from_points(vec![x(), y()], vec![vec![r(1), r(2)], vec![r(3), r(4)]]);
        assert!(rel.contains(&[r(1), r(2)]));
        assert!(rel.contains(&[r(3), r(4)]));
        assert!(!rel.contains(&[r(1), r(4)]));
        assert_eq!(rel.num_tuples(), 2);
    }

    #[test]
    fn rename_permutes_columns() {
        let rel = Rel::from_points(vec![x(), y()], vec![vec![r(1), r(2)]]);
        let swapped = rel.rename(vec![y(), x()]);
        // Same semantics, columns relabelled: the point (1,2) on columns (y,x) means
        // y=1 ∧ x=2.
        assert!(swapped.contains(&[r(1), r(2)]));
        let back = swapped.rename(vec![x(), y()]);
        assert!(back.contains(&[r(1), r(2)]));
    }

    #[test]
    fn complement_of_cofinite_set() {
        // The set Q \ {0} of Section 2.2 is finitely representable; its complement is
        // the single point 0.
        let nonzero = Rel::from_dnf(
            vec![x()],
            vec![
                vec![DenseAtom::lt(Term::var("x"), Term::cst(0))],
                vec![DenseAtom::lt(Term::cst(0), Term::var("x"))],
            ],
        );
        let comp = nonzero.complement();
        assert!(comp.contains(&[r(0)]));
        assert!(!comp.contains(&[r(1)]));
        assert!(comp.equivalent(&Rel::from_points(vec![x()], vec![vec![r(0)]])));
    }

    #[test]
    fn instance_roundtrip() {
        let schema = Schema::from_pairs([("R", 1), ("S", 2)]);
        let mut inst: Instance<DenseOrder> = Instance::new(schema);
        inst.set("R", Rel::new(vec![x()], vec![interval(0, 1)]))
            .unwrap();
        assert!(inst.get(&RelName::new("R")).unwrap().contains(&[r(0)]));
        // Unset but declared relation is empty.
        assert!(inst.get(&RelName::new("S")).unwrap().is_empty());
        // Undeclared relation is None.
        assert!(inst.get(&RelName::new("T")).is_none());
        assert_eq!(inst.active_domain().len(), 2);
    }

    #[test]
    fn set_rejects_undeclared_relations_with_a_typed_error() {
        // Regression: this used to be `panic!("relation {name} not declared in
        // the schema")`, which a script loader could not recover from.
        let schema = Schema::from_pairs([("R", 1)]);
        let mut inst: Instance<DenseOrder> = Instance::new(schema);
        let err = inst
            .set("ghost", Rel::new(vec![x()], vec![interval(0, 1)]))
            .unwrap_err();
        assert_eq!(err, SchemaError::UndeclaredRelation("ghost".into()));
        // The instance is untouched by the failed insertion.
        assert!(inst.get(&RelName::new("ghost")).is_none());
    }

    #[test]
    fn set_rejects_arity_mismatches_with_a_typed_error() {
        let schema = Schema::from_pairs([("R", 2)]);
        let mut inst: Instance<DenseOrder> = Instance::new(schema);
        let err = inst
            .set("R", Rel::new(vec![x()], vec![interval(0, 1)]))
            .unwrap_err();
        assert_eq!(
            err,
            SchemaError::ArityMismatch {
                relation: "R".into(),
                declared: 2,
                found: 1,
            }
        );
    }

    #[test]
    fn try_new_rejects_tuples_with_loose_variables() {
        // Regression: a tuple mentioning a variable outside the relation's
        // columns used to be accepted silently and panic later, deep inside
        // `contains`'s point substitution.
        let loose = GenTuple::new(vec![DenseAtom::lt(Term::var("y"), Term::cst(0))]);
        let err = Rel::try_new(vec![x()], vec![loose]).unwrap_err();
        assert_eq!(
            err,
            SchemaError::TupleVariableOutsideColumns {
                variable: "y".into(),
                columns: vec!["x".into()],
            }
        );
    }

    #[test]
    fn try_new_rejects_duplicate_columns() {
        // Regression: `{(x, x) | 0 ≤ x ≤ 5}` used to build silently, and the
        // membership substitution bound only the last occurrence — `contains`
        // answered `true` for points like (8, 1).
        let tuple = GenTuple::new(vec![
            DenseAtom::le(Term::cst(0), Term::var("x")),
            DenseAtom::le(Term::var("x"), Term::cst(5)),
        ]);
        let err = Rel::try_new(vec![x(), x()], vec![tuple]).unwrap_err();
        assert_eq!(
            err,
            SchemaError::DuplicateColumn {
                variable: "x".into()
            }
        );
    }

    #[test]
    #[should_panic(expected = "outside the relation's columns")]
    fn new_panics_eagerly_on_loose_variables() {
        // The panicking constructor fails at construction time with the typed
        // error's message, not later inside substitution.
        let loose = GenTuple::new(vec![DenseAtom::lt(Term::var("y"), Term::cst(0))]);
        let _ = Rel::new(vec![x()], vec![loose]);
    }

    #[test]
    fn instance_display_is_a_script_fragment() {
        let schema = Schema::from_pairs([("R", 1), ("S", 2)]);
        let mut inst: Instance<DenseOrder> = Instance::new(schema);
        inst.set("R", Rel::new(vec![x()], vec![interval(0, 1)]))
            .unwrap();
        let text = inst.to_string();
        assert!(text.starts_with("schema R/1, S/2;\n"));
        assert!(text.contains("R := {(x) | "));
    }

    /// The delta union must be *identical* (same tuple set, not just
    /// equivalent) to the batch union whenever both sides are canonical and
    /// disjoint — the common commit-path shape.
    #[test]
    fn union_delta_matches_union_on_disjoint_parts() {
        let stored = Rel::new(vec![x()], vec![interval(0, 1), interval(4, 5)]);
        let delta = Rel::new(vec![x()], vec![interval(8, 9)]);
        let merged = stored.union_delta(&delta);
        let batch = stored.union(&delta);
        assert_eq!(merged.tuples(), batch.tuples());
        assert_eq!(merged.num_tuples(), 3);
    }

    #[test]
    fn union_delta_absorbs_in_both_directions() {
        let stored = Rel::new(vec![x()], vec![interval(0, 10), interval(20, 21)]);
        // One delta part falls inside a stored part; the other swallows one.
        let delta = Rel::new(vec![x()], vec![interval(2, 3), interval(19, 30)]);
        let (merged, report) = stored.union_delta_report(&delta);
        assert!(merged.equivalent(&stored.union(&delta)));
        assert_eq!(merged.num_tuples(), 2); // [0,10] and [19,30]
        assert!(merged.contains(&[r(25)]));
        assert!(!merged.contains(&[r(15)]));
        // The report records the absorbed stored part and the one survivor
        // of the delta; the absorbed delta part appears nowhere.
        assert_eq!(report.removed, vec![stored.tuples()[1].clone()]);
        assert_eq!(report.added.len(), 1);
        assert_eq!(report.added[0].atoms(), merged.tuples()[1].atoms());
    }

    #[test]
    fn union_delta_drops_unsatisfiable_and_duplicate_delta_parts() {
        let stored = Rel::new(vec![x()], vec![interval(0, 1)]);
        let unsat = GenTuple::new(vec![
            DenseAtom::lt(Term::var("x"), Term::cst(0)),
            DenseAtom::lt(Term::cst(1), Term::var("x")),
        ]);
        // `try_new` would simplify these away; feed them through a relation
        // that still carries them via new() on the raw list.
        let delta = Rel::new(vec![x()], vec![unsat, interval(0, 1), interval(0, 1)]);
        let merged = stored.union_delta(&delta);
        assert_eq!(merged.tuples(), stored.tuples());
    }

    #[test]
    fn union_delta_empty_sides_match_union() {
        let stored = Rel::new(vec![x()], vec![interval(0, 1)]);
        let empty = Rel::empty(vec![x()]);
        assert_eq!(stored.union_delta(&empty).tuples(), stored.tuples());
        assert_eq!(empty.union_delta(&stored).tuples(), stored.tuples());
    }

    #[test]
    fn difference_delta_carries_untouched_parts_verbatim() {
        let stored = Rel::new(vec![x()], vec![interval(0, 1), interval(10, 20)]);
        let delta = Rel::new(vec![x()], vec![interval(12, 14)]);
        let (out, report) = stored.difference_delta_report(&delta);
        assert!(out.equivalent(&stored.difference(&delta)));
        // The untouched part survives with its exact stored atoms.
        assert!(out.tuples().contains(&stored.tuples()[0]));
        assert!(out.contains(&[r(11)]) && out.contains(&[r(15)]));
        assert!(!out.contains(&[r(13)]));
        // The report names the split origin and its two residual pieces;
        // the untouched part appears in neither list.
        assert_eq!(report.removed, vec![stored.tuples()[1].clone()]);
        assert_eq!(report.added.len(), 2);
        assert!(report.added.iter().all(|p| !stored.tuples().contains(p)));
    }

    #[test]
    fn delta_reports_are_empty_exactly_on_no_ops() {
        let stored = Rel::new(vec![x()], vec![interval(0, 10)]);
        // Inserting an absorbed interval changes nothing.
        let (same, report) = stored.union_delta_report(&Rel::new(vec![x()], vec![interval(2, 3)]));
        assert!(report.is_empty());
        assert_eq!(same.tuples(), stored.tuples());
        // Deleting a disjoint region changes nothing either.
        let (same, report) =
            stored.difference_delta_report(&Rel::new(vec![x()], vec![interval(20, 30)]));
        assert!(report.is_empty());
        assert_eq!(same.tuples(), stored.tuples());
    }

    #[test]
    fn difference_delta_deletes_whole_parts_and_is_empty_safe() {
        let stored = Rel::new(vec![x()], vec![interval(0, 1), interval(4, 5)]);
        let exact = Rel::new(vec![x()], vec![interval(0, 1)]);
        let out = stored.difference_delta(&exact);
        assert!(out.equivalent(&Rel::new(vec![x()], vec![interval(4, 5)])));
        let all = stored.difference_delta(&stored);
        assert!(all.is_empty());
        let empty = Rel::empty(vec![x()]);
        assert_eq!(stored.difference_delta(&empty).tuples(), stored.tuples());
        assert!(empty.difference_delta(&stored).is_empty());
    }

    /// Randomized parity: over interval soups, the delta operations agree
    /// semantically with the batch operations (union also shape-exactly once
    /// both inputs are canonical).
    #[test]
    fn delta_operations_agree_with_batch_operations() {
        let mut seed = 0x9e37_79b9_u64;
        let mut next = move || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            (seed >> 33) as i64 % 24
        };
        for _ in 0..50 {
            let soup = |n: usize, next: &mut dyn FnMut() -> i64| {
                let parts = (0..n)
                    .map(|_| {
                        let lo = next();
                        interval(lo, lo + 1 + next().abs() % 5)
                    })
                    .collect::<Vec<_>>();
                Rel::new(vec![x()], parts)
            };
            let stored = soup(6, &mut next);
            let delta = soup(2, &mut next);
            assert!(
                stored.union_delta(&delta).equivalent(&stored.union(&delta)),
                "union divergence: {stored} vs {delta}"
            );
            assert!(
                stored
                    .difference_delta(&delta)
                    .equivalent(&stored.difference(&delta)),
                "difference divergence: {stored} vs {delta}"
            );
        }
    }
}
