//! `EXPLAIN` rendering: the optimized plan tree annotated with estimated and
//! actual cardinalities.
//!
//! An [`Explain`] is produced by [`super::CompiledQuery::eval_explained`]: the
//! plan is evaluated as usual (so the answer relation comes back too), the
//! evaluator's memo table supplies the **actual** generalized-tuple count of
//! every evaluated node, and the optimizer's cost model supplies the
//! **estimate** each node was ordered by.  Rendering is deterministic — no
//! timings, no pointers — so transcripts can be pinned by golden tests.
//!
//! Nodes shared through hash-consing are printed once and referenced by a
//! `#n` marker afterwards, making memoization visible in the output: a
//! sub-plan annotated `#1` is evaluated once per query however often it
//! appears.  Nodes the evaluator never materialized (operands of a join that
//! annihilated early, or joins fused into their parent projection) show
//! `actual=-`.

use super::optimize::{estimate_plan, Est};
use super::stats::Statistics;
use super::{Factored, Plan, PlanNode};
use crate::relation::JoinReport;
use crate::theory::Theory;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// One rendered node of the explained plan tree.
#[derive(Clone, Debug)]
struct ExplainNode {
    /// Operator label, e.g. `⋈ join`, `alice(x, y)`, `σ[x < 2]`.
    label: String,
    /// Estimated output cardinality under the optimizer's cost model.
    est: f64,
    /// Actual generalized-tuple count and factorized part count, when the
    /// evaluator produced the node.  A part count above 1 means the node's
    /// value was held factorized — its tuples were never run through the
    /// cross-part absorption pass a full materialization would pay for.
    actual: Option<(usize, usize)>,
    /// Sharing marker: `Some(id)` when the node has several parents in the
    /// plan DAG.
    shared: Option<usize>,
    /// The join strategy that ran (`index-sweep` / `pin-hash` / `scan` /
    /// `mixed`) with its candidate-pair counts; join nodes only.
    strategy: Option<JoinReport>,
    /// Children (empty on repeat visits to a shared node).
    children: Vec<ExplainNode>,
    /// Whether this is a repeat visit (children elided).
    repeat: bool,
}

/// A deterministic, printable account of an evaluated plan: the operator
/// tree with estimated and actual cardinalities per node.
#[derive(Clone, Debug)]
pub struct Explain {
    root: ExplainNode,
}

impl Explain {
    /// Builds the explain tree for a plan: estimates from `stats`, actuals
    /// from the evaluator's memo (`actuals`, keyed by node identity), and
    /// join-strategy reports from the evaluator's join runs (`reports`, keyed
    /// by join-node identity).
    pub(super) fn build<T: Theory>(
        plan: &Plan<T>,
        stats: &Statistics,
        actuals: &HashMap<usize, Factored<T>>,
        reports: &HashMap<usize, JoinReport>,
    ) -> Explain {
        // First pass: reference counts, to decide which nodes get `#n` ids.
        let mut refs: HashMap<usize, usize> = HashMap::new();
        count_refs(plan, &mut refs, true);
        let mut est_memo: HashMap<usize, Est> = HashMap::new();
        let mut ids: HashMap<usize, usize> = HashMap::new();
        let mut next_id = 1usize;
        let root = build_node(
            plan,
            stats,
            actuals,
            reports,
            &refs,
            &mut est_memo,
            &mut ids,
            &mut next_id,
        );
        Explain { root }
    }
}

fn count_refs<T: Theory>(plan: &Plan<T>, refs: &mut HashMap<usize, usize>, root: bool) {
    let key = Arc::as_ptr(&plan.0) as usize;
    let n = refs.entry(key).or_insert(0);
    *n += 1;
    if *n > 1 && !root {
        return;
    }
    match &plan.0.node {
        PlanNode::Empty
        | PlanNode::Universal
        | PlanNode::Select(_)
        | PlanNode::Rename { .. }
        | PlanNode::Scan { .. } => {}
        PlanNode::Join(children) | PlanNode::Union(children) => {
            for c in children {
                count_refs(c, refs, false);
            }
        }
        PlanNode::Complement(p) => count_refs(p, refs, false),
        PlanNode::Project { input, .. } => count_refs(input, refs, false),
    }
}

#[allow(clippy::too_many_arguments)]
fn build_node<T: Theory>(
    plan: &Plan<T>,
    stats: &Statistics,
    actuals: &HashMap<usize, Factored<T>>,
    reports: &HashMap<usize, JoinReport>,
    refs: &HashMap<usize, usize>,
    est_memo: &mut HashMap<usize, Est>,
    ids: &mut HashMap<usize, usize>,
    next_id: &mut usize,
) -> ExplainNode {
    let key = Arc::as_ptr(&plan.0) as usize;
    let est = estimate_plan(plan, stats, est_memo).rows;
    let actual = actuals.get(&key).map(|f| (f.num_tuples(), f.num_parts()));
    let strategy = match &plan.0.node {
        PlanNode::Join(_) => reports.get(&key).copied(),
        _ => None,
    };
    let multi = refs.get(&key).copied().unwrap_or(0) > 1;
    if multi {
        if let Some(&id) = ids.get(&key) {
            // Repeat visit: reference the earlier occurrence.
            return ExplainNode {
                label: node_label(plan),
                est,
                actual,
                shared: Some(id),
                strategy,
                children: Vec::new(),
                repeat: true,
            };
        }
        ids.insert(key, *next_id);
        *next_id += 1;
    }
    let shared = ids.get(&key).copied();
    let children = match &plan.0.node {
        PlanNode::Empty
        | PlanNode::Universal
        | PlanNode::Select(_)
        | PlanNode::Rename { .. }
        | PlanNode::Scan { .. } => Vec::new(),
        PlanNode::Join(cs) | PlanNode::Union(cs) => cs
            .iter()
            .map(|c| build_node(c, stats, actuals, reports, refs, est_memo, ids, next_id))
            .collect(),
        PlanNode::Complement(p) => {
            vec![build_node(
                p, stats, actuals, reports, refs, est_memo, ids, next_id,
            )]
        }
        PlanNode::Project { input, .. } => {
            vec![build_node(
                input, stats, actuals, reports, refs, est_memo, ids, next_id,
            )]
        }
    };
    ExplainNode {
        label: node_label(plan),
        est,
        actual,
        shared,
        strategy,
        children,
        repeat: false,
    }
}

/// The operator label of a node: leaves print themselves, inner nodes print a
/// short operator name (their full sub-tree follows as children).  Shared
/// with the trace renderer so `explain` and `trace` speak one vocabulary.
pub(super) fn node_label<T: Theory>(plan: &Plan<T>) -> String {
    match &plan.0.node {
        PlanNode::Empty | PlanNode::Universal | PlanNode::Select(_) => plan.to_string(),
        PlanNode::Rename { .. } | PlanNode::Scan { .. } => plan.to_string(),
        PlanNode::Join(_) => format!("⋈ join → ({})", cols_of(plan)),
        PlanNode::Union(_) => format!("∪ union → ({})", cols_of(plan)),
        PlanNode::Complement(_) => format!("¬ complement → ({})", cols_of(plan)),
        PlanNode::Project { eliminate, .. } => {
            let vars: Vec<String> = eliminate.iter().map(ToString::to_string).collect();
            format!("π-{{{}}} project → ({})", vars.join(","), cols_of(plan))
        }
    }
}

fn cols_of<T: Theory>(plan: &Plan<T>) -> String {
    let cols: Vec<String> = plan.cols().iter().map(ToString::to_string).collect();
    cols.join(", ")
}

/// Formats an estimate: integers plainly, fractional values with one decimal.
fn fmt_est(est: f64) -> String {
    if (est - est.round()).abs() < 1e-9 {
        format!("{}", est.round() as i64)
    } else {
        format!("{est:.1}")
    }
}

impl fmt::Display for Explain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn line(node: &ExplainNode, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", node.label)?;
            if let Some(id) = node.shared {
                if node.repeat {
                    write!(f, "  #{id} (shared, evaluated once)")?;
                    return Ok(());
                }
                write!(f, "  #{id}")?;
            }
            write!(f, "  [est≈{}", fmt_est(node.est))?;
            match node.actual {
                Some((n, parts)) if parts > 1 => write!(f, ", actual={n} in {parts} parts")?,
                Some((n, _)) => write!(f, ", actual={n}")?,
                None => write!(f, ", actual=-")?,
            }
            if let Some(report) = &node.strategy {
                write!(f, ", {report}")?;
            }
            write!(f, "]")
        }
        fn walk(
            node: &ExplainNode,
            prefix: &str,
            is_last: bool,
            is_root: bool,
            f: &mut fmt::Formatter<'_>,
        ) -> fmt::Result {
            if is_root {
                line(node, f)?;
                writeln!(f)?;
            } else {
                let branch = if is_last { "└─ " } else { "├─ " };
                write!(f, "{prefix}{branch}")?;
                line(node, f)?;
                writeln!(f)?;
            }
            let child_prefix = if is_root {
                String::new()
            } else if is_last {
                format!("{prefix}   ")
            } else {
                format!("{prefix}│  ")
            };
            for (i, c) in node.children.iter().enumerate() {
                walk(c, &child_prefix, i + 1 == node.children.len(), false, f)?;
            }
            Ok(())
        }
        walk(&self.root, "", true, true, f)
    }
}

#[cfg(test)]
mod tests {
    use super::super::compile_query;
    use crate::dense::{DenseAtom, DenseOrder};
    use crate::logic::{Formula, Term, Var};
    use crate::relation::{GenTuple, Instance, Relation};
    use crate::schema::Schema;

    fn rect(x0: i64, x1: i64, y0: i64, y1: i64) -> GenTuple<DenseAtom> {
        GenTuple::new(vec![
            DenseAtom::le(Term::cst(x0), Term::var("x")),
            DenseAtom::le(Term::var("x"), Term::cst(x1)),
            DenseAtom::le(Term::cst(y0), Term::var("y")),
            DenseAtom::le(Term::var("y"), Term::cst(y1)),
        ])
    }

    #[test]
    fn explain_renders_a_deterministic_tree_with_est_and_actual() {
        let mut inst: Instance<DenseOrder> =
            Instance::new(Schema::from_pairs([("alice", 2), ("bob", 2)]));
        let cols = || vec![Var::new("x"), Var::new("y")];
        inst.set(
            "alice",
            Relation::new(cols(), vec![rect(0, 4, 0, 4), rect(4, 8, 0, 2)]),
        )
        .unwrap();
        inst.set(
            "bob",
            Relation::new(cols(), vec![rect(6, 10, 1, 5), rect(20, 24, 0, 4)]),
        )
        .unwrap();
        let q: Formula<DenseAtom> = Formula::rel("alice", [Term::var("x"), Term::var("y")])
            .and(Formula::rel("bob", [Term::var("x"), Term::var("y")]));
        let compiled = compile_query::<DenseOrder>(&q, &cols());
        let (answer, explain) = compiled.eval_explained(&inst).unwrap();
        assert_eq!(answer.num_tuples(), 1);
        assert_eq!(
            explain.to_string(),
            "⋈ join → (x, y)  [est≈1.3, actual=1, box-sweep 1/4 pairs]\n\
             ├─ alice(x, y)  [est≈2, actual=2]\n\
             └─ bob(x, y)  [est≈2, actual=2]\n"
        );
    }

    #[test]
    fn shared_subplans_are_marked_and_elided_on_repeat() {
        // φ ↔ ψ duplicates both sides; the DAG-shared nodes get `#n` markers.
        let phi: Formula<DenseAtom> =
            Formula::exists(["y"], Formula::rel("S", [Term::var("x"), Term::var("y")]));
        let psi: Formula<DenseAtom> = Formula::rel("R", [Term::var("x")]);
        let q = phi.iff(psi);
        let mut inst: Instance<DenseOrder> =
            Instance::new(Schema::from_pairs([("R", 1), ("S", 2)]));
        inst.set(
            "S",
            Relation::from_points(
                vec![Var::new("x"), Var::new("y")],
                vec![vec![1.into(), 2.into()]],
            ),
        )
        .unwrap();
        let compiled = compile_query::<DenseOrder>(&q, &[Var::new("x")]);
        let (_, explain) = compiled.eval_explained(&inst).unwrap();
        let text = explain.to_string();
        assert!(text.contains("#1"), "no sharing marker in:\n{text}");
        assert!(
            text.contains("(shared, evaluated once)"),
            "no repeat elision in:\n{text}"
        );
    }
}
